#include "energy/energy_model.hpp"

#include <stdexcept>

namespace sparcle {

EnergyModel::EnergyModel(const Network& net, DevicePowerProfile profile)
    : net_(&net), profiles_(net.ncp_count(), profile) {}

EnergyModel::EnergyModel(const Network& net,
                         std::vector<DevicePowerProfile> profiles)
    : net_(&net), profiles_(std::move(profiles)) {
  if (profiles_.size() != net.ncp_count())
    throw std::invalid_argument("EnergyModel: one profile per NCP required");
}

double EnergyModel::total_power(const TaskGraph& graph,
                                const Placement& placement, double rate,
                                std::size_t cpu_resource) const {
  if (rate < 0) throw std::invalid_argument("total_power: negative rate");

  // CPU load per NCP (resource `cpu_resource` only).
  std::vector<double> cpu_load(net_->ncp_count(), 0.0);
  std::vector<char> hosts_ct(net_->ncp_count(), 0);
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    const NcpId j = placement.ct_host(i);
    if (j == kInvalidId)
      throw std::invalid_argument("total_power: incomplete placement");
    hosts_ct[j] = 1;
    cpu_load[j] += graph.ct(i).requirement[cpu_resource];
  }

  double power = 0.0;
  for (NcpId j = 0; j < static_cast<NcpId>(net_->ncp_count()); ++j) {
    if (!hosts_ct[j]) continue;
    const double capacity = net_->ncp(j).capacity[cpu_resource];
    const double utilization =
        capacity > 0 ? std::min(1.0, rate * cpu_load[j] / capacity) : 0.0;
    power += profiles_[j].idle_watts +
             profiles_[j].cpu_full_load_watts * utilization;
  }

  // Radio power: each link hop charges the sender's tx and the receiver's
  // rx coefficient.  Routes are undirected link lists, so attribute the
  // mean of the two endpoints' coefficients per direction.
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    const double bps = rate * graph.tt(k).bits_per_unit;
    for (LinkId l : placement.tt_route(k)) {
      const Link& link = net_->link(l);
      const double tx = 0.5 * (profiles_[link.a].tx_watts_per_bps +
                               profiles_[link.b].tx_watts_per_bps);
      const double rx = 0.5 * (profiles_[link.a].rx_watts_per_bps +
                               profiles_[link.b].rx_watts_per_bps);
      power += (tx + rx) * bps;
    }
  }
  return power;
}

double EnergyModel::energy_efficiency(const TaskGraph& graph,
                                      const Placement& placement, double rate,
                                      std::size_t cpu_resource) const {
  if (!(rate > 0)) return 0.0;
  const double power = total_power(graph, placement, rate, cpu_resource);
  return power > 0 ? rate / power : 0.0;
}

}  // namespace sparcle
