#pragma once

#include <vector>

#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"
#include "model/task_graph.hpp"

/// \file energy_model.hpp
/// The device energy model of §V-B (Fig. 9): CPU power proportional to
/// utilization (Chen et al., SIGMETRICS 2015) and radio power proportional
/// to the transmission rate (Huang et al., MobiSys 2012).
///
/// For a placement running at rate x:
///   * an NCP hosting CTs draws  idle + full_load · u  watts, where u is
///     its CPU utilization  x · Σ a^(cpu) / C^(cpu);
///   * each link carrying TTs draws  (tx + rx) · x · Σ bits  watts via the
///     per-bit radio coefficients of its two endpoints.
/// Idle power is charged only to NCPs that host at least one CT (devices
/// that must stay awake for the application).
///
/// Energy efficiency is the paper's metric: data units processed per Joule
/// = x / total_power.

namespace sparcle {

/// Per-device power coefficients.  Defaults are of smartphone order:
/// ~2.5 W at full CPU load, ~0.5 W idle, and ~1 W per 10 Mbps of radio
/// traffic in each direction.
struct DevicePowerProfile {
  double idle_watts{0.5};
  double cpu_full_load_watts{2.5};
  double tx_watts_per_bps{1e-7};
  double rx_watts_per_bps{1e-7};
};

class EnergyModel {
 public:
  /// Every NCP gets `profile`.
  EnergyModel(const Network& net, DevicePowerProfile profile = {});
  /// Per-NCP profiles (size must equal the NCP count).
  EnergyModel(const Network& net, std::vector<DevicePowerProfile> profiles);

  /// Total power (watts) drawn by `placement` running at `rate`.
  /// The cpu utilization uses resource type `cpu_resource` (default 0).
  double total_power(const TaskGraph& graph, const Placement& placement,
                     double rate, std::size_t cpu_resource = 0) const;

  /// Data units processed per Joule: rate / total_power.
  double energy_efficiency(const TaskGraph& graph, const Placement& placement,
                           double rate, std::size_t cpu_resource = 0) const;

 private:
  const Network* net_;
  std::vector<DevicePowerProfile> profiles_;
};

}  // namespace sparcle
