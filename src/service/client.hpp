#pragma once

#include <map>
#include <string>

#include "service/scheduler_service.hpp"

/// \file client.hpp
/// Client-side access to the placement service: LocalClient wraps an
/// in-process SchedulerService behind the same verbs the wire protocol
/// exposes (tests and embedders skip the socket), and TcpClient speaks
/// the NDJSON protocol to a remote sparcle_serve daemon.

namespace sparcle::service {

/// Synchronous in-process client: each call enqueues through the service
/// and blocks on the future.  Thread-safe (the service is).
class LocalClient {
 public:
  /// Borrows `service`; the caller keeps it alive.
  explicit LocalClient(SchedulerService& service) : service_(service) {}

  /// Submits one application and waits for the batch containing it.
  ServiceResult submit(Application app) {
    return service_.submit(std::move(app)).get();
  }
  /// Removes a placed application and waits.
  ServiceResult remove(std::string name) {
    return service_.remove(std::move(name)).get();
  }
  /// The latest published snapshot (never blocks on the scheduler).
  std::shared_ptr<const ServiceSnapshot> query() const {
    return service_.snapshot();
  }
  /// Blocks until the service queue is empty.
  void drain() { service_.drain(); }

 private:
  SchedulerService& service_;
};

/// Blocking NDJSON-over-TCP client for sparcle_serve.  One connection,
/// one outstanding request at a time; NOT thread-safe (use one client
/// per thread — the daemon handles each connection independently).
class TcpClient {
 public:
  /// Connects to `host:port`; throws std::runtime_error on failure.
  TcpClient(const std::string& host, std::uint16_t port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Sends one request line (newline appended) and returns the response
  /// line.  Throws std::runtime_error if the connection drops.
  std::string request(const std::string& line);

  /// request() plus response parsing into the flat field map.
  std::map<std::string, std::string> request_fields(const std::string& line);

  /// Submits an application serialized as a scenario `app ... end` block
  /// (see workload::write_app_text) and returns the parsed response.
  std::map<std::string, std::string> submit_app_text(
      const std::string& app_block);
  /// Removes `name` on the server and returns the parsed response.
  std::map<std::string, std::string> remove(const std::string& name);
  /// Queries the snapshot summary (or one app when `name` is non-empty).
  std::map<std::string, std::string> query(const std::string& name = "");
  /// Asks the server to drain its queue; returns the settled summary.
  std::map<std::string, std::string> drain();

 private:
  int fd_{-1};
  std::string buffer_;  ///< bytes received past the last response line
};

}  // namespace sparcle::service
