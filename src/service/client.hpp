#pragma once

#include <map>
#include <string>

#include "service/scheduler_service.hpp"

/// \file client.hpp
/// Client-side access to the placement service: LocalClient wraps an
/// in-process SchedulerService behind the same verbs the wire protocol
/// exposes (tests and embedders skip the socket), and TcpClient speaks
/// either wire codec — NDJSON lines or binary frames (binwire.hpp) — to a
/// remote sparcle_serve daemon over one connection.

namespace sparcle::service {

/// Which wire codec a TcpClient speaks.  Both land on the same server
/// port; the first byte the client sends pins the connection's codec.
enum class Codec {
  kJson,    ///< newline-delimited flat JSON (wire.hpp)
  kBinary,  ///< length-prefixed binary frames (binwire.hpp)
};

/// Synchronous in-process client: each call enqueues through the service
/// and blocks on the future.  Thread-safe (the service is).
class LocalClient {
 public:
  /// Borrows `service`; the caller keeps it alive.
  explicit LocalClient(PlacementService& service) : service_(service) {}

  /// Submits one application and waits for the batch containing it.
  ServiceResult submit(Application app) {
    return service_.submit(std::move(app)).get();
  }
  /// Removes a placed application and waits.
  ServiceResult remove(std::string name) {
    return service_.remove(std::move(name)).get();
  }
  /// The latest published snapshot (never blocks on the scheduler).
  std::shared_ptr<const ServiceSnapshot> query() const {
    return service_.snapshot();
  }
  /// Blocks until the service queue is empty.
  void drain() { service_.drain(); }

 private:
  PlacementService& service_;
};

/// Blocking TCP client for sparcle_serve.  One connection, one
/// outstanding request at a time; NOT thread-safe (use one client per
/// thread — the daemon multiplexes connections on its event loop).  The
/// codec is fixed per connection at construction.
class TcpClient {
 public:
  /// Connects to `host:port`; throws std::runtime_error on failure.
  /// `codec` selects the wire encoding for the whole connection.
  TcpClient(const std::string& host, std::uint16_t port,
            Codec codec = Codec::kJson);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// The connection's wire codec.
  Codec codec() const { return codec_; }

  /// Sends one request (a flat field map including `verb`) in the
  /// connection's codec and returns the parsed response fields.  This is
  /// the codec-independent core every helper below rides.
  std::map<std::string, std::string> call(
      const std::map<std::string, std::string>& fields);

  /// Sends one JSON request line and returns the response as a JSON line.
  /// On a binary connection the line is parsed, re-encoded as a frame,
  /// and the reply rendered back to JSON — so line-oriented callers work
  /// identically over both codecs.  Throws std::runtime_error if the
  /// connection drops.
  std::string request(const std::string& line);

  /// request() plus response parsing into the flat field map.
  std::map<std::string, std::string> request_fields(const std::string& line);

  /// Submits an application serialized as a scenario `app ... end` block
  /// (see workload::write_app_text) and returns the parsed response.
  std::map<std::string, std::string> submit_app_text(
      const std::string& app_block);
  /// Removes `name` on the server and returns the parsed response.
  std::map<std::string, std::string> remove(const std::string& name);
  /// Queries the snapshot summary (or one app when `name` is non-empty).
  std::map<std::string, std::string> query(const std::string& name = "");
  /// Asks the server to drain its queue; returns the settled summary.
  std::map<std::string, std::string> drain();

 private:
  void send_all(const std::string& data);
  std::map<std::string, std::string> read_reply();

  int fd_{-1};
  Codec codec_{Codec::kJson};
  std::string buffer_;  ///< bytes received past the last response
};

}  // namespace sparcle::service
