#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler_service.hpp"

/// \file tcp_server.hpp
/// Newline-delimited-JSON front end for the placement service: POSIX
/// sockets only, loopback by default, one thread per connection (the
/// service's bounded queue — not the socket layer — is the concurrency
/// limit that matters).  Protocol in wire.hpp / docs/service.md.

namespace sparcle::service {

/// Listener configuration.
struct TcpServerOptions {
  /// Address to bind; the default keeps the daemon loopback-only.
  std::string bind_address{"127.0.0.1"};
  /// Port to bind; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port{0};
  /// Hard cap on one request line, bytes; longer lines get an error
  /// response and the connection is closed (defends the line buffer).
  std::size_t max_line_bytes{1 << 20};
};

/// Serves a SchedulerService over TCP.  The server borrows the service —
/// the caller keeps it alive until stop() returns.  start() spawns the
/// accept loop; each accepted connection gets a thread that reads one
/// request line at a time, dispatches it, and writes one response line.
class TcpServer {
 public:
  TcpServer(SchedulerService& service, TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the accept loop.  Throws
  /// std::runtime_error (with errno text) if the socket cannot be set up.
  void start();

  /// Closes the listener, wakes every connection, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (after start(); resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  /// Dispatches one already-parsed request line and returns the response
  /// line (no trailing newline).  The connection threads call this; tests
  /// call it directly to exercise the protocol without sockets.
  std::string handle_line(const std::string& line);

 private:
  void accept_loop();
  void serve_connection(int fd);

  SchedulerService& service_;
  TcpServerOptions options_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_{0};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;               ///< guards conn_threads_ / conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;        ///< open connection sockets (for stop())
};

}  // namespace sparcle::service
