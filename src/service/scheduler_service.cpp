#include "service/scheduler_service.hpp"

#include <algorithm>
#include <charconv>
#include <utility>

#include "check/invariants.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"

namespace sparcle::service {
namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Shortest representation of a double that round-trips.
std::string fmt(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

/// Delivers a request's terminal result through whichever channel the
/// caller chose: the completion callback (async front ends) or the
/// promise (future-based callers).  Templated because Request is a
/// private nested type; the argument is always SchedulerService::Request.
template <typename RequestT>
void fulfill(RequestT& req, ServiceResult result) {
  if (req.callback) {
    req.callback(std::move(result));
    return;
  }
  req.promise.set_value(std::move(result));
}

}  // namespace

const char* to_string(ServiceResult::Status status) {
  switch (status) {
    case ServiceResult::Status::kAdmitted: return "admitted";
    case ServiceResult::Status::kRejected: return "rejected";
    case ServiceResult::Status::kRemoved: return "removed";
    case ServiceResult::Status::kNotFound: return "not_found";
    case ServiceResult::Status::kQueueFull: return "queue_full";
    case ServiceResult::Status::kDeadlineExceeded: return "deadline_exceeded";
    case ServiceResult::Status::kShutdown: return "shutdown";
    case ServiceResult::Status::kApplied: return "applied";
  }
  return "unknown";
}

const AppView* ServiceSnapshot::find(const std::string& name) const {
  for (const AppView& view : apps)
    if (view.name == name) return &view;
  return nullptr;
}

SchedulerService::SchedulerService(Network net, SchedulerOptions sched_options,
                                   ServiceOptions options)
    : net_(net),
      scheduler_(std::move(net), sched_options),
      options_(options),
      policy_(sched_options.policy),
      start_(std::chrono::steady_clock::now()),
      window_(options.window_seconds == 0 ? 1 : options.window_seconds),
      paused_(options.start_paused) {
  // Default objectives; target 0 disables (SloTracker::add drops them).
  obs::SloSpec p99;
  p99.name = "admission_p99_us";
  p99.series = "admission_latency_us";
  p99.aggregate = obs::SloSpec::Aggregate::kP99;
  p99.target = options_.slo_admission_p99_us;
  slo_.add(std::move(p99));
  obs::SloSpec rej;
  rej.name = "reject_ratio";
  rej.series = "rejected_any";
  rej.aggregate = obs::SloSpec::Aggregate::kRatio;
  rej.denominator = "arrivals";
  rej.target = options_.slo_reject_ratio;
  slo_.add(std::move(rej));
  for (const obs::SloSpec& spec : options_.slos) slo_.add(spec);

  // Publish the empty version-0 snapshot so snapshot() never returns null.
  auto snap = std::make_shared<ServiceSnapshot>();
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap_ = std::move(snap);
  }
  scheduler_thread_ = std::thread([this] { scheduling_loop(); });
}

SchedulerService::~SchedulerService() { stop(); }

void SchedulerService::bump(const char* name, std::uint64_t n) {
  registry_.counter(name).add(n);
  if (obs::MetricsRegistry* reg = obs::metrics();
      reg != nullptr && reg != &registry_)
    reg->counter(name).add(n);
}

void SchedulerService::gauge_set(const char* name, double v) {
  registry_.gauge(name).set(v);
  if (obs::MetricsRegistry* reg = obs::metrics();
      reg != nullptr && reg != &registry_)
    reg->gauge(name).set(v);
}

void SchedulerService::log_queue_reject(const char* reason_head,
                                        const std::string& app,
                                        bool guaranteed,
                                        const std::string& detail) {
  if (obs::DecisionLog* log = obs::decision_log()) {
    log->record(obs::DecisionKind::kQueueReject, app, guaranteed ? "GR" : "BE",
                detail.empty() ? std::string(reason_head)
                               : std::string(reason_head) + " " + detail,
                0.0, 0.0, 0);
  }
  bump((std::string("service.rejected.") + reason_head).c_str());
}

std::future<ServiceResult> SchedulerService::submit(Application app) {
  const auto deadline =
      options_.default_deadline.count() > 0
          ? std::chrono::steady_clock::now() + options_.default_deadline
          : kNoDeadline;
  return submit(std::move(app), deadline);
}

std::future<ServiceResult> SchedulerService::submit(
    Application app, std::chrono::steady_clock::time_point deadline) {
  const bool gr = app.qoe.cls == QoeClass::kGuaranteedRate;
  Request req;
  req.verb = Request::Verb::kSubmit;
  req.app = std::move(app);
  return enqueue(std::move(req), gr ? kGr : kBe, deadline);
}

std::future<ServiceResult> SchedulerService::remove(std::string app_name) {
  const auto deadline =
      options_.default_deadline.count() > 0
          ? std::chrono::steady_clock::now() + options_.default_deadline
          : kNoDeadline;
  return remove(std::move(app_name), deadline);
}

std::future<ServiceResult> SchedulerService::remove(
    std::string app_name, std::chrono::steady_clock::time_point deadline) {
  Request req;
  req.verb = Request::Verb::kRemove;
  req.name = std::move(app_name);
  return enqueue(std::move(req), kControl, deadline);
}

void SchedulerService::submit_async(Application app, Completion on_done) {
  const auto deadline =
      options_.default_deadline.count() > 0
          ? std::chrono::steady_clock::now() + options_.default_deadline
          : kNoDeadline;
  const bool gr = app.qoe.cls == QoeClass::kGuaranteedRate;
  Request req;
  req.verb = Request::Verb::kSubmit;
  req.app = std::move(app);
  req.callback = std::move(on_done);
  enqueue(std::move(req), gr ? kGr : kBe, deadline);
}

void SchedulerService::remove_async(std::string app_name, Completion on_done) {
  const auto deadline =
      options_.default_deadline.count() > 0
          ? std::chrono::steady_clock::now() + options_.default_deadline
          : kNoDeadline;
  Request req;
  req.verb = Request::Verb::kRemove;
  req.name = std::move(app_name);
  req.callback = std::move(on_done);
  enqueue(std::move(req), kControl, deadline);
}

std::future<ServiceResult> SchedulerService::apply(SchedulerFn fn) {
  Request req;
  req.verb = Request::Verb::kApply;
  req.fn = std::move(fn);
  return enqueue(std::move(req), kControl, kNoDeadline);
}

void SchedulerService::apply_async(SchedulerFn fn, Completion on_done) {
  Request req;
  req.verb = Request::Verb::kApply;
  req.fn = std::move(fn);
  req.callback = std::move(on_done);
  enqueue(std::move(req), kControl, kNoDeadline);
}

bool SchedulerService::inspect(
    const std::function<void(const Scheduler&)>& fn) {
  // The reference capture is safe: get() blocks until the request is
  // fulfilled (run, or bounced with kShutdown without running fn).
  auto future = apply([&fn](Scheduler& scheduler) { fn(scheduler); });
  return future.get().status == ServiceResult::Status::kApplied;
}

std::future<ServiceResult> SchedulerService::enqueue(
    Request req, std::size_t cls,
    std::chrono::steady_clock::time_point deadline) {
  req.enqueued = std::chrono::steady_clock::now();
  req.deadline = deadline;
  if (policy_ != nullptr && req.verb == Request::Verb::kSubmit &&
      req.app.graph != nullptr) {
    // Feature extraction for SchedulingPolicy::pick_next, outside the
    // queue lock (mirrors the soak engine's PendingApp fields).
    const ResourceVector need = req.app.graph->total_ct_requirement();
    req.size = need.size() > 0 ? need[0] : 0.0;
    req.bits = req.app.graph->total_tt_bits();
  }
  std::future<ServiceResult> future = req.promise.get_future();

  const std::string& label =
      req.verb == Request::Verb::kSubmit ? req.app.name : req.name;
  const bool gr = req.verb == Request::Verb::kSubmit &&
                  req.app.qoe.cls == QoeClass::kGuaranteedRate;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ServiceResult result;
      result.status = ServiceResult::Status::kShutdown;
      result.reason = "service is stopping";
      fulfill(req, std::move(result));
      return future;
    }
    window_.add("arrivals");
    const std::size_t depth = queued_unlocked();
    if (depth >= options_.queue_capacity) {
      window_.add("queue_rejected");
      window_.add("rejected_any");
      ServiceResult result;
      result.status = ServiceResult::Status::kQueueFull;
      result.reason = "queue_full: " + std::to_string(depth) + "/" +
                      std::to_string(options_.queue_capacity) +
                      " requests queued";
      log_queue_reject("queue_full", label, gr, result.reason);
      fulfill(req, std::move(result));
      return future;
    }
    bump(req.verb == Request::Verb::kSubmit   ? "service.submits"
         : req.verb == Request::Verb::kRemove ? "service.removes"
                                              : "service.applies");
    req.trace = next_trace_.fetch_add(1, std::memory_order_relaxed);
    if (obs::ChromeTraceCollector* trace = obs::trace_collector())
      trace->record_flow("service.request", trace->to_origin_us(req.enqueued),
                         /*start=*/true, req.trace);
    queues_[cls].push_back(std::move(req));
    bump("service.enqueued");
    gauge_set("service.queue.depth", static_cast<double>(depth + 1));
    window_.observe("queue_depth", static_cast<double>(depth + 1));
  }
  work_cv_.notify_one();
  return future;
}

std::size_t SchedulerService::queued_unlocked() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

std::size_t SchedulerService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_unlocked();
}

ServiceStats SchedulerService::stats() const {
  const obs::MetricsSnapshot snap = registry_.snapshot();
  ServiceStats s;
  s.submits = snap.counter_or("service.submits");
  s.removes = snap.counter_or("service.removes");
  s.admitted = snap.counter_or("service.admitted");
  s.rejected = snap.counter_or("service.rejected");
  s.queue_full = snap.counter_or("service.rejected.queue_full");
  s.deadline_expired = snap.counter_or("service.rejected.deadline_exceeded");
  s.batches = snap.counter_or("service.batches");
  s.max_batch_seen =
      static_cast<std::uint64_t>(snap.gauge_or("service.batch.max_seen"));
  s.resolves_saved = snap.counter_or("service.resolves_saved");
  s.invariant_violations = snap.counter_or("service.invariant_violations");
  s.pf_solves = snap.counter_or("service.pf.solves");
  s.pf_warm_hits = snap.counter_or("service.pf.warm_hits");
  s.pf_warm_fallbacks = snap.counter_or("service.pf.warm_fallbacks");
  s.pf_newton_iters = snap.counter_or("service.pf.newton_iters");
  for (const auto& [name, value] : snap.counters)
    s.metrics[name] = static_cast<double>(value);
  for (const auto& [name, value] : snap.gauges) s.metrics[name] = value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.first_violation = first_violation_;
  }
  return s;
}

obs::SloReport SchedulerService::slo_report() const {
  return slo_.evaluate(window_);
}

obs::MetricsSnapshot SchedulerService::telemetry_snapshot(
    obs::SloReport* report_out) const {
  obs::MetricsSnapshot snap = registry_.snapshot();
  const auto now = obs::TimeSeriesWindow::Clock::now();
  window_.export_to(snap, "service.window.", now);
  const obs::SloReport report = slo_.evaluate(window_, now);
  obs::SloTracker::export_to(report, snap);
  if (report_out != nullptr) *report_out = report;
  return snap;
}

std::string SchedulerService::prometheus_text() const {
  return obs::to_prometheus(telemetry_snapshot(nullptr));
}

std::map<std::string, std::string> SchedulerService::health_fields() const {
  obs::SloReport report;
  const obs::MetricsSnapshot snap = telemetry_snapshot(&report);
  const std::shared_ptr<const ServiceSnapshot> view = snapshot();

  std::map<std::string, std::string> fields;
  fields["status"] = "ok";
  fields["slo_state"] = obs::to_string(report.worst);
  fields["version"] = std::to_string(view->version);
  fields["apps"] = std::to_string(view->apps.size());
  fields["queue_depth"] = std::to_string(queue_depth());
  fields["window_seconds"] = std::to_string(window_.window_seconds());
  fields["arrivals_per_second"] =
      fmt(snap.gauge_or("service.window.arrivals.per_second"));
  fields["admitted_per_second"] =
      fmt(snap.gauge_or("service.window.admitted.per_second"));
  fields["rejected_per_second"] =
      fmt(snap.gauge_or("service.window.rejected_any.per_second"));
  fields["admission_p50_us"] =
      fmt(snap.gauge_or("service.window.admission_latency_us.p50"));
  fields["admission_p99_us"] =
      fmt(snap.gauge_or("service.window.admission_latency_us.p99"));
  for (const obs::SloEvaluation& eval : report.targets) {
    const std::string base = "slo." + eval.name;
    fields[base + ".state"] = obs::to_string(eval.state);
    fields[base + ".burn"] = fmt(eval.burn);
    fields[base + ".observed"] = fmt(eval.observed);
    fields[base + ".target"] = fmt(eval.target);
  }
  return fields;
}

std::shared_ptr<const ServiceSnapshot> SchedulerService::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snap_;
}

void SchedulerService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void SchedulerService::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void SchedulerService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return (queued_unlocked() == 0 && !processing_) || stopping_;
  });
}

void SchedulerService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;  // a paused service still drains its queue on stop
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
}

void SchedulerService::scheduling_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && queued_unlocked() > 0);
      });
      if (queued_unlocked() == 0 && stopping_) return;
      // Pop up to max_batch requests, higher classes first.  Within a
      // class: FIFO, unless a scheduling policy is installed — then the
      // policy's pick_next (decision point 1, docs/policies.md) chooses
      // among the queued submits of that class.  Control requests
      // (removes, apply fns) always stay FIFO, and DefaultPolicy returns
      // index 0, reproducing the classic FIFO dequeue bit for bit.
      for (std::size_t cls = 0; cls < kClasses; ++cls) {
        auto& queue = queues_[cls];
        if (policy_ == nullptr || cls == kControl) {
          while (batch.size() < options_.max_batch && !queue.empty()) {
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
          }
          continue;
        }
        std::vector<policy::PendingApp> pending;
        while (batch.size() < options_.max_batch && !queue.empty()) {
          pending.clear();
          pending.reserve(queue.size());
          for (const Request& req : queue) {
            policy::PendingApp p;
            p.app = &req.app;
            p.arrival_time =
                std::chrono::duration<double>(req.enqueued - start_).count();
            if (req.deadline !=
                std::chrono::steady_clock::time_point::max())
              p.deadline =
                  std::chrono::duration<double>(req.deadline - start_)
                      .count();
            p.size = req.size;
            p.bits = req.bits;
            pending.push_back(p);
          }
          std::size_t pick = policy_->pick_next(pending);
          if (pick >= queue.size()) pick = 0;  // out-of-range: fall back FIFO
          batch.push_back(std::move(queue[pick]));
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }
      processing_ = true;
      gauge_set("service.queue.depth",
                static_cast<double>(queued_unlocked()));
    }

    process_batch(batch);

    {
      std::lock_guard<std::mutex> lock(mu_);
      processing_ = false;
    }
    idle_cv_.notify_all();
  }
}

void SchedulerService::process_batch(std::vector<Request>& batch) {
  obs::ScopedTimer timer("service.batch");
  const auto popped = std::chrono::steady_clock::now();

  // Reject expired requests up front; the survivors form the scheduler
  // batch.  Index into `batch` per survivor so results can be patched.
  std::vector<std::size_t> live;
  live.reserve(batch.size());
  std::vector<ServiceResult> results(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& req = batch[i];
    results[i].timeline.trace_id = req.trace;
    results[i].timeline.queue_us = elapsed_us(req.enqueued, popped);
    if (req.deadline < popped) {
      const bool submit = req.verb == Request::Verb::kSubmit;
      const std::string& label = submit ? req.app.name : req.name;
      results[i].status = ServiceResult::Status::kDeadlineExceeded;
      results[i].reason =
          "deadline_exceeded: waited " +
          std::to_string(
              static_cast<long long>(elapsed_us(req.enqueued, popped))) +
          "us in queue";
      const obs::ScopedTrace trace_scope(req.trace);
      log_queue_reject("deadline_exceeded", label,
                       submit && req.app.qoe.cls == QoeClass::kGuaranteedRate,
                       results[i].reason);
      window_.add("queue_rejected");
      window_.add("rejected_any");
      continue;
    }
    live.push_back(i);
  }

  // Per-request apply intervals; the gaps around them are batch assembly.
  std::vector<std::chrono::steady_clock::time_point> apply_start(
      batch.size(), popped),
      apply_end(batch.size(), popped);
  auto solve_start = popped, solve_end = popped;

  std::size_t admitted = 0, rejected = 0, removed = 0, resolves_saved = 0;
  if (!live.empty()) {
    scheduler_.begin_batch();
    for (std::size_t i : live) {
      Request& req = batch[i];
      // The trace scope tags every decision-log row and span the
      // scheduler emits while applying this request.
      const obs::ScopedTrace trace_scope(req.trace);
      const obs::ScopedTimer apply_span("service.apply");
      apply_start[i] = std::chrono::steady_clock::now();
      if (req.verb == Request::Verb::kApply) {
        // Control function (federation reserve/commit/release, churn
        // injection, inspection).  A throwing fn fails its own request,
        // never the scheduling thread.
        try {
          req.fn(scheduler_);
          results[i].status = ServiceResult::Status::kApplied;
        } catch (const std::exception& e) {
          results[i].status = ServiceResult::Status::kRejected;
          results[i].reason = std::string("control function failed: ") +
                              e.what();
          bump("service.apply_failures");
        }
        apply_end[i] = std::chrono::steady_clock::now();
        continue;
      }
      if (req.verb == Request::Verb::kRemove) {
        const bool found = scheduler_.remove(req.name);
        results[i].status = found ? ServiceResult::Status::kRemoved
                                  : ServiceResult::Status::kNotFound;
        if (!found) results[i].reason = "no placed app named '" + req.name + "'";
        if (found) ++removed;
        apply_end[i] = std::chrono::steady_clock::now();
        continue;
      }
      // Names key remove and query, so the service (unlike the bare
      // Scheduler) rejects duplicate submissions instead of placing two
      // apps that later become indistinguishable.
      bool duplicate = false;
      for (const PlacedApp& placed : scheduler_.placed())
        if (placed.app.name == req.app.name) {
          duplicate = true;
          break;
        }
      if (duplicate) {
        results[i].status = ServiceResult::Status::kRejected;
        results[i].reason =
            "an app named '" + req.app.name + "' is already placed";
        ++rejected;
        apply_end[i] = std::chrono::steady_clock::now();
        continue;
      }
      // A malformed application (Application::validate throws) must
      // reject the one request, not kill the scheduling thread.
      AdmissionResult admission;
      try {
        admission = scheduler_.submit(req.app);
      } catch (const std::exception& e) {
        admission.admitted = false;
        admission.reason = std::string("invalid application: ") + e.what();
      }
      results[i].status = admission.admitted
                              ? ServiceResult::Status::kAdmitted
                              : ServiceResult::Status::kRejected;
      results[i].reason = admission.reason;
      results[i].rate = admission.rate;
      results[i].availability = admission.availability;
      results[i].paths = admission.path_count;
      if (admission.admitted)
        ++admitted;
      else
        ++rejected;
      apply_end[i] = std::chrono::steady_clock::now();
    }
    solve_start = std::chrono::steady_clock::now();
    const Scheduler::BatchReport report = scheduler_.end_batch();
    solve_end = std::chrono::steady_clock::now();
    if (report.deferred_resolves > 1)
      resolves_saved = report.deferred_resolves - 1;

    // Patch the batch results with post-solve state: BE apps admitted
    // mid-batch carried rate 0 until the deferred PF solve ran, and the
    // solve may (rarely) have evicted some of them.
    for (std::size_t i : live) {
      Request& req = batch[i];
      if (req.verb != Request::Verb::kSubmit ||
          results[i].status != ServiceResult::Status::kAdmitted)
        continue;
      if (std::find(report.evicted.begin(), report.evicted.end(),
                    req.app.name) != report.evicted.end()) {
        results[i].status = ServiceResult::Status::kRejected;
        results[i].reason = "resource allocation failed (evicted at batch end)";
        results[i].rate = 0.0;
        --admitted;
        ++rejected;
        continue;
      }
      if (req.app.qoe.cls == QoeClass::kBestEffort) {
        for (const PlacedApp& placed : scheduler_.placed()) {
          if (placed.app.name == req.app.name) {
            results[i].rate = placed.allocated_rate;
            break;
          }
        }
      }
    }
  }

  if (options_.validate_batches && !live.empty()) {
    const check::CheckReport report = check::check_scheduler_state(scheduler_);
    if (!report.ok()) {
      bump("service.invariant_violations");
      std::lock_guard<std::mutex> lock(mu_);
      if (first_violation_.empty()) first_violation_ = report.to_string();
    }
  }

  publish_snapshot();

  // Fulfill the promises only after the snapshot is visible, so a client
  // that observes its future ready and immediately queries sees a state
  // that includes its own request.
  const auto done = std::chrono::steady_clock::now();
  const double solve_us = elapsed_us(solve_start, solve_end);
  for (std::size_t i : live) {
    RequestTimeline& t = results[i].timeline;
    t.batch_us = elapsed_us(popped, apply_start[i]) +
                 elapsed_us(apply_end[i], solve_start);
    t.apply_us = elapsed_us(apply_start[i], apply_end[i]);
    t.solve_us = solve_us;
    t.reply_us = elapsed_us(solve_end, done);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results[i].latency_us = elapsed_us(batch[i].enqueued, done);
    if (results[i].status == ServiceResult::Status::kDeadlineExceeded)
      results[i].timeline.reply_us = elapsed_us(popped, done);
  }

  // Counters, window feeds, and trace flows must all be current before
  // any promise resolves: a client that sees its future ready may
  // immediately read stats(), scrape the ops endpoint, or export traces.
  {
    registry_.histogram("service.batch.size", {1, 2, 4, 8, 16, 32, 64, 128})
        .observe(static_cast<double>(batch.size()));
    auto& latency = registry_.histogram("service.admission_latency.us",
                                        obs::default_time_bounds_us());
    for (const ServiceResult& result : results)
      latency.observe(result.latency_us);
    if (obs::MetricsRegistry* reg = obs::metrics();
        reg != nullptr && reg != &registry_) {
      reg->histogram("service.batch.size", {1, 2, 4, 8, 16, 32, 64, 128})
          .observe(static_cast<double>(batch.size()));
      auto& mirror = reg->histogram("service.admission_latency.us",
                                    obs::default_time_bounds_us());
      for (const ServiceResult& result : results)
        mirror.observe(result.latency_us);
    }
  }
  if (admitted > 0) bump("service.admitted", admitted);
  if (rejected > 0) bump("service.rejected", rejected);
  if (resolves_saved > 0) bump("service.resolves_saved", resolves_saved);
  bump("service.batches");
  registry_.gauge("service.batch.max_seen")
      .max(static_cast<double>(batch.size()));
  if (obs::MetricsRegistry* reg = obs::metrics();
      reg != nullptr && reg != &registry_)
    reg->gauge("service.batch.max_seen").max(static_cast<double>(batch.size()));
  {
    const Scheduler::PfSolverStats pf = scheduler_.pf_solver_stats();
    if (pf.solves > prev_pf_.solves)
      bump("service.pf.solves", pf.solves - prev_pf_.solves);
    if (pf.warm_hits > prev_pf_.warm_hits)
      bump("service.pf.warm_hits", pf.warm_hits - prev_pf_.warm_hits);
    if (pf.warm_fallbacks > prev_pf_.warm_fallbacks)
      bump("service.pf.warm_fallbacks",
           pf.warm_fallbacks - prev_pf_.warm_fallbacks);
    if (pf.newton_iters > prev_pf_.newton_iters)
      bump("service.pf.newton_iters", pf.newton_iters - prev_pf_.newton_iters);
    if (pf.solves > prev_pf_.solves)
      window_.add("pf_solves",
                  static_cast<double>(pf.solves - prev_pf_.solves));
    if (pf.warm_hits > prev_pf_.warm_hits)
      window_.add("pf_warm_hits",
                  static_cast<double>(pf.warm_hits - prev_pf_.warm_hits));
    prev_pf_ = pf;
  }
  window_.add("batches");
  window_.observe("batch_occupancy", static_cast<double>(batch.size()));
  if (admitted > 0) window_.add("admitted", static_cast<double>(admitted));
  if (removed > 0) window_.add("removes", static_cast<double>(removed));
  if (rejected > 0) {
    window_.add("rejected", static_cast<double>(rejected));
    window_.add("rejected_any", static_cast<double>(rejected));
  }
  for (const ServiceResult& result : results)
    window_.observe("admission_latency_us", result.latency_us);
  for (std::size_t i : live) {
    const RequestTimeline& t = results[i].timeline;
    window_.observe("stage_queue_us", t.queue_us);
    window_.observe("stage_apply_us", t.apply_us);
    window_.observe("stage_solve_us", t.solve_us);
  }

  obs::ChromeTraceCollector* trace = obs::trace_collector();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (trace != nullptr && batch[i].trace != 0) {
      // One complete span per request (enqueue → reply) joined to the
      // enqueue-side flow start, so the viewer renders each request as a
      // causally-linked chain across threads.
      trace->record_complete("service.request",
                             trace->to_origin_us(batch[i].enqueued),
                             results[i].latency_us, batch[i].trace);
      trace->record_flow("service.request", trace->to_origin_us(done),
                         /*start=*/false, batch[i].trace);
    }
    fulfill(batch[i], std::move(results[i]));
  }
}

void SchedulerService::publish_snapshot() {
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->total_gr_rate = scheduler_.total_gr_rate();
  snap->total_be_rate = scheduler_.total_be_rate();
  snap->be_utility = scheduler_.be_utility();
  snap->apps.reserve(scheduler_.placed().size());
  for (const PlacedApp& placed : scheduler_.placed()) {
    AppView view;
    view.name = placed.app.name;
    view.guaranteed = placed.app.qoe.cls == QoeClass::kGuaranteedRate;
    view.allocated_rate = placed.allocated_rate;
    view.paths = placed.paths.size();
    view.priority = view.guaranteed ? 0.0 : placed.app.qoe.priority;
    view.min_rate = view.guaranteed ? placed.app.qoe.min_rate : 0.0;
    snap->apps.push_back(std::move(view));
  }
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap->version = snap_->version + 1;
    snap_ = std::move(snap);
  }
  bump("service.snapshots");
}

}  // namespace sparcle::service
