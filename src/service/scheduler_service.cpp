#include "service/scheduler_service.hpp"

#include <algorithm>
#include <utility>

#include "check/invariants.hpp"
#include "obs/obs.hpp"

namespace sparcle::service {
namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Logs a queue-level bounce to the installed decision log and counts it
/// in the metrics registry.
void log_queue_reject(const char* reason_head, const std::string& app,
                      bool guaranteed, const std::string& detail) {
  if (obs::DecisionLog* log = obs::decision_log()) {
    log->record(obs::DecisionKind::kQueueReject, app, guaranteed ? "GR" : "BE",
                detail.empty() ? std::string(reason_head)
                               : std::string(reason_head) + " " + detail,
                0.0, 0.0, 0);
  }
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter(std::string("service.rejected.") + reason_head).add(1);
  }
}

}  // namespace

const char* to_string(ServiceResult::Status status) {
  switch (status) {
    case ServiceResult::Status::kAdmitted: return "admitted";
    case ServiceResult::Status::kRejected: return "rejected";
    case ServiceResult::Status::kRemoved: return "removed";
    case ServiceResult::Status::kNotFound: return "not_found";
    case ServiceResult::Status::kQueueFull: return "queue_full";
    case ServiceResult::Status::kDeadlineExceeded: return "deadline_exceeded";
    case ServiceResult::Status::kShutdown: return "shutdown";
  }
  return "unknown";
}

const AppView* ServiceSnapshot::find(const std::string& name) const {
  for (const AppView& view : apps)
    if (view.name == name) return &view;
  return nullptr;
}

SchedulerService::SchedulerService(Network net, SchedulerOptions sched_options,
                                   ServiceOptions options)
    : net_(net),
      scheduler_(std::move(net), std::move(sched_options)),
      options_(options),
      paused_(options.start_paused) {
  // Publish the empty version-0 snapshot so snapshot() never returns null.
  auto snap = std::make_shared<ServiceSnapshot>();
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap_ = std::move(snap);
  }
  scheduler_thread_ = std::thread([this] { scheduling_loop(); });
}

SchedulerService::~SchedulerService() { stop(); }

std::future<ServiceResult> SchedulerService::submit(Application app) {
  const auto deadline =
      options_.default_deadline.count() > 0
          ? std::chrono::steady_clock::now() + options_.default_deadline
          : kNoDeadline;
  return submit(std::move(app), deadline);
}

std::future<ServiceResult> SchedulerService::submit(
    Application app, std::chrono::steady_clock::time_point deadline) {
  const bool gr = app.qoe.cls == QoeClass::kGuaranteedRate;
  Request req;
  req.verb = Request::Verb::kSubmit;
  req.app = std::move(app);
  return enqueue(std::move(req), gr ? kGr : kBe, deadline);
}

std::future<ServiceResult> SchedulerService::remove(std::string app_name) {
  const auto deadline =
      options_.default_deadline.count() > 0
          ? std::chrono::steady_clock::now() + options_.default_deadline
          : kNoDeadline;
  return remove(std::move(app_name), deadline);
}

std::future<ServiceResult> SchedulerService::remove(
    std::string app_name, std::chrono::steady_clock::time_point deadline) {
  Request req;
  req.verb = Request::Verb::kRemove;
  req.name = std::move(app_name);
  return enqueue(std::move(req), kControl, deadline);
}

std::future<ServiceResult> SchedulerService::enqueue(
    Request req, std::size_t cls,
    std::chrono::steady_clock::time_point deadline) {
  req.enqueued = std::chrono::steady_clock::now();
  req.deadline = deadline;
  std::future<ServiceResult> future = req.promise.get_future();

  const std::string& label =
      req.verb == Request::Verb::kSubmit ? req.app.name : req.name;
  const bool gr = req.verb == Request::Verb::kSubmit &&
                  req.app.qoe.cls == QoeClass::kGuaranteedRate;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ServiceResult result;
      result.status = ServiceResult::Status::kShutdown;
      result.reason = "service is stopping";
      req.promise.set_value(std::move(result));
      return future;
    }
    const std::size_t depth = queued_unlocked();
    if (depth >= options_.queue_capacity) {
      ++stats_.queue_full;
      ServiceResult result;
      result.status = ServiceResult::Status::kQueueFull;
      result.reason = "queue_full: " + std::to_string(depth) + "/" +
                      std::to_string(options_.queue_capacity) +
                      " requests queued";
      log_queue_reject("queue_full", label, gr, result.reason);
      req.promise.set_value(std::move(result));
      return future;
    }
    if (req.verb == Request::Verb::kSubmit)
      ++stats_.submits;
    else
      ++stats_.removes;
    queues_[cls].push_back(std::move(req));
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("service.enqueued").add(1);
      reg->gauge("service.queue.depth").set(static_cast<double>(depth + 1));
    }
  }
  work_cv_.notify_one();
  return future;
}

std::size_t SchedulerService::queued_unlocked() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

std::size_t SchedulerService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_unlocked();
}

ServiceStats SchedulerService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::shared_ptr<const ServiceSnapshot> SchedulerService::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snap_;
}

void SchedulerService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void SchedulerService::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void SchedulerService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return (queued_unlocked() == 0 && !processing_) || stopping_;
  });
}

void SchedulerService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;  // a paused service still drains its queue on stop
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
}

void SchedulerService::scheduling_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && queued_unlocked() > 0);
      });
      if (queued_unlocked() == 0 && stopping_) return;
      // Pop up to max_batch requests, higher classes first, FIFO within
      // each class.
      for (std::size_t cls = 0; cls < kClasses; ++cls) {
        while (batch.size() < options_.max_batch && !queues_[cls].empty()) {
          batch.push_back(std::move(queues_[cls].front()));
          queues_[cls].pop_front();
        }
      }
      processing_ = true;
      if (obs::MetricsRegistry* reg = obs::metrics()) {
        reg->gauge("service.queue.depth")
            .set(static_cast<double>(queued_unlocked()));
      }
    }

    process_batch(batch);

    {
      std::lock_guard<std::mutex> lock(mu_);
      processing_ = false;
    }
    idle_cv_.notify_all();
  }
}

void SchedulerService::process_batch(std::vector<Request>& batch) {
  obs::ScopedTimer timer("service.batch");
  const auto now = std::chrono::steady_clock::now();

  // Reject expired requests up front; the survivors form the scheduler
  // batch.  Index into `batch` per survivor so results can be patched.
  std::vector<std::size_t> live;
  live.reserve(batch.size());
  std::vector<ServiceResult> results(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& req = batch[i];
    if (req.deadline < now) {
      const bool submit = req.verb == Request::Verb::kSubmit;
      const std::string& label = submit ? req.app.name : req.name;
      results[i].status = ServiceResult::Status::kDeadlineExceeded;
      results[i].reason =
          "deadline_exceeded: waited " +
          std::to_string(
              static_cast<long long>(elapsed_us(req.enqueued, now))) +
          "us in queue";
      log_queue_reject("deadline_exceeded", label,
                       submit && req.app.qoe.cls == QoeClass::kGuaranteedRate,
                       results[i].reason);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_expired;
      continue;
    }
    live.push_back(i);
  }

  std::size_t admitted = 0, rejected = 0, resolves_saved = 0;
  if (!live.empty()) {
    scheduler_.begin_batch();
    for (std::size_t i : live) {
      Request& req = batch[i];
      if (req.verb == Request::Verb::kRemove) {
        const bool found = scheduler_.remove(req.name);
        results[i].status = found ? ServiceResult::Status::kRemoved
                                  : ServiceResult::Status::kNotFound;
        if (!found) results[i].reason = "no placed app named '" + req.name + "'";
        continue;
      }
      // Names key remove and query, so the service (unlike the bare
      // Scheduler) rejects duplicate submissions instead of placing two
      // apps that later become indistinguishable.
      bool duplicate = false;
      for (const PlacedApp& placed : scheduler_.placed())
        if (placed.app.name == req.app.name) {
          duplicate = true;
          break;
        }
      if (duplicate) {
        results[i].status = ServiceResult::Status::kRejected;
        results[i].reason =
            "an app named '" + req.app.name + "' is already placed";
        ++rejected;
        continue;
      }
      // A malformed application (Application::validate throws) must
      // reject the one request, not kill the scheduling thread.
      AdmissionResult admission;
      try {
        admission = scheduler_.submit(req.app);
      } catch (const std::exception& e) {
        admission.admitted = false;
        admission.reason = std::string("invalid application: ") + e.what();
      }
      results[i].status = admission.admitted
                              ? ServiceResult::Status::kAdmitted
                              : ServiceResult::Status::kRejected;
      results[i].reason = admission.reason;
      results[i].rate = admission.rate;
      results[i].availability = admission.availability;
      results[i].paths = admission.path_count;
      if (admission.admitted)
        ++admitted;
      else
        ++rejected;
    }
    const Scheduler::BatchReport report = scheduler_.end_batch();
    if (report.deferred_resolves > 1)
      resolves_saved = report.deferred_resolves - 1;

    // Patch the batch results with post-solve state: BE apps admitted
    // mid-batch carried rate 0 until the deferred PF solve ran, and the
    // solve may (rarely) have evicted some of them.
    for (std::size_t i : live) {
      Request& req = batch[i];
      if (req.verb != Request::Verb::kSubmit ||
          results[i].status != ServiceResult::Status::kAdmitted)
        continue;
      if (std::find(report.evicted.begin(), report.evicted.end(),
                    req.app.name) != report.evicted.end()) {
        results[i].status = ServiceResult::Status::kRejected;
        results[i].reason = "resource allocation failed (evicted at batch end)";
        results[i].rate = 0.0;
        --admitted;
        ++rejected;
        continue;
      }
      if (req.app.qoe.cls == QoeClass::kBestEffort) {
        for (const PlacedApp& placed : scheduler_.placed()) {
          if (placed.app.name == req.app.name) {
            results[i].rate = placed.allocated_rate;
            break;
          }
        }
      }
    }
  }

  if (options_.validate_batches && !live.empty()) {
    const check::CheckReport report = check::check_scheduler_state(scheduler_);
    if (!report.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.invariant_violations;
      if (stats_.first_violation.empty())
        stats_.first_violation = report.to_string();
    }
  }

  publish_snapshot();

  // Fulfill the promises only after the snapshot is visible, so a client
  // that observes its future ready and immediately queries sees a state
  // that includes its own request.
  const auto done = std::chrono::steady_clock::now();
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->histogram("service.batch.size", {1, 2, 4, 8, 16, 32, 64, 128})
        .observe(static_cast<double>(batch.size()));
    if (admitted > 0) reg->counter("service.admitted").add(admitted);
    if (rejected > 0) reg->counter("service.rejected").add(rejected);
    if (resolves_saved > 0)
      reg->counter("service.resolves_saved").add(resolves_saved);
    auto& latency = reg->histogram("service.admission_latency.us",
                                   obs::default_time_bounds_us());
    for (const Request& req : batch)
      latency.observe(elapsed_us(req.enqueued, done));
  }
  {
    // Counters must be current before any promise resolves: a client that
    // sees its future ready may immediately read stats().
    const Scheduler::PfSolverStats pf = scheduler_.pf_solver_stats();
    std::lock_guard<std::mutex> lock(mu_);
    stats_.admitted += admitted;
    stats_.rejected += rejected;
    stats_.resolves_saved += resolves_saved;
    ++stats_.batches;
    stats_.max_batch_seen =
        std::max<std::uint64_t>(stats_.max_batch_seen, batch.size());
    stats_.pf_solves = pf.solves;
    stats_.pf_warm_hits = pf.warm_hits;
    stats_.pf_warm_fallbacks = pf.warm_fallbacks;
    stats_.pf_newton_iters = pf.newton_iters;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results[i].latency_us = elapsed_us(batch[i].enqueued, done);
    batch[i].promise.set_value(std::move(results[i]));
  }
}

void SchedulerService::publish_snapshot() {
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->total_gr_rate = scheduler_.total_gr_rate();
  snap->total_be_rate = scheduler_.total_be_rate();
  snap->be_utility = scheduler_.be_utility();
  snap->apps.reserve(scheduler_.placed().size());
  for (const PlacedApp& placed : scheduler_.placed()) {
    AppView view;
    view.name = placed.app.name;
    view.guaranteed = placed.app.qoe.cls == QoeClass::kGuaranteedRate;
    view.allocated_rate = placed.allocated_rate;
    view.paths = placed.paths.size();
    view.priority = view.guaranteed ? 0.0 : placed.app.qoe.priority;
    view.min_rate = view.guaranteed ? placed.app.qoe.min_rate : 0.0;
    snap->apps.push_back(std::move(view));
  }
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap->version = snap_->version + 1;
    snap_ = std::move(snap);
  }
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter("service.snapshots").add(1);
}

}  // namespace sparcle::service
