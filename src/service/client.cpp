#include "service/client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "service/binwire.hpp"
#include "service/wire.hpp"

namespace sparcle::service {

TcpClient::TcpClient(const std::string& host, std::uint16_t port,
                     Codec codec)
    : codec_(codec) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results);
  if (rc != 0)
    throw std::runtime_error("TcpClient: resolve " + host + ": " +
                             ::gai_strerror(rc));
  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (fd_ < 0)
    throw std::runtime_error("TcpClient: connect " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(last_errno));
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClient::send_all(const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TcpClient: send: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::map<std::string, std::string> TcpClient::read_reply() {
  char chunk[4096];
  if (codec_ == Codec::kJson) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!response.empty() && response.back() == '\r') response.pop_back();
        return wire::parse_line(response);
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0)
        throw std::runtime_error("TcpClient: connection closed by server");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
  for (;;) {
    const std::size_t frame_bytes = binwire::frame_length(buffer_);
    if (frame_bytes != 0) {
      binwire::Frame frame = binwire::decode(buffer_.substr(0, frame_bytes));
      buffer_.erase(0, frame_bytes);
      return std::move(frame.fields);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error("TcpClient: connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::map<std::string, std::string> TcpClient::call(
    const std::map<std::string, std::string>& fields) {
  if (codec_ == Codec::kJson)
    send_all(wire::to_line(fields) + "\n");
  else
    send_all(binwire::encode_request(fields));
  return read_reply();
}

std::string TcpClient::request(const std::string& line) {
  if (codec_ == Codec::kJson) {
    send_all(line + "\n");
    // Return the raw line (re-rendered through the parsed map would be
    // equivalent; raw preserves the server's exact bytes for tests).
    char chunk[4096];
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!response.empty() && response.back() == '\r') response.pop_back();
        return response;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0)
        throw std::runtime_error("TcpClient: connection closed by server");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
  return wire::to_line(call(wire::parse_line(line)));
}

std::map<std::string, std::string> TcpClient::request_fields(
    const std::string& line) {
  if (codec_ == Codec::kJson) return wire::parse_line(request(line));
  return call(wire::parse_line(line));
}

std::map<std::string, std::string> TcpClient::submit_app_text(
    const std::string& app_block) {
  std::map<std::string, std::string> req;
  req["verb"] = "submit";
  req["app"] = app_block;
  return call(req);
}

std::map<std::string, std::string> TcpClient::remove(const std::string& name) {
  std::map<std::string, std::string> req;
  req["verb"] = "remove";
  req["name"] = name;
  return call(req);
}

std::map<std::string, std::string> TcpClient::query(const std::string& name) {
  std::map<std::string, std::string> req;
  req["verb"] = "query";
  if (!name.empty()) req["name"] = name;
  return call(req);
}

std::map<std::string, std::string> TcpClient::drain() {
  std::map<std::string, std::string> req;
  req["verb"] = "drain";
  return call(req);
}

}  // namespace sparcle::service
