#include "service/client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "service/wire.hpp"

namespace sparcle::service {

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results);
  if (rc != 0)
    throw std::runtime_error("TcpClient: resolve " + host + ": " +
                             ::gai_strerror(rc));
  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (fd_ < 0)
    throw std::runtime_error("TcpClient: connect " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(last_errno));
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string TcpClient::request(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TcpClient: send: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error("TcpClient: connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::map<std::string, std::string> TcpClient::request_fields(
    const std::string& line) {
  return wire::parse_line(request(line));
}

std::map<std::string, std::string> TcpClient::submit_app_text(
    const std::string& app_block) {
  std::map<std::string, std::string> req;
  req["verb"] = "submit";
  req["app"] = app_block;
  return request_fields(wire::to_line(req));
}

std::map<std::string, std::string> TcpClient::remove(const std::string& name) {
  std::map<std::string, std::string> req;
  req["verb"] = "remove";
  req["name"] = name;
  return request_fields(wire::to_line(req));
}

std::map<std::string, std::string> TcpClient::query(const std::string& name) {
  std::map<std::string, std::string> req;
  req["verb"] = "query";
  if (!name.empty()) req["name"] = name;
  return request_fields(wire::to_line(req));
}

std::map<std::string, std::string> TcpClient::drain() {
  std::map<std::string, std::string> req;
  req["verb"] = "drain";
  return request_fields(wire::to_line(req));
}

}  // namespace sparcle::service
