#include "service/binwire.hpp"

#include <bit>
#include <charconv>
#include <cstring>

namespace sparcle::service::binwire {
namespace {

// Value type tags inside the field-map payload.
enum : std::uint8_t {
  kValString = 0,
  kValF64 = 1,
  kValU64 = 2,
  kValTrue = 3,
  kValFalse = 4,
};

// Payload sanity caps, all well above anything the protocol produces.
constexpr std::size_t kMaxFields = 1024;
constexpr std::size_t kMaxKeyBytes = 255;

/// Well-known field keys by key code (index 1..N; 0x00 marks an inline
/// key).  Append-only: codes are wire format, docs/wire.md mirrors this
/// table.
constexpr const char* kKnownKeys[] = {
    nullptr,         // 0x00: inline key marker, never a known key
    "verb",          // 0x01 (JSON-side only; requests carry it in type)
    "status",        // 0x02
    "reason",        // 0x03
    "app",           // 0x04
    "name",          // 0x05
    "rate",          // 0x06
    "availability",  // 0x07
    "paths",         // 0x08
    "latency_us",    // 0x09
    "trace_id",      // 0x0a
    "queue_us",      // 0x0b
    "batch_us",      // 0x0c
    "apply_us",      // 0x0d
    "solve_us",      // 0x0e
    "reply_us",      // 0x0f
    "version",       // 0x10
    "apps",          // 0x11
    "total_gr_rate", // 0x12
    "total_be_rate", // 0x13
    "be_utility",    // 0x14
    "class",         // 0x15
    "priority",      // 0x16
    "min_rate",      // 0x17
    "format",        // 0x18
    "body",          // 0x19
    "slo_state",     // 0x1a
    "queue_depth",   // 0x1b
};
constexpr std::size_t kKnownKeyCount =
    sizeof(kKnownKeys) / sizeof(kKnownKeys[0]);

std::uint8_t key_code(const std::string& key) {
  for (std::size_t i = 1; i < kKnownKeyCount; ++i)
    if (key == kKnownKeys[i]) return static_cast<std::uint8_t>(i);
  return 0;
}

[[noreturn]] void fail(ErrorCategory category, std::size_t pos,
                       const std::string& what) {
  throw Error(category, "binwire: malformed frame at offset " +
                            std::to_string(pos) + ": " + what);
}

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

/// Strictly bounds-checked little-endian reader over one payload.
struct Reader {
  std::string_view data;
  std::size_t pos{0};

  std::size_t remaining() const { return data.size() - pos; }

  void need(std::size_t n, const char* what) const {
    if (remaining() < n)
      fail(ErrorCategory::kMalformed, pos,
           std::string("truncated ") + what + " (need " + std::to_string(n) +
               " bytes, have " + std::to_string(remaining()) + ")");
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint16_t u16(const char* what) {
    need(2, what);
    const std::uint16_t v =
        static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[pos])) |
        static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[pos + 1]))
            << 8;
    pos += 2;
    return v;
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    pos += 8;
    return v;
  }

  std::string_view bytes(std::size_t n, const char* what) {
    need(n, what);
    const std::string_view v = data.substr(pos, n);
    pos += n;
    return v;
  }
};

/// Shortest round-trip text of a double (matches wire.cpp / the scenario
/// writer, so binary→text restores the exact string JSON would carry).
std::string fmt(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

/// Appends one value with the most compact type whose decode restores
/// `text` byte-for-byte.  The guards make decode(encode(m)) == m
/// unconditional: a numeric-looking text that would not round-trip is
/// stored as a string.
void encode_value(std::string& out, const std::string& text) {
  if (text == "true") {
    out += static_cast<char>(kValTrue);
    return;
  }
  if (text == "false") {
    out += static_cast<char>(kValFalse);
    return;
  }
  if (!text.empty() && text.size() <= 20 && text[0] >= '0' && text[0] <= '9') {
    std::uint64_t u = 0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), u);
    if (ec == std::errc{} && end == text.data() + text.size() &&
        std::to_string(u) == text) {
      out += static_cast<char>(kValU64);
      put_u64(out, u);
      return;
    }
  }
  if (!text.empty()) {
    double d = 0.0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), d);
    if (ec == std::errc{} && end == text.data() + text.size() &&
        fmt(d) == text) {
      out += static_cast<char>(kValF64);
      put_u64(out, std::bit_cast<std::uint64_t>(d));
      return;
    }
  }
  out += static_cast<char>(kValString);
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out += text;
}

}  // namespace

bool is_request(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
    case FrameType::kRemove:
    case FrameType::kQuery:
    case FrameType::kDrain:
    case FrameType::kStats:
    case FrameType::kMetrics:
      return true;
    case FrameType::kReply:
    case FrameType::kError:
      return false;
  }
  return false;
}

const char* verb_name(FrameType type) {
  switch (type) {
    case FrameType::kSubmit: return "submit";
    case FrameType::kRemove: return "remove";
    case FrameType::kQuery: return "query";
    case FrameType::kDrain: return "drain";
    case FrameType::kStats: return "stats";
    case FrameType::kMetrics: return "metrics";
    case FrameType::kReply:
    case FrameType::kError:
      return nullptr;
  }
  return nullptr;
}

FrameType verb_type(const std::string& verb) {
  if (verb == "submit") return FrameType::kSubmit;
  if (verb == "remove") return FrameType::kRemove;
  if (verb == "query") return FrameType::kQuery;
  if (verb == "drain") return FrameType::kDrain;
  if (verb == "stats") return FrameType::kStats;
  if (verb == "metrics") return FrameType::kMetrics;
  throw Error(ErrorCategory::kMalformed,
              "binwire: unknown verb '" + verb + "'");
}

std::string encode_fields(const std::map<std::string, std::string>& fields) {
  std::string out;
  out.reserve(16 + fields.size() * 16);
  put_u16(out, static_cast<std::uint16_t>(fields.size()));
  for (const auto& [key, value] : fields) {
    const std::uint8_t code = key_code(key);
    out += static_cast<char>(code);
    if (code == 0) {
      put_u16(out, static_cast<std::uint16_t>(key.size()));
      out += key;
    }
    encode_value(out, value);
  }
  return out;
}

std::string encode(FrameType type,
                   const std::map<std::string, std::string>& fields) {
  const std::string payload = encode_fields(fields);
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out += static_cast<char>(kMagic);
  out += static_cast<char>(kVersion);
  out += static_cast<char>(static_cast<std::uint8_t>(type));
  out += static_cast<char>(0);  // flags
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

std::string encode_request(const std::map<std::string, std::string>& fields) {
  const auto verb_it = fields.find("verb");
  if (verb_it == fields.end())
    throw Error(ErrorCategory::kMalformed, "binwire: request lacks a verb");
  const FrameType type = verb_type(verb_it->second);
  std::map<std::string, std::string> payload = fields;
  payload.erase("verb");
  return encode(type, payload);
}

std::string encode_error(const std::string& reason) {
  std::map<std::string, std::string> fields;
  fields["status"] = "error";
  fields["reason"] = reason;
  return encode(FrameType::kError, fields);
}

std::size_t frame_length(std::string_view buffer,
                         std::size_t max_payload_bytes) {
  if (buffer.empty()) return 0;
  if (static_cast<std::uint8_t>(buffer[0]) != kMagic)
    fail(ErrorCategory::kBadMagic, 0,
         "bad magic byte 0x" + std::to_string(static_cast<unsigned>(
                                   static_cast<std::uint8_t>(buffer[0]))));
  if (buffer.size() < 2) return 0;
  const std::uint8_t version = static_cast<std::uint8_t>(buffer[1]);
  if (version != kVersion)
    throw Error(ErrorCategory::kBadVersion,
                "binwire: unsupported protocol version " +
                    std::to_string(version) + " (this server speaks " +
                    std::to_string(kVersion) + ")");
  if (buffer.size() < kHeaderBytes) return 0;
  if (static_cast<std::uint8_t>(buffer[3]) != 0)
    fail(ErrorCategory::kMalformed, 3, "nonzero flags in a version-1 frame");
  Reader header{buffer.substr(4, 4), 0};
  const std::uint32_t payload = header.u32("payload length");
  if (payload > max_payload_bytes)
    throw Error(ErrorCategory::kOversized,
                "binwire: declared payload of " + std::to_string(payload) +
                    " bytes exceeds the " +
                    std::to_string(max_payload_bytes) + "-byte frame cap");
  const std::size_t total = kHeaderBytes + payload;
  return buffer.size() >= total ? total : 0;
}

std::map<std::string, std::string> decode_fields(std::string_view payload) {
  std::map<std::string, std::string> out;
  Reader r{payload, 0};
  const std::uint16_t count = r.u16("field count");
  if (count > kMaxFields)
    fail(ErrorCategory::kMalformed, 0,
         "field count " + std::to_string(count) + " exceeds the cap of " +
             std::to_string(kMaxFields));
  for (std::uint16_t f = 0; f < count; ++f) {
    const std::size_t field_pos = r.pos;
    const std::uint8_t code = r.u8("key code");
    std::string key;
    if (code == 0) {
      const std::uint16_t len = r.u16("inline key length");
      if (len > kMaxKeyBytes)
        fail(ErrorCategory::kMalformed, field_pos,
             "inline key of " + std::to_string(len) + " bytes exceeds the " +
                 std::to_string(kMaxKeyBytes) + "-byte cap");
      key = std::string(r.bytes(len, "inline key"));
    } else if (code < kKnownKeyCount) {
      key = kKnownKeys[code];
    } else {
      fail(ErrorCategory::kMalformed, field_pos,
           "unknown key code 0x" + std::to_string(code));
    }
    const std::uint8_t type = r.u8("value type");
    switch (type) {
      case kValString: {
        const std::uint32_t len = r.u32("string length");
        if (len > r.remaining())
          fail(ErrorCategory::kMalformed, r.pos,
               "string value of " + std::to_string(len) +
                   " bytes overruns the payload");
        out[key] = std::string(r.bytes(len, "string value"));
        break;
      }
      case kValF64:
        out[key] = fmt(std::bit_cast<double>(r.u64("f64 value")));
        break;
      case kValU64:
        out[key] = std::to_string(r.u64("u64 value"));
        break;
      case kValTrue:
        out[key] = "true";
        break;
      case kValFalse:
        out[key] = "false";
        break;
      default:
        fail(ErrorCategory::kMalformed, field_pos,
             "unknown value type 0x" + std::to_string(type));
    }
  }
  if (r.remaining() != 0)
    fail(ErrorCategory::kMalformed, r.pos,
         std::to_string(r.remaining()) + " trailing payload bytes");
  return out;
}

Frame decode(std::string_view frame, std::size_t max_payload_bytes) {
  const std::size_t total = frame_length(frame, max_payload_bytes);
  if (total == 0 || total != frame.size())
    fail(ErrorCategory::kMalformed, frame.size(),
         "decode() requires exactly one complete frame");
  Frame out;
  const std::uint8_t type = static_cast<std::uint8_t>(frame[2]);
  out.type = static_cast<FrameType>(type);
  if (!is_request(out.type) && out.type != FrameType::kReply &&
      out.type != FrameType::kError)
    fail(ErrorCategory::kMalformed, 2,
         "unknown frame type 0x" + std::to_string(type));
  out.fields = decode_fields(frame.substr(kHeaderBytes));
  return out;
}

}  // namespace sparcle::service::binwire
