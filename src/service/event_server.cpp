#include "service/event_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/obs.hpp"
#include "service/binwire.hpp"
#include "service/wire.hpp"
#include "workload/scenario_io.hpp"

namespace sparcle::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("EventServer: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

const char* category_name(binwire::ErrorCategory category) {
  switch (category) {
    case binwire::ErrorCategory::kBadMagic: return "bad_magic";
    case binwire::ErrorCategory::kBadVersion: return "bad_version";
    case binwire::ErrorCategory::kOversized: return "oversized";
    case binwire::ErrorCategory::kMalformed: return "malformed";
  }
  return "malformed";
}

}  // namespace

/// One open connection.  All state is owned by the loop thread; the only
/// cross-thread traffic is the rendered reply payload riding a Completion.
struct EventServer::Connection {
  enum class Codec : std::uint8_t { kUnknown, kJson, kBinary };
  /// One in-order reply slot; `ready` flips when the payload is known.
  struct Pending {
    std::uint64_t seq{0};
    bool ready{false};
    std::string payload;
  };

  int fd{-1};
  std::uint64_t id{0};
  Codec codec{Codec::kUnknown};
  std::string inbuf;
  std::string outbuf;
  std::size_t out_off{0};
  std::deque<Pending> replies;
  std::uint64_t next_seq{0};
  bool want_read{true};
  bool want_write{false};
  bool closing{false};  ///< stop reading; close once every reply is flushed
  bool dead{false};     ///< queued for close at the end of the iteration
  std::chrono::steady_clock::time_point last_activity;
};

/// Rendered result of one async request, posted from the completing
/// thread to the loop thread.
struct EventServer::Completion {
  std::uint64_t conn_id{0};
  std::uint64_t seq{0};
  std::string payload;
};

/// Readiness multiplexer: epoll on Linux, poll(2) elsewhere.  Level
/// triggered in both modes — handlers may leave data unread/unwritten and
/// the next wait() reports it again.
class EventServer::Poller {
 public:
  struct Event {
    std::uint64_t id{0};
    bool readable{false};
    bool writable{false};
    bool error{false};
  };

  Poller() {
#ifdef __linux__
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
#endif
  }

  ~Poller() {
#ifdef __linux__
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  }

  void add(int fd, std::uint64_t id, bool want_read, bool want_write) {
#ifdef __linux__
    epoll_event ev{};
    ev.events = mask(want_read, want_write);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
#else
    entries_[fd] = Entry{id, want_read, want_write};
#endif
  }

  void update(int fd, std::uint64_t id, bool want_read, bool want_write) {
#ifdef __linux__
    epoll_event ev{};
    ev.events = mask(want_read, want_write);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
#else
    entries_[fd] = Entry{id, want_read, want_write};
#endif
  }

  void remove(int fd) {
#ifdef __linux__
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#else
    entries_.erase(fd);
#endif
  }

  void wait(std::vector<Event>& out, int timeout_ms) {
    out.clear();
#ifdef __linux__
    epoll_event evs[128];
    const int n = ::epoll_wait(epoll_fd_, evs, 128, timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.id = evs[i].data.u64;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
#else
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;
    fds.reserve(entries_.size());
    for (const auto& [fd, entry] : entries_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>((entry.want_read ? POLLIN : 0) |
                                    (entry.want_write ? POLLOUT : 0));
      fds.push_back(p);
      ids.push_back(entry.id);
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Event e;
      e.id = ids[i];
      e.readable = (fds[i].revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (fds[i].revents & POLLOUT) != 0;
      e.error = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
#endif
  }

 private:
#ifdef __linux__
  static std::uint32_t mask(bool want_read, bool want_write) {
    return (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  }
  int epoll_fd_{-1};
#else
  struct Entry {
    std::uint64_t id{0};
    bool want_read{true};
    bool want_write{false};
  };
  std::map<int, Entry> entries_;
#endif
};

namespace {
constexpr std::uint64_t kListenerId = 1;
constexpr std::uint64_t kWakeId = 2;
}  // namespace

EventServer::EventServer(PlacementService& service, EventServerOptions options)
    : service_(service), options_(std::move(options)) {
  obs::MetricsRegistry& reg = service_.registry();
  accepted_ = &reg.counter("service.net.accepted");
  connections_ = &reg.gauge("service.net.connections");
  frames_in_ = &reg.counter("service.net.frames.in");
  frames_out_ = &reg.counter("service.net.frames.out");
  bytes_in_ = &reg.counter("service.net.bytes.in");
  bytes_out_ = &reg.counter("service.net.bytes.out");
  short_reads_ = &reg.counter("service.net.short_reads");
  protocol_errors_ = &reg.counter("service.net.protocol_errors");
  wire_rejects_ = &reg.counter("service.net.wire_rejects");
  idle_closed_ = &reg.counter("service.net.idle_closed");
  backpressure_closed_ = &reg.counter("service.net.backpressure_closed");
  codec_json_ = &reg.counter("service.net.codec.json");
  codec_binary_ = &reg.counter("service.net.codec.binary");
}

EventServer::~EventServer() { stop(); }

void EventServer::start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("EventServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("bind " + options_.bind_address + ":" +
                std::to_string(options_.port));
  }
  if (::listen(fd, 1024) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  set_nonblocking(fd);
  listen_fd_ = fd;

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(fd);
    listen_fd_ = -1;
    throw_errno("pipe");
  }
  set_nonblocking(pipe_fds[0]);
  set_nonblocking(pipe_fds[1]);
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    stopping_ = false;
  }
  poller_ = std::make_unique<Poller>();
  poller_->add(listen_fd_, kListenerId, true, false);
  poller_->add(wake_read_fd_, kWakeId, true, false);
  loop_thread_ = std::thread([this] { loop(); });
}

void EventServer::stop() {
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    if (stopping_ && !loop_thread_.joinable()) return;
    stopping_ = true;
    wake();
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  std::vector<std::thread> drains;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drains.swap(drain_threads_);
  }
  for (std::thread& t : drains)
    if (t.joinable()) t.join();
  {
    // Wait for every outstanding async callback: once inflight_ hits
    // zero no service thread can touch this object again, so the
    // destructor is safe.  The service must still be completing requests
    // (running, or stopped with the queue bounced) for this to return.
    std::unique_lock<std::mutex> lock(comp_mu_);
    comp_cv_.wait(lock, [this] { return inflight_ == 0; });
    completions_.clear();
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  poller_.reset();
}

void EventServer::wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void EventServer::post_completion(Completion done) {
  // Everything — enqueue, wake, the inflight_ decrement, and the notify —
  // happens under comp_mu_ so stop() cannot tear the object down while a
  // completing thread still holds a reference to it.
  std::lock_guard<std::mutex> lock(comp_mu_);
  completions_.push_back(std::move(done));
  wake();
  if (inflight_ > 0) --inflight_;
  comp_cv_.notify_all();
}

void EventServer::loop() {
  std::vector<Poller::Event> events;
  std::vector<std::uint64_t> dead;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(comp_mu_);
      if (stopping_) break;
    }
    const int timeout_ms = options_.idle_timeout.count() > 0 ? 100 : -1;
    poller_->wait(events, timeout_ms);
    for (const Poller::Event& ev : events) {
      if (ev.id == kListenerId) {
        accept_ready();
        continue;
      }
      if (ev.id == kWakeId) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(ev.id);
      if (it == conns_.end()) continue;
      Connection& conn = *it->second;
      if (conn.dead) continue;
      if (ev.error) {
        conn.dead = true;
        continue;
      }
      if (ev.writable) on_writable(conn);
      if (ev.readable && !conn.dead && !conn.closing) on_readable(conn);
    }
    drain_completions();
    if (options_.idle_timeout.count() > 0) sweep_idle();
    dead.clear();
    for (const auto& [id, conn] : conns_)
      if (conn->dead) dead.push_back(id);
    for (std::uint64_t id : dead) close_connection(id);
  }
  // Loop exit: drop every connection (pending completions are discarded
  // by stop()).
  for (const auto& [id, conn] : conns_) {
    poller_->remove(conn->fd);
    ::close(conn->fd);
  }
  conns_.clear();
  connections_->set(0.0);
}

void EventServer::accept_ready() {
  for (;;) {
#ifdef __linux__
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
#endif
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept failure: retry on next event
    }
#ifndef __linux__
    set_nonblocking(fd);
#endif
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_->add();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = std::chrono::steady_clock::now();
    poller_->add(fd, conn->id, true, false);
    conns_.emplace(conn->id, std::move(conn));
    connections_->set(static_cast<double>(conns_.size()));
  }
}

void EventServer::on_readable(Connection& conn) {
  char chunk[65536];
  const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
  if (n == 0) {
    conn.dead = true;  // peer closed
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    conn.dead = true;
    return;
  }
  bytes_in_->add(static_cast<std::uint64_t>(n));
  conn.inbuf.append(chunk, static_cast<std::size_t>(n));
  conn.last_activity = std::chrono::steady_clock::now();
  process_input(conn);
  if (!conn.dead && !conn.closing && !conn.inbuf.empty()) short_reads_->add();
  if (!conn.dead) update_interest(conn);
}

void EventServer::on_writable(Connection& conn) {
  try_flush(conn);
  if (!conn.dead) update_interest(conn);
}

void EventServer::process_input(Connection& conn) {
  if (conn.codec == Connection::Codec::kUnknown && !conn.inbuf.empty()) {
    const bool binary =
        static_cast<std::uint8_t>(conn.inbuf.front()) == binwire::kMagic;
    conn.codec =
        binary ? Connection::Codec::kBinary : Connection::Codec::kJson;
    (binary ? codec_binary_ : codec_json_)->add();
  }
  if (conn.codec == Connection::Codec::kBinary)
    process_binary(conn);
  else
    process_json(conn);
}

void EventServer::process_json(Connection& conn) {
  std::size_t start = 0;
  for (;;) {
    if (conn.dead || conn.closing) break;
    const std::size_t nl = conn.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn.inbuf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    frames_in_->add();
    std::map<std::string, std::string> request;
    try {
      request = wire::parse_line(line);
    } catch (const std::exception& e) {
      // A malformed line is answered and the connection stays usable:
      // NDJSON framing survives a bad line (the newline resynchronizes).
      protocol_errors_->add();
      const std::uint64_t seq = conn.next_seq++;
      reserve_reply(conn, seq);
      complete_reply(conn, seq,
                     render_reply(conn, false, wire::error_fields(e.what())));
      continue;
    }
    dispatch(conn, std::move(request));
  }
  if (start > 0) conn.inbuf.erase(0, start);
  if (!conn.dead && !conn.closing &&
      conn.inbuf.size() > options_.max_frame_bytes) {
    wire_reject(conn, "oversized",
                "request line exceeds " +
                    std::to_string(options_.max_frame_bytes) + " bytes");
    conn.inbuf.clear();
  }
}

void EventServer::process_binary(Connection& conn) {
  std::size_t start = 0;
  for (;;) {
    if (conn.dead || conn.closing) break;
    const std::string_view rest(conn.inbuf.data() + start,
                                conn.inbuf.size() - start);
    if (rest.empty()) break;
    std::size_t frame_bytes = 0;
    binwire::Frame frame;
    try {
      frame_bytes = binwire::frame_length(rest, options_.max_frame_bytes);
      if (frame_bytes == 0) break;  // partial frame: wait for more bytes
      frame = binwire::decode(rest.substr(0, frame_bytes),
                              options_.max_frame_bytes);
    } catch (const binwire::Error& e) {
      // Any framing failure poisons the byte stream (there is no reliable
      // resynchronization point), so answer with an error frame and close.
      wire_reject(conn, category_name(e.category()), e.what());
      conn.inbuf.clear();
      return;
    }
    start += frame_bytes;
    frames_in_->add();
    if (!binwire::is_request(frame.type)) {
      wire_reject(conn, "malformed",
                  "frame type is not a request verb");
      conn.inbuf.clear();
      return;
    }
    frame.fields["verb"] = binwire::verb_name(frame.type);
    dispatch(conn, std::move(frame.fields));
  }
  if (start > 0) conn.inbuf.erase(0, start);
}

void EventServer::dispatch(Connection& conn,
                           std::map<std::string, std::string> request) {
  const std::uint64_t seq = conn.next_seq++;
  reserve_reply(conn, seq);
  const std::uint64_t conn_id = conn.id;
  const bool binary = conn.codec == Connection::Codec::kBinary;

  const auto fail = [&](const std::string& reason) {
    protocol_errors_->add();
    complete_reply(conn, seq,
                   render_reply(conn, false, wire::error_fields(reason)));
  };

  const auto verb_it = request.find("verb");
  if (verb_it == request.end()) {
    fail("missing 'verb'");
    return;
  }
  const std::string verb = verb_it->second;

  try {
    if (verb == "submit") {
      const auto app_it = request.find("app");
      if (app_it == request.end()) {
        fail("submit: missing 'app' block");
        return;
      }
      // Parsing happens on the loop thread against the immutable network
      // copy; only the scheduling thread ever touches the Scheduler.
      std::vector<Application> apps = workload::parse_apps_text(
          app_it->second, service_.network(), "<submit>");
      if (apps.size() != 1) {
        fail("submit: expected exactly one app block, got " +
             std::to_string(apps.size()));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(comp_mu_);
        ++inflight_;
      }
      service_.submit_async(
          std::move(apps.front()), [this, conn_id, seq,
                                    binary](ServiceResult result) {
            const auto fields = wire::result_fields(result);
            std::string payload =
                binary ? binwire::encode(binwire::FrameType::kReply, fields)
                       : wire::to_line(fields) + "\n";
            post_completion(Completion{conn_id, seq, std::move(payload)});
          });
      return;
    }
    if (verb == "remove") {
      const auto name_it = request.find("name");
      if (name_it == request.end()) {
        fail("remove: missing 'name'");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(comp_mu_);
        ++inflight_;
      }
      service_.remove_async(
          name_it->second, [this, conn_id, seq, binary](ServiceResult result) {
            const auto fields = wire::result_fields(result);
            std::string payload =
                binary ? binwire::encode(binwire::FrameType::kReply, fields)
                       : wire::to_line(fields) + "\n";
            post_completion(Completion{conn_id, seq, std::move(payload)});
          });
      return;
    }
    if (verb == "query") {
      const std::shared_ptr<const ServiceSnapshot> snap = service_.snapshot();
      const auto name_it = request.find("name");
      const auto fields = name_it != request.end()
                              ? wire::app_fields(*snap, name_it->second)
                              : wire::snapshot_fields(*snap);
      complete_reply(conn, seq, render_reply(conn, false, fields));
      return;
    }
    if (verb == "drain") {
      // drain() blocks until the queue empties — the one verb that cannot
      // answer inline.  A short-lived helper thread carries the wait and
      // posts the settled snapshot; stop() joins it.
      {
        std::lock_guard<std::mutex> lock(comp_mu_);
        ++inflight_;
      }
      std::lock_guard<std::mutex> lock(drain_mu_);
      drain_threads_.emplace_back([this, conn_id, seq, binary] {
        service_.drain();
        const auto fields = wire::snapshot_fields(*service_.snapshot());
        std::string payload =
            binary ? binwire::encode(binwire::FrameType::kReply, fields)
                   : wire::to_line(fields) + "\n";
        post_completion(Completion{conn_id, seq, std::move(payload)});
      });
      return;
    }
    if (verb == "stats") {
      complete_reply(conn, seq,
                     render_reply(conn, false, service_.health_fields()));
      return;
    }
    if (verb == "metrics") {
      complete_reply(
          conn, seq,
          render_reply(conn, false,
                       wire::metrics_fields(service_.prometheus_text())));
      return;
    }
  } catch (const std::exception& e) {
    fail(e.what());
    return;
  }
  fail("unknown verb '" + verb + "'");
}

void EventServer::reserve_reply(Connection& conn, std::uint64_t seq) {
  Connection::Pending pending;
  pending.seq = seq;
  conn.replies.push_back(std::move(pending));
}

void EventServer::complete_reply(Connection& conn, std::uint64_t seq,
                                 std::string payload) {
  for (Connection::Pending& pending : conn.replies) {
    if (pending.seq != seq) continue;
    pending.ready = true;
    pending.payload = std::move(payload);
    break;
  }
  conn.last_activity = std::chrono::steady_clock::now();
  flush_ready(conn);
  if (!conn.dead) try_flush(conn);
  if (!conn.dead) update_interest(conn);
}

std::string EventServer::render_reply(
    const Connection& conn, bool error,
    const std::map<std::string, std::string>& fields) {
  if (conn.codec == Connection::Codec::kBinary)
    return binwire::encode(
        error ? binwire::FrameType::kError : binwire::FrameType::kReply,
        fields);
  return wire::to_line(fields) + "\n";
}

void EventServer::wire_reject(Connection& conn, const std::string& category,
                              const std::string& reason) {
  wire_rejects_->add();
  if (obs::DecisionLog* log = obs::decision_log()) {
    log->record(obs::DecisionKind::kWireReject,
                "conn:" + std::to_string(conn.id), "-",
                category + " " + reason, 0.0, 0.0, 0);
  }
  std::map<std::string, std::string> fields = wire::error_fields(reason);
  fields["category"] = category;
  const std::uint64_t seq = conn.next_seq++;
  reserve_reply(conn, seq);
  conn.closing = true;  // stop reading; close once all replies are flushed
  complete_reply(conn, seq, render_reply(conn, true, fields));
}

void EventServer::flush_ready(Connection& conn) {
  while (!conn.replies.empty() && conn.replies.front().ready) {
    conn.outbuf += conn.replies.front().payload;
    conn.replies.pop_front();
    frames_out_->add();
  }
  if (conn.outbuf.size() - conn.out_off > options_.max_write_buffer_bytes) {
    backpressure_closed_->add();
    conn.dead = true;
  }
}

void EventServer::try_flush(Connection& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                             conn.outbuf.size() - conn.out_off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.dead = true;
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
    bytes_out_->add(static_cast<std::uint64_t>(n));
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  if (conn.closing && conn.replies.empty()) conn.dead = true;
}

void EventServer::update_interest(Connection& conn) {
  const bool want_read = !conn.closing && !conn.dead;
  const bool want_write = conn.out_off < conn.outbuf.size();
  if (want_read == conn.want_read && want_write == conn.want_write) return;
  conn.want_read = want_read;
  conn.want_write = want_write;
  poller_->update(conn.fd, conn.id, want_read, want_write);
}

void EventServer::close_connection(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  poller_->remove(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
  connections_->set(static_cast<double>(conns_.size()));
}

void EventServer::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    const auto it = conns_.find(done.conn_id);
    if (it == conns_.end() || it->second->dead) continue;
    complete_reply(*it->second, done.seq, std::move(done.payload));
  }
}

void EventServer::sweep_idle() {
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [id, conn] : conns_) {
    if (conn->dead || conn->closing || !conn->replies.empty()) continue;
    if (now - conn->last_activity >= options_.idle_timeout) {
      idle_closed_->add();
      conn->dead = true;
    }
  }
}

std::string EventServer::handle_line(const std::string& line) {
  std::map<std::string, std::string> req;
  try {
    req = wire::parse_line(line);
  } catch (const std::exception& e) {
    return wire::error_line(e.what());
  }
  const auto verb_it = req.find("verb");
  if (verb_it == req.end()) return wire::error_line("missing 'verb'");
  const std::string& verb = verb_it->second;

  try {
    if (verb == "submit") {
      const auto app_it = req.find("app");
      if (app_it == req.end())
        return wire::error_line("submit: missing 'app' block");
      std::vector<Application> apps = workload::parse_apps_text(
          app_it->second, service_.network(), "<submit>");
      if (apps.size() != 1)
        return wire::error_line(
            "submit: expected exactly one app block, got " +
            std::to_string(apps.size()));
      return wire::result_line(service_.submit(std::move(apps.front())).get());
    }
    if (verb == "remove") {
      const auto name_it = req.find("name");
      if (name_it == req.end())
        return wire::error_line("remove: missing 'name'");
      return wire::result_line(service_.remove(name_it->second).get());
    }
    if (verb == "query") {
      const std::shared_ptr<const ServiceSnapshot> snap = service_.snapshot();
      const auto name_it = req.find("name");
      if (name_it != req.end()) return wire::app_line(*snap, name_it->second);
      return wire::snapshot_line(*snap);
    }
    if (verb == "drain") {
      service_.drain();
      return wire::snapshot_line(*service_.snapshot());
    }
    if (verb == "stats") {
      return wire::to_line(service_.health_fields());
    }
    if (verb == "metrics") {
      return wire::metrics_line(service_.prometheus_text());
    }
  } catch (const std::exception& e) {
    return wire::error_line(e.what());
  }
  return wire::error_line("unknown verb '" + verb + "'");
}

}  // namespace sparcle::service
