#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler_service.hpp"

/// \file event_server.hpp
/// Single-threaded event-loop front end for the placement service.  One
/// epoll loop (Linux; poll(2) elsewhere) owns every connection socket:
/// non-blocking accept, per-connection read/write buffers with
/// partial-frame reassembly, write backpressure via EPOLLOUT re-arm, and
/// an idle-connection sweep — no thread-per-connection.  The loop speaks
/// both wire codecs on one port: the first byte a connection sends pins it
/// to binary frames (binwire.hpp, magic 0xB5) or NDJSON lines (wire.hpp).
///
/// Scheduling work never blocks the loop.  `submit`/`remove` ride the
/// service's completion-callback API (SchedulerService::submit_async);
/// the callback posts the finished result to a completion queue and wakes
/// the loop, which writes the reply in request order.  `query`/`stats`/
/// `metrics` answer inline from immutable snapshots; `drain` (the one
/// genuinely blocking verb) runs on a short-lived helper thread that is
/// joined at stop().
///
/// The loop feeds `service.net.*` counters/gauges into the owning
/// service's metrics registry, so socket-layer health shows up in the
/// same stats document, Prometheus exposition, and SLO plane as the
/// scheduler's own instruments (catalog: docs/observability.md).

namespace sparcle::service {

/// Event-loop listener configuration.
struct EventServerOptions {
  /// Address to bind; the default keeps the daemon loopback-only.
  std::string bind_address{"127.0.0.1"};
  /// Port to bind; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port{0};
  /// Hard cap on one request, bytes: the payload of a binary frame, or
  /// one NDJSON line.  An oversized request gets a structured error
  /// response (a kWireReject decision-log row + `service.net.wire_rejects`
  /// count), then the connection is closed once the error is flushed —
  /// never a silent drop.
  std::size_t max_frame_bytes{1 << 20};
  /// Connections with no inbound bytes and no pending replies for this
  /// long are closed by the sweep (`service.net.idle_closed`).  Zero
  /// disables the sweep.
  std::chrono::milliseconds idle_timeout{std::chrono::milliseconds(0)};
  /// Hard cap on one connection's unsent reply bytes.  A peer that stops
  /// reading past this point is dropped (`service.net.backpressure_closed`)
  /// instead of growing the buffer without bound.
  std::size_t max_write_buffer_bytes{16u << 20};
};

/// Serves a PlacementService (one global SchedulerService, or a
/// federation::FederatedService of regional shards) over TCP with a
/// single event-loop thread.
/// The server borrows the service — the caller keeps it alive until
/// stop() returns.  start() binds, listens, and spawns the loop; stop()
/// closes every connection, joins the loop and any drain helpers, and
/// waits for in-flight async requests to finish (so no service callback
/// can outlive the server).  stop() therefore needs the service to still
/// be able to complete requests: stop the server while the service runs,
/// or stop the service first (then queued requests bounce as `stopping`,
/// which also completes them).
class EventServer {
 public:
  /// Borrows `service` (kept alive by the caller) and registers the
  /// `service.net.*` instruments in its metrics registry.  Does not open
  /// any socket — call start().
  EventServer(PlacementService& service, EventServerOptions options = {});
  /// Calls stop().
  ~EventServer();

  EventServer(const EventServer&) = delete;             ///< non-copyable
  EventServer& operator=(const EventServer&) = delete;  ///< non-copyable

  /// Binds, listens, and spawns the event loop.  Throws
  /// std::runtime_error (with errno text) if the socket cannot be set up.
  void start();

  /// Closes the listener and every connection, joins the loop thread and
  /// drain helpers, and blocks until outstanding async requests complete.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The bound port (after start(); resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  /// Dispatches one JSON request line synchronously and returns the
  /// response line (no trailing newline) — the same verb semantics the
  /// loop serves, minus the socket.  Blocks on submit/remove/drain.
  /// Tests call this to exercise the protocol without a connection.
  std::string handle_line(const std::string& line);

 private:
  struct Connection;
  struct Completion;
  class Poller;

  void loop();
  void wake();
  void accept_ready();
  void on_readable(Connection& conn);
  void on_writable(Connection& conn);
  void process_input(Connection& conn);
  void process_json(Connection& conn);
  void process_binary(Connection& conn);
  void dispatch(Connection& conn, std::map<std::string, std::string> request);
  void reserve_reply(Connection& conn, std::uint64_t seq);
  void complete_reply(Connection& conn, std::uint64_t seq,
                      std::string payload);
  std::string render_reply(const Connection& conn, bool error,
                           const std::map<std::string, std::string>& fields);
  void wire_reject(Connection& conn, const std::string& category,
                   const std::string& reason);
  void flush_ready(Connection& conn);
  void try_flush(Connection& conn);
  void update_interest(Connection& conn);
  void close_connection(std::uint64_t id);
  void drain_completions();
  void sweep_idle();
  void post_completion(Completion done);

  PlacementService& service_;
  EventServerOptions options_;

  int listen_fd_{-1};
  int wake_read_fd_{-1};
  int wake_write_fd_{-1};
  std::uint16_t port_{0};
  std::thread loop_thread_;
  std::unique_ptr<Poller> poller_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_{3};  ///< 1 = listener, 2 = wake pipe

  std::mutex comp_mu_;
  std::condition_variable comp_cv_;
  std::vector<Completion> completions_;
  std::size_t inflight_{0};  ///< async requests whose callback has not run
  bool stopping_{false};     ///< guarded by comp_mu_; loop exit flag

  std::mutex drain_mu_;
  std::vector<std::thread> drain_threads_;

  // Cached instrument pointers (stable for the registry's lifetime).
  obs::Counter* accepted_{nullptr};
  obs::Gauge* connections_{nullptr};
  obs::Counter* frames_in_{nullptr};
  obs::Counter* frames_out_{nullptr};
  obs::Counter* bytes_in_{nullptr};
  obs::Counter* bytes_out_{nullptr};
  obs::Counter* short_reads_{nullptr};
  obs::Counter* protocol_errors_{nullptr};
  obs::Counter* wire_rejects_{nullptr};
  obs::Counter* idle_closed_{nullptr};
  obs::Counter* backpressure_closed_{nullptr};
  obs::Counter* codec_json_{nullptr};
  obs::Counter* codec_binary_{nullptr};
};

}  // namespace sparcle::service
