#include "service/wire.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sparcle::service::wire {
namespace {

/// Shortest representation of a double that round-trips (matches the
/// scenario writer's formatting).
std::string fmt(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

/// True when `s` can be emitted as a bare JSON token (number or boolean).
bool is_bare_token(const std::string& s) {
  if (s == "true" || s == "false") return true;
  if (s.empty()) return false;
  double parsed = 0.0;
  const auto [end, ec] =
      std::from_chars(s.data(), s.data() + s.size(), parsed);
  return ec == std::errc{} && end == s.data() + s.size();
}

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("wire: malformed request at offset " +
                           std::to_string(pos) + ": " + what);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

/// Parses a JSON string starting at the opening quote; leaves `i` past the
/// closing quote.
std::string parse_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') fail(i, "expected '\"'");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i];
    if (c == '\\') {
      ++i;
      if (i >= s.size()) fail(i, "dangling escape");
      switch (s[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i + 4 >= s.size()) fail(i, "truncated \\u escape");
          unsigned code = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = s[i + static_cast<std::size_t>(k)];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail(i, "bad \\u escape digit");
          }
          i += 4;
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // not needed for this protocol's ASCII payloads).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(i, std::string("unknown escape '\\") + s[i] + "'");
      }
      ++i;
    } else {
      out += c;
      ++i;
    }
  }
  if (i >= s.size()) fail(i, "unterminated string");
  ++i;  // closing quote
  return out;
}

/// Parses a bare JSON token (number / true / false / null) as raw text.
std::string parse_bare(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                          s[i] == '+' || s[i] == '-' || s[i] == '.')) {
    ++i;
  }
  if (i == start) fail(i, "expected a value");
  return s.substr(start, i - start);
}

}  // namespace

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_line(const std::map<std::string, std::string>& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(key) + "\":";
    if (is_bare_token(value))
      out += value;
    else
      out += "\"" + escape(value) + "\"";
  }
  out += "}";
  return out;
}

std::map<std::string, std::string> parse_line(const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') fail(i, "expected '{'");
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return out;
  for (;;) {
    skip_ws(line, i);
    const std::string key = parse_string(line, i);
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') fail(i, "expected ':'");
    ++i;
    skip_ws(line, i);
    std::string value;
    if (i < line.size() && line[i] == '"')
      value = parse_string(line, i);
    else
      value = parse_bare(line, i);
    out[key] = std::move(value);
    skip_ws(line, i);
    if (i >= line.size()) fail(i, "unterminated object");
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') break;
    fail(i, "expected ',' or '}'");
  }
  return out;
}

std::map<std::string, std::string> result_fields(const ServiceResult& result) {
  std::map<std::string, std::string> fields;
  fields["status"] = to_string(result.status);
  if (!result.reason.empty()) fields["reason"] = result.reason;
  fields["rate"] = fmt(result.rate);
  fields["availability"] = fmt(result.availability);
  fields["paths"] = std::to_string(result.paths);
  fields["latency_us"] = fmt(result.latency_us);
  if (result.timeline.trace_id != 0) {
    fields["trace_id"] = std::to_string(result.timeline.trace_id);
    fields["queue_us"] = fmt(result.timeline.queue_us);
    fields["batch_us"] = fmt(result.timeline.batch_us);
    fields["apply_us"] = fmt(result.timeline.apply_us);
    fields["solve_us"] = fmt(result.timeline.solve_us);
    fields["reply_us"] = fmt(result.timeline.reply_us);
  }
  return fields;
}

std::map<std::string, std::string> metrics_fields(const std::string& body) {
  std::map<std::string, std::string> fields;
  fields["status"] = "ok";
  fields["format"] = "prometheus-0.0.4";
  fields["body"] = body;
  return fields;
}

std::map<std::string, std::string> snapshot_fields(
    const ServiceSnapshot& snap) {
  std::map<std::string, std::string> fields;
  fields["status"] = "ok";
  fields["version"] = std::to_string(snap.version);
  fields["apps"] = std::to_string(snap.apps.size());
  fields["total_gr_rate"] = fmt(snap.total_gr_rate);
  fields["total_be_rate"] = fmt(snap.total_be_rate);
  fields["be_utility"] = fmt(snap.be_utility);
  return fields;
}

std::map<std::string, std::string> app_fields(const ServiceSnapshot& snap,
                                              const std::string& name) {
  const AppView* view = snap.find(name);
  if (view == nullptr) {
    std::map<std::string, std::string> fields;
    fields["status"] = "not_found";
    fields["name"] = name;
    return fields;
  }
  std::map<std::string, std::string> fields;
  fields["status"] = "ok";
  fields["name"] = view->name;
  fields["class"] = view->guaranteed ? "gr" : "be";
  fields["rate"] = fmt(view->allocated_rate);
  fields["paths"] = std::to_string(view->paths);
  if (view->guaranteed)
    fields["min_rate"] = fmt(view->min_rate);
  else
    fields["priority"] = fmt(view->priority);
  return fields;
}

std::map<std::string, std::string> error_fields(const std::string& reason) {
  std::map<std::string, std::string> fields;
  fields["status"] = "error";
  fields["reason"] = reason;
  return fields;
}

std::string result_line(const ServiceResult& result) {
  return to_line(result_fields(result));
}

std::string metrics_line(const std::string& body) {
  return to_line(metrics_fields(body));
}

std::string snapshot_line(const ServiceSnapshot& snap) {
  return to_line(snapshot_fields(snap));
}

std::string app_line(const ServiceSnapshot& snap, const std::string& name) {
  return to_line(app_fields(snap, name));
}

std::string error_line(const std::string& reason) {
  return to_line(error_fields(reason));
}

}  // namespace sparcle::service::wire
