#pragma once

#include <map>
#include <string>

#include "service/scheduler_service.hpp"

/// \file wire.hpp
/// The placement service's dependency-free wire protocol: one request per
/// line, one response per line, each line a *flat* JSON object (string,
/// number, or boolean values only — no nesting, no arrays).  The subset is
/// small enough to parse with a hand-rolled scanner, which keeps the
/// service free of third-party JSON dependencies.  docs/service.md is the
/// protocol reference; requests:
///
///     {"verb":"submit","app":"app a be 2\n  ct f 4\n  ...\nend"}
///     {"verb":"remove","name":"a"}
///     {"verb":"query"}              — snapshot summary
///     {"verb":"query","name":"a"}   — one application's view
///     {"verb":"drain"}              — block until the queue empties
///     {"verb":"stats"}              — flat JSON health document (SLO state)
///     {"verb":"metrics"}            — Prometheus exposition in "body"
///
/// The `app` payload of submit is a scenario-format `app ... end` block
/// (workload::parse_apps_text / write_app_text) — the same text format
/// scenario files use, embedded as one JSON string.

namespace sparcle::service::wire {

/// Escapes `s` as the body of a JSON string (quotes, backslashes, control
/// characters; UTF-8 passes through).
std::string escape(const std::string& s);

/// Renders a flat string→string map as one JSON object line (values that
/// are valid JSON numbers or `true`/`false` are emitted unquoted).
std::string to_line(const std::map<std::string, std::string>& fields);

/// Parses one flat JSON object line into a string→string map (numbers and
/// booleans arrive as their raw text).  Throws std::runtime_error naming
/// the offending position on malformed input.
std::map<std::string, std::string> parse_line(const std::string& line);

/// Renders a ServiceResult as a response line:
/// `{"status":"admitted","rate":...,"availability":...,"paths":...,
///   "latency_us":...}` plus `"reason"` when non-empty.  Requests that
/// reached the queue also carry `"trace_id"` and the per-stage breakdown
/// `"queue_us"`/`"batch_us"`/`"apply_us"`/`"solve_us"`/`"reply_us"`
/// (RequestTimeline — the stages sum to latency_us).
std::string result_line(const ServiceResult& result);

/// Renders a multi-line text payload (Prometheus exposition) as the
/// `metrics` response: `{"status":"ok","format":"prometheus-0.0.4",
///   "body":"..."}` with the text newline-escaped into one JSON string.
/// Clients recover the text by unescaping `body` (e.g. `jq -r .body`).
std::string metrics_line(const std::string& body);

/// Renders a snapshot summary response:
/// `{"status":"ok","version":...,"apps":...,"total_gr_rate":...,
///   "total_be_rate":...,"be_utility":...}`.
std::string snapshot_line(const ServiceSnapshot& snap);

/// Renders one application's snapshot view, or
/// `{"status":"not_found","name":...}` when absent.
std::string app_line(const ServiceSnapshot& snap, const std::string& name);

/// Renders an error response: `{"status":"error","reason":...}`.
std::string error_line(const std::string& reason);

}  // namespace sparcle::service::wire
