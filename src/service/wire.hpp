#pragma once

#include <map>
#include <string>

#include "service/scheduler_service.hpp"

/// \file wire.hpp
/// The placement service's dependency-free wire protocol: one request per
/// line, one response per line, each line a *flat* JSON object (string,
/// number, or boolean values only — no nesting, no arrays).  The subset is
/// small enough to parse with a hand-rolled scanner, which keeps the
/// service free of third-party JSON dependencies.  docs/service.md is the
/// protocol reference; requests:
///
///     {"verb":"submit","app":"app a be 2\n  ct f 4\n  ...\nend"}
///     {"verb":"remove","name":"a"}
///     {"verb":"query"}              — snapshot summary
///     {"verb":"query","name":"a"}   — one application's view
///     {"verb":"drain"}              — block until the queue empties
///     {"verb":"stats"}              — flat JSON health document (SLO state)
///     {"verb":"metrics"}            — Prometheus exposition in "body"
///
/// The `app` payload of submit is a scenario-format `app ... end` block
/// (workload::parse_apps_text / write_app_text) — the same text format
/// scenario files use, embedded as one JSON string.

namespace sparcle::service::wire {

/// Escapes `s` as the body of a JSON string (quotes, backslashes, control
/// characters; UTF-8 passes through).
std::string escape(const std::string& s);

/// Renders a flat string→string map as one JSON object line (values that
/// are valid JSON numbers or `true`/`false` are emitted unquoted).
std::string to_line(const std::map<std::string, std::string>& fields);

/// Parses one flat JSON object line into a string→string map (numbers and
/// booleans arrive as their raw text).  Throws std::runtime_error naming
/// the offending position on malformed input.
std::map<std::string, std::string> parse_line(const std::string& line);

/// The flat field map of a ServiceResult response:
/// `status`=admitted/..., `rate`, `availability`, `paths`, `latency_us`,
/// plus `reason` when non-empty.  Requests that reached the queue also
/// carry `trace_id` and the per-stage breakdown `queue_us`/`batch_us`/
/// `apply_us`/`solve_us`/`reply_us` (RequestTimeline — the stages sum to
/// latency_us).  Both codecs serialize this map: to_line for JSON,
/// binwire::encode for binary frames.
std::map<std::string, std::string> result_fields(const ServiceResult& result);

/// The `metrics` response fields: `status`=ok,
/// `format`=prometheus-0.0.4, and the multi-line exposition text in
/// `body`.  JSON clients recover the text by unescaping `body` (e.g.
/// `jq -r .body`); binary clients read it verbatim.
std::map<std::string, std::string> metrics_fields(const std::string& body);

/// The snapshot summary fields: `status`=ok, `version`, `apps`,
/// `total_gr_rate`, `total_be_rate`, `be_utility`.
std::map<std::string, std::string> snapshot_fields(const ServiceSnapshot& snap);

/// One application's snapshot view (`status`=ok, `name`, `class`,
/// `rate`, `paths`, and `min_rate` or `priority`), or
/// `status`=not_found when absent.
std::map<std::string, std::string> app_fields(const ServiceSnapshot& snap,
                                              const std::string& name);

/// An error response's fields: `status`=error, `reason`.
std::map<std::string, std::string> error_fields(const std::string& reason);

/// result_fields rendered as one JSON response line.
std::string result_line(const ServiceResult& result);

/// metrics_fields rendered as one JSON response line (the exposition
/// newline-escaped into one JSON string).
std::string metrics_line(const std::string& body);

/// snapshot_fields rendered as one JSON response line.
std::string snapshot_line(const ServiceSnapshot& snap);

/// app_fields rendered as one JSON response line.
std::string app_line(const ServiceSnapshot& snap, const std::string& name);

/// error_fields rendered as one JSON response line.
std::string error_line(const std::string& reason);

}  // namespace sparcle::service::wire
