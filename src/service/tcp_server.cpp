#include "service/tcp_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "service/wire.hpp"
#include "workload/scenario_io.hpp"

namespace sparcle::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("TcpServer: " + what + ": " +
                           std::strerror(errno));
}

/// Writes the whole buffer, retrying on short writes / EINTR.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(SchedulerService& service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("TcpServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("bind " + options_.bind_address + ":" +
                std::to_string(options_.port));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::stop() {
  if (stopping_.exchange(true)) return;
  // Closing the listener unblocks accept(); once the accept thread is
  // joined no new connection threads can appear, so the shutdown sweep
  // below sees them all.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int conn_fd : conn_fds_)
      if (conn_fd >= 0) ::shutdown(conn_fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

void TcpServer::accept_loop() {
  for (;;) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(conn);
      return;
    }
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void TcpServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_line_bytes) {
      write_all(fd, wire::error_line("request line exceeds " +
                                     std::to_string(options_.max_line_bytes) +
                                     " bytes") +
                        "\n");
      break;
    }
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!write_all(fd, handle_line(line) + "\n")) {
        open = false;
        break;
      }
    }
  }
  // Deregister before closing so stop() never shuts down a recycled fd
  // number that a newer connection now owns.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int& conn_fd : conn_fds_)
      if (conn_fd == fd) {
        conn_fd = -1;
        break;
      }
  }
  ::close(fd);
}

std::string TcpServer::handle_line(const std::string& line) {
  std::map<std::string, std::string> req;
  try {
    req = wire::parse_line(line);
  } catch (const std::exception& e) {
    return wire::error_line(e.what());
  }
  const auto verb_it = req.find("verb");
  if (verb_it == req.end()) return wire::error_line("missing 'verb'");
  const std::string& verb = verb_it->second;

  try {
    if (verb == "submit") {
      const auto app_it = req.find("app");
      if (app_it == req.end())
        return wire::error_line("submit: missing 'app' block");
      // The connection thread parses against the immutable network copy;
      // only the scheduling thread ever touches the Scheduler.
      std::vector<Application> apps = workload::parse_apps_text(
          app_it->second, service_.network(), "<submit>");
      if (apps.size() != 1)
        return wire::error_line(
            "submit: expected exactly one app block, got " +
            std::to_string(apps.size()));
      return wire::result_line(service_.submit(std::move(apps.front())).get());
    }
    if (verb == "remove") {
      const auto name_it = req.find("name");
      if (name_it == req.end())
        return wire::error_line("remove: missing 'name'");
      return wire::result_line(service_.remove(name_it->second).get());
    }
    if (verb == "query") {
      const std::shared_ptr<const ServiceSnapshot> snap = service_.snapshot();
      const auto name_it = req.find("name");
      if (name_it != req.end()) return wire::app_line(*snap, name_it->second);
      return wire::snapshot_line(*snap);
    }
    if (verb == "drain") {
      service_.drain();
      return wire::snapshot_line(*service_.snapshot());
    }
    if (verb == "stats") {
      return wire::to_line(service_.health_fields());
    }
    if (verb == "metrics") {
      return wire::metrics_line(service_.prometheus_text());
    }
  } catch (const std::exception& e) {
    return wire::error_line(e.what());
  }
  return wire::error_line("unknown verb '" + verb + "'");
}

}  // namespace sparcle::service
