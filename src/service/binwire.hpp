#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

/// \file binwire.hpp
/// The placement service's versioned binary wire codec — the compact
/// sibling of the flat-JSON line protocol in wire.hpp.  Both codecs share
/// one port: the first byte a connection sends selects the codec (the
/// binary magic 0xB5 can never open a JSON line), so the JSON protocol
/// stays available for debugging while bulk traffic rides fixed-width
/// binary frames.  docs/wire.md is the normative byte-level spec; the
/// short version:
///
///     offset  size  field
///     0       1     magic (0xB5)
///     1       1     protocol version (currently 1)
///     2       1     frame type (request verb or reply/error)
///     3       1     flags (must be 0 in version 1)
///     4       4     payload length N, little-endian uint32
///     8       N     payload: a field map (see below)
///
/// The payload is a typed field map carrying the same flat string→string
/// fields the JSON codec uses: a little-endian uint16 field count, then
/// per field a 1-byte key code (well-known keys; 0x00 prefixes an inline
/// length-delimited key), a 1-byte value type (string / f64 / u64 /
/// true / false), and the value bytes.  Encoding detects numeric and
/// boolean value texts and stores them in binary; decoding restores the
/// exact original text (shortest round-trip formatting), so
/// `decode(encode(m)) == m` for every field map the service emits — the
/// property the json↔binary equivalence tests in tests/test_binwire.cpp
/// lock down.
///
/// Decoding is strictly bounds-checked: every read validates against the
/// remaining payload, and malformed input throws binwire::Error (never
/// reads out of bounds, never crashes) with a reason category the server
/// maps to a structured error frame.

namespace sparcle::service::binwire {

/// First byte of every binary frame.  Chosen outside ASCII so the first
/// byte of a connection unambiguously selects binary vs NDJSON framing.
inline constexpr std::uint8_t kMagic = 0xB5;

/// The protocol version this build speaks.  A server receiving any other
/// version answers with a version-1 error frame naming both versions and
/// closes (docs/wire.md "Version negotiation").
inline constexpr std::uint8_t kVersion = 1;

/// Bytes in the fixed frame header (magic, version, type, flags, length).
inline constexpr std::size_t kHeaderBytes = 8;

/// Frame type byte: request verbs mirror the JSON `verb` field; replies
/// have the high bit set.
enum class FrameType : std::uint8_t {
  kSubmit = 0x01,   ///< request: admit one application
  kRemove = 0x02,   ///< request: remove a placed application
  kQuery = 0x03,    ///< request: snapshot summary / one app's view
  kDrain = 0x04,    ///< request: block until the queue empties
  kStats = 0x05,    ///< request: flat health document
  kMetrics = 0x06,  ///< request: Prometheus exposition
  kReply = 0x81,    ///< response: field map (status carries the outcome)
  kError = 0x82,    ///< response: protocol-level error (status=error)
};

/// Why a frame failed to decode (Error::category()).  The server maps
/// these to structured error frames / connection handling.
enum class ErrorCategory : std::uint8_t {
  kBadMagic,    ///< first byte is not kMagic (not a binary frame)
  kBadVersion,  ///< unsupported protocol version (negotiation failure)
  kOversized,   ///< declared payload length exceeds the frame cap
  kMalformed,   ///< anything else: truncated, bad type/flags, bad payload
};

/// Decode failure: carries the category plus a human-readable reason
/// (byte offsets included) suitable for an error frame.
class Error : public std::runtime_error {
 public:
  /// Builds an error carrying `category` and the `what` reason text.
  Error(ErrorCategory category, const std::string& what)
      : std::runtime_error(what), category_(category) {}
  /// The failure class, for the server's error-frame / close decision.
  ErrorCategory category() const { return category_; }

 private:
  ErrorCategory category_;
};

/// One decoded frame: the type byte plus the payload field map.
struct Frame {
  FrameType type{FrameType::kReply};           ///< the header's type byte
  std::map<std::string, std::string> fields;   ///< decoded payload fields
};

/// True for the request-verb frame types (kSubmit..kMetrics).
bool is_request(FrameType type);

/// Symbolic name of a request frame type (`submit`, `remove`, ... — the
/// JSON `verb` spelling), or nullptr for reply/error types.
const char* verb_name(FrameType type);

/// The frame type of a JSON verb string; throws Error (kMalformed) on an
/// unknown verb.
FrameType verb_type(const std::string& verb);

/// Encodes a complete frame (header + typed field-map payload).
std::string encode(FrameType type,
                   const std::map<std::string, std::string>& fields);

/// Encodes a request from JSON-shaped fields: the `verb` entry selects
/// the frame type, every other field rides in the payload.  Throws Error
/// (kMalformed) when `verb` is missing or unknown.
std::string encode_request(const std::map<std::string, std::string>& fields);

/// Encodes an error frame: `{"status":"error","reason":reason}`.
std::string encode_error(const std::string& reason);

/// Length in bytes of the complete frame at the front of `buffer`, or 0
/// when more bytes are needed (partial header / partial payload).
/// Validates the header eagerly — throws Error with kBadMagic /
/// kBadVersion / kOversized / kMalformed (nonzero flags) so a server can
/// reject a bad frame before buffering its payload.  `max_payload_bytes`
/// caps the declared payload length.
std::size_t frame_length(std::string_view buffer,
                         std::size_t max_payload_bytes = 1 << 20);

/// Decodes one complete frame (as delimited by frame_length).  Throws
/// Error on any malformation; never reads outside `frame`.
Frame decode(std::string_view frame, std::size_t max_payload_bytes = 1 << 20);

/// Decodes a payload field map (no header).  Exposed for tests and for
/// client-side reply handling.
std::map<std::string, std::string> decode_fields(std::string_view payload);

/// Encodes just the typed field map (no header).  Exposed for tests.
std::string encode_fields(const std::map<std::string, std::string>& fields);

}  // namespace sparcle::service::binwire
