#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "model/application.hpp"
#include "model/network.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/time_series.hpp"

/// \file scheduler_service.hpp
/// The long-running placement controller: a thread-safe admission daemon
/// wrapping one Scheduler.  Every entry point before this (CLI, benches,
/// examples) built a Scheduler, ran one batch of submits, and exited;
/// the service turns the same admission pipeline into something that
/// *serves* placement traffic continuously — the paper's own arrival
/// model (§IV-C/D: GR and BE applications arriving over time, admission
/// control per arrival) played forward as an online system.
///
/// Architecture (docs/service.md):
///
///   - producers (TCP connections, in-process clients) enqueue submit /
///     remove requests into a *bounded* queue with three priority classes
///     — control (removes, they only free capacity), Guaranteed-Rate
///     submits, Best-Effort submits — FIFO within each class;
///   - one scheduling thread pops up to `max_batch` requests (higher
///     classes first), applies them inside a Scheduler batch
///     (begin_batch/end_batch), so the whole batch pays for ONE weighted
///     proportional-fair re-solve instead of one per request;
///   - backpressure: a full queue rejects at enqueue (`queue_full`), and a
///     request whose deadline passed while queued is rejected at dequeue
///     (`deadline_exceeded`) — both logged as DecisionKind::kQueueReject;
///   - reads never touch the scheduling thread: after every batch the
///     service publishes an immutable ServiceSnapshot, and snapshot() /
///     queries return the latest published one.

namespace sparcle::service {

/// Tuning knobs of the admission daemon (docs/service.md has the
/// operator guidance).
struct ServiceOptions {
  /// Bound on queued requests across all classes; enqueueing onto a full
  /// queue rejects immediately with ServiceResult::Status::kQueueFull.
  std::size_t queue_capacity{1024};
  /// Most requests applied per scheduler batch (one PF re-solve each).
  /// 1 reproduces the classic per-call pipeline.
  std::size_t max_batch{16};
  /// Deadline applied to requests submitted without an explicit one;
  /// zero means "no deadline".  A request whose deadline has passed by
  /// the time the scheduling thread picks it up is rejected unprocessed.
  std::chrono::milliseconds default_deadline{0};
  /// Run the invariant checker (check::check_scheduler_state) on the
  /// scheduler state behind every published snapshot; violations are
  /// counted in ServiceStats::invariant_violations and the first report
  /// is kept (ServiceStats::first_violation).  Stress tests and canary
  /// deployments enable this; it re-solves problem (4) per batch.
  bool validate_batches{false};
  /// Start with the scheduling thread paused (resume() arms it).  Lets
  /// tests and load generators stage a queue deterministically.
  bool start_paused{false};
  /// Width of the live telemetry window (per-second buckets) behind
  /// window(), the `service.window.*` exposition family, and SLO
  /// evaluation.
  std::size_t window_seconds{60};
  /// Default SLO: admission latency p99 ceiling over the window, in
  /// microseconds.  0 disables the objective.
  double slo_admission_p99_us{100000.0};
  /// Default SLO: ceiling on (queue + scheduler) rejections as a fraction
  /// of arrivals over the window.  0 disables the objective.
  double slo_reject_ratio{0.25};
  /// Extra operator-defined objectives over the window series
  /// (docs/observability.md lists the series names).
  std::vector<obs::SloSpec> slos;
};

/// Per-stage latency breakdown of one request's journey through the
/// admission pipeline.  The stages partition enqueue→reply, so they sum
/// to ServiceResult::latency_us (within clock-read jitter):
///
///   queue  waiting in the bounded priority queue (enqueue → batch pop)
///   batch  batch assembly around this request's own turn (pop → its
///          scheduler call, plus the gap until the shared solve starts)
///   apply  this request's own scheduler submit/remove call
///   solve  the batch's shared deferred PF re-solve (end_batch); every
///          request in the batch reports the same value — that is the
///          cost amortization made visible
///   reply  post-solve bookkeeping until the promise resolves
struct RequestTimeline {
  std::uint64_t trace_id{0};  ///< non-zero once the request is queued
  double queue_us{0.0};
  double batch_us{0.0};
  double apply_us{0.0};
  double solve_us{0.0};
  double reply_us{0.0};

  double total_us() const {
    return queue_us + batch_us + apply_us + solve_us + reply_us;
  }
};

/// Terminal outcome of one service request.
struct ServiceResult {
  enum class Status {
    kAdmitted,          ///< submit: application placed
    kRejected,          ///< submit: admission control said no
    kRemoved,           ///< remove: application found and removed
    kNotFound,          ///< remove: no such placed application
    kQueueFull,         ///< bounced at enqueue: bounded queue at capacity
    kDeadlineExceeded,  ///< bounced at dequeue: deadline passed in queue
    kShutdown,          ///< bounced: the service is stopping
    kApplied,           ///< apply(): control function ran on the scheduler
  };
  Status status{Status::kRejected};
  std::string reason;        ///< human-readable detail (rejections)
  double rate{0.0};          ///< allocated rate (admitted submits)
  double availability{0.0};  ///< achieved availability (admitted submits)
  std::size_t paths{0};      ///< committed path count (admitted submits)
  /// Time the request spent from enqueue to reply, in microseconds.
  double latency_us{0.0};
  /// Trace id plus the per-stage breakdown of latency_us.  trace_id is 0
  /// only for requests bounced before queueing (queue_full, shutdown).
  RequestTimeline timeline;

  bool ok() const {
    return status == Status::kAdmitted || status == Status::kRemoved;
  }
};

/// Symbolic name of a result status (`admitted`, `rejected`, `removed`,
/// `not_found`, `queue_full`, `deadline_exceeded`, `shutdown`, `applied`)
/// — the wire protocol's `status` field (`applied` never crosses the
/// wire; it is the in-process control-function outcome).
const char* to_string(ServiceResult::Status status);

/// One placed application inside a published snapshot.
struct AppView {
  std::string name;
  bool guaranteed{false};     ///< GR (true) or BE (false)
  double allocated_rate{0.0};
  std::size_t paths{0};
  double priority{0.0};       ///< BE weight (0 for GR)
  double min_rate{0.0};       ///< GR guarantee (0 for BE)
};

/// Immutable state published by the scheduling thread after every batch.
/// Readers hold a shared_ptr to it, so a reader can never block — or be
/// blocked by — admission work.
struct ServiceSnapshot {
  std::uint64_t version{0};       ///< batch sequence number, starts at 1
  double total_gr_rate{0.0};      ///< Σ reserved GR rate
  double total_be_rate{0.0};      ///< Σ allocated BE rate
  double be_utility{0.0};         ///< Σ P_i log x_i over placed BE apps
  std::vector<AppView> apps;      ///< placed apps, admission order

  /// The view of `name`, or nullptr.
  const AppView* find(const std::string& name) const;
};

/// Monotone counters describing the service's lifetime.  Every numeric
/// field is *derived* from the service's own metrics registry (the same
/// source the ops endpoint exposes), so a counter can never drift from
/// what a scrape reports; `metrics` carries the full registry snapshot —
/// counters and gauges by instrument name (docs/observability.md).
struct ServiceStats {
  std::uint64_t submits{0};          ///< submit requests accepted into the queue
  std::uint64_t removes{0};          ///< remove requests accepted into the queue
  std::uint64_t admitted{0};         ///< submits admitted by the scheduler
  std::uint64_t rejected{0};         ///< submits rejected by the scheduler
  std::uint64_t queue_full{0};       ///< requests bounced at enqueue
  std::uint64_t deadline_expired{0}; ///< requests bounced at dequeue
  std::uint64_t batches{0};          ///< scheduler batches executed
  std::uint64_t max_batch_seen{0};   ///< largest batch actually popped
  std::uint64_t resolves_saved{0};   ///< PF re-solves amortized away
  std::uint64_t invariant_violations{0};  ///< validate_batches failures
  std::string first_violation;       ///< first checker report, if any
  // Snapshot of the wrapped scheduler's PF solver telemetry (see
  // Scheduler::PfSolverStats), refreshed after every batch.
  std::uint64_t pf_solves{0};          ///< weighted-PF solves actually run
  std::uint64_t pf_warm_hits{0};       ///< solves converged from a warm start
  std::uint64_t pf_warm_fallbacks{0};  ///< warm attempts that went cold
  std::uint64_t pf_newton_iters{0};    ///< Newton iterations, all solves
  /// Every registered service instrument (counters and gauges) by name —
  /// the registry snapshot the named fields above are read from.
  std::map<std::string, double> metrics;
};

/// The abstract placement-service surface the front ends program against:
/// everything the event-loop server, the TCP server, and the in-process
/// client need — admission (blocking futures and completion callbacks),
/// snapshots, lifecycle, and telemetry.  SchedulerService (one global
/// scheduler) and federation::FederatedService (regional shards behind
/// the same contract) are the two implementations, which is what lets
/// `sparcle_serve --shards N` swap the backend without the wire front
/// ends noticing.
class PlacementService {
 public:
  virtual ~PlacementService() = default;

  /// Callback invoked exactly once with a request's terminal result.
  /// Runs on a service-internal thread (batch completions) or inline on
  /// the caller's thread (enqueue-time bounces: queue_full / shutdown),
  /// so it must be cheap and must not re-enter the service.
  using Completion = std::function<void(ServiceResult)>;

  /// Enqueues an admission request; the future resolves when the request
  /// has been fully processed (or immediately on queue_full/shutdown).
  virtual std::future<ServiceResult> submit(Application app) = 0;
  /// Enqueues a removal (served ahead of submits — it only frees capacity).
  virtual std::future<ServiceResult> remove(std::string app_name) = 0;
  /// submit() without a future — the event-loop front end's path.
  virtual void submit_async(Application app, Completion on_done) = 0;
  /// remove() without a future.
  virtual void remove_async(std::string app_name, Completion on_done) = 0;
  /// The latest published snapshot — never null, never blocks.
  virtual std::shared_ptr<const ServiceSnapshot> snapshot() const = 0;
  /// Blocks until every request enqueued before the call has been answered.
  virtual void drain() = 0;
  /// Graceful drain-and-stop; idempotent.
  virtual void stop() = 0;
  /// Snapshot of the lifetime counters.
  virtual ServiceStats stats() const = 0;
  /// The service's own always-on metrics registry.
  virtual obs::MetricsRegistry& registry() = 0;
  virtual const obs::MetricsRegistry& registry() const = 0;
  /// Full Prometheus text exposition (the wire `metrics` verb).
  virtual std::string prometheus_text() const = 0;
  /// Flat health document (the wire `stats` verb).
  virtual std::map<std::string, std::string> health_fields() const = 0;
  /// The *full* network this service places onto (federated: the whole
  /// site, not one shard) — the event loop resolves NCP names against it.
  virtual const Network& network() const = 0;
};

/// The concurrent admission daemon.  All public methods are thread-safe;
/// the wrapped Scheduler is touched only by the internal scheduling
/// thread.  Destruction stops the service (pending requests are answered
/// with kShutdown).
class SchedulerService : public PlacementService {
 public:
  /// Serves placement over `net` using SPARCLE's own assignment algorithm.
  SchedulerService(Network net, SchedulerOptions sched_options = {},
                   ServiceOptions options = {});
  ~SchedulerService() override;

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Enqueues an admission request; the future resolves when the batch
  /// containing it completes (or immediately on queue_full/shutdown).
  /// GR submissions queue ahead of BE submissions.
  std::future<ServiceResult> submit(Application app) override;
  /// submit() with an explicit deadline: if the scheduling thread picks
  /// the request up after `deadline`, it is rejected unprocessed.
  std::future<ServiceResult> submit(
      Application app, std::chrono::steady_clock::time_point deadline);

  /// Enqueues a removal (control class: served before submits).
  std::future<ServiceResult> remove(std::string app_name) override;
  std::future<ServiceResult> remove(
      std::string app_name, std::chrono::steady_clock::time_point deadline);

  /// submit() without a future: `on_done` fires when the batch containing
  /// the request completes (or immediately on queue_full / shutdown).
  /// This is the event-loop front end's path — nothing ever blocks.
  void submit_async(Application app, Completion on_done) override;

  /// remove() without a future (control class; see submit_async).
  void remove_async(std::string app_name, Completion on_done) override;

  /// A control function run on the scheduling thread with exclusive
  /// access to the wrapped Scheduler — the federation layer's hook for
  /// the two-phase reserve/commit/release calls and churn injection
  /// without a second synchronization domain.  The function must not
  /// re-enter the service and must leave any open batch balanced (it
  /// runs inside the current scheduler batch, so deferred PF re-solves
  /// settle at batch end as usual).
  using SchedulerFn = std::function<void(Scheduler&)>;

  /// Enqueues `fn` at control priority (ahead of submits); the future
  /// resolves with kApplied after the batch containing it completes.
  /// Control requests never expire.
  std::future<ServiceResult> apply(SchedulerFn fn);

  /// apply() without a future (see submit_async for callback rules).
  void apply_async(SchedulerFn fn, Completion on_done);

  /// Runs `fn` on the scheduling thread against the settled post-batch
  /// scheduler state and blocks until it finished — the read-side
  /// counterpart of apply() (the federation conservation check and tests
  /// use it to observe residuals race-free).  Returns false if the
  /// service was stopping and `fn` never ran.
  bool inspect(const std::function<void(const Scheduler&)>& fn);

  /// The latest published snapshot — never null after construction (an
  /// empty version-0 snapshot is published at start), never blocks.
  std::shared_ptr<const ServiceSnapshot> snapshot() const override;

  /// Blocks until every request enqueued before the call has been
  /// answered and its snapshot published.  Does not stop the service.
  void drain() override;

  /// Graceful drain-and-stop: stop accepting new requests, process
  /// everything already queued, then join the scheduling thread.
  /// Requests that arrive after stop() begins resolve to kShutdown.
  /// Idempotent; the destructor calls it.
  void stop() override;

  /// Pauses the scheduling thread after the in-flight batch (see
  /// ServiceOptions::start_paused).
  void pause();
  /// Resumes a paused scheduling thread.
  void resume();

  /// Snapshot of the lifetime counters.
  ServiceStats stats() const override;

  /// Requests currently queued (all classes).
  std::size_t queue_depth() const;

  /// The service's own metrics registry — always on, independent of the
  /// process-global obs sinks.  Installing it globally (sparcle_serve
  /// does) folds scheduler.* / assigner.* instruments into the same
  /// registry the ops endpoint exposes.
  obs::MetricsRegistry& registry() override { return registry_; }
  const obs::MetricsRegistry& registry() const override { return registry_; }

  /// The live sliding window behind `service.window.*` and the SLOs.
  const obs::TimeSeriesWindow& window() const { return window_; }

  /// Evaluates the configured SLOs against the window right now.
  obs::SloReport slo_report() const;

  /// Full Prometheus text exposition: the registry, the window gauges
  /// (`service.window.*`), and the SLO gauges (`slo.*`), prefix
  /// `sparcle_`.  The wire `metrics` verb serves this.
  std::string prometheus_text() const override;

  /// Flat health document for the wire `stats` verb: status, SLO
  /// worst-state, queue depth, window rates, and per-objective burn.
  std::map<std::string, std::string> health_fields() const override;

  /// The network this service places onto.  Immutable for the service's
  /// lifetime; the event loop uses it to resolve NCP names in wire
  /// submissions.
  const Network& network() const override { return net_; }

 private:
  struct Request {
    enum class Verb { kSubmit, kRemove, kApply } verb{Verb::kSubmit};
    Application app;        ///< submit payload
    std::string name;       ///< remove payload
    SchedulerFn fn;         ///< apply payload (control function)
    std::uint64_t trace{0};  ///< trace id, assigned at enqueue
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  ///< max() = none
    /// Precomputed policy::PendingApp features of a submit (Σ CT
    /// requirement resource 0, Σ TT bits) so SchedulingPolicy::pick_next
    /// never touches the task graph under the queue lock.
    double size{0.0};
    double bits{0.0};
    std::promise<ServiceResult> promise;
    Completion callback;  ///< when set, fires instead of the promise
  };
  /// Queue class index: lower pops first.
  enum : std::size_t { kControl = 0, kGr = 1, kBe = 2, kClasses = 3 };

  std::future<ServiceResult> enqueue(
      Request req, std::size_t cls,
      std::chrono::steady_clock::time_point deadline);
  void scheduling_loop();
  void process_batch(std::vector<Request>& batch);
  void publish_snapshot();
  std::size_t queued_unlocked() const;
  /// Counter add on the internal registry, mirrored to the global sink
  /// when one is installed and it is not the internal registry itself.
  void bump(const char* name, std::uint64_t n = 1);
  void gauge_set(const char* name, double v);
  /// Logs a queue-level bounce to the installed decision log and counts
  /// it (`service.rejected.<reason_head>`).
  void log_queue_reject(const char* reason_head, const std::string& app,
                        bool guaranteed, const std::string& detail);
  /// registry_ snapshot + window + SLO gauges merged — the exposition's
  /// and health document's single source.
  obs::MetricsSnapshot telemetry_snapshot(obs::SloReport* report_out) const;

  Network net_;               ///< immutable reference copy for readers
  Scheduler scheduler_;       ///< touched only by the scheduling thread
  ServiceOptions options_;
  /// Admission-ordering policy (decision point 1, docs/policies.md),
  /// shared from SchedulerOptions::policy.  nullptr (and DefaultPolicy)
  /// reproduce the classic 3-class FIFO dequeue bit for bit.
  std::shared_ptr<const policy::SchedulingPolicy> policy_;
  /// Service birth instant: the epoch pick_next's arrival_time/deadline
  /// seconds are measured from.
  std::chrono::steady_clock::time_point start_;

  obs::MetricsRegistry registry_;   ///< always-on service instruments
  obs::TimeSeriesWindow window_;    ///< live per-second telemetry
  obs::SloTracker slo_;             ///< objectives over window_
  std::atomic<std::uint64_t> next_trace_{1};

  mutable std::mutex mu_;     ///< guards queues_, first_violation_, flags
  std::condition_variable work_cv_;   ///< wakes the scheduling thread
  std::condition_variable idle_cv_;   ///< wakes drain()ers
  std::deque<Request> queues_[kClasses];
  std::string first_violation_;  ///< first checker report, if any
  /// PF counters from the previous batch (scheduler reports absolutes;
  /// the window wants deltas).  Scheduling thread only.
  Scheduler::PfSolverStats prev_pf_;
  bool paused_{false};
  bool stopping_{false};
  bool processing_{false};    ///< a batch is being applied right now

  mutable std::mutex snap_mu_;
  std::shared_ptr<const ServiceSnapshot> snap_;

  std::thread scheduler_thread_;  ///< last member: joins before teardown
};

}  // namespace sparcle::service
