#pragma once

/// \file sparcle.hpp
/// Umbrella header: everything a downstream user of the SPARCLE library
/// needs.  Include this (with `src/` on the include path, or link the
/// CMake targets which export it) instead of cherry-picking headers.
///
///   #include "sparcle.hpp"
///   using namespace sparcle;
///
/// Layering (see DESIGN.md):
///   obs/       — metrics registry, phase timers, decision log
///   model/     — task graphs, networks, capacities, placements
///   core/      — SPARCLE's algorithms and the admission scheduler
///   baselines/ — comparator algorithms (pull in via their own headers)
///   sim/       — discrete-event simulator
///   energy/    — power/efficiency model
///   workload/  — generators, scenario files, statistics

// Observability (docs/observability.md).
#include "obs/obs.hpp"

// Substrate types.
#include "model/application.hpp"
#include "model/capacity.hpp"
#include "model/dot_export.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"
#include "model/resource.hpp"
#include "model/task_graph.hpp"

// The paper's system.
#include "core/assignment.hpp"
#include "core/availability.hpp"
#include "core/capacity_planner.hpp"
#include "core/fairness.hpp"
#include "core/latency.hpp"
#include "core/local_search.hpp"
#include "core/parallel.hpp"
#include "core/prediction.hpp"
#include "core/provisioning.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "core/widest_path.hpp"

// Validation substrate.
#include "energy/energy_model.hpp"
#include "sim/churn_injector.hpp"
#include "sim/stream_simulator.hpp"

// Workload tooling.
#include "workload/churn.hpp"
#include "workload/rng.hpp"
#include "workload/scenario_io.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"
