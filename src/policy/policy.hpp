#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hpp"
#include "model/application.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/task_graph.hpp"

/// \file policy.hpp
/// Swappable scheduling policies (docs/policies.md).  The scheduler used
/// to hard-code one dynamic-ranking greedy rule at each of its three
/// decision points; this module extracts them behind one interface so the
/// tournament harness (bench_tournament, tools/soak) can race alternatives
/// over adversarial workload matrices:
///
///   1. *admission ordering* — which queued application to admit next
///      (consumed by the soak runner's bounded pending queue; the classic
///      pipeline submits in arrival order, which is what the default
///      policy reproduces);
///   2. *candidate ranking* — which (CT, best host) candidate the
///      dynamic-ranking greedy of Algorithm 2 commits each round
///      (SparcleAssignerOptions::policy);
///   3. *repair ordering* — the order Scheduler::repair() restores the
///      applications hurt by a failure (SchedulerOptions::policy).
///
/// Every policy must be deterministic: identical inputs produce identical
/// choices (ties break on the lowest index), so soak failures replay from
/// a seed and the property tests can demand bit-identical placements.
/// The default policy is bit-identical to the pre-refactor hard-coded
/// rules at every decision point (tests/test_policy.cpp holds the
/// equivalence corpus).

namespace sparcle::policy {

/// One evaluated (CT, best host) pair of a dynamic-ranking round: `gamma`
/// is the eq. (2) bottleneck-rate estimate of placing `ct` on `host`.
struct CtCandidate {
  CtId ct{kInvalidId};
  NcpId host{kInvalidId};
  double gamma{0.0};
};

/// Read-only context of one candidate-ranking round.
struct SelectContext {
  const Network* net{nullptr};
  const TaskGraph* graph{nullptr};
  /// Direction of the enclosing ranking pass (see
  /// SparcleAssignerOptions::Ranking): true = the Algorithm 2 listing
  /// (commit the most constrained CT, argmin γ), false = the §IV-B prose
  /// (argmax).  The default policy honors it; alternatives may ignore it.
  bool most_constrained_pass{true};
  /// Committed host per CT so far (kInvalidId = unplaced), indexed by
  /// CtId.  Lets policies reason about consolidation and locality.
  const std::vector<NcpId>* ct_host{nullptr};
};

/// One application waiting in an admission queue.
struct PendingApp {
  const Application* app{nullptr};
  double arrival_time{0.0};
  /// Absolute simulation-time deadline after which admission is useless
  /// (the soak queue reneges expired entries); +infinity = patient.
  double deadline{std::numeric_limits<double>::infinity()};
  double size{0.0};  ///< Σ CT requirements, resource 0 (computation)
  double bits{0.0};  ///< Σ TT bits per data unit (radio/transport cost)
};

/// One application a repair pass must restore.
struct RepairCandidate {
  const Application* app{nullptr};
  double allocated_rate{0.0};  ///< rate still carried after shedding
  std::size_t alive_paths{0};  ///< paths that survived the failure
  double size{0.0};            ///< Σ CT requirements, resource 0
};

/// The swappable scheduling policy.  The base-class implementations ARE
/// the pre-refactor hard-coded rules, so `class MyPolicy : public
/// SchedulingPolicy` overrides only the decision points it cares about.
/// Implementations must be deterministic, stateless across calls (they
/// may be consulted concurrently by parallel evaluation rounds), and must
/// return in-range indices.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Registry identifier ("default", "sjf", "deadline", "energy", ...).
  virtual std::string name() const = 0;

  /// Decision point 1 — admission ordering: index of the pending
  /// application to admit next.  `pending` is in arrival order and
  /// non-empty.  Base rule: FIFO (index 0).
  virtual std::size_t pick_next(const std::vector<PendingApp>& pending) const;

  /// Decision point 2 — candidate ranking: index of the candidate to
  /// commit this round.  `candidates` is in CT-id order and non-empty.
  /// Base rule: the paper's greedy — argmin γ in a most-constrained pass,
  /// argmax otherwise, first (lowest CT id) on ties.
  virtual std::size_t select_ct(const SelectContext& ctx,
                                const std::vector<CtCandidate>& candidates)
      const;

  /// Decision point 3 — repair ordering: strict-weak-order comparator,
  /// true when `a` must be restored before `b`.  Callers stable_sort, so
  /// equivalent candidates keep placed order.  Base rule: GR before BE,
  /// GR by descending guarantee, BE by descending priority.
  virtual bool repair_before(const RepairCandidate& a,
                             const RepairCandidate& b) const;
};

/// "default" — the pre-refactor scheduler verbatim: FIFO admission, the
/// paper's dynamic-ranking greedy commit rule, GR-first largest-guarantee
/// repair.  Bit-identical to running with no policy installed.
class DefaultPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "default"; }
};

/// "sjf" — shortest-job-first: admits the smallest queued application
/// (Σ CT computation requirement) first, and repairs cheap applications
/// first within each QoE class (GR still precedes BE — guarantees are
/// contractual).  Wins admission *count* under heavy-tailed sizes and
/// flash crowds, where one elephant at the queue head starves mice.
class ShortestJobFirstPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "sjf"; }
  std::size_t pick_next(const std::vector<PendingApp>& pending) const override;
  bool repair_before(const RepairCandidate& a,
                     const RepairCandidate& b) const override;
};

/// "deadline" — deadline/latency-aware: earliest-deadline-first admission
/// (queued applications whose patience is about to lapse go first), and
/// most-degraded-first repair (largest GR shortfall, then BE apps with no
/// alive path).  Wins admitted fraction when queues build and entries
/// renege — flash crowds, diurnal peaks.
class DeadlineAwarePolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "deadline"; }
  std::size_t pick_next(const std::vector<PendingApp>& pending) const override;
  bool repair_before(const RepairCandidate& a,
                     const RepairCandidate& b) const override;
};

/// "energy" — energy-aware (src/energy device model): ranks assignment
/// candidates by estimated rate per incremental watt — a host that
/// already runs a CT charges no extra idle power, so the policy
/// consolidates — and admits the least radio-hungry queued application
/// (Σ TT bits) first.  Trades bottleneck rate for data-per-Joule; wins
/// the energy column of the tournament report.
class EnergyAwarePolicy : public SchedulingPolicy {
 public:
  EnergyAwarePolicy() = default;
  explicit EnergyAwarePolicy(DevicePowerProfile profile)
      : profile_(profile) {}
  std::string name() const override { return "energy"; }
  std::size_t pick_next(const std::vector<PendingApp>& pending) const override;
  std::size_t select_ct(const SelectContext& ctx,
                        const std::vector<CtCandidate>& candidates)
      const override;

 private:
  DevicePowerProfile profile_{};
};

/// Names of every registered policy, in tournament order ("default"
/// first).
std::vector<std::string> policy_names();

/// Builds a policy by registry name; throws std::invalid_argument on an
/// unknown name (the message lists the known ones).
std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name);

}  // namespace sparcle::policy
