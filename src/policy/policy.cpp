#include "policy/policy.hpp"

#include <cmath>
#include <stdexcept>

namespace sparcle::policy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

bool is_gr(const Application* app) {
  return app != nullptr && app->qoe.cls == QoeClass::kGuaranteedRate;
}

/// GR rate still missing against the guarantee (0 for BE / covered apps).
double gr_shortfall(const RepairCandidate& c) {
  if (!is_gr(c.app)) return 0.0;
  const double missing = c.app->qoe.min_rate - c.allocated_rate;
  return missing > 0 ? missing : 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Base rules: the pre-refactor hard-coded behavior, verbatim.

std::size_t SchedulingPolicy::pick_next(
    const std::vector<PendingApp>& pending) const {
  (void)pending;
  return 0;  // FIFO: the classic pipeline submits in arrival order
}

std::size_t SchedulingPolicy::select_ct(
    const SelectContext& ctx, const std::vector<CtCandidate>& candidates)
    const {
  // Mirrors the historical inline loop of SparcleAssigner::assign():
  // initialize against ±infinity and take the first *strictly* better
  // candidate, so ties keep the lowest CT id.
  double best = ctx.most_constrained_pass ? kInf : -kInf;
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double g = candidates[i].gamma;
    const bool better = ctx.most_constrained_pass ? g < best : g > best;
    if (better) {
      best = g;
      chosen = i;
    }
  }
  return chosen;
}

bool SchedulingPolicy::repair_before(const RepairCandidate& a,
                                     const RepairCandidate& b) const {
  // Mirrors the historical stable_sort comparator of Scheduler::repair():
  // GR before BE; GR by descending guarantee; BE by descending priority.
  const bool ga = is_gr(a.app);
  const bool gb = is_gr(b.app);
  if (ga != gb) return ga;
  if (ga) return a.app->qoe.min_rate > b.app->qoe.min_rate;
  return a.app->qoe.priority > b.app->qoe.priority;
}

// ---------------------------------------------------------------------------
// Shortest-job-first.

std::size_t ShortestJobFirstPolicy::pick_next(
    const std::vector<PendingApp>& pending) const {
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < pending.size(); ++i)
    if (pending[i].size < pending[chosen].size) chosen = i;
  return chosen;
}

bool ShortestJobFirstPolicy::repair_before(const RepairCandidate& a,
                                           const RepairCandidate& b) const {
  const bool ga = is_gr(a.app);
  const bool gb = is_gr(b.app);
  if (ga != gb) return ga;  // guarantees are contractual: GR still first
  return a.size < b.size;   // then cheapest restore first within the class
}

// ---------------------------------------------------------------------------
// Deadline/latency-aware.

std::size_t DeadlineAwarePolicy::pick_next(
    const std::vector<PendingApp>& pending) const {
  // Earliest deadline first; equal deadlines (e.g. all patient) fall back
  // to arrival order via the strict comparison.
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < pending.size(); ++i)
    if (pending[i].deadline < pending[chosen].deadline) chosen = i;
  return chosen;
}

bool DeadlineAwarePolicy::repair_before(const RepairCandidate& a,
                                        const RepairCandidate& b) const {
  // Most degraded first: GR apps by absolute shortfall, then BE apps with
  // zero alive paths (total outage) before partially served ones.
  const double sa = gr_shortfall(a);
  const double sb = gr_shortfall(b);
  if (sa != sb) return sa > sb;
  const bool oa = !is_gr(a.app) && a.alive_paths == 0;
  const bool ob = !is_gr(b.app) && b.alive_paths == 0;
  if (oa != ob) return oa;
  return SchedulingPolicy::repair_before(a, b);
}

// ---------------------------------------------------------------------------
// Energy-aware.

std::size_t EnergyAwarePolicy::pick_next(
    const std::vector<PendingApp>& pending) const {
  // Least radio-hungry first: Σ TT bits drives the tx/rx power term.
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < pending.size(); ++i)
    if (pending[i].bits < pending[chosen].bits) chosen = i;
  return chosen;
}

std::size_t EnergyAwarePolicy::select_ct(
    const SelectContext& ctx,
    const std::vector<CtCandidate>& candidates) const {
  // Rate per incremental watt.  Placing CT i on host j costs the CPU term
  // cpu_full_load_watts * a_i / C_j plus the idle draw if j runs nothing
  // yet (EnergyModel charges idle only to occupied NCPs), so the policy
  // consolidates onto already-awake devices.  Infeasible candidates
  // (gamma <= 0) score -infinity so a feasible one always wins when any
  // exists — matching the default policy's preference for progress.
  if (ctx.net == nullptr || ctx.graph == nullptr || ctx.ct_host == nullptr)
    return SchedulingPolicy::select_ct(ctx, candidates);
  double best = -kInf;
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CtCandidate& c = candidates[i];
    double score = -kInf;
    if (c.host != kInvalidId && c.gamma > 0) {
      bool occupied = false;
      for (const NcpId h : *ctx.ct_host)
        if (h == c.host) {
          occupied = true;
          break;
        }
      const double cap = ctx.net->ncp(c.host).capacity[0];
      const double req = ctx.graph->ct(c.ct).requirement[0];
      double watts = occupied ? 0.0 : profile_.idle_watts;
      if (cap > kEps) watts += profile_.cpu_full_load_watts * (req / cap);
      score = c.gamma / (watts + kEps);
    }
    if (score > best) {
      best = score;
      chosen = i;
    }
  }
  return chosen;
}

// ---------------------------------------------------------------------------
// Registry.

std::vector<std::string> policy_names() {
  return {"default", "sjf", "deadline", "energy"};
}

std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name) {
  if (name == "default") return std::make_unique<DefaultPolicy>();
  if (name == "sjf") return std::make_unique<ShortestJobFirstPolicy>();
  if (name == "deadline") return std::make_unique<DeadlineAwarePolicy>();
  if (name == "energy") return std::make_unique<EnergyAwarePolicy>();
  std::string known;
  for (const std::string& n : policy_names())
    known += (known.empty() ? "" : ", ") + n;
  throw std::invalid_argument("unknown scheduling policy '" + name +
                              "' (known: " + known + ")");
}

}  // namespace sparcle::policy
