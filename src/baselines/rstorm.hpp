#pragma once

#include "core/assignment.hpp"

/// \file rstorm.hpp
/// R-Storm (Peng et al., Middleware 2015) — resource-aware scheduling in
/// Storm; the paper cites it ([22]) as the cloud-side state of the art.
///
/// Tasks are traversed breadth-first through the topology (so
/// communicating tasks are placed consecutively) and each is assigned to
/// the node minimizing a composite distance: the network hop distance to
/// its already-placed upstream tasks plus the euclidean distance between
/// the task's resource demand and the node's *remaining* soft capacity.
/// R-Storm is capacity-aware (unlike T-Storm) but treats requirements as
/// fixed amounts rather than per-rate loads, and never reasons about link
/// bandwidth — the two blind spots SPARCLE's evaluation targets.

namespace sparcle {

class RStormAssigner : public Assigner {
 public:
  std::string name() const override { return "R-Storm"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;
};

}  // namespace sparcle
