#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/assignment.hpp"

/// \file registry.hpp
/// Factory for the standard comparator set the evaluation section uses.

namespace sparcle {

/// Builds an assigner by name: "SPARCLE", "GS", "GRand", "Random",
/// "T-Storm", "R-Storm", "VNE", "HEFT".  The seed parameterizes the randomized ones.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Assigner> make_assigner(const std::string& name,
                                        std::uint64_t seed = 1);

/// The comparator set of the simulation figures (Figs. 9, 11-14):
/// SPARCLE, GRand, GS, Random, T-Storm, VNE.
std::vector<std::string> simulation_comparators();

/// The comparator set of the testbed figure (Fig. 6): SPARCLE, HEFT,
/// T-Storm, VNE (Cloud and Optimal are constructed separately — they need
/// the cloud NCP id / the search cap).
std::vector<std::string> testbed_comparators();

}  // namespace sparcle
