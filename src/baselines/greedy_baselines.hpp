#pragma once

#include <cstdint>

#include "core/assignment.hpp"

/// \file greedy_baselines.hpp
/// The paper's GS / GR(and) / Random comparators (§V): "a similar
/// placement algorithm as SPARCLE, but the CTs' placement is based on
/// their resource requirements and randomly, respectively, not considering
/// the connecting TTs' resource requirements."
///
///  * Greedy Sorted (GS): CTs ordered by total computation requirement
///    (descending); each is hosted on the NCP with the best residual
///    node-capacity fit — the γ node term only, no link terms.
///  * Greedy Random (GRand): random CT order, same node-only host choice.
///  * Random: both the order and the host are random.
///
/// All three route TTs along widest paths (SPARCLE's router), so the
/// comparison isolates CT placement.  In the NCP-bottleneck regime the
/// node-only host choice coincides with SPARCLE's γ choice, reproducing
/// the paper's §V-B equivalence claim.

namespace sparcle {

/// GS: static ranking by total computation requirement, descending (most
/// demanding CT first); host = argmax γ.
class GreedySortedAssigner : public Assigner {
 public:
  std::string name() const override { return "GS"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;
};

/// GRand: random CT order (seeded), host = argmax γ.
class GreedyRandomAssigner : public Assigner {
 public:
  explicit GreedyRandomAssigner(std::uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "GRand"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;

 private:
  std::uint64_t seed_;
};

/// Random: random CT order and random host (seeded).
class RandomAssigner : public Assigner {
 public:
  explicit RandomAssigner(std::uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "Random"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace sparcle
