#include "baselines/vne.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/greedy_engine.hpp"

namespace sparcle {

namespace {

/// PageRank-style rank over an undirected weighted graph described by a
/// per-node intrinsic weight H and an adjacency list.  Transition
/// probability from u to neighbour v is H_v / Σ_{w ∈ nbr(u)} H_w; damping
/// 0.85; 100 power iterations (plenty at these sizes).
std::vector<double> node_rank(
    const std::vector<double>& h,
    const std::vector<std::vector<std::size_t>>& nbr) {
  const std::size_t n = h.size();
  const double total_h = std::accumulate(h.begin(), h.end(), 0.0);
  std::vector<double> p(n, 1.0 / static_cast<double>(n)), next(n);
  constexpr double kDamping = 0.85;
  for (int iter = 0; iter < 100; ++iter) {
    for (std::size_t v = 0; v < n; ++v)
      next[v] = (1.0 - kDamping) *
                (total_h > 0 ? h[v] / total_h : 1.0 / static_cast<double>(n));
    for (std::size_t u = 0; u < n; ++u) {
      double denom = 0;
      for (std::size_t v : nbr[u]) denom += h[v];
      if (denom <= 0) continue;
      for (std::size_t v : nbr[u]) next[v] += p[u] * kDamping * h[v] / denom;
    }
    p = next;
  }
  return p;
}

}  // namespace

AssignmentResult VneAssigner::assign(const AssignmentProblem& problem) const {
  const TaskGraph& g = *problem.graph;
  const Network& net = *problem.net;

  // Substrate side: H_j = (Σ_r capacity) * (Σ incident link bandwidth).
  std::vector<double> hn(net.ncp_count());
  std::vector<std::vector<std::size_t>> nbr_n(net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    double cap_sum = 0;
    const ResourceVector& c = problem.capacities.ncp(j);
    for (std::size_t r = 0; r < c.size(); ++r) cap_sum += c[r];
    double bw_sum = 0;
    for (LinkId l : net.incident_links(j)) {
      bw_sum += problem.capacities.link(l);
      nbr_n[j].push_back(static_cast<std::size_t>(net.other_end(l, j)));
    }
    hn[j] = cap_sum * bw_sum;
  }
  const std::vector<double> rank_n = node_rank(hn, nbr_n);

  // Virtual side: H_i = (Σ_r requirement) * (Σ incident TT bits); the task
  // DAG is treated as an undirected virtual-network graph.
  std::vector<double> hv(g.ct_count());
  std::vector<std::vector<std::size_t>> nbr_v(g.ct_count());
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i) {
    double req_sum = 0;
    const ResourceVector& a = g.ct(i).requirement;
    for (std::size_t r = 0; r < a.size(); ++r) req_sum += a[r];
    double bits = 0;
    for (TtId k : g.in_tts(i)) {
      bits += g.tt(k).bits_per_unit;
      nbr_v[i].push_back(static_cast<std::size_t>(g.tt(k).src));
    }
    for (TtId k : g.out_tts(i)) {
      bits += g.tt(k).bits_per_unit;
      nbr_v[i].push_back(static_cast<std::size_t>(g.tt(k).dst));
    }
    // Avoid rank-zero CTs (sources/sinks with zero requirements).
    hv[i] = std::max(req_sum * bits, 1e-12);
  }
  const std::vector<double> rank_v = node_rank(hv, nbr_v);

  // Large-to-large mapping: k-th ranked unpinned CT on the k-th ranked
  // NCP, wrapping around when CTs outnumber NCPs.
  std::vector<CtId> ct_order;
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i)
    if (!problem.pinned.contains(i)) ct_order.push_back(i);
  std::stable_sort(ct_order.begin(), ct_order.end(),
                   [&](CtId x, CtId y) { return rank_v[x] > rank_v[y]; });
  std::vector<NcpId> ncp_order(net.ncp_count());
  std::iota(ncp_order.begin(), ncp_order.end(), 0);
  std::stable_sort(ncp_order.begin(), ncp_order.end(),
                   [&](NcpId x, NcpId y) { return rank_n[x] > rank_n[y]; });

  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();
  for (std::size_t k = 0; k < ct_order.size(); ++k)
    engine.commit(ct_order[k], ncp_order[k % ncp_order.size()]);
  return std::move(engine).finish();
}

}  // namespace sparcle
