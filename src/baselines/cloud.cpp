#include "baselines/cloud.hpp"

#include "core/greedy_engine.hpp"

namespace sparcle {

AssignmentResult CloudAssigner::assign(
    const AssignmentProblem& problem) const {
  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();
  for (CtId i = 0; i < static_cast<CtId>(problem.graph->ct_count()); ++i)
    if (!problem.pinned.contains(i)) engine.commit(i, cloud_);
  return std::move(engine).finish();
}

}  // namespace sparcle
