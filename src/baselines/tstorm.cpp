#include "baselines/tstorm.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/greedy_engine.hpp"

namespace sparcle {

AssignmentResult TStormAssigner::assign(
    const AssignmentProblem& problem) const {
  const TaskGraph& g = *problem.graph;
  const Network& net = *problem.net;
  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();

  // Total incident traffic of each CT (bits per data unit over all
  // adjacent TTs) — T-Storm's executor sort key.
  auto traffic = [&](CtId i) {
    double sum = 0;
    for (TtId k : g.in_tts(i)) sum += g.tt(k).bits_per_unit;
    for (TtId k : g.out_tts(i)) sum += g.tt(k).bits_per_unit;
    return sum;
  };

  std::vector<CtId> order;
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i)
    if (!problem.pinned.contains(i)) order.push_back(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](CtId x, CtId y) { return traffic(x) > traffic(y); });

  // Even-workload cap: at most ceil(|C| / |N|) CTs per NCP (slot-based
  // balancing, capacity-agnostic — pins count against their hosts too).
  const std::size_t cap =
      (g.ct_count() + net.ncp_count() - 1) / net.ncp_count();
  std::vector<std::size_t> slots(net.ncp_count(), 0);
  for (const auto& [ct, ncp] : problem.pinned) {
    (void)ct;
    ++slots[ncp];
  }

  for (CtId i : order) {
    // Incremental inter-node traffic of hosting i on j: the bits of every
    // TT towards an already-placed neighbour on a different node.
    NcpId best = kInvalidId;
    double best_added = std::numeric_limits<double>::infinity();
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
      if (slots[j] >= cap) continue;
      double added = 0;
      auto account = [&](TtId k, CtId other) {
        if (engine.placed(other) && engine.host(other) != j)
          added += g.tt(k).bits_per_unit;
      };
      for (TtId k : g.in_tts(i)) account(k, g.tt(k).src);
      for (TtId k : g.out_tts(i)) account(k, g.tt(k).dst);
      if (added < best_added) {
        best_added = added;
        best = j;
      }
    }
    if (best == kInvalidId) {
      // All NCPs at the slot cap (can happen when pins crowd one node):
      // fall back to the least-loaded NCP.
      best = 0;
      for (NcpId j = 1; j < static_cast<NcpId>(net.ncp_count()); ++j)
        if (slots[j] < slots[best]) best = j;
    }
    ++slots[best];
    engine.commit(i, best);
  }

  return std::move(engine).finish();
}

}  // namespace sparcle
