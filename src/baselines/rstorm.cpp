#include "baselines/rstorm.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "core/greedy_engine.hpp"

namespace sparcle {

namespace {

/// All-pairs hop distances by BFS from every node (small networks).
std::vector<std::vector<int>> hop_distances(const Network& net) {
  const std::size_t n = net.ncp_count();
  std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
  for (NcpId s = 0; s < static_cast<NcpId>(n); ++s) {
    std::queue<NcpId> q;
    q.push(s);
    dist[s][s] = 0;
    while (!q.empty()) {
      const NcpId v = q.front();
      q.pop();
      for (LinkId l : net.incident_links(v)) {
        if (!net.can_traverse(l, v)) continue;
        const NcpId u = net.other_end(l, v);
        if (dist[s][u] < 0) {
          dist[s][u] = dist[s][v] + 1;
          q.push(u);
        }
      }
    }
  }
  return dist;
}

}  // namespace

AssignmentResult RStormAssigner::assign(
    const AssignmentProblem& problem) const {
  const TaskGraph& g = *problem.graph;
  const Network& net = *problem.net;
  const std::size_t nr = net.schema().size();
  const auto hops = hop_distances(net);

  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();

  // Remaining soft capacity per node (fixed amounts, not per-rate loads —
  // R-Storm's cloud-side view of resources).
  std::vector<ResourceVector> remaining(net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    remaining[j] = problem.capacities.ncp(j);
  for (const auto& [ct, ncp] : problem.pinned) {
    remaining[ncp] -= g.ct(ct).requirement;
    remaining[ncp].clamp_nonnegative();
  }

  // Normalization scales for the euclidean term.
  ResourceVector scale(nr, 1e-12);
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    for (std::size_t r = 0; r < nr; ++r)
      scale[r] = std::max(scale[r], problem.capacities.ncp(j)[r]);
  int max_hops = 1;
  for (const auto& row : hops)
    for (int d : row) max_hops = std::max(max_hops, d);

  // Breadth-first traversal of the task graph from the sources, so each
  // task is placed right after its upstream peers.
  std::vector<CtId> order;
  {
    std::vector<char> seen(g.ct_count(), 0);
    std::queue<CtId> q;
    for (CtId s : g.sources()) {
      q.push(s);
      seen[s] = 1;
    }
    while (!q.empty()) {
      const CtId i = q.front();
      q.pop();
      if (!problem.pinned.contains(i)) order.push_back(i);
      for (TtId k : g.out_tts(i)) {
        const CtId d = g.tt(k).dst;
        if (!seen[d]) {
          seen[d] = 1;
          q.push(d);
        }
      }
    }
  }

  for (CtId i : order) {
    NcpId best = kInvalidId;
    double best_score = std::numeric_limits<double>::infinity();
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
      // Soft capacity check: skip nodes that cannot fit the task at all.
      bool fits = true;
      for (std::size_t r = 0; r < nr; ++r)
        if (g.ct(i).requirement[r] > remaining[j][r]) fits = false;

      // Network distance to placed upstream tasks, traffic-weighted.
      double net_dist = 0, weight_sum = 0;
      auto account = [&](TtId k, CtId other) {
        if (!engine.placed(other)) return;
        const int d = hops[engine.host(other)][j];
        const double w = g.tt(k).bits_per_unit;
        net_dist += (d < 0 ? max_hops + 1 : d) * w;
        weight_sum += w;
      };
      for (TtId k : g.in_tts(i)) account(k, g.tt(k).src);
      for (TtId k : g.out_tts(i)) account(k, g.tt(k).dst);
      const double dist_term =
          weight_sum > 0 ? net_dist / (weight_sum * max_hops) : 0.0;

      // Resource distance: demand vs remaining, normalized per type.
      double res_term = 0;
      for (std::size_t r = 0; r < nr; ++r) {
        const double d =
            (g.ct(i).requirement[r] - remaining[j][r]) / scale[r];
        res_term += d * d;
      }
      res_term = std::sqrt(res_term);

      double score = dist_term + res_term;
      if (!fits) score += 10.0;  // soft-constraint penalty, R-Storm style
      if (score < best_score) {
        best_score = score;
        best = j;
      }
    }
    if (best == kInvalidId) {
      AssignmentResult r;
      r.message = "R-Storm: no candidate host";
      return r;
    }
    engine.commit(i, best);
    remaining[best] -= g.ct(i).requirement;
    remaining[best].clamp_nonnegative();
  }

  return std::move(engine).finish();
}

}  // namespace sparcle
