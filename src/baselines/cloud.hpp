#pragma once

#include "core/assignment.hpp"

/// \file cloud.hpp
/// The cloud-computing reference point of the Fig. 6 experiment: every
/// unpinned CT runs on a designated cloud NCP; data sources and consumers
/// stay at their pinned field hosts, so the raw streams must cross the
/// access network to reach the cloud.

namespace sparcle {

class CloudAssigner : public Assigner {
 public:
  explicit CloudAssigner(NcpId cloud) : cloud_(cloud) {}
  std::string name() const override { return "Cloud"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;

 private:
  NcpId cloud_;
};

}  // namespace sparcle
