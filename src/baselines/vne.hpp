#pragma once

#include "core/assignment.hpp"

/// \file vne.hpp
/// Virtual-network-embedding baseline (Cheng et al., SIGCOMM CCR 2011):
/// topology-aware node ranking via a PageRank-style random walk.
///
/// Substrate nodes (NCPs) are ranked by a Markov random walk whose
/// stationary distribution is biased towards nodes with high
/// resource-times-bandwidth products; virtual nodes (CTs) are ranked the
/// same way on the task graph (requirement times incident TT bits).  The
/// k-th ranked CT is embedded on the k-th ranked NCP (large-to-large),
/// then TTs are routed on widest paths.  As in VNE, the mapping treats the
/// requirements as *fixed* — it does not adapt to the achievable input
/// rate, the paper's critique of this line of work.

namespace sparcle {

class VneAssigner : public Assigner {
 public:
  std::string name() const override { return "VNE"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;
};

}  // namespace sparcle
