#include "baselines/greedy_baselines.hpp"
#include <limits>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/greedy_engine.hpp"

namespace sparcle {

namespace {

/// CTs not pinned by the problem, i.e. the ones the algorithm must order.
std::vector<CtId> unpinned_cts(const AssignmentProblem& p) {
  std::vector<CtId> cts;
  for (CtId i = 0; i < static_cast<CtId>(p.graph->ct_count()); ++i)
    if (!p.pinned.contains(i)) cts.push_back(i);
  return cts;
}

/// Node-capacity-only host choice: argmax_j min_r C_j^(r) / (a_i^(r) +
/// existing load) — the γ node term with the link terms dropped ("not
/// considering the connecting TTs").
NcpId best_node_fit(const GreedyEngine& engine, CtId i) {
  const ResourceVector& req = engine.graph().ct(i).requirement;
  NcpId best = kInvalidId;
  double best_rate = -1;
  for (NcpId j = 0; j < static_cast<NcpId>(engine.net().ncp_count()); ++j) {
    double rate = std::numeric_limits<double>::infinity();
    const ResourceVector& existing = engine.load().ncp_load(j);
    for (std::size_t r = 0; r < req.size(); ++r) {
      const double denom = req[r] + existing[r];
      if (denom <= 0) continue;
      rate = std::min(rate, engine.capacities().ncp(j)[r] / denom);
    }
    if (rate > best_rate) {
      best_rate = rate;
      best = j;
    }
  }
  return best;
}

AssignmentResult place_in_order(const AssignmentProblem& problem,
                                const std::vector<CtId>& order) {
  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();
  for (CtId i : order) {
    const NcpId j = best_node_fit(engine, i);
    if (j == kInvalidId) {
      AssignmentResult r;
      r.message = "no candidate host";
      return r;
    }
    engine.commit(i, j);
  }
  return std::move(engine).finish();
}

}  // namespace

AssignmentResult GreedySortedAssigner::assign(
    const AssignmentProblem& problem) const {
  std::vector<CtId> order = unpinned_cts(problem);
  // Total computation requirement, summed across resource types (the GS
  // ranking is capacity- and TT-agnostic by design — this is what degrades
  // it in the multi-resource experiment of Fig. 12).
  auto total_req = [&](CtId i) {
    const ResourceVector& a = problem.graph->ct(i).requirement;
    double sum = 0;
    for (std::size_t r = 0; r < a.size(); ++r) sum += a[r];
    return sum;
  };
  std::stable_sort(order.begin(), order.end(), [&](CtId x, CtId y) {
    return total_req(x) > total_req(y);
  });
  return place_in_order(problem, order);
}

AssignmentResult GreedyRandomAssigner::assign(
    const AssignmentProblem& problem) const {
  std::vector<CtId> order = unpinned_cts(problem);
  std::mt19937_64 rng(seed_);
  std::shuffle(order.begin(), order.end(), rng);
  return place_in_order(problem, order);
}

AssignmentResult RandomAssigner::assign(
    const AssignmentProblem& problem) const {
  std::vector<CtId> order = unpinned_cts(problem);
  std::mt19937_64 rng(seed_);
  std::shuffle(order.begin(), order.end(), rng);
  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();
  std::uniform_int_distribution<NcpId> pick(
      0, static_cast<NcpId>(problem.net->ncp_count()) - 1);
  for (CtId i : order) engine.commit(i, pick(rng));
  return std::move(engine).finish();
}

}  // namespace sparcle
