#pragma once

#include <cstdint>

#include "core/assignment.hpp"

/// \file exhaustive.hpp
/// Exhaustive-search "optimal" used as the reference in Figs. 6 and 8.
///
/// Enumerates every assignment of the unpinned CTs to NCPs; for each, TTs
/// are routed greedily on widest paths (the same router every algorithm
/// here uses), and the assignment with the maximum bottleneck rate wins.
/// Exponential — guarded by a search-space cap; intended for the small
/// instances where the paper runs its optimality comparison.

namespace sparcle {

class ExhaustiveAssigner : public Assigner {
 public:
  /// `max_assignments` caps |N|^|unpinned CTs|; assign() throws
  /// std::invalid_argument beyond it.
  explicit ExhaustiveAssigner(std::uint64_t max_assignments = 5'000'000)
      : max_assignments_(max_assignments) {}

  std::string name() const override { return "Optimal"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;

 private:
  std::uint64_t max_assignments_;
};

}  // namespace sparcle
