#pragma once

#include "core/assignment.hpp"

/// \file heft.hpp
/// HEFT (Topcuoglu et al., TPDS 2002): Heterogeneous Earliest Finish Time.
///
/// CTs receive an *upward rank* — their average execution cost plus the
/// maximum over successors of (average communication cost + successor
/// rank) — and are placed in decreasing rank order on the NCP minimizing
/// the earliest finish time of one data unit.  HEFT optimizes per-unit
/// makespan, not the sustainable rate, and considers link costs only
/// through averages — the two properties the paper's evaluation exposes.

namespace sparcle {

class HeftAssigner : public Assigner {
 public:
  std::string name() const override { return "HEFT"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;
};

}  // namespace sparcle
