#include "baselines/heft.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/greedy_engine.hpp"
#include "core/widest_path.hpp"

namespace sparcle {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Execution time of one data unit of CT i on NCP j:
/// max_r a_i^(r) / C_j^(r); +inf when some required resource is absent.
double exec_time(const TaskGraph& g, const CapacitySnapshot& cap, CtId i,
                 NcpId j) {
  const ResourceVector& a = g.ct(i).requirement;
  double t = 0;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r] <= 0) continue;
    if (cap.ncp(j)[r] <= 0) return kInf;
    t = std::max(t, a[r] / cap.ncp(j)[r]);
  }
  return t;
}

}  // namespace

AssignmentResult HeftAssigner::assign(const AssignmentProblem& problem) const {
  const TaskGraph& g = *problem.graph;
  const Network& net = *problem.net;
  const CapacitySnapshot& cap = problem.capacities;

  // Average execution cost per CT and average link bandwidth.
  std::vector<double> w(g.ct_count(), 0.0);
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i) {
    double sum = 0;
    std::size_t usable = 0;
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
      const double t = exec_time(g, cap, i, j);
      if (t < kInf) {
        sum += t;
        ++usable;
      }
    }
    w[i] = usable > 0 ? sum / static_cast<double>(usable) : kInf;
  }
  double bw_sum = 0;
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    bw_sum += cap.link(l);
  const double avg_bw =
      net.link_count() > 0 ? bw_sum / static_cast<double>(net.link_count())
                           : 0.0;

  // Upward ranks in reverse topological order.
  std::vector<double> rank(g.ct_count(), 0.0);
  const std::vector<CtId>& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const CtId i = *it;
    double best_succ = 0;
    for (TtId k : g.out_tts(i)) {
      const double comm =
          avg_bw > 0 ? g.tt(k).bits_per_unit / avg_bw : 0.0;
      best_succ = std::max(best_succ, comm + rank[g.tt(k).dst]);
    }
    rank[i] = w[i] + best_succ;
  }

  std::vector<CtId> order;
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i)
    if (!problem.pinned.contains(i)) order.push_back(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](CtId x, CtId y) { return rank[x] > rank[y]; });

  // Schedule one data unit: EFT(i, j) = max over placed predecessors of
  // (AFT(pred) + transfer time between hosts) + exec time, where the
  // transfer time uses the widest-path bandwidth between the hosts.
  GreedyEngine engine(problem, true, GreedyEngine::Routing::kShortestHops);
  engine.commit_pins();
  std::vector<double> aft(g.ct_count(), 0.0);  // actual finish times
  std::vector<double> ncp_ready(net.ncp_count(), 0.0);

  // Pinned CTs are "scheduled" first at their hosts.
  for (const auto& [ct, ncp] : problem.pinned) {
    const double t = exec_time(g, cap, ct, ncp);
    aft[ct] = ncp_ready[ncp] + (t == kInf ? 0.0 : t);
    ncp_ready[ncp] = aft[ct];
  }

  for (CtId i : order) {
    NcpId best = kInvalidId;
    double best_eft = kInf;
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
      const double exec = exec_time(g, cap, i, j);
      if (exec == kInf) continue;
      double est = ncp_ready[j];
      bool reachable = true;
      for (TtId k : g.in_tts(i)) {
        const CtId pred = g.tt(k).src;
        if (!engine.placed(pred)) continue;
        const NcpId pj = engine.host(pred);
        double comm = 0;
        if (pj != j) {
          const WidestPathResult p = best_tt_path(
              net, cap, engine.load(), g.tt(k).bits_per_unit, pj, j);
          if (!p.reachable) {
            reachable = false;
            break;
          }
          comm = 1.0 / p.width;  // seconds per data unit at the bottleneck
        }
        est = std::max(est, aft[pred] + comm);
      }
      if (!reachable) continue;
      const double eft = est + exec;
      if (eft < best_eft) {
        best_eft = eft;
        best = j;
      }
    }
    if (best == kInvalidId) {
      AssignmentResult r;
      r.message = "HEFT: no reachable host";
      return r;
    }
    engine.commit(i, best);
    aft[i] = best_eft;
    ncp_ready[best] = best_eft;
  }

  return std::move(engine).finish();
}

}  // namespace sparcle
