#include "baselines/exhaustive.hpp"

#include <stdexcept>
#include <vector>

#include "core/greedy_engine.hpp"

namespace sparcle {

AssignmentResult ExhaustiveAssigner::assign(
    const AssignmentProblem& problem) const {
  const TaskGraph& g = *problem.graph;
  const std::size_t n = problem.net->ncp_count();

  std::vector<CtId> free_cts;
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i)
    if (!problem.pinned.contains(i)) free_cts.push_back(i);

  // Guard the search space.
  std::uint64_t space = 1;
  for (std::size_t k = 0; k < free_cts.size(); ++k) {
    space *= n;
    if (space > max_assignments_)
      throw std::invalid_argument(
          "ExhaustiveAssigner: search space exceeds the configured cap");
  }

  AssignmentResult best;
  best.message = "no feasible assignment";
  std::vector<NcpId> hosts(g.ct_count(), kInvalidId);
  for (const auto& [ct, ncp] : problem.pinned) hosts[ct] = ncp;
  for (std::uint64_t code = 0; code < space; ++code) {
    std::uint64_t c = code;
    for (CtId i : free_cts) {
      hosts[i] = static_cast<NcpId>(c % n);
      c /= n;
    }
    AssignmentResult r = evaluate_fixed_hosts(problem, hosts);
    if (r.feasible && r.rate > best.rate) best = std::move(r);
  }
  if (best.feasible) best.message.clear();
  return best;
}

}  // namespace sparcle
