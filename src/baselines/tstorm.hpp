#pragma once

#include "core/assignment.hpp"

/// \file tstorm.hpp
/// T-Storm (Xu et al., ICDCS 2014): traffic-aware online scheduling.
///
/// Executors (CTs) are sorted by their total incident traffic, descending,
/// and each is placed on the worker (NCP) that minimizes the *incremental
/// inter-node traffic*, subject to an even workload cap (T-Storm balances
/// executors across workers by count — it does not model heterogeneous
/// resource capacities, which is exactly the paper's critique of it).

namespace sparcle {

class TStormAssigner : public Assigner {
 public:
  std::string name() const override { return "T-Storm"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;
};

}  // namespace sparcle
