#include "baselines/registry.hpp"

#include <stdexcept>

#include "baselines/greedy_baselines.hpp"
#include "baselines/heft.hpp"
#include "baselines/rstorm.hpp"
#include "baselines/tstorm.hpp"
#include "baselines/vne.hpp"
#include "core/sparcle_assigner.hpp"

namespace sparcle {

std::unique_ptr<Assigner> make_assigner(const std::string& name,
                                        std::uint64_t seed) {
  if (name == "SPARCLE") return std::make_unique<SparcleAssigner>();
  if (name == "GS") return std::make_unique<GreedySortedAssigner>();
  if (name == "GRand") return std::make_unique<GreedyRandomAssigner>(seed);
  if (name == "Random") return std::make_unique<RandomAssigner>(seed);
  if (name == "T-Storm") return std::make_unique<TStormAssigner>();
  if (name == "VNE") return std::make_unique<VneAssigner>();
  if (name == "HEFT") return std::make_unique<HeftAssigner>();
  if (name == "R-Storm") return std::make_unique<RStormAssigner>();
  throw std::invalid_argument("unknown assigner: " + name);
}

std::vector<std::string> simulation_comparators() {
  return {"SPARCLE", "GRand", "GS", "Random", "T-Storm", "VNE"};
}

std::vector<std::string> testbed_comparators() {
  return {"SPARCLE", "HEFT", "T-Storm", "VNE"};
}

}  // namespace sparcle
