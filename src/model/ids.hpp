#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

/// \file ids.hpp
/// Identifier conventions shared across all SPARCLE libraries.
///
/// Computation tasks (CTs), transport tasks (TTs), networked computing
/// points (NCPs) and links are addressed by dense zero-based indices into
/// their owning container (TaskGraph or Network).  An index of -1 denotes
/// "unassigned".  ElementKey unifies NCPs and links where the paper treats
/// them uniformly (load vectors, failure analysis, bottleneck search).

/// All SPARCLE library types and algorithms.
namespace sparcle {

using CtId = std::int32_t;    ///< computation-task index within a TaskGraph
using TtId = std::int32_t;    ///< transport-task index within a TaskGraph
using NcpId = std::int32_t;   ///< computing-node index within a Network
using LinkId = std::int32_t;  ///< link index within a Network

/// Sentinel index: "no task/node/link assigned".
inline constexpr std::int32_t kInvalidId = -1;

/// A computing-network element: either an NCP or a link.
///
/// The paper's capacity constraint `Rx <= C` runs over the concatenation
/// N ∪ L of nodes and links; ElementKey is that concatenated index space.
struct ElementKey {
  /// Which index space the key addresses.
  enum class Kind : std::uint8_t {
    kNcp,   ///< a computing node
    kLink,  ///< a communication link
  };

  Kind kind{Kind::kNcp};          ///< node or link
  std::int32_t index{kInvalidId};  ///< index within the owning Network

  /// Key addressing NCP `id`.
  static constexpr ElementKey ncp(NcpId id) { return {Kind::kNcp, id}; }
  /// Key addressing link `id`.
  static constexpr ElementKey link(LinkId id) { return {Kind::kLink, id}; }

  /// Keys are equal when kind and index both match.
  friend bool operator==(const ElementKey&, const ElementKey&) = default;
  /// Lexicographic (kind, index) order, so NCPs sort before links.
  friend auto operator<=>(const ElementKey&, const ElementKey&) = default;
};

}  // namespace sparcle

/// Hash support so ElementKey works in unordered containers.
template <>
struct std::hash<sparcle::ElementKey> {
  /// Packs (index, kind) into one size_t.
  std::size_t operator()(const sparcle::ElementKey& k) const noexcept {
    return (static_cast<std::size_t>(k.index) << 1) |
           static_cast<std::size_t>(k.kind);
  }
};
