#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

/// \file ids.hpp
/// Identifier conventions shared across all SPARCLE libraries.
///
/// Computation tasks (CTs), transport tasks (TTs), networked computing
/// points (NCPs) and links are addressed by dense zero-based indices into
/// their owning container (TaskGraph or Network).  An index of -1 denotes
/// "unassigned".  ElementKey unifies NCPs and links where the paper treats
/// them uniformly (load vectors, failure analysis, bottleneck search).

namespace sparcle {

using CtId = std::int32_t;    ///< computation-task index within a TaskGraph
using TtId = std::int32_t;    ///< transport-task index within a TaskGraph
using NcpId = std::int32_t;   ///< computing-node index within a Network
using LinkId = std::int32_t;  ///< link index within a Network

inline constexpr std::int32_t kInvalidId = -1;

/// A computing-network element: either an NCP or a link.
///
/// The paper's capacity constraint `Rx <= C` runs over the concatenation
/// N ∪ L of nodes and links; ElementKey is that concatenated index space.
struct ElementKey {
  enum class Kind : std::uint8_t { kNcp, kLink };

  Kind kind{Kind::kNcp};
  std::int32_t index{kInvalidId};

  static constexpr ElementKey ncp(NcpId id) { return {Kind::kNcp, id}; }
  static constexpr ElementKey link(LinkId id) { return {Kind::kLink, id}; }

  friend bool operator==(const ElementKey&, const ElementKey&) = default;
  friend auto operator<=>(const ElementKey&, const ElementKey&) = default;
};

}  // namespace sparcle

template <>
struct std::hash<sparcle::ElementKey> {
  std::size_t operator()(const sparcle::ElementKey& k) const noexcept {
    return (static_cast<std::size_t>(k.index) << 1) |
           static_cast<std::size_t>(k.kind);
  }
};
