#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "model/ids.hpp"
#include "model/task_graph.hpp"

/// \file application.hpp
/// A stream-processing application request: a task graph plus the QoE
/// contract of §III-A (Best-Effort priority / availability, or
/// Guaranteed-Rate minimum rate / min-rate availability) and the pinning
/// of its source and sink CTs to predetermined hosts (footnote 1).

namespace sparcle {

/// QoE service class (§III-A).
enum class QoeClass {
  kBestEffort,      ///< no rate floor; weighted-proportional-fair share
  kGuaranteedRate,  ///< minimum rate for a minimum fraction of time
};

/// The QoE contract an application requests.
struct QoeSpec {
  QoeClass cls{QoeClass::kBestEffort};  ///< which service class applies

  // Best-Effort fields.
  double priority{1.0};          ///< P_j, relative weight among BE apps
  double availability{0.0};      ///< A_j, required P(>=1 path works); 0 = none

  // Guaranteed-Rate fields.
  double min_rate{0.0};              ///< R_j, data units per second
  double min_rate_availability{0.0}; ///< A_j, required P(rate >= R_j)

  /// A Best-Effort contract with relative weight `priority`.
  static QoeSpec best_effort(double priority, double availability = 0.0) {
    QoeSpec q;
    q.cls = QoeClass::kBestEffort;
    q.priority = priority;
    q.availability = availability;
    return q;
  }
  /// A Guaranteed-Rate contract: `min_rate` sustained with probability
  /// at least `min_rate_availability`.
  static QoeSpec guaranteed_rate(double min_rate,
                                 double min_rate_availability) {
    QoeSpec q;
    q.cls = QoeClass::kGuaranteedRate;
    q.min_rate = min_rate;
    q.min_rate_availability = min_rate_availability;
    return q;
  }
};

/// An application request.  The task graph is shared (several scheduler
/// components hold references to it while paths accumulate).
struct Application {
  std::string name;                        ///< unique label among submissions
  std::shared_ptr<const TaskGraph> graph;  ///< finalized processing DAG
  QoeSpec qoe;                             ///< requested service contract
  /// Predetermined hosts: typically every source CT (camera/sensor site)
  /// and every sink CT (result consumer) must appear here.
  std::map<CtId, NcpId> pinned;

  /// Validates that the graph is finalized and that all sources and sinks
  /// are pinned; throws std::invalid_argument otherwise.
  void validate() const {
    if (!graph || !graph->finalized())
      throw std::invalid_argument("application '" + name +
                                  "' has no finalized task graph");
    for (CtId s : graph->sources())
      if (!pinned.contains(s))
        throw std::invalid_argument("application '" + name +
                                    "': source CT '" + graph->ct(s).name +
                                    "' is not pinned to a data source NCP");
    for (CtId s : graph->sinks())
      if (!pinned.contains(s))
        throw std::invalid_argument("application '" + name + "': sink CT '" +
                                    graph->ct(s).name +
                                    "' is not pinned to a consumer NCP");
    if (qoe.cls == QoeClass::kBestEffort && qoe.priority <= 0)
      throw std::invalid_argument("application '" + name +
                                  "': BE priority must be positive");
    if (qoe.cls == QoeClass::kGuaranteedRate && qoe.min_rate <= 0)
      throw std::invalid_argument("application '" + name +
                                  "': GR min rate must be positive");
  }
};

}  // namespace sparcle
