#pragma once

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

/// \file resource.hpp
/// Multi-type resource quantities (the paper's a_i^(r) and C_j^(r)).
///
/// A ResourceSchema names the computation resource types in play (e.g.
/// {"cpu"} or {"cpu", "memory"}).  A ResourceVector holds one quantity per
/// type.  Link bandwidth (the "(b)" resource) is kept as a plain scalar
/// elsewhere because it never mixes with node resources.

namespace sparcle {

/// Names the computation resource types of a scenario.  All task
/// requirement vectors and NCP capacity vectors in one scenario must have
/// exactly `size()` entries, in schema order.
class ResourceSchema {
 public:
  /// Defaults to the single-type {"cpu"} schema.
  ResourceSchema() = default;
  /// Builds a schema from explicit type names, in order.
  explicit ResourceSchema(std::vector<std::string> names)
      : names_(std::move(names)) {}

  /// Convenience single-type schema used by most of the paper's evaluation.
  static ResourceSchema cpu_only() { return ResourceSchema({"cpu"}); }
  /// Two-type schema used by the Fig. 12 multi-resource experiment.
  static ResourceSchema cpu_memory() {
    return ResourceSchema({"cpu", "memory"});
  }

  /// Number of resource types.
  std::size_t size() const { return names_.size(); }
  /// Name of resource type `r` (bounds-checked).
  const std::string& name(std::size_t r) const { return names_.at(r); }
  /// All type names in schema order.
  const std::vector<std::string>& names() const { return names_; }

  /// Schemas are equal when their name lists are equal.
  friend bool operator==(const ResourceSchema&,
                         const ResourceSchema&) = default;

 private:
  std::vector<std::string> names_{"cpu"};
};

/// A per-resource-type quantity vector.  Immutable size; element-wise
/// arithmetic helpers cover the load-accounting needs of the algorithms.
class ResourceVector {
 public:
  /// An empty (zero-type) vector.
  ResourceVector() = default;
  /// A vector of `n` components, all set to `fill`.
  explicit ResourceVector(std::size_t n, double fill = 0.0)
      : v_(n, fill) {}
  /// A vector from an explicit component list.
  ResourceVector(std::initializer_list<double> init) : v_(init) {}

  /// Single-type helper: a vector {q} for cpu-only schemas.
  static ResourceVector scalar(double q) { return ResourceVector{q}; }

  /// Number of components (must match the scenario schema's size()).
  std::size_t size() const { return v_.size(); }
  /// Component `r`, bounds-checked.
  double operator[](std::size_t r) const { return v_.at(r); }
  /// Mutable component `r`, bounds-checked.
  double& operator[](std::size_t r) { return v_.at(r); }

  /// Element-wise addition; sizes must match.
  ResourceVector& operator+=(const ResourceVector& o) {
    check_same_size(o);
    for (std::size_t r = 0; r < v_.size(); ++r) v_[r] += o.v_[r];
    return *this;
  }
  /// Element-wise subtraction; sizes must match.
  ResourceVector& operator-=(const ResourceVector& o) {
    check_same_size(o);
    for (std::size_t r = 0; r < v_.size(); ++r) v_[r] -= o.v_[r];
    return *this;
  }
  /// Uniform scaling of every component.
  ResourceVector& operator*=(double s) {
    for (double& x : v_) x *= s;
    return *this;
  }
  /// Element-wise sum of two vectors.
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }
  /// Element-wise difference of two vectors.
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    a -= b;
    return a;
  }
  /// A copy of `a` with every component scaled by `s`.
  friend ResourceVector operator*(ResourceVector a, double s) {
    a *= s;
    return a;
  }

  /// True if every component is (numerically) zero.
  bool is_zero(double eps = 0.0) const {
    for (double x : v_)
      if (x > eps || x < -eps) return false;
    return true;
  }

  /// Clamp all components below zero up to zero (used when subtracting
  /// reservations in the presence of floating-point slack).
  void clamp_nonnegative() {
    for (double& x : v_)
      if (x < 0) x = 0;
  }

  /// Largest component (0 for vectors with no positive component).
  double max_component() const {
    double m = 0;
    for (double x : v_)
      if (x > m) m = x;
    return m;
  }

  /// Exact element-wise equality.
  friend bool operator==(const ResourceVector&,
                         const ResourceVector&) = default;

 private:
  void check_same_size(const ResourceVector& o) const {
    if (o.v_.size() != v_.size())
      throw std::invalid_argument("ResourceVector size mismatch");
  }

  std::vector<double> v_;
};

}  // namespace sparcle
