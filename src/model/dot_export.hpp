#pragma once

#include <string>

#include "model/network.hpp"
#include "model/placement.hpp"
#include "model/task_graph.hpp"

/// \file dot_export.hpp
/// Graphviz exports for debugging and documentation: render the computing
/// network, a task graph, or a placement (task graph overlaid on the
/// network) as DOT text (`dot -Tsvg` renders them).

namespace sparcle {

/// The computing network: NCPs as boxes labelled with capacities, links as
/// edges labelled with bandwidth.
std::string network_to_dot(const Network& net);

/// The application DAG: CTs as ellipses labelled with requirements, TTs as
/// directed edges labelled with bits per unit.
std::string task_graph_to_dot(const TaskGraph& graph);

/// A placement: the network with each NCP listing its hosted CTs, and TT
/// routes drawn along the links they occupy.
std::string placement_to_dot(const Network& net, const TaskGraph& graph,
                             const Placement& placement);

}  // namespace sparcle
