#include "model/network.hpp"

#include <queue>
#include <stdexcept>

namespace sparcle {

NcpId Network::add_ncp(std::string name, ResourceVector capacity,
                       double fail_prob, std::string region) {
  if (capacity.size() != schema_.size())
    throw std::invalid_argument("NCP '" + name +
                                "' capacity does not match schema");
  if (fail_prob < 0.0 || fail_prob >= 1.0)
    throw std::invalid_argument("NCP '" + name +
                                "' failure probability out of [0,1)");
  ncps_.push_back(
      {std::move(name), std::move(capacity), fail_prob, std::move(region)});
  csr_valid_ = false;
  return static_cast<NcpId>(ncps_.size() - 1);
}

LinkId Network::add_link(std::string name, NcpId a, NcpId b, double bandwidth,
                         double fail_prob) {
  if (a < 0 || b < 0 || a >= static_cast<NcpId>(ncps_.size()) ||
      b >= static_cast<NcpId>(ncps_.size()))
    throw std::invalid_argument("link '" + name + "' has unknown endpoint");
  if (a == b)
    throw std::invalid_argument("link '" + name + "' is a self-loop");
  if (bandwidth <= 0)
    throw std::invalid_argument("link '" + name +
                                "' must have positive bandwidth");
  if (fail_prob < 0.0 || fail_prob >= 1.0)
    throw std::invalid_argument("link '" + name +
                                "' failure probability out of [0,1)");
  links_.push_back({std::move(name), bandwidth, a, b, fail_prob, false});
  csr_valid_ = false;
  return static_cast<LinkId>(links_.size() - 1);
}

LinkId Network::add_directed_link(std::string name, NcpId from, NcpId to,
                                  double bandwidth, double fail_prob) {
  const LinkId id = add_link(std::move(name), from, to, bandwidth, fail_prob);
  links_[id].directed = true;
  return id;
}

NcpId Network::other_end(LinkId l, NcpId j) const {
  const Link& lk = links_.at(l);
  if (lk.a == j) return lk.b;
  if (lk.b == j) return lk.a;
  throw std::invalid_argument("NCP is not an endpoint of link");
}

void Network::rebuild_csr() const {
  const std::size_t n = ncps_.size();
  csr_off_.assign(n + 1, 0);
  for (const Link& lk : links_) {
    ++csr_off_[lk.a + 1];
    ++csr_off_[lk.b + 1];
  }
  for (std::size_t j = 0; j < n; ++j) csr_off_[j + 1] += csr_off_[j];
  csr_links_.resize(2 * links_.size());
  std::vector<std::int32_t> cursor(csr_off_.begin(), csr_off_.end() - 1);
  for (LinkId l = 0; l < static_cast<LinkId>(links_.size()); ++l) {
    csr_links_[cursor[links_[l].a]++] = l;
    csr_links_[cursor[links_[l].b]++] = l;
  }
  csr_valid_ = true;
}

bool Network::connected() const {
  if (ncps_.empty()) return true;
  std::vector<char> seen(ncps_.size(), 0);
  std::queue<NcpId> q;
  q.push(0);
  seen[0] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const NcpId v = q.front();
    q.pop();
    for (LinkId l : incident_links(v)) {
      const NcpId u = other_end(l, v);
      if (!seen[u]) {
        seen[u] = 1;
        ++count;
        q.push(u);
      }
    }
  }
  return count == ncps_.size();
}

}  // namespace sparcle
