#include "model/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace sparcle {

CtId TaskGraph::add_ct(std::string name, ResourceVector requirement) {
  require_not_finalized();
  if (requirement.size() != schema_.size())
    throw std::invalid_argument("CT '" + name +
                                "' requirement does not match schema");
  cts_.push_back({std::move(name), std::move(requirement)});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<CtId>(cts_.size() - 1);
}

TtId TaskGraph::add_tt(std::string name, double bits_per_unit, CtId src,
                       CtId dst) {
  require_not_finalized();
  if (src < 0 || dst < 0 || src >= static_cast<CtId>(cts_.size()) ||
      dst >= static_cast<CtId>(cts_.size()))
    throw std::invalid_argument("TT '" + name + "' has unknown endpoint");
  if (src == dst)
    throw std::invalid_argument("TT '" + name + "' is a self-loop");
  if (bits_per_unit < 0)
    throw std::invalid_argument("TT '" + name + "' has negative bits");
  tts_.push_back({std::move(name), bits_per_unit, src, dst});
  const TtId id = static_cast<TtId>(tts_.size() - 1);
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

void TaskGraph::finalize() {
  require_not_finalized();
  if (cts_.empty()) throw std::invalid_argument("task graph has no CTs");

  // Kahn's algorithm: topological order + cycle detection.
  std::vector<int> indeg(cts_.size(), 0);
  for (const auto& t : tts_) ++indeg[t.dst];
  std::queue<CtId> q;
  for (CtId i = 0; i < static_cast<CtId>(cts_.size()); ++i)
    if (indeg[i] == 0) q.push(i);
  topo_.clear();
  while (!q.empty()) {
    const CtId i = q.front();
    q.pop();
    topo_.push_back(i);
    for (TtId k : out_[i])
      if (--indeg[tts_[k].dst] == 0) q.push(tts_[k].dst);
  }
  if (topo_.size() != cts_.size())
    throw std::invalid_argument("task graph contains a cycle");

  sources_.clear();
  sinks_.clear();
  for (CtId i = 0; i < static_cast<CtId>(cts_.size()); ++i) {
    if (in_[i].empty()) sources_.push_back(i);
    if (out_[i].empty()) sinks_.push_back(i);
  }

  // Transitive closure in reverse topological order.
  reach_.assign(cts_.size(), std::vector<char>(cts_.size(), 0));
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const CtId i = *it;
    for (TtId k : out_[i]) {
      const CtId j = tts_[k].dst;
      reach_[i][j] = 1;
      for (CtId m = 0; m < static_cast<CtId>(cts_.size()); ++m)
        if (reach_[j][m]) reach_[i][m] = 1;
    }
  }

  finalized_ = true;
}

const std::vector<CtId>& TaskGraph::sources() const {
  require_finalized();
  return sources_;
}

const std::vector<CtId>& TaskGraph::sinks() const {
  require_finalized();
  return sinks_;
}

const std::vector<CtId>& TaskGraph::topological_order() const {
  require_finalized();
  return topo_;
}

bool TaskGraph::reaches(CtId a, CtId b) const {
  require_finalized();
  return reach_.at(a).at(b) != 0;
}

std::vector<TtId> TaskGraph::tts_between(CtId a, CtId b) const {
  require_finalized();
  CtId from = a, to = b;
  if (!reaches(from, to)) std::swap(from, to);
  if (!reaches(from, to)) return {};
  // TT k = (s -> d) is on a from->to path iff (from == s or from reaches s)
  // and (d == to or d reaches to).
  std::vector<TtId> result;
  for (TtId k = 0; k < static_cast<TtId>(tts_.size()); ++k) {
    const auto& t = tts_[k];
    const bool head_ok = (t.src == from) || reaches(from, t.src);
    const bool tail_ok = (t.dst == to) || reaches(t.dst, to);
    if (head_ok && tail_ok) result.push_back(k);
  }
  return result;
}

ResourceVector TaskGraph::total_ct_requirement() const {
  ResourceVector total(schema_.size(), 0.0);
  for (const auto& c : cts_) total += c.requirement;
  return total;
}

double TaskGraph::total_tt_bits() const {
  double total = 0;
  for (const auto& t : tts_) total += t.bits_per_unit;
  return total;
}

void TaskGraph::require_finalized() const {
  if (!finalized_)
    throw std::logic_error("TaskGraph query before finalize()");
}

void TaskGraph::require_not_finalized() const {
  if (finalized_)
    throw std::logic_error("TaskGraph mutation after finalize()");
}

}  // namespace sparcle
