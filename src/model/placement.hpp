#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "model/capacity.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/task_graph.hpp"

/// \file placement.hpp
/// A task-assignment "path" (§III-B): one complete mapping of an
/// application's CTs to NCPs and TTs to link routes, plus the load
/// accounting and bottleneck-rate formula built on top of it.

namespace sparcle {

/// One task-assignment path: y_{i,j} of problem (1) in structured form.
///
/// `ct_host[i]` is the NCP hosting CT i (kInvalidId while unplaced).
/// `tt_route[k]` is the ordered list of links TT k crosses; an empty route
/// with `tt_placed[k] == true` means the endpoints are co-located.
class Placement {
 public:
  /// An empty placement (zero tasks); assign from a sized one.
  Placement() = default;
  /// An all-unplaced placement shaped like `graph`.
  explicit Placement(const TaskGraph& graph)
      : ct_host_(graph.ct_count(), kInvalidId),
        tt_route_(graph.tt_count()),
        tt_placed_(graph.tt_count(), false) {}

  /// Host of CT `i` (kInvalidId while unplaced).
  NcpId ct_host(CtId i) const { return ct_host_.at(i); }
  /// True once CT `i` has a host.
  bool ct_placed(CtId i) const { return ct_host_.at(i) != kInvalidId; }
  /// Assigns CT `i` to NCP `j`.
  void place_ct(CtId i, NcpId j) { ct_host_.at(i) = j; }

  /// Ordered links TT `k` crosses (empty when co-located or unplaced).
  const std::vector<LinkId>& tt_route(TtId k) const { return tt_route_.at(k); }
  /// True once TT `k` has a route (possibly the empty co-located one).
  bool tt_placed(TtId k) const { return tt_placed_.at(k); }
  /// Assigns TT `k` the link sequence `route` (empty = co-located).
  void place_tt(TtId k, std::vector<LinkId> route) {
    tt_route_.at(k) = std::move(route);
    tt_placed_.at(k) = true;
  }

  /// Number of CT slots (matches the graph it was built from).
  std::size_t ct_count() const { return ct_host_.size(); }
  /// Number of TT slots (matches the graph it was built from).
  std::size_t tt_count() const { return tt_route_.size(); }

  /// True when every CT and TT has been placed.
  bool complete() const;

  /// Checks structural validity against the graph and network: every CT on
  /// an existing NCP, every TT route a contiguous link path from its
  /// source's host to its destination's host (empty iff co-located).
  /// Returns false and fills `error` (if non-null) on the first violation.
  bool validate(const TaskGraph& graph, const Network& net,
                std::string* error = nullptr) const;

  /// All distinct network elements this placement touches — CT hosts,
  /// route links, and the *transit* NCPs routes pass through (a path works
  /// iff all of these are up; a failed relay kills the flows it forwards).
  std::vector<ElementKey> used_elements(const TaskGraph& graph,
                                        const Network& net) const;

 private:
  std::vector<NcpId> ct_host_;
  std::vector<std::vector<LinkId>> tt_route_;
  std::vector<char> tt_placed_;
};

/// Per-element per-unit loads: the R vector of `Rx <= C`.
///
/// `ncp_load(j)[r]` is  Σ_{CT i hosted on j} a_i^(r)  and `link_load(l)` is
/// Σ_{TT k routed over l} a_k^(b); multiplying by the application rate x
/// gives the consumed capacity.
class LoadMap {
 public:
  /// An empty (zero-element) load map; assign from a shaped one.
  LoadMap() = default;
  /// The per-unit loads `placement` induces on `net`.
  LoadMap(const Network& net, const TaskGraph& graph,
          const Placement& placement);

  /// Empty load map shaped like `net` (for incremental accumulation).
  static LoadMap zeros(const Network& net);

  /// Per-unit computation load on node `j`.
  const ResourceVector& ncp_load(NcpId j) const { return ncp_.at(j); }
  /// Per-unit bandwidth load on link `l`.
  double link_load(LinkId l) const { return link_.at(l); }

  /// Mutable computation load on node `j` (federated load splitting
  /// writes per-shard fragments element by element).
  ResourceVector& ncp_load(NcpId j) { return ncp_.at(j); }
  /// Mutable bandwidth load on link `l`.
  double& link_load(LinkId l) { return link_.at(l); }

  /// Accumulates CT `i`'s requirement onto node `j`.
  void add_ct(const TaskGraph& graph, CtId i, NcpId j) {
    ncp_.at(j) += graph.ct(i).requirement;
  }
  /// Accumulates TT `k`'s bits-per-unit onto link `l`.
  void add_tt(const TaskGraph& graph, TtId k, LinkId l) {
    link_.at(l) += graph.tt(k).bits_per_unit;
  }

  /// Adds `scale` times another load map (aggregating multiple paths).
  void add_scaled(const LoadMap& other, double scale);

  /// Sparse add_scaled(): accumulates only the listed elements.  Exact
  /// equivalent of add_scaled() when `other` carries no load outside
  /// `elements` — true for a task-assignment path's LoadMap over its own
  /// element list, which is how the scheduler keeps GR reservation updates
  /// O(path) instead of O(network).
  void add_scaled_at(const std::vector<ElementKey>& elements,
                     const LoadMap& other, double scale) {
    for (const ElementKey& e : elements) {
      if (e.kind == ElementKey::Kind::kNcp)
        ncp_.at(e.index) += other.ncp_load(e.index) * scale;
      else
        link_.at(e.index) += other.link_load(e.index) * scale;
    }
  }

  /// Number of nodes covered.
  std::size_t ncp_count() const { return ncp_.size(); }
  /// Number of links covered.
  std::size_t link_count() const { return link_.size(); }

 private:
  std::vector<ResourceVector> ncp_;
  std::vector<double> link_;
};

/// Reverse index from network element to the task-assignment paths that
/// traverse it: `element → {(app, path), ...}`.
///
/// The admission scheduler maintains one of these over its placed
/// applications so that, when an element fails, the set of applications
/// that actually need repair is a single hash lookup instead of a scan of
/// every placed path — the localized-repair primitive behind
/// `Scheduler::repair()`.  Entries are identified by caller-chosen dense
/// indices (the scheduler uses positions in its placed-apps vector), so
/// the index must be rebuilt when those indices shift (e.g. after a
/// removal); `clear()` + re-adding is the supported way to do that.
class ElementUsageIndex {
 public:
  /// One path of one application, by the owner's dense indices.
  struct PathRef {
    std::size_t app{0};   ///< owner application index
    std::size_t path{0};  ///< path index within that application
    /// Refs are equal when both indices match.
    friend bool operator==(const PathRef&, const PathRef&) = default;
  };

  /// Registers path `path` of application `app` as touching `elements`
  /// (typically `PathInfo::elements` — hosts, route links, transit NCPs).
  /// Duplicate elements in the list are tolerated (indexed once).
  void add_path(std::size_t app, std::size_t path,
                const std::vector<ElementKey>& elements);

  /// The paths traversing `e`, in registration order (deterministic).
  /// Returns an empty list for untouched elements.
  const std::vector<PathRef>& users(const ElementKey& e) const;

  /// Drops every entry.
  void clear();

  /// Number of distinct elements with at least one registered path.
  std::size_t element_count() const { return map_.size(); }

 private:
  std::unordered_map<ElementKey, std::vector<PathRef>> map_;
};

/// The paper's stable-rate bound:
///   x  <=  min_{j in N ∪ L, r in R}  C_j^(r) / Σ_{i on j} a_i^(r).
/// Elements with zero load impose no constraint.  Returns +infinity for an
/// entirely empty load map and 0 if any loaded element has zero capacity.
double bottleneck_rate(const CapacitySnapshot& cap, const LoadMap& load);

/// Convenience overload computing the load map from a placement first.
double bottleneck_rate(const Network& net, const TaskGraph& graph,
                       const Placement& placement, const CapacitySnapshot& cap);

}  // namespace sparcle
