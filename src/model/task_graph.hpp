#pragma once

#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/resource.hpp"

/// \file task_graph.hpp
/// The stream-processing application model of §III-A: a DAG whose vertices
/// are computation tasks (CTs) and whose edges are transport tasks (TTs).
///
/// Every task carries a per-data-unit requirement: a ResourceVector for a
/// CT (e.g. CPU megacycles per image) and a bit count for a TT.  The graph
/// exposes the derived structure Algorithm 2 needs: topological order,
/// ancestor/descendant relations, and G(i,i') — the set of TTs lying on
/// directed paths between two CTs.

namespace sparcle {

/// A computation task (vertex of the task DAG).
struct ComputeTask {
  std::string name;            ///< unique label within the TaskGraph
  ResourceVector requirement;  ///< a_i^(r), per data unit
};

/// A transport task (edge of the task DAG): the traffic between the hosts
/// of two consecutive CTs.
struct TransportTask {
  std::string name;         ///< unique label within the TaskGraph
  double bits_per_unit{0};  ///< a_i^(b), bits per data unit
  CtId src{kInvalidId};     ///< producing CT
  CtId dst{kInvalidId};     ///< consuming CT
};

/// Immutable-after-build DAG of CTs and TTs.
///
/// Build with add_ct()/add_tt(), then call finalize(); finalize() validates
/// acyclicity and schema consistency and precomputes reachability.  All
/// query methods require a finalized graph.
class TaskGraph {
 public:
  /// An empty graph with the default cpu-only schema.
  TaskGraph() = default;
  /// An empty graph whose CT requirements will use `schema`.
  explicit TaskGraph(ResourceSchema schema) : schema_(std::move(schema)) {}

  /// Adds a CT; `requirement` must match the graph's resource schema.
  CtId add_ct(std::string name, ResourceVector requirement);

  /// Adds a TT carrying `bits_per_unit` bits per data unit from CT `src`
  /// to CT `dst`.  Both endpoints must already exist.
  TtId add_tt(std::string name, double bits_per_unit, CtId src, CtId dst);

  /// Validates the graph (DAG, connected endpoints) and freezes it.
  /// Throws std::invalid_argument on a malformed graph.
  void finalize();
  /// True once finalize() has succeeded.
  bool finalized() const { return finalized_; }

  /// The resource schema every CT requirement follows.
  const ResourceSchema& schema() const { return schema_; }
  /// Number of computation tasks.
  std::size_t ct_count() const { return cts_.size(); }
  /// Number of transport tasks.
  std::size_t tt_count() const { return tts_.size(); }
  /// CT `i`, bounds-checked.
  const ComputeTask& ct(CtId i) const { return cts_.at(i); }
  /// TT `k`, bounds-checked.
  const TransportTask& tt(TtId k) const { return tts_.at(k); }

  /// TTs leaving CT `i`, in insertion order.
  const std::vector<TtId>& out_tts(CtId i) const { return out_.at(i); }
  /// TTs entering CT `i`, in insertion order.
  const std::vector<TtId>& in_tts(CtId i) const { return in_.at(i); }

  /// CTs with no incoming TT (data sources).
  const std::vector<CtId>& sources() const;
  /// CTs with no outgoing TT (result consumers).
  const std::vector<CtId>& sinks() const;

  /// A topological order of the CTs (sources first).
  const std::vector<CtId>& topological_order() const;

  /// True if there is a directed path from `a` to `b` (a != b).
  bool reaches(CtId a, CtId b) const;

  /// True if `a` is an ancestor or descendant of `b` — the paper's
  /// "reachable CTs" relation used to build ν_i in Algorithm 2.
  bool related(CtId a, CtId b) const {
    return reaches(a, b) || reaches(b, a);
  }

  /// G(a,b): all TTs on directed paths between `a` and `b` (in whichever
  /// orientation connects them).  Empty when unrelated.
  std::vector<TtId> tts_between(CtId a, CtId b) const;

  /// Total computation requirement (component-wise sum over CTs).
  ResourceVector total_ct_requirement() const;
  /// Total bits per data unit summed over all TTs.
  double total_tt_bits() const;

 private:
  void require_finalized() const;
  void require_not_finalized() const;

  ResourceSchema schema_ = ResourceSchema::cpu_only();
  std::vector<ComputeTask> cts_;
  std::vector<TransportTask> tts_;
  std::vector<std::vector<TtId>> out_;
  std::vector<std::vector<TtId>> in_;

  bool finalized_{false};
  std::vector<CtId> topo_;
  std::vector<CtId> sources_;
  std::vector<CtId> sinks_;
  // reach_[a] is a bitmap over CTs: reach_[a][b] == a has a path to b.
  std::vector<std::vector<char>> reach_;
};

}  // namespace sparcle
