#include "model/dot_export.hpp"

#include <map>
#include <sstream>

namespace sparcle {

namespace {

/// DOT-quotes an identifier.
std::string q(const std::string& s) { return "\"" + s + "\""; }

std::string capacity_label(const ResourceVector& v) {
  std::ostringstream os;
  for (std::size_t r = 0; r < v.size(); ++r) {
    if (r) os << "/";
    os << v[r];
  }
  return os.str();
}

}  // namespace

std::string network_to_dot(const Network& net) {
  std::ostringstream os;
  os << "graph network {\n  node [shape=box];\n";
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const Ncp& n = net.ncp(j);
    os << "  " << q(n.name) << " [label=" << q(n.name + "\\ncap " +
                                               capacity_label(n.capacity))
       << "];\n";
  }
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    const Link& lk = net.link(l);
    os << "  " << q(net.ncp(lk.a).name) << " -- " << q(net.ncp(lk.b).name)
       << " [label="
       << q(lk.name + (lk.directed ? " (directed)" : "") + "\\n" +
            std::to_string(lk.bandwidth))
       << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string task_graph_to_dot(const TaskGraph& graph) {
  std::ostringstream os;
  os << "digraph taskgraph {\n  node [shape=ellipse];\n";
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    const ComputeTask& ct = graph.ct(i);
    os << "  " << q(ct.name) << " [label="
       << q(ct.name + "\\nreq " + capacity_label(ct.requirement)) << "];\n";
  }
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    const TransportTask& tt = graph.tt(k);
    os << "  " << q(graph.ct(tt.src).name) << " -> "
       << q(graph.ct(tt.dst).name) << " [label="
       << q(tt.name + "\\n" + std::to_string(tt.bits_per_unit) + " bits")
       << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string placement_to_dot(const Network& net, const TaskGraph& graph,
                             const Placement& placement) {
  // Hosted CTs per NCP.
  std::map<NcpId, std::string> hosted;
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    const NcpId j = placement.ct_host(i);
    if (j == kInvalidId) continue;
    std::string& s = hosted[j];
    if (!s.empty()) s += ", ";
    s += graph.ct(i).name;
  }
  // TTs per link.
  std::map<LinkId, std::string> carried;
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k)
    for (LinkId l : placement.tt_route(k)) {
      std::string& s = carried[l];
      if (!s.empty()) s += ", ";
      s += graph.tt(k).name;
    }

  std::ostringstream os;
  os << "graph placement {\n  node [shape=box];\n";
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const Ncp& n = net.ncp(j);
    std::string label = n.name;
    const auto it = hosted.find(j);
    if (it != hosted.end()) label += "\\n[" + it->second + "]";
    os << "  " << q(n.name) << " [label=" << q(label)
       << (it != hosted.end() ? ", style=filled, fillcolor=lightblue" : "")
       << "];\n";
  }
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    const Link& lk = net.link(l);
    std::string label = lk.name;
    const auto it = carried.find(l);
    if (it != carried.end()) label += "\\n{" + it->second + "}";
    os << "  " << q(net.ncp(lk.a).name) << " -- " << q(net.ncp(lk.b).name)
       << " [label=" << q(label)
       << (it != carried.end() ? ", penwidth=2" : "") << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace sparcle
