#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/resource.hpp"

/// \file network.hpp
/// The dispersed computing network model of §III-B: a graph whose vertices
/// are networked computing points (NCPs) and whose edges are communication
/// links.  Links are undirected (shared bandwidth in both directions, the
/// paper's default, footnote 2).  Every element carries an independent
/// failure probability P_f used by the availability analysis.

namespace sparcle {

/// A computing node with multi-type computation capacity C_j^(r).
struct Ncp {
  std::string name;         ///< unique label within the Network
  ResourceVector capacity;  ///< per-resource-type capacity C_j^(r)
  double fail_prob{0.0};    ///< independent failure probability P_f
  std::string region;       ///< optional region label ("" = unlabeled)
};

/// A communication link with bandwidth capacity C_j^(b).  Undirected by
/// default (bandwidth shared across both directions); a directed link
/// carries traffic only from `a` to `b` (footnote 2 of the paper: model
/// as a directed graph when per-direction bandwidth is not shared).
struct Link {
  std::string name;       ///< unique label within the Network
  double bandwidth{0.0};  ///< bits per second
  NcpId a{kInvalidId};    ///< first endpoint (source when directed)
  NcpId b{kInvalidId};    ///< second endpoint (sink when directed)
  double fail_prob{0.0};  ///< independent failure probability P_f
  bool directed{false};   ///< traffic only flows a -> b when set
};

/// Immutable-after-build network graph.
class Network {
 public:
  /// An empty network with the default cpu-only schema.
  Network() = default;
  /// An empty network whose nodes will use `schema` for capacities.
  explicit Network(ResourceSchema schema) : schema_(std::move(schema)) {}

  /// Adds a node; its capacity vector must match the schema size.  The
  /// optional `region` label groups NCPs for federated shard planning
  /// (shard_plan.hpp); an empty label means "unlabeled".
  NcpId add_ncp(std::string name, ResourceVector capacity,
                double fail_prob = 0.0, std::string region = {});
  /// Adds an undirected link (bandwidth shared across both directions).
  LinkId add_link(std::string name, NcpId a, NcpId b, double bandwidth,
                  double fail_prob = 0.0);
  /// Adds a directed link: traffic flows only `from` -> `to` (e.g. the
  /// uplink of an asymmetric access technology).
  LinkId add_directed_link(std::string name, NcpId from, NcpId to,
                           double bandwidth, double fail_prob = 0.0);

  /// The resource schema every node capacity vector follows.
  const ResourceSchema& schema() const { return schema_; }
  /// Number of nodes.
  std::size_t ncp_count() const { return ncps_.size(); }
  /// Number of links.
  std::size_t link_count() const { return links_.size(); }
  /// Node `j`, bounds-checked.
  const Ncp& ncp(NcpId j) const { return ncps_.at(j); }
  /// Link `l`, bounds-checked.
  const Link& link(LinkId l) const { return links_.at(l); }

  /// Links incident to NCP `j`, in insertion (ascending link-id) order.
  ///
  /// The span views one contiguous CSR array shared by all NCPs, so the
  /// shortest-path inner loops touch a single flat allocation instead of
  /// chasing a vector-of-vectors.  The CSR is rebuilt lazily after a
  /// mutation: the *first* call following add_ncp/add_link must not race
  /// with other readers (concurrent calls on an unmodified network are
  /// fine — they only read).
  std::span<const LinkId> incident_links(NcpId j) const {
    if (j < 0 || j >= static_cast<NcpId>(ncps_.size()))
      throw std::out_of_range("Network::incident_links: NCP out of range");
    if (!csr_valid_) rebuild_csr();
    return {csr_links_.data() + csr_off_[j],
            static_cast<std::size_t>(csr_off_[j + 1] - csr_off_[j])};
  }

  /// The endpoint of link `l` that is not `j`; throws if `j` is not an
  /// endpoint of `l`.
  NcpId other_end(LinkId l, NcpId j) const;

  /// True if traffic standing at NCP `from` may cross link `l` (always,
  /// except against the arrow of a directed link).
  bool can_traverse(LinkId l, NcpId from) const {
    const Link& lk = links_.at(l);
    if (lk.a == from) return true;
    if (lk.b == from) return !lk.directed;
    return false;
  }

  /// True if the undirected graph is connected (vacuously true when empty).
  bool connected() const;

  /// Failure probability of an element via its unified key.
  double fail_prob(const ElementKey& e) const {
    return e.kind == ElementKey::Kind::kNcp ? ncp(e.index).fail_prob
                                            : link(e.index).fail_prob;
  }

 private:
  void rebuild_csr() const;

  ResourceSchema schema_ = ResourceSchema::cpu_only();
  std::vector<Ncp> ncps_;
  std::vector<Link> links_;
  // Flat CSR adjacency: csr_off_ has ncp_count()+1 offsets into csr_links_
  // (each undirected link appears under both endpoints).  Mutable so the
  // logically-const accessor can rebuild it after add_ncp/add_link.
  mutable std::vector<std::int32_t> csr_off_;
  mutable std::vector<LinkId> csr_links_;
  mutable bool csr_valid_{false};
};

}  // namespace sparcle
