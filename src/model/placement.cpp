#include "model/placement.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace sparcle {

bool Placement::complete() const {
  for (NcpId h : ct_host_)
    if (h == kInvalidId) return false;
  return std::all_of(tt_placed_.begin(), tt_placed_.end(),
                     [](char p) { return p != 0; });
}

bool Placement::validate(const TaskGraph& graph, const Network& net,
                         std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (ct_host_.size() != graph.ct_count() ||
      tt_route_.size() != graph.tt_count())
    return fail("placement shape does not match task graph");

  for (CtId i = 0; i < static_cast<CtId>(ct_host_.size()); ++i) {
    const NcpId h = ct_host_[i];
    if (h == kInvalidId) return fail("CT '" + graph.ct(i).name + "' unplaced");
    if (h < 0 || h >= static_cast<NcpId>(net.ncp_count()))
      return fail("CT '" + graph.ct(i).name + "' on unknown NCP");
  }
  for (TtId k = 0; k < static_cast<TtId>(tt_route_.size()); ++k) {
    if (!tt_placed_[k]) return fail("TT '" + graph.tt(k).name + "' unplaced");
    const NcpId from = ct_host_[graph.tt(k).src];
    const NcpId to = ct_host_[graph.tt(k).dst];
    const auto& route = tt_route_[k];
    if (route.empty()) {
      if (from != to)
        return fail("TT '" + graph.tt(k).name +
                    "' has empty route but endpoints are on different NCPs");
      continue;
    }
    // Walk the route; each hop must be incident to the current node and
    // traversable in the walk direction (directed links only forward).
    NcpId at = from;
    for (LinkId l : route) {
      if (l < 0 || l >= static_cast<LinkId>(net.link_count()))
        return fail("TT '" + graph.tt(k).name + "' routes over unknown link");
      const Link& lk = net.link(l);
      if (lk.a != at && lk.b != at)
        return fail("TT '" + graph.tt(k).name + "' route is not contiguous");
      if (!net.can_traverse(l, at))
        return fail("TT '" + graph.tt(k).name +
                    "' crosses a directed link against its direction");
      at = net.other_end(l, at);
    }
    if (at != to)
      return fail("TT '" + graph.tt(k).name +
                  "' route does not end at the destination host");
  }
  return true;
}

std::vector<ElementKey> Placement::used_elements(const TaskGraph& graph,
                                                 const Network& net) const {
  std::set<ElementKey> used;
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i)
    if (ct_host_[i] != kInvalidId) used.insert(ElementKey::ncp(ct_host_[i]));
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    const CtId src = graph.tt(k).src;
    NcpId at = src >= 0 && ct_host_[src] != kInvalidId ? ct_host_[src]
                                                       : kInvalidId;
    for (LinkId l : tt_route_[k]) {
      used.insert(ElementKey::link(l));
      if (at != kInvalidId) {
        at = net.other_end(l, at);
        used.insert(ElementKey::ncp(at));  // transit (or destination) NCP
      }
    }
  }
  return {used.begin(), used.end()};
}

LoadMap::LoadMap(const Network& net, const TaskGraph& graph,
                 const Placement& placement)
    : LoadMap(zeros(net)) {
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i)
    if (placement.ct_placed(i)) add_ct(graph, i, placement.ct_host(i));
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k)
    for (LinkId l : placement.tt_route(k)) add_tt(graph, k, l);
}

LoadMap LoadMap::zeros(const Network& net) {
  LoadMap m;
  m.ncp_.assign(net.ncp_count(),
                ResourceVector(net.schema().size(), 0.0));
  m.link_.assign(net.link_count(), 0.0);
  return m;
}

void LoadMap::add_scaled(const LoadMap& other, double scale) {
  for (NcpId j = 0; j < static_cast<NcpId>(ncp_.size()); ++j)
    ncp_[j] += other.ncp_load(j) * scale;
  for (LinkId l = 0; l < static_cast<LinkId>(link_.size()); ++l)
    link_[l] += other.link_load(l) * scale;
}

void ElementUsageIndex::add_path(std::size_t app, std::size_t path,
                                 const std::vector<ElementKey>& elements) {
  const PathRef ref{app, path};
  for (const ElementKey& e : elements) {
    std::vector<PathRef>& refs = map_[e];
    // PathInfo::elements is already distinct, but tolerate duplicates so
    // callers can feed raw element lists too.
    if (!refs.empty() && refs.back() == ref) continue;
    refs.push_back(ref);
  }
}

const std::vector<ElementUsageIndex::PathRef>& ElementUsageIndex::users(
    const ElementKey& e) const {
  static const std::vector<PathRef> kEmpty;
  const auto it = map_.find(e);
  return it == map_.end() ? kEmpty : it->second;
}

void ElementUsageIndex::clear() { map_.clear(); }

double bottleneck_rate(const CapacitySnapshot& cap, const LoadMap& load) {
  double rate = std::numeric_limits<double>::infinity();
  for (NcpId j = 0; j < static_cast<NcpId>(load.ncp_count()); ++j) {
    const ResourceVector& a = load.ncp_load(j);
    for (std::size_t r = 0; r < a.size(); ++r) {
      if (a[r] <= 0) continue;
      rate = std::min(rate, cap.ncp(j)[r] / a[r]);
    }
  }
  for (LinkId l = 0; l < static_cast<LinkId>(load.link_count()); ++l) {
    const double a = load.link_load(l);
    if (a <= 0) continue;
    rate = std::min(rate, cap.link(l) / a);
  }
  return rate;
}

double bottleneck_rate(const Network& net, const TaskGraph& graph,
                       const Placement& placement,
                       const CapacitySnapshot& cap) {
  return bottleneck_rate(cap, LoadMap(net, graph, placement));
}

}  // namespace sparcle
