#pragma once

#include <vector>

#include "model/ids.hpp"
#include "model/network.hpp"

/// \file capacity.hpp
/// A mutable view of the network's remaining capacities.
///
/// The assignment and allocation algorithms never mutate the Network
/// itself; they operate on CapacitySnapshot instances that start from the
/// full capacities and are scaled (priority prediction, eq. (6)) or reduced
/// (GR reservations, earlier task-assignment paths, §IV-D).

namespace sparcle {

class LoadMap;  // placement.hpp

/// Per-element residual capacities, index-compatible with a Network.
class CapacitySnapshot {
 public:
  /// An empty snapshot (no elements); assign from a populated one.
  CapacitySnapshot() = default;

  /// Snapshot holding the full capacities of `net`.
  explicit CapacitySnapshot(const Network& net);

  /// Number of nodes covered by the snapshot.
  std::size_t ncp_count() const { return ncp_.size(); }
  /// Number of links covered by the snapshot.
  std::size_t link_count() const { return link_.size(); }

  /// Residual resource vector of node `j`.
  const ResourceVector& ncp(NcpId j) const { return ncp_.at(j); }
  /// Mutable residual resource vector of node `j`.
  ResourceVector& ncp(NcpId j) { return ncp_.at(j); }
  /// Residual bandwidth of link `l`.
  double link(LinkId l) const { return link_.at(l); }
  /// Mutable residual bandwidth of link `l`.
  double& link(LinkId l) { return link_.at(l); }

  /// Capacity of resource `r` on element `e` (for links, `r` is ignored —
  /// bandwidth is the only link resource).
  double element(const ElementKey& e, std::size_t r) const {
    return e.kind == ElementKey::Kind::kNcp ? ncp_.at(e.index)[r]
                                            : link_.at(e.index);
  }

  /// Subtracts `rate` times the per-unit loads in `load`, clamping at zero.
  /// Used to reserve the resources a committed task-assignment path
  /// consumes: C_j^(r) - r1 * sum_i y_ij a_i^(r)  (§IV-D).
  void subtract_scaled(const LoadMap& load, double rate);

  /// Multiplies the capacity of every element in `elements` by `factor`
  /// (the priority-share prediction of eq. (6)).
  void scale_elements(const std::vector<ElementKey>& elements, double factor);

  /// Overwrites just the listed elements with `from`'s values (`from` must
  /// be index-compatible).  Lets a scratch snapshot that diverges from a
  /// base on a known element set be restored without a full copy — the
  /// incremental-prediction path of the scheduler depends on it.
  void copy_elements_from(const CapacitySnapshot& from,
                          const std::vector<ElementKey>& elements);

 private:
  std::vector<ResourceVector> ncp_;
  std::vector<double> link_;
};

}  // namespace sparcle
