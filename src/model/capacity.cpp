#include "model/capacity.hpp"

#include "model/placement.hpp"

namespace sparcle {

CapacitySnapshot::CapacitySnapshot(const Network& net) {
  ncp_.reserve(net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    ncp_.push_back(net.ncp(j).capacity);
  link_.reserve(net.link_count());
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    link_.push_back(net.link(l).bandwidth);
}

void CapacitySnapshot::subtract_scaled(const LoadMap& load, double rate) {
  for (NcpId j = 0; j < static_cast<NcpId>(ncp_.size()); ++j) {
    ncp_[j] -= load.ncp_load(j) * rate;
    ncp_[j].clamp_nonnegative();
  }
  for (LinkId l = 0; l < static_cast<LinkId>(link_.size()); ++l) {
    link_[l] -= load.link_load(l) * rate;
    if (link_[l] < 0) link_[l] = 0;
  }
}

void CapacitySnapshot::scale_elements(const std::vector<ElementKey>& elements,
                                      double factor) {
  for (const ElementKey& e : elements) {
    if (e.kind == ElementKey::Kind::kNcp)
      ncp_.at(e.index) *= factor;
    else
      link_.at(e.index) *= factor;
  }
}

void CapacitySnapshot::copy_elements_from(
    const CapacitySnapshot& from, const std::vector<ElementKey>& elements) {
  for (const ElementKey& e : elements) {
    if (e.kind == ElementKey::Kind::kNcp)
      ncp_.at(e.index) = from.ncp_.at(e.index);
    else
      link_.at(e.index) = from.link_.at(e.index);
  }
}

}  // namespace sparcle
