#include "soak/soak.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "check/invariants.hpp"
#include "energy/energy_model.hpp"
#include "federation/check.hpp"
#include "federation/federation.hpp"
#include "policy/policy.hpp"

namespace sparcle::soak {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// Decision digest: order-sensitive FNV-1a over every admission outcome.

struct Digest {
  std::uint64_t h{1469598103934665603ull};

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void str(const std::string& s) { bytes(s.data(), s.size()); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

// ---------------------------------------------------------------------
// Submit-latency histogram: log2 microsecond buckets, O(1) memory so the
// measurement cannot pollute the RSS-drift gate it runs next to.

struct LatencyHistogram {
  std::array<std::uint64_t, 40> buckets{};
  std::uint64_t total{0};

  void record(double us) {
    const auto v = static_cast<std::uint64_t>(std::max(0.0, us));
    std::size_t b = 0;
    while ((1ull << (b + 1)) <= v + 1 && b + 1 < buckets.size()) ++b;
    ++buckets[b];
    ++total;
  }
  /// Geometric bucket midpoint at quantile q (0 when empty).
  double quantile(double q) const {
    if (total == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * total);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      seen += buckets[b];
      if (seen > target)
        return std::sqrt(static_cast<double>(1ull << b) *
                         static_cast<double>(1ull << (b + 1)));
    }
    return static_cast<double>(1ull << (buckets.size() - 1));
  }
};

struct QueuedArrival {
  workload::Arrival arrival;
  double deadline{0.0};  ///< renege time
  double size{0.0};
  double bits{0.0};
};

struct Departure {
  double time{0.0};
  std::string name;
  bool operator>(const Departure& o) const { return time > o.time; }
};

bool is_gr(const Application& app) {
  return app.qoe.cls == QoeClass::kGuaranteedRate;
}

void record_epoch(const Scheduler& scheduler, double sim_time,
                  std::size_t arrivals, std::size_t admitted,
                  SoakResult& result) {
  SoakEpoch e;
  e.sim_time = sim_time;
  e.arrivals = arrivals;
  e.admitted = admitted;
  e.placed = scheduler.placed().size();
  for (const PlacedApp& pa : scheduler.placed())
    (is_gr(pa.app) ? e.gr_rate : e.be_rate) += pa.allocated_rate;
  e.rss_mb = process_rss_mb();
  result.epochs.push_back(e);
}

void check_invariants(const Scheduler& scheduler, double sim_time,
                      const SoakOptions& options, SoakResult& result) {
  const check::CheckReport report = check::check_scheduler_state(scheduler);
  if (report.ok()) return;
  std::ostringstream msg;
  msg << "soak invariant failure: policy=" << options.policy
      << " scenario=" << workload::to_string(options.arrivals.pattern)
      << " seed=" << options.seed << " sim_time=" << sim_time
      << " (rerun with SPARCLE_TEST_SEED=" << options.seed << ")\n"
      << report.to_string();
  result.violations.push_back(msg.str());
}

// ---------------------------------------------------------------------
// Federated soak: the same event loop, timebase, queueing, and drift
// windows as run_soak, but the backend is a federation::FederatedService
// (SoakOptions::federated_shards regional shards) instead of one raw
// Scheduler.  Invariant epochs run the federation conservation check,
// which itself runs the per-shard invariant battery on every shard.
// The decision digest fingerprints (name, verdict, rate, path count) —
// per-CT hosts live inside the shards and are already covered by the
// per-shard checker — so federated digests are comparable only to
// federated digests.
SoakResult run_federated_soak(const Network& net, const SoakOptions& options) {
  using service::ServiceResult;

  SoakResult result;
  result.policy = options.policy;
  result.scenario = workload::to_string(options.arrivals.pattern);
  result.seed = options.seed;

  const std::shared_ptr<const policy::SchedulingPolicy> pol =
      policy::make_policy(options.policy);
  federation::FederationOptions fed_options;
  fed_options.shards = options.federated_shards;
  fed_options.scheduler = options.scheduler;
  fed_options.scheduler.policy = pol;
  federation::FederatedService fed(net, fed_options);

  workload::ArrivalGenerator gen(net, options.arrivals,
                                 options.seed ^ 0xa55a11);
  sim::ChurnTrace churn;
  if (options.churn)
    churn = sim::generate_burst_churn(net, options.burst,
                                      options.arrivals.horizon,
                                      options.seed ^ 0xc0ffee);

  std::deque<QueuedArrival> pending;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  Digest digest;
  LatencyHistogram latency;

  const std::size_t stats_epochs =
      std::max<std::size_t>(2, options.stats_epochs);
  const std::size_t epoch_arrivals =
      std::max<std::size_t>(1, options.arrivals.arrivals / stats_epochs);
  const std::size_t check_every =
      options.invariant_epochs == 0
          ? 0
          : std::max<std::size_t>(1, stats_epochs / options.invariant_epochs);

  const std::size_t total_arrivals = options.arrivals.arrivals;
  const std::size_t warm_lo = total_arrivals / 4;
  const std::size_t warm_mid = total_arrivals * 5 / 8;
  std::size_t admitted_window_a = 0, admitted_window_b = 0;

  const auto record_fed_epoch = [&](double sim_time) {
    SoakEpoch e;
    e.sim_time = sim_time;
    e.arrivals = result.arrivals;
    e.admitted = result.admitted;
    const std::shared_ptr<const service::ServiceSnapshot> snap =
        fed.snapshot();
    e.placed = snap->apps.size();
    e.gr_rate = snap->total_gr_rate;
    e.be_rate = snap->total_be_rate;
    e.rss_mb = process_rss_mb();
    result.epochs.push_back(e);
  };
  const auto check_fed = [&](double sim_time) {
    fed.drain();
    const federation::ConservationReport report =
        federation::check_federation(fed);
    if (report.ok()) return;
    std::ostringstream msg;
    msg << "federated soak invariant failure: shards="
        << options.federated_shards << " policy=" << options.policy
        << " scenario=" << workload::to_string(options.arrivals.pattern)
        << " seed=" << options.seed << " sim_time=" << sim_time
        << " (rerun with SPARCLE_TEST_SEED=" << options.seed << ")\n"
        << report.to_string();
    result.violations.push_back(msg.str());
  };

  double now = 0.0;
  double next_tick = options.tick_seconds;
  std::size_t churn_at = 0;
  workload::Arrival upcoming;
  bool have_arrival = gen.next(upcoming);
  std::size_t epochs_recorded = 0;

  const auto run_tick = [&](double t) {
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].deadline < t) {
        ++result.reneged;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    for (std::size_t budget = options.admit_per_tick;
         budget > 0 && !pending.empty(); --budget) {
      std::vector<policy::PendingApp> views;
      views.reserve(pending.size());
      for (const QueuedArrival& q : pending)
        views.push_back({&q.arrival.app, q.arrival.time, q.deadline, q.size,
                         q.bits});
      std::size_t pick = pol->pick_next(views);
      if (pick >= pending.size()) pick = 0;
      QueuedArrival q = std::move(pending[pick]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));

      const auto t0 = std::chrono::steady_clock::now();
      const ServiceResult admission = fed.submit(q.arrival.app).get();
      const auto t1 = std::chrono::steady_clock::now();
      latency.record(
          std::chrono::duration<double, std::micro>(t1 - t0).count());

      const bool admitted =
          admission.status == ServiceResult::Status::kAdmitted;
      digest.str(q.arrival.app.name);
      digest.u64(admitted ? 1 : 0);
      if (admitted) {
        ++result.admitted;
        if (result.arrivals >= warm_lo && result.arrivals < warm_mid)
          ++admitted_window_a;
        else if (result.arrivals >= warm_mid)
          ++admitted_window_b;
        if (is_gr(q.arrival.app)) ++result.gr_admitted;
        digest.f64(admission.rate);
        digest.u64(admission.paths);
        departures.push({t + q.arrival.lifetime, q.arrival.app.name});
      } else {
        ++result.rejected;
      }
    }
  };

  while (have_arrival || !pending.empty()) {
    const double t_arrival = have_arrival ? upcoming.time : kInf;
    const double t_depart =
        departures.empty() ? kInf : departures.top().time;
    const double t_churn =
        churn_at < churn.events.size() ? churn.events[churn_at].time : kInf;
    const double t_tick = pending.empty() && !have_arrival ? kInf : next_tick;
    const double t = std::min({t_arrival, t_depart, t_churn, t_tick});
    if (t == kInf) break;
    now = t;

    if (t_depart <= t) {
      const Departure d = departures.top();
      departures.pop();
      if (fed.remove(d.name).get().status == ServiceResult::Status::kRemoved)
        ++result.departed;
      continue;
    }
    if (t_churn <= t) {
      const sim::ChurnEvent& ev = churn.events[churn_at++];
      if (ev.fail)
        fed.mark_failed(ev.element);
      else
        fed.mark_recovered(ev.element);
      ++result.churn_events;
      fed.repair(ev.element);
      ++result.repairs;
      continue;
    }
    if (t_tick <= t) {
      run_tick(t);
      next_tick += options.tick_seconds;
      continue;
    }

    ++result.arrivals;
    if (is_gr(upcoming.app)) ++result.gr_arrivals;
    if (pending.size() >= options.queue_capacity) {
      ++result.queue_full;
    } else {
      QueuedArrival q;
      q.deadline = upcoming.time + upcoming.patience;
      q.size = upcoming.app.graph->total_ct_requirement()[0];
      q.bits = upcoming.app.graph->total_tt_bits();
      q.arrival = std::move(upcoming);
      pending.push_back(std::move(q));
    }
    have_arrival = gen.next(upcoming);

    if (result.arrivals % epoch_arrivals == 0 &&
        epochs_recorded < stats_epochs) {
      record_fed_epoch(now);
      ++epochs_recorded;
      if (check_every != 0 && epochs_recorded % check_every == 0)
        check_fed(now);
    }
  }
  record_fed_epoch(now);
  if (options.invariant_epochs != 0) check_fed(now);

  result.admit_ratio =
      result.arrivals == 0
          ? 0.0
          : static_cast<double>(result.admitted) / result.arrivals;
  result.gr_admit_ratio =
      result.gr_arrivals == 0
          ? 1.0
          : static_cast<double>(result.gr_admitted) / result.gr_arrivals;

  {
    const std::shared_ptr<const service::ServiceSnapshot> snap =
        fed.snapshot();
    result.final_gr_rate = snap->total_gr_rate;
    result.final_be_rate = snap->total_be_rate;
  }
  // Energy: shard-local placements priced against each shard's
  // sub-network, committed cross-shard paths against the full site.
  for (std::size_t s = 0; s < fed.shard_count(); ++s) {
    const EnergyModel energy(fed.plan().shards[s].net);
    fed.shard(s).inspect([&](const Scheduler& sc) {
      for (const PlacedApp& pa : sc.placed())
        for (std::size_t p = 0; p < pa.paths.size(); ++p) {
          const double rate =
              p < pa.path_rates.size() ? pa.path_rates[p] : 0.0;
          result.energy_watts += energy.total_power(
              *pa.app.graph, pa.paths[p].placement, rate);
        }
    });
  }
  {
    const EnergyModel energy(net);
    for (const auto& [name, ca] : fed.cross_apps())
      for (std::size_t p = 0; p < ca.paths.size(); ++p) {
        const double rate =
            p < ca.path_rates.size() ? ca.path_rates[p] : 0.0;
        result.energy_watts += energy.total_power(
            *ca.app.graph, ca.paths[p].placement, rate);
      }
  }
  const double carried = result.final_gr_rate + result.final_be_rate;
  result.energy_efficiency =
      result.energy_watts > 0 ? carried / result.energy_watts : 0.0;
  result.submit_p50_us = latency.quantile(0.50);
  result.submit_p99_us = latency.quantile(0.99);
  result.decision_digest = digest.h;

  if (result.epochs.size() >= 4) {
    const double warm = result.epochs[result.epochs.size() / 4].rss_mb;
    const double end = result.epochs.back().rss_mb;
    if (warm > 0) result.rss_drift = (end - warm) / warm;
  }
  if (warm_mid > warm_lo && result.arrivals > warm_mid) {
    const double r1 = static_cast<double>(admitted_window_a) /
                      static_cast<double>(warm_mid - warm_lo);
    const double r2 = static_cast<double>(admitted_window_b) /
                      static_cast<double>(result.arrivals - warm_mid);
    if (r1 > 0) result.admit_rate_drift = std::abs(r2 - r1) / r1;
  }
  return result;
}

}  // namespace

double process_rss_mb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

Network make_soak_network(const SoakOptions& options) {
  Rng rng(options.seed ^ 0x5175e5);
  // A federated soak needs at least one region per shard.
  const std::size_t regions =
      std::max(options.regions, options.federated_shards);
  return workload::soak_site(regions, options.ncps_per_region, rng);
}

SoakResult run_soak(const SoakOptions& options) {
  const Network net = make_soak_network(options);
  return run_soak(net, options);
}

SoakResult run_soak(const Network& net, const SoakOptions& options) {
  if (options.federated_shards > 0) return run_federated_soak(net, options);

  SoakResult result;
  result.policy = options.policy;
  result.scenario = workload::to_string(options.arrivals.pattern);
  result.seed = options.seed;

  const std::shared_ptr<const policy::SchedulingPolicy> pol =
      policy::make_policy(options.policy);
  SchedulerOptions sched_options = options.scheduler;
  sched_options.policy = pol;
  Scheduler scheduler(net, sched_options);

  workload::ArrivalGenerator gen(net, options.arrivals,
                                 options.seed ^ 0xa55a11);
  sim::ChurnTrace churn;
  if (options.churn)
    churn = sim::generate_burst_churn(net, options.burst,
                                      options.arrivals.horizon,
                                      options.seed ^ 0xc0ffee);

  std::deque<QueuedArrival> pending;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  Digest digest;
  LatencyHistogram latency;

  const std::size_t stats_epochs = std::max<std::size_t>(2, options.stats_epochs);
  const std::size_t epoch_arrivals =
      std::max<std::size_t>(1, options.arrivals.arrivals / stats_epochs);
  // Which stats epochs also run the (expensive) invariant battery.
  const std::size_t check_every =
      options.invariant_epochs == 0
          ? 0
          : std::max<std::size_t>(1, stats_epochs / options.invariant_epochs);

  // Admission-rate drift windows: the first quarter of the stream is
  // warmup (the session population ramps to steady state), so the gate
  // compares arrivals [N/4, 5N/8) against [5N/8, N).
  const std::size_t total_arrivals = options.arrivals.arrivals;
  const std::size_t warm_lo = total_arrivals / 4;
  const std::size_t warm_mid = total_arrivals * 5 / 8;
  std::size_t admitted_window_a = 0, admitted_window_b = 0;

  double now = 0.0;
  double next_tick = options.tick_seconds;
  std::size_t churn_at = 0;
  workload::Arrival upcoming;
  bool have_arrival = gen.next(upcoming);
  std::size_t epochs_recorded = 0;

  // Drains reneged entries, then admits up to the tick budget in the
  // order the policy dictates.  Shared by ticks and the final flush.
  const auto run_tick = [&](double t) {
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].deadline < t) {
        ++result.reneged;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    for (std::size_t budget = options.admit_per_tick;
         budget > 0 && !pending.empty(); --budget) {
      std::vector<policy::PendingApp> views;
      views.reserve(pending.size());
      for (const QueuedArrival& q : pending)
        views.push_back({&q.arrival.app, q.arrival.time, q.deadline, q.size,
                         q.bits});
      std::size_t pick = pol->pick_next(views);
      if (pick >= pending.size()) pick = 0;
      QueuedArrival q = std::move(pending[pick]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));

      const auto t0 = std::chrono::steady_clock::now();
      const AdmissionResult admission = scheduler.submit(q.arrival.app);
      const auto t1 = std::chrono::steady_clock::now();
      latency.record(
          std::chrono::duration<double, std::micro>(t1 - t0).count());

      digest.str(q.arrival.app.name);
      digest.u64(admission.admitted ? 1 : 0);
      if (admission.admitted) {
        ++result.admitted;
        if (result.arrivals >= warm_lo && result.arrivals < warm_mid)
          ++admitted_window_a;
        else if (result.arrivals >= warm_mid)
          ++admitted_window_b;
        if (is_gr(q.arrival.app)) ++result.gr_admitted;
        // Fingerprint the committed placement, not just the verdict.
        for (const PlacedApp& pa : scheduler.placed()) {
          if (pa.app.name != q.arrival.app.name) continue;
          for (const PathInfo& path : pa.paths)
            for (CtId i = 0;
                 i < static_cast<CtId>(pa.app.graph->ct_count()); ++i)
              digest.u64(static_cast<std::uint64_t>(
                  path.placement.ct_host(i) + 1));
          digest.f64(pa.allocated_rate);
          break;
        }
        departures.push({t + q.arrival.lifetime, q.arrival.app.name});
      } else {
        ++result.rejected;
      }
    }
  };

  // Event loop: arrivals, churn events, departures, and scheduler ticks
  // merged in time order (ties: departure, churn, tick, arrival — frees
  // capacity before spending it, deterministically).  The run ends once
  // the stream is exhausted and the queue drained: sessions still open
  // then ARE the final steady-state population the summary metrics
  // (carried rate, energy) are computed over.
  while (have_arrival || !pending.empty()) {
    const double t_arrival = have_arrival ? upcoming.time : kInf;
    const double t_depart =
        departures.empty() ? kInf : departures.top().time;
    const double t_churn =
        churn_at < churn.events.size() ? churn.events[churn_at].time : kInf;
    const double t_tick = pending.empty() && !have_arrival ? kInf : next_tick;
    const double t = std::min({t_arrival, t_depart, t_churn, t_tick});
    if (t == kInf) break;
    now = t;

    if (t_depart <= t) {
      const Departure d = departures.top();
      departures.pop();
      if (scheduler.remove(d.name)) ++result.departed;
      continue;
    }
    if (t_churn <= t) {
      const sim::ChurnEvent& ev = churn.events[churn_at++];
      if (ev.fail)
        scheduler.mark_failed(ev.element);
      else
        scheduler.mark_recovered(ev.element);
      ++result.churn_events;
      scheduler.repair(ev.element);
      ++result.repairs;
      continue;
    }
    if (t_tick <= t) {
      run_tick(t);
      next_tick += options.tick_seconds;
      continue;
    }

    // Arrival.
    ++result.arrivals;
    if (is_gr(upcoming.app)) ++result.gr_arrivals;
    if (pending.size() >= options.queue_capacity) {
      ++result.queue_full;
    } else {
      QueuedArrival q;
      q.deadline = upcoming.time + upcoming.patience;
      q.size = upcoming.app.graph->total_ct_requirement()[0];
      q.bits = upcoming.app.graph->total_tt_bits();
      q.arrival = std::move(upcoming);
      pending.push_back(std::move(q));
    }
    have_arrival = gen.next(upcoming);

    if (result.arrivals % epoch_arrivals == 0 &&
        epochs_recorded < stats_epochs) {
      record_epoch(scheduler, now, result.arrivals, result.admitted, result);
      ++epochs_recorded;
      if (check_every != 0 && epochs_recorded % check_every == 0)
        check_invariants(scheduler, now, options, result);
    }
  }
  record_epoch(scheduler, now, result.arrivals, result.admitted, result);
  if (options.invariant_epochs != 0)
    check_invariants(scheduler, now, options, result);

  // ------------------------------------------------------------------
  // Summary metrics.
  result.admit_ratio =
      result.arrivals == 0
          ? 0.0
          : static_cast<double>(result.admitted) / result.arrivals;
  result.gr_admit_ratio =
      result.gr_arrivals == 0
          ? 1.0
          : static_cast<double>(result.gr_admitted) / result.gr_arrivals;

  EnergyModel energy(net);
  for (const PlacedApp& pa : scheduler.placed()) {
    (is_gr(pa.app) ? result.final_gr_rate : result.final_be_rate) +=
        pa.allocated_rate;
    for (std::size_t p = 0; p < pa.paths.size(); ++p) {
      const double rate =
          p < pa.path_rates.size() ? pa.path_rates[p] : 0.0;
      result.energy_watts += energy.total_power(
          *pa.app.graph, pa.paths[p].placement, rate);
    }
  }
  const double carried = result.final_gr_rate + result.final_be_rate;
  result.energy_efficiency =
      result.energy_watts > 0 ? carried / result.energy_watts : 0.0;
  result.submit_p50_us = latency.quantile(0.50);
  result.submit_p99_us = latency.quantile(0.99);
  result.decision_digest = digest.h;

  // RSS drift: warmed-up quarter epoch → last (allocator pools, memo
  // caches and the PF warm state settle during the first quarter).
  if (result.epochs.size() >= 4) {
    const double warm = result.epochs[result.epochs.size() / 4].rss_mb;
    const double end = result.epochs.back().rss_mb;
    if (warm > 0) result.rss_drift = (end - warm) / warm;
  }
  // Admitted-fraction drift between the two post-warmup windows.
  if (warm_mid > warm_lo && result.arrivals > warm_mid) {
    const double r1 = static_cast<double>(admitted_window_a) /
                      static_cast<double>(warm_mid - warm_lo);
    const double r2 = static_cast<double>(admitted_window_b) /
                      static_cast<double>(result.arrivals - warm_mid);
    if (r1 > 0) result.admit_rate_drift = std::abs(r2 - r1) / r1;
  }
  return result;
}

// ---------------------------------------------------------------------
// Tournament.

std::vector<std::string> tournament_scenarios() {
  std::vector<std::string> names;
  for (workload::ArrivalPattern p : workload::all_arrival_patterns())
    names.push_back(workload::to_string(p));
  return names;
}

SoakOptions cell_options(const std::string& scenario,
                         const std::string& policy, std::size_t arrivals,
                         std::uint64_t seed) {
  SoakOptions o;
  o.policy = policy;
  o.seed = seed;
  o.arrivals.pattern = workload::parse_arrival_pattern(scenario);
  o.arrivals.arrivals = arrivals;
  // Two full periods minimum so the half/half drift gate compares like
  // with like (diurnal: two days; flash_crowd: 24 bursts per half).
  o.arrivals.horizon =
      o.arrivals.pattern == workload::ArrivalPattern::kDiurnal ? 172800.0
                                                               : 86400.0;
  const double mean_rate =
      static_cast<double>(arrivals) / o.arrivals.horizon;
  // The cell's scale-invariant overload shape: the tick budget services
  // 1.3x the mean offered load whatever the arrival count, so the mean
  // is comfortable but a diurnal peak (1.85x) or flash burst (18x)
  // overruns the queue and forces real ordering/reneging decisions —
  // the regime where the admission decision point differentiates.
  o.admit_per_tick = 4;
  o.tick_seconds = o.admit_per_tick / (1.3 * mean_rate);
  o.arrivals.mean_patience = 4.0 * o.tick_seconds;
  // Session length targeting ~40 concurrently placed apps: enough that
  // capacity (not just the queue) is contended, small enough that a
  // submit stays milliseconds (the PF re-solve scales with population).
  o.arrivals.mean_lifetime =
      std::min(o.arrivals.horizon / 5.0, 40.0 / mean_rate);
  o.arrivals.gr_fraction = 0.2;
  switch (o.arrivals.pattern) {
    case workload::ArrivalPattern::kRegionalOutage:
      o.churn = true;
      o.burst.burst_rate = 1.0 / 1800.0;  // a regional burst every ~30 min
      o.burst.spread_prob = 0.7;
      o.burst.model.default_mttr = 120.0;
      break;
    case workload::ArrivalPattern::kTenantMix:
      o.arrivals.gr_fraction = 0.18;  // overridden per-tenant inside
      break;
    default:
      break;
  }
  return o;
}

TournamentReport run_tournament(const TournamentOptions& options) {
  const std::vector<std::string> policies =
      options.policies.empty() ? policy::policy_names() : options.policies;
  const std::vector<std::string> scenarios =
      options.scenarios.empty() ? tournament_scenarios() : options.scenarios;

  TournamentReport report;
  for (const std::string& scenario : scenarios) {
    // One network + one seed per scenario: every policy races identical
    // conditions (the arrival stream and churn trace replay bit for bit).
    for (const std::string& policy : policies) {
      SoakOptions cell = cell_options(scenario, policy,
                                      options.arrivals_per_cell,
                                      options.seed);
      cell.invariant_epochs = options.invariant_epochs;
      cell.federated_shards = options.federated_shards;
      report.cells.push_back({scenario, policy, run_soak(cell)});
    }
  }
  return report;
}

namespace {

double metric_of(const SoakResult& r, const std::string& metric) {
  if (metric == "admit_ratio") return r.admit_ratio;
  if (metric == "gr_admit_ratio") return r.gr_admit_ratio;
  if (metric == "energy_efficiency") return r.energy_efficiency;
  if (metric == "carried_rate") return r.final_gr_rate + r.final_be_rate;
  throw std::invalid_argument("unknown tournament metric '" + metric + "'");
}

void json_cell(std::ostringstream& out, const TournamentCell& cell) {
  const SoakResult& r = cell.result;
  out << "    {\"scenario\": \"" << cell.scenario << "\", \"policy\": \""
      << cell.policy << "\", \"arrivals\": " << r.arrivals
      << ", \"admitted\": " << r.admitted << ", \"rejected\": " << r.rejected
      << ", \"reneged\": " << r.reneged << ", \"queue_full\": " << r.queue_full
      << ", \"departed\": " << r.departed
      << ", \"churn_events\": " << r.churn_events
      << ", \"admit_ratio\": " << r.admit_ratio
      << ", \"gr_admit_ratio\": " << r.gr_admit_ratio
      << ", \"final_gr_rate\": " << r.final_gr_rate
      << ", \"final_be_rate\": " << r.final_be_rate
      << ", \"energy_watts\": " << r.energy_watts
      << ", \"energy_efficiency\": " << r.energy_efficiency
      << ", \"submit_p50_us\": " << r.submit_p50_us
      << ", \"submit_p99_us\": " << r.submit_p99_us
      << ", \"rss_drift\": " << r.rss_drift
      << ", \"admit_rate_drift\": " << r.admit_rate_drift
      << ", \"violations\": " << r.violations.size()
      << ", \"decision_digest\": \"" << std::hex << r.decision_digest
      << std::dec << "\"}";
}

}  // namespace

std::string TournamentReport::winner(const std::string& scenario,
                                     const std::string& metric) const {
  std::string best;
  double best_value = -kInf;
  for (const TournamentCell& cell : cells) {
    if (cell.scenario != scenario) continue;
    const double v = metric_of(cell.result, metric);
    if (v > best_value) {
      best_value = v;
      best = cell.policy;
    }
  }
  return best;
}

bool TournamentReport::ok() const {
  for (const TournamentCell& cell : cells)
    if (!cell.result.ok()) return false;
  return true;
}

std::string tournament_json(const TournamentReport& report,
                            const TournamentOptions& options) {
  std::ostringstream out;
  out.precision(6);
  out << "{\n  \"seed\": " << options.seed
      << ",\n  \"arrivals_per_cell\": " << options.arrivals_per_cell
      << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    json_cell(out, report.cells[i]);
    out << (i + 1 < report.cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"winners\": {\n";
  std::vector<std::string> scenarios;
  for (const TournamentCell& cell : report.cells)
    if (std::find(scenarios.begin(), scenarios.end(), cell.scenario) ==
        scenarios.end())
      scenarios.push_back(cell.scenario);
  const std::vector<std::string> metrics = {
      "admit_ratio", "gr_admit_ratio", "energy_efficiency", "carried_rate"};
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    out << "    \"" << scenarios[s] << "\": {";
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      out << "\"" << metrics[m] << "\": \""
          << report.winner(scenarios[s], metrics[m]) << "\""
          << (m + 1 < metrics.size() ? ", " : "");
    }
    out << "}" << (s + 1 < scenarios.size() ? ",\n" : "\n");
  }
  out << "  },\n  \"ok\": " << (report.ok() ? "true" : "false") << "\n}\n";
  return out.str();
}

std::string tournament_csv(const TournamentReport& report) {
  std::ostringstream out;
  out.precision(6);
  out << "scenario,policy,arrivals,admitted,rejected,reneged,queue_full,"
         "admit_ratio,gr_admit_ratio,final_gr_rate,final_be_rate,"
         "energy_watts,energy_efficiency,submit_p50_us,submit_p99_us,"
         "rss_drift,admit_rate_drift,violations\n";
  for (const TournamentCell& cell : report.cells) {
    const SoakResult& r = cell.result;
    out << cell.scenario << ',' << cell.policy << ',' << r.arrivals << ','
        << r.admitted << ',' << r.rejected << ',' << r.reneged << ','
        << r.queue_full << ',' << r.admit_ratio << ',' << r.gr_admit_ratio
        << ',' << r.final_gr_rate << ',' << r.final_be_rate << ','
        << r.energy_watts << ',' << r.energy_efficiency << ','
        << r.submit_p50_us << ',' << r.submit_p99_us << ',' << r.rss_drift
        << ',' << r.admit_rate_drift << ',' << r.violations.size() << '\n';
  }
  return out.str();
}

}  // namespace sparcle::soak
