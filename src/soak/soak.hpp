#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "model/network.hpp"
#include "sim/churn_injector.hpp"
#include "workload/arrivals.hpp"

/// \file soak.hpp
/// Long-horizon soak engine and policy tournament (docs/policies.md).
///
/// run_soak() replays one adversarial arrival stream (workload/arrivals)
/// against a Scheduler carrying one scheduling-policy plugin, through a
/// bounded admission queue that models the batched admission daemon:
/// arrivals queue up, a scheduler *tick* every `tick_seconds` admits up
/// to `admit_per_tick` of them in the order the policy's pick_next()
/// dictates, and queued entries renege once their patience lapses.
/// Admitted applications live an exponential session and depart;
/// regional-outage cells interleave a correlated burst-churn trace
/// driving the incremental repair() path.  The run records:
///
///   * cumulative counters (admitted / rejected / reneged / queue-full),
///   * sampled epochs (carried rates, placed count, process RSS),
///   * full invariant checks (check_scheduler_state) at sampled epochs —
///     every violation string carries the seed and policy for replay,
///   * an order-sensitive FNV-1a digest of every admission decision, the
///     determinism witness of tests/test_policy.cpp,
///   * drift gates: RSS growth between the warmed-up quarter epoch and
///     the end, and admitted-fraction drift between the stream's halves.
///
/// run_tournament() sweeps the policies × scenarios matrix — every
/// policy races the *identical* network, arrival stream, and churn trace
/// within a scenario — and the report writers emit the comparative
/// JSON/CSV consumed by bench_tournament and tools/soak.sh.

namespace sparcle::soak {

struct SoakOptions {
  /// Registry name (policy::make_policy) of the plugin under test.
  std::string policy{"default"};
  workload::ArrivalSpec arrivals{};
  std::uint64_t seed{1};
  /// Admission-queue bound; arrivals beyond it are dropped (queue_full).
  std::size_t queue_capacity{64};
  /// Scheduler tick period (simulated seconds) and per-tick admission
  /// budget: queues only build — and admission *order* only matters —
  /// because ticks are slower than burst arrivals.
  double tick_seconds{5.0};
  std::size_t admit_per_tick{8};
  /// Interleave a correlated burst-churn trace (regional_outage cells).
  bool churn{false};
  sim::BurstChurnConfig burst{};
  /// Epoch sampling: stats rows, and how many of them also run the full
  /// invariant battery (0 disables checking).
  std::size_t stats_epochs{32};
  std::size_t invariant_epochs{4};
  /// Soak-site shape (workload::soak_site).
  std::size_t regions{4};
  std::size_t ncps_per_region{6};
  /// Base scheduler configuration; `policy` is installed on a copy.
  SchedulerOptions scheduler{};
  /// When positive, the soak drives a federation::FederatedService over
  /// this many regional shards instead of one raw Scheduler — shard-local
  /// arrivals run the stock per-shard pipeline, cross-shard arrivals go
  /// through two-phase reserve/commit — and every invariant epoch runs
  /// the per-shard checker plus the federation conservation check
  /// (federation/check.hpp).  `regions` is raised to at least this many
  /// shards.  0 = the classic single-scheduler soak.
  std::size_t federated_shards{0};
};

/// One sampled stats row (cumulative counters as of `sim_time`).
struct SoakEpoch {
  double sim_time{0.0};
  std::size_t arrivals{0};
  std::size_t admitted{0};
  std::size_t placed{0};   ///< currently-placed applications
  double gr_rate{0.0};     ///< Σ allocated rate over placed GR apps
  double be_rate{0.0};     ///< Σ allocated rate over placed BE apps
  double rss_mb{0.0};      ///< process RSS (0 where unsupported)
};

struct SoakResult {
  std::string policy;
  std::string scenario;
  std::uint64_t seed{0};

  std::size_t arrivals{0};
  std::size_t admitted{0};
  std::size_t rejected{0};    ///< submitted but refused by admission control
  std::size_t reneged{0};     ///< patience lapsed while queued
  std::size_t queue_full{0};  ///< dropped at a full queue
  std::size_t departed{0};    ///< sessions removed after their lifetime
  std::size_t gr_arrivals{0};
  std::size_t gr_admitted{0};
  std::size_t churn_events{0};
  std::size_t repairs{0};

  double admit_ratio{0.0};     ///< admitted / arrivals
  double gr_admit_ratio{0.0};  ///< gr_admitted / gr_arrivals (1 if none)
  double final_gr_rate{0.0};
  double final_be_rate{0.0};
  double energy_watts{0.0};       ///< Σ modeled power over final placement
  double energy_efficiency{0.0};  ///< carried rate per watt (data/Joule)
  double submit_p50_us{0.0};      ///< wall-clock submit() latency
  double submit_p99_us{0.0};
  /// Relative RSS growth from the warmed-up quarter epoch to the last
  /// (negative = shrank); NaN-free, 0 where RSS is unsupported.
  double rss_drift{0.0};
  /// |second-half admit ratio − first-half| / first-half, halves split at
  /// the stream's median arrival.
  double admit_rate_drift{0.0};
  /// Order-sensitive FNV-1a fingerprint of every admission decision
  /// (name, verdict, per-path CT hosts, rate bits) — bit-identical runs
  /// produce equal digests.
  std::uint64_t decision_digest{0};

  std::vector<SoakEpoch> epochs;
  /// Invariant-check failures, each prefixed with seed/policy/sim-time.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Process resident-set size in MiB via /proc/self/statm; 0.0 where the
/// proc filesystem is unavailable (non-Linux).
double process_rss_mb();

/// The deterministic soak network for `options` (seed + shape).
Network make_soak_network(const SoakOptions& options);

/// Replays the soak against a caller-supplied network (the tournament
/// shares one network across a scenario's policies).
SoakResult run_soak(const Network& net, const SoakOptions& options);
/// Convenience: builds make_soak_network(options) and runs on it.
SoakResult run_soak(const SoakOptions& options);

// ---------------------------------------------------------------------
// Tournament: policies × scenarios.

struct TournamentOptions {
  /// Policies to race; empty = policy::policy_names().
  std::vector<std::string> policies;
  /// Scenario names (arrival-pattern names); empty = every pattern.
  std::vector<std::string> scenarios;
  std::size_t arrivals_per_cell{20000};
  std::uint64_t seed{1};
  std::size_t invariant_epochs{2};
  /// Run every cell against a federated site with this many shards
  /// (SoakOptions::federated_shards); 0 = single-scheduler cells.
  std::size_t federated_shards{0};
};

/// Every scenario name, in report order (= arrival-pattern names).
std::vector<std::string> tournament_scenarios();

/// The per-cell soak configuration: scenario-specific arrival shape
/// (horizon, patience, GR mix, churn pairing) with the session length
/// auto-scaled so the site carries a contended steady-state population
/// regardless of the arrival count.
SoakOptions cell_options(const std::string& scenario,
                         const std::string& policy, std::size_t arrivals,
                         std::uint64_t seed);

struct TournamentCell {
  std::string scenario;
  std::string policy;
  SoakResult result;
};

struct TournamentReport {
  std::vector<TournamentCell> cells;  ///< scenario-major, policy-minor

  /// Policy with the best `metric` ("admit_ratio", "gr_admit_ratio",
  /// "energy_efficiency", "carried_rate") in `scenario`; ties keep the
  /// earlier policy.  Empty string when the scenario is absent.
  std::string winner(const std::string& scenario,
                     const std::string& metric) const;
  /// True when every cell passed its invariant checks.
  bool ok() const;
};

TournamentReport run_tournament(const TournamentOptions& options);

/// Comparative report: one JSON object with a row per cell plus a
/// per-scenario winners block (the BENCH_tournament.json payload).
std::string tournament_json(const TournamentReport& report,
                            const TournamentOptions& options);
/// The same matrix as CSV (header + one row per cell).
std::string tournament_csv(const TournamentReport& report);

}  // namespace sparcle::soak
