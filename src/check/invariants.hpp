#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "core/scheduler.hpp"
#include "model/ids.hpp"

/// \file invariants.hpp
/// The correctness harness's ground truth: every condition a returned
/// solution must satisfy, checked from first principles (never through the
/// code paths that produced the solution).  A single task-assignment result
/// is checked against problem (1)'s constraints; a whole Scheduler state is
/// checked against the admission contract of §IV — capacity feasibility
/// under residual accounting, the bottleneck-rate formula, pin/DAG/route
/// structure, GR min-rate availability (eq. (7)), and weighted
/// proportional-fair optimality of the Best-Effort allocation (problem (4)).
///
/// Violations are returned as structured records (which invariant, which
/// application, which element, by how much) rather than a bool, so the
/// fuzzer can shrink on a *specific* failure and tests can assert that a
/// deliberately broken solver trips a *specific* wire.

namespace sparcle::check {

/// Which invariant a violation breaks.  docs/testing.md carries the
/// catalog mapping each code to the paper condition it encodes.
enum class InvariantCode {
  kPlacementStructure,   ///< CT off-network / route not contiguous / shape
  kPinViolated,          ///< a pinned CT is hosted away from its pin
  kLoadMismatch,         ///< stored per-unit LoadMap != recomputed one
  kElementsMismatch,     ///< stored element set != placement's used set
  kRateNotBottleneck,    ///< reported rate != min_j C_j / Σ a_i formula
  kRateAccounting,       ///< allocated_rate != Σ path rates, or negative
  kCapacityExceeded,     ///< Σ rate·load > capacity on some element
  kResidualMismatch,     ///< scheduler residual != capacity - reservations
  kGrGuaranteeViolated,  ///< admitted GR app below its minimum rate
  kGrAvailabilityShort,  ///< eq. (7) availability below the admitted target
  kBeNotPf,              ///< BE rates not PF-optimal within tolerance
  kDeadPathCarriesRate,  ///< a path over a failed element still has rate

  // Oracle verdicts (src/check/oracles.hpp): cross-checks between two
  // solver runs rather than conditions on a single solution.
  kOracleInfeasible,     ///< heuristic infeasible where the optimum exists
  kOracleSuboptimal,     ///< heuristic rate above the exhaustive optimum
  kOracleNotMonotone,    ///< raising an NCP capacity lowered the optimum
  kOracleScalingBroken,  ///< uniform scaling changed the solution shape
  kOracleRemovalVariant, ///< dropping unused links changed the rate
  kOracleOrderDependent, ///< arrival-order permutation changed the outcome
};

const char* to_string(InvariantCode code);

/// One broken invariant, with enough structure to localize and rank it.
struct Violation {
  InvariantCode code{InvariantCode::kPlacementStructure};
  std::string app;            ///< offending application; empty = global
  ElementKey element{};       ///< offending element, when element-scoped
  bool element_scoped{false};
  /// Signed margin of the violated inequality (negative = violated by that
  /// much, in the inequality's own units); 0 for structural violations.
  double slack{0.0};
  std::string detail;
};

/// The checker's verdict: all violations found, not just the first.
struct CheckReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  bool has(InvariantCode code) const;
  /// Multi-line human-readable rendering (empty string when ok()).
  std::string to_string() const;
};

struct CheckOptions {
  /// Relative slack for capacity / rate-accounting comparisons (the PF
  /// interior point and reservation arithmetic carry ~1e-8 noise).
  double tolerance{1e-6};
  /// Extra slack for the recomputed min-rate availability vs the admitted
  /// target (the scheduler admits at `achieved + 1e-12 >= target`).
  double availability_tolerance{1e-6};
  /// The observed BE utility must be within this of the re-solved optimum
  /// (both solves stop at a ~1e-8 duality gap).
  double pf_utility_tolerance{1e-4};
  /// Verify BE proportional-fair optimality by re-solving problem (4).
  /// The re-solve is the most expensive check; fuzz loops may disable it
  /// on steps where the allocation did not change.
  bool check_pf_optimality{true};
  /// Monte-Carlo trials for GR availability when the path count exceeds
  /// kMaxExactPaths (the exact inclusion–exclusion guard).
  std::size_t mc_trials{20000};
  std::uint64_t mc_seed{0x5bac1e};
  /// The scheduler has seen no element failures (and no failure-driven
  /// rebalance), so admission-time guarantees are enforceable strictly:
  /// every placed app has at least one path, every GR reservation covers
  /// its minimum rate, and the admitted availability target holds.  After
  /// failures these may legitimately degrade (rebalance() keeps degraded
  /// apps placed and reports them); the default steady-state mode then
  /// checks *consistency* instead — a zero-path app carries zero rate, and
  /// a GR shortfall is acknowledged by degraded_gr_apps().
  bool assume_pristine{false};
};

/// Validates one task-assignment result against its problem: structural
/// placement validity, pins respected, and — for a feasible result — the
/// reported rate equal to the bottleneck formula under the problem's
/// capacities and strictly positive.
CheckReport check_assignment(const AssignmentProblem& problem,
                             const AssignmentResult& result,
                             const CheckOptions& options = {});

/// Validates a whole Scheduler state: every placed app's paths
/// (structure, pins, stored loads and element sets), rate accounting,
/// global capacity feasibility of Σ rate·load, residual-capacity
/// consistency, GR guarantees and min-rate availability targets, dead
/// paths carrying no BE rate, and PF optimality of the BE allocation.
CheckReport check_scheduler_state(const Scheduler& scheduler,
                                  const CheckOptions& options = {});

/// RAII installer of a Scheduler validation hook that runs
/// check_scheduler_state after every mutating operation and throws
/// std::logic_error with the full report on the first violation.
///
/// By default the hook is armed only in debug builds (`!NDEBUG`), so
/// examples construct one unconditionally and self-validate for free when
/// built for debugging; pass `force = true` (the CLI's --validate) to arm
/// it in any build.  Installation is process-global and not reentrant.
class ScopedValidation {
 public:
  explicit ScopedValidation(bool force = false, CheckOptions options = {});
  ~ScopedValidation();
  ScopedValidation(const ScopedValidation&) = delete;
  ScopedValidation& operator=(const ScopedValidation&) = delete;

  bool armed() const { return armed_; }

 private:
  bool armed_{false};
};

}  // namespace sparcle::check
