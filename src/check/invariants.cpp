#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/availability.hpp"
#include "core/fairness.hpp"

namespace sparcle::check {

namespace {

/// Element-name rendering for reports ("ncp edge2", "link up3").
std::string element_name(const Network& net, const ElementKey& e) {
  if (e.index < 0) return "<invalid>";
  if (e.kind == ElementKey::Kind::kNcp)
    return e.index < static_cast<NcpId>(net.ncp_count())
               ? "ncp " + net.ncp(e.index).name
               : "ncp #" + std::to_string(e.index);
  return e.index < static_cast<LinkId>(net.link_count())
             ? "link " + net.link(e.index).name
             : "link #" + std::to_string(e.index);
}

/// Collects violations with shared formatting helpers.
class Collector {
 public:
  explicit Collector(CheckReport& report) : report_(report) {}

  void add(InvariantCode code, std::string app, std::string detail,
           double slack = 0.0) {
    Violation v;
    v.code = code;
    v.app = std::move(app);
    v.slack = slack;
    v.detail = std::move(detail);
    report_.violations.push_back(std::move(v));
  }

  void add_element(InvariantCode code, std::string app, ElementKey element,
                   std::string detail, double slack) {
    Violation v;
    v.code = code;
    v.app = std::move(app);
    v.element = element;
    v.element_scoped = true;
    v.slack = slack;
    v.detail = std::move(detail);
    report_.violations.push_back(std::move(v));
  }

 private:
  CheckReport& report_;
};

/// Structural checks on one placement: shape, valid hosts, contiguous
/// routes (via Placement::validate), and the pin map respected.
void check_placement_structure(const Network& net, const TaskGraph& graph,
                               const std::map<CtId, NcpId>& pinned,
                               const Placement& placement,
                               const std::string& app, Collector& out) {
  std::string err;
  if (!placement.complete()) {
    out.add(InvariantCode::kPlacementStructure, app,
            "placement is not complete (unplaced CT or TT)");
    return;
  }
  if (!placement.validate(graph, net, &err)) {
    out.add(InvariantCode::kPlacementStructure, app, err);
    return;
  }
  for (const auto& [ct, ncp] : pinned) {
    if (ct < 0 || ct >= static_cast<CtId>(graph.ct_count())) {
      out.add(InvariantCode::kPinViolated, app,
              "pin references CT #" + std::to_string(ct) +
                  " outside the task graph");
      continue;
    }
    if (placement.ct_host(ct) != ncp)
      out.add_element(InvariantCode::kPinViolated, app, ElementKey::ncp(ncp),
                      "CT '" + graph.ct(ct).name + "' pinned to '" +
                          net.ncp(ncp).name + "' but hosted on '" +
                          net.ncp(placement.ct_host(ct)).name + "'",
                      0.0);
  }
}

/// |a - b| within absolute-or-relative tolerance.
bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

/// Recomputes a path's per-unit LoadMap and element set from its placement
/// and compares them with the stored copies (the scheduler carries both
/// around for years of operations — drift means corrupt accounting).
void check_stored_path_views(const Network& net, const TaskGraph& graph,
                             const PathInfo& path, const std::string& app,
                             double tol, Collector& out) {
  const LoadMap fresh(net, graph, path.placement);
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    for (std::size_t r = 0; r < net.schema().size(); ++r)
      if (!close(path.load.ncp_load(j)[r], fresh.ncp_load(j)[r], tol)) {
        out.add_element(InvariantCode::kLoadMismatch, app, ElementKey::ncp(j),
                        "stored per-unit load " +
                            std::to_string(path.load.ncp_load(j)[r]) +
                            " != recomputed " +
                            std::to_string(fresh.ncp_load(j)[r]),
                        path.load.ncp_load(j)[r] - fresh.ncp_load(j)[r]);
        return;
      }
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    if (!close(path.load.link_load(l), fresh.link_load(l), tol)) {
      out.add_element(InvariantCode::kLoadMismatch, app, ElementKey::link(l),
                      "stored per-unit load " +
                          std::to_string(path.load.link_load(l)) +
                          " != recomputed " +
                          std::to_string(fresh.link_load(l)),
                      path.load.link_load(l) - fresh.link_load(l));
      return;
    }

  const std::vector<ElementKey> fresh_elems =
      path.placement.used_elements(graph, net);
  const std::set<ElementKey> stored(path.elements.begin(),
                                    path.elements.end());
  const std::set<ElementKey> expect(fresh_elems.begin(), fresh_elems.end());
  if (stored != expect)
    out.add(InvariantCode::kElementsMismatch, app,
            "stored element set (" + std::to_string(stored.size()) +
                ") != placement's used elements (" +
                std::to_string(expect.size()) + ")");
}

}  // namespace

const char* to_string(InvariantCode code) {
  switch (code) {
    case InvariantCode::kPlacementStructure: return "placement-structure";
    case InvariantCode::kPinViolated: return "pin-violated";
    case InvariantCode::kLoadMismatch: return "load-mismatch";
    case InvariantCode::kElementsMismatch: return "elements-mismatch";
    case InvariantCode::kRateNotBottleneck: return "rate-not-bottleneck";
    case InvariantCode::kRateAccounting: return "rate-accounting";
    case InvariantCode::kCapacityExceeded: return "capacity-exceeded";
    case InvariantCode::kResidualMismatch: return "residual-mismatch";
    case InvariantCode::kGrGuaranteeViolated: return "gr-guarantee-violated";
    case InvariantCode::kGrAvailabilityShort: return "gr-availability-short";
    case InvariantCode::kBeNotPf: return "be-not-proportionally-fair";
    case InvariantCode::kDeadPathCarriesRate: return "dead-path-carries-rate";
    case InvariantCode::kOracleInfeasible: return "oracle-infeasible";
    case InvariantCode::kOracleSuboptimal: return "oracle-suboptimal";
    case InvariantCode::kOracleNotMonotone: return "oracle-not-monotone";
    case InvariantCode::kOracleScalingBroken: return "oracle-scaling-broken";
    case InvariantCode::kOracleRemovalVariant: return "oracle-removal-variant";
    case InvariantCode::kOracleOrderDependent: return "oracle-order-dependent";
  }
  return "unknown";
}

bool CheckReport::has(InvariantCode code) const {
  for (const Violation& v : violations)
    if (v.code == code) return true;
  return false;
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << check::to_string(v.code);
    if (!v.app.empty()) os << " [app " << v.app << "]";
    if (v.element_scoped)
      os << " [" << (v.element.kind == ElementKey::Kind::kNcp ? "ncp #"
                                                              : "link #")
         << v.element.index << "]";
    if (v.slack != 0.0) os << " (slack " << v.slack << ")";
    os << ": " << v.detail << "\n";
  }
  return os.str();
}

CheckReport check_assignment(const AssignmentProblem& problem,
                             const AssignmentResult& result,
                             const CheckOptions& options) {
  CheckReport report;
  Collector out(report);
  if (!result.feasible) return report;  // nothing is claimed; nothing to check

  check_placement_structure(*problem.net, *problem.graph, problem.pinned,
                            result.placement, "", out);
  if (!report.ok()) return report;

  const double truth = bottleneck_rate(*problem.net, *problem.graph,
                                       result.placement, problem.capacities);
  if (!close(result.rate, truth, options.tolerance))
    out.add(InvariantCode::kRateNotBottleneck, "",
            "reported rate " + std::to_string(result.rate) +
                " != bottleneck formula " + std::to_string(truth),
            result.rate - truth);
  if (result.rate <= 0 ||
      result.rate == std::numeric_limits<double>::infinity())
    out.add(InvariantCode::kRateAccounting, "",
            "feasible result with non-positive or unbounded rate " +
                std::to_string(result.rate),
            result.rate);
  return report;
}

CheckReport check_scheduler_state(const Scheduler& scheduler,
                                  const CheckOptions& options) {
  CheckReport report;
  Collector out(report);
  const Network& net = scheduler.network();
  const std::set<ElementKey>& failed = scheduler.failed_elements();
  const double tol = options.tolerance;

  LoadMap total = LoadMap::zeros(net);      // Σ over all paths of rate·load
  LoadMap gr_total = LoadMap::zeros(net);   // GR share only (reservations)

  for (const PlacedApp& pa : scheduler.placed()) {
    const std::string& app = pa.app.name;
    const bool gr = pa.app.qoe.cls == QoeClass::kGuaranteedRate;

    if (pa.path_rates.size() != pa.paths.size()) {
      out.add(InvariantCode::kRateAccounting, app,
              "placed app with " + std::to_string(pa.paths.size()) +
                  " path(s) and " + std::to_string(pa.path_rates.size()) +
                  " rate(s)");
      continue;
    }
    if (pa.paths.empty()) {
      // Zero paths is a legitimate degraded state after failures (all of
      // the app's routes died and rebalance() found no replacement); it is
      // never legitimate on a pristine scheduler, and even degraded it
      // must carry no rate.
      if (options.assume_pristine)
        out.add(InvariantCode::kRateAccounting, app,
                "placed app with no paths on a pristine scheduler");
      else if (!close(pa.allocated_rate, 0.0, tol))
        out.add(InvariantCode::kRateAccounting, app,
                "path-less app still reports allocated rate " +
                    std::to_string(pa.allocated_rate),
                -pa.allocated_rate);
      continue;
    }

    double rate_sum = 0.0;
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      const PathInfo& path = pa.paths[k];
      check_placement_structure(net, *pa.app.graph, pa.app.pinned,
                                path.placement, app, out);
      check_stored_path_views(net, *pa.app.graph, path, app, tol, out);

      const double r = pa.path_rates[k];
      if (r < -tol)
        out.add(InvariantCode::kRateAccounting, app,
                "path " + std::to_string(k) + " has negative rate " +
                    std::to_string(r),
                r);
      rate_sum += r;
      total.add_scaled(path.load, r);
      if (gr) gr_total.add_scaled(path.load, r);

      // A path crossing a failed element must not carry Best-Effort rate
      // (the PF re-solve blocks its column); GR reservations deliberately
      // persist until rebalance() and are exempt.
      if (!gr && r > tol)
        for (const ElementKey& e : path.elements)
          if (failed.contains(e))
            out.add_element(InvariantCode::kDeadPathCarriesRate, app, e,
                            "BE path " + std::to_string(k) + " crosses " +
                                element_name(net, e) +
                                " (failed) but carries rate " +
                                std::to_string(r),
                            -r);
    }

    if (!close(pa.allocated_rate, rate_sum, tol))
      out.add(InvariantCode::kRateAccounting, app,
              "allocated_rate " + std::to_string(pa.allocated_rate) +
                  " != sum of path rates " + std::to_string(rate_sum),
              pa.allocated_rate - rate_sum);

    if (gr) {
      // Admitted guarantee: at admission the reservation covers R_j, and on
      // a pristine scheduler it must still.  After failures rebalance() may
      // drop dead reservations it cannot replace, but then the scheduler's
      // own degradation reporting must acknowledge the shortfall.
      const double slack = pa.allocated_rate - pa.app.qoe.min_rate;
      if (slack < -tol * (1.0 + pa.app.qoe.min_rate)) {
        if (options.assume_pristine) {
          out.add(InvariantCode::kGrGuaranteeViolated, app,
                  "reserved rate " + std::to_string(pa.allocated_rate) +
                      " below guaranteed minimum " +
                      std::to_string(pa.app.qoe.min_rate),
                  slack);
        } else {
          const std::vector<std::string> degraded =
              scheduler.degraded_gr_apps();
          if (std::find(degraded.begin(), degraded.end(), app) ==
              degraded.end())
            out.add(InvariantCode::kGrGuaranteeViolated, app,
                    "reserved rate " + std::to_string(pa.allocated_rate) +
                        " below guaranteed minimum " +
                        std::to_string(pa.app.qoe.min_rate) +
                        " yet not reported by degraded_gr_apps()",
                    slack);
        }
      }

      // Min-rate availability (eq. (7)) still meets the admitted target.
      // Only enforceable pristine: failure-driven repair restores rate,
      // not the availability the original path set was admitted with.
      const double target = pa.app.qoe.min_rate_availability;
      if (options.assume_pristine && target > 0) {
        std::vector<std::vector<ElementKey>> element_sets;
        for (const PathInfo& pi : pa.paths)
          element_sets.push_back(pi.elements);
        const double achieved =
            element_sets.size() <= kMaxExactPaths
                ? min_rate_availability(net, element_sets, pa.path_rates,
                                        pa.app.qoe.min_rate)
                : min_rate_availability_mc(net, element_sets, pa.path_rates,
                                           pa.app.qoe.min_rate,
                                           options.mc_trials,
                                           options.mc_seed);
        // MC estimates carry sampling noise on top of the analytic slack.
        const double slack_avail =
            achieved - target +
            (element_sets.size() <= kMaxExactPaths
                 ? options.availability_tolerance
                 : 4.0 / std::sqrt(static_cast<double>(options.mc_trials)));
        if (slack_avail < 0)
          out.add(InvariantCode::kGrAvailabilityShort, app,
                  "min-rate availability " + std::to_string(achieved) +
                      " below admitted target " + std::to_string(target),
                  achieved - target);
      }
    }
  }

  // External (federated cross-shard) reservations hold capacity exactly
  // like GR reservations — fold them into both totals, so the capacity
  // check sees them as load and the residual check sees them as reserved.
  // Rebuilding from the reservation *table* (not the scheduler's
  // accumulated ext_reserved_) is what makes this a leak detector: a
  // release that failed to return capacity shows up as kResidualMismatch.
  for (const auto& [ext_name, ext] : scheduler.external_reservations()) {
    (void)ext_name;
    total.add_scaled_at(ext.elements, ext.load, ext.rate);
    gr_total.add_scaled_at(ext.elements, ext.load, ext.rate);
  }

  // Global capacity feasibility: Σ rate·load <= C on every element.
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    for (std::size_t r = 0; r < net.schema().size(); ++r) {
      const double cap = net.ncp(j).capacity[r];
      const double used = total.ncp_load(j)[r];
      if (used > cap + tol * (1.0 + cap))
        out.add_element(InvariantCode::kCapacityExceeded, "",
                        ElementKey::ncp(j),
                        net.schema().name(r) + " load " +
                            std::to_string(used) + " exceeds capacity " +
                            std::to_string(cap) + " on ncp " +
                            net.ncp(j).name,
                        cap - used);
    }
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    const double cap = net.link(l).bandwidth;
    const double used = total.link_load(l);
    if (used > cap + tol * (1.0 + cap))
      out.add_element(InvariantCode::kCapacityExceeded, "",
                      ElementKey::link(l),
                      "bandwidth load " + std::to_string(used) +
                          " exceeds capacity " + std::to_string(cap) +
                          " on link " + net.link(l).name,
                      cap - used);
  }

  // Residual accounting: residual == full - GR reservations, failed zeroed.
  const CapacitySnapshot& residual = scheduler.gr_residual_capacities();
  auto expect_residual = [&](const ElementKey& e, std::size_t r,
                             double full_cap, double reserved) {
    const double expect =
        failed.contains(e) ? 0.0 : std::max(0.0, full_cap - reserved);
    const double got = residual.element(e, r);
    if (!close(got, expect, tol))
      out.add_element(InvariantCode::kResidualMismatch, "", e,
                      "residual " + std::to_string(got) + " != expected " +
                          std::to_string(expect) + " (" +
                          element_name(net, e) + ")",
                      got - expect);
  };
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    for (std::size_t r = 0; r < net.schema().size(); ++r)
      expect_residual(ElementKey::ncp(j), r, net.ncp(j).capacity[r],
                      gr_total.ncp_load(j)[r]);
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    expect_residual(ElementKey::link(l), 0, net.link(l).bandwidth,
                    gr_total.link_load(l));

  // Best-Effort proportional fairness: rebuild problem (4) exactly as the
  // scheduler does (residual capacities, one variable per usable path) and
  // compare the observed utility against a fresh solve.
  if (options.check_pf_optimality) {
    const std::size_t nr = net.schema().size();
    const std::size_t ncp_rows = net.ncp_count() * nr;
    PfProblem pf;
    pf.capacity.assign(ncp_rows + net.link_count(), 0.0);
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
      for (std::size_t r = 0; r < nr; ++r)
        pf.capacity[j * nr + r] = residual.ncp(j)[r];
    for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
      pf.capacity[ncp_rows + l] = residual.link(l);

    std::vector<double> observed;
    std::vector<std::string> included_apps;
    for (const PlacedApp& pa : scheduler.placed()) {
      if (pa.app.qoe.cls != QoeClass::kBestEffort) continue;
      bool app_included = false;
      std::size_t app_index = 0;
      for (std::size_t k = 0; k < pa.paths.size(); ++k) {
        PfProblem::Column col;
        bool blocked = false;
        for (const ElementKey& e : pa.paths[k].elements)
          if (failed.contains(e)) blocked = true;
        const LoadMap& load = pa.paths[k].load;
        for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
          for (std::size_t r = 0; r < nr; ++r) {
            const double a = load.ncp_load(j)[r];
            if (a <= 0) continue;
            if (pf.capacity[j * nr + r] <= 0) blocked = true;
            col.entries.emplace_back(j * nr + r, a);
          }
        for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
          const double a = load.link_load(l);
          if (a <= 0) continue;
          if (pf.capacity[ncp_rows + l] <= 0) blocked = true;
          col.entries.emplace_back(ncp_rows + l, a);
        }
        if (blocked) continue;
        if (!app_included) {
          app_index = pf.app_priority.size();
          pf.app_priority.push_back(pa.app.qoe.priority);
          included_apps.push_back(pa.app.name);
          app_included = true;
        }
        pf.columns.push_back(std::move(col));
        pf.var_app.push_back(app_index);
        observed.push_back(pa.path_rates[k]);
      }
    }

    if (!pf.columns.empty()) {
      // An included app with zero observed total already fails PF (the
      // interior optimum gives every app a strictly positive rate).
      std::vector<double> app_sum(pf.app_count(), 0.0);
      for (std::size_t v = 0; v < observed.size(); ++v)
        app_sum[pf.var_app[v]] += observed[v];
      bool any_zero = false;
      for (std::size_t a = 0; a < app_sum.size(); ++a)
        if (app_sum[a] <= 0) {
          any_zero = true;
          out.add(InvariantCode::kBeNotPf, included_apps[a],
                  "usable BE path(s) but zero allocated rate — the PF "
                  "optimum is strictly positive");
        }
      if (!any_zero) {
        try {
          const PfSolution fresh = solve_weighted_pf(pf);
          const double got = pf_utility(pf, observed);
          if (fresh.converged &&
              got < fresh.utility -
                        options.pf_utility_tolerance *
                            (1.0 + std::abs(fresh.utility)))
            out.add(InvariantCode::kBeNotPf, "",
                    "observed BE utility " + std::to_string(got) +
                        " below re-solved optimum " +
                        std::to_string(fresh.utility),
                    got - fresh.utility);
        } catch (const std::exception& e) {
          out.add(InvariantCode::kBeNotPf, "",
                  std::string("PF re-solve rejected the committed paths: ") +
                      e.what());
        }
      }
    }
  }

  return report;
}

ScopedValidation::ScopedValidation(bool force, CheckOptions options) {
#ifdef NDEBUG
  if (!force) return;
#else
  (void)force;
#endif
  Scheduler::set_validation_hook([options](const Scheduler& scheduler) {
    const CheckReport report = check_scheduler_state(scheduler, options);
    if (!report.ok())
      throw std::logic_error("scheduler invariant violation:\n" +
                             report.to_string());
  });
  armed_ = true;
}

ScopedValidation::~ScopedValidation() {
  if (armed_) Scheduler::set_validation_hook(nullptr);
}

}  // namespace sparcle::check
