#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "baselines/exhaustive.hpp"
#include "model/placement.hpp"
#include "model/task_graph.hpp"

namespace sparcle::check {

namespace {

bool close_rel(double a, double b, double tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

Violation make_violation(InvariantCode code, std::string detail,
                         double slack = 0.0) {
  Violation v;
  v.code = code;
  v.slack = slack;
  v.detail = std::move(detail);
  return v;
}

/// Same hosts and same routes for every CT/TT.
bool same_placement(const TaskGraph& graph, const Placement& a,
                    const Placement& b) {
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i)
    if (a.ct_host(i) != b.ct_host(i)) return false;
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k)
    if (a.tt_route(k) != b.tt_route(k)) return false;
  return true;
}

/// A structural copy of `graph` with every CT requirement and TT bit count
/// multiplied by `factor`.
TaskGraph scale_graph(const TaskGraph& graph, double factor) {
  TaskGraph scaled(graph.schema());
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    const ComputeTask& ct = graph.ct(i);
    scaled.add_ct(ct.name, ct.requirement * factor);
  }
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    const TransportTask& tt = graph.tt(k);
    scaled.add_tt(tt.name, tt.bits_per_unit * factor, tt.src, tt.dst);
  }
  scaled.finalize();
  return scaled;
}

void scale_capacities(CapacitySnapshot& cap, double factor) {
  for (NcpId j = 0; j < static_cast<NcpId>(cap.ncp_count()); ++j)
    cap.ncp(j) *= factor;
  for (LinkId l = 0; l < static_cast<LinkId>(cap.link_count()); ++l)
    cap.link(l) *= factor;
}

/// Every capacity strictly positive: with positive capacities any complete
/// placement has a positive bottleneck rate, so feasibility reduces to
/// "pins satisfiable on a connected network" and both solvers must agree.
bool all_capacities_positive(const CapacitySnapshot& cap) {
  for (NcpId j = 0; j < static_cast<NcpId>(cap.ncp_count()); ++j)
    for (std::size_t r = 0; r < cap.ncp(j).size(); ++r)
      if (!(cap.ncp(j)[r] > 0)) return false;
  for (LinkId l = 0; l < static_cast<LinkId>(cap.link_count()); ++l)
    if (!(cap.link(l) > 0)) return false;
  return true;
}

}  // namespace

bool unique_route_topology(const Network& net) {
  if (net.ncp_count() == 0 || !net.connected()) return false;
  if (net.link_count() != net.ncp_count() - 1) return false;
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    if (net.link(l).directed) return false;
  return true;
}

bool exhaustively_enumerable(const AssignmentProblem& problem,
                             const OracleOptions& options) {
  if (!problem.net || !problem.graph) return false;
  const std::uint64_t ncps = problem.net->ncp_count();
  if (ncps == 0) return false;
  std::uint64_t combos = 1;
  for (CtId i = 0; i < static_cast<CtId>(problem.graph->ct_count()); ++i) {
    if (problem.pinned.count(i)) continue;
    if (combos > options.max_exhaustive_assignments / ncps) return false;
    combos *= ncps;
  }
  return combos <= options.max_exhaustive_assignments;
}

DifferentialReport differential_vs_exhaustive(const AssignmentProblem& problem,
                                              const Assigner& assigner,
                                              const OracleOptions& options) {
  DifferentialReport out;
  const AssignmentResult heuristic = assigner.assign(problem);
  const ExhaustiveAssigner exhaustive(
      options.max_exhaustive_assignments);
  const AssignmentResult optimal = exhaustive.assign(problem);

  // Both solutions must satisfy problem (1) on their own terms.
  for (const auto* r : {&heuristic, &optimal}) {
    CheckReport solo = check_assignment(problem, *r, options.check);
    out.report.violations.insert(out.report.violations.end(),
                                 solo.violations.begin(),
                                 solo.violations.end());
  }

  out.heuristic_feasible = heuristic.feasible;
  out.optimal_feasible = optimal.feasible;
  out.heuristic_rate = heuristic.rate;
  out.optimal_rate = optimal.rate;

  // With strictly positive capacities any complete placement has positive
  // rate, so feasibility is purely structural and must agree; with zeroed
  // capacities (residual problems) a greedy can legitimately dead-end.
  const bool positive = all_capacities_positive(problem.capacities);
  if (positive && optimal.feasible && !heuristic.feasible) {
    out.report.violations.push_back(make_violation(
        InvariantCode::kOracleInfeasible,
        "heuristic found no placement but the exhaustive optimum is " +
            std::to_string(optimal.rate) + " (" + heuristic.message + ")",
        -optimal.rate));
  }
  if (positive && heuristic.feasible && !optimal.feasible) {
    out.report.violations.push_back(make_violation(
        InvariantCode::kOracleSuboptimal,
        "heuristic claims rate " + std::to_string(heuristic.rate) +
            " but the exhaustive search found the problem infeasible",
        -heuristic.rate));
  }
  if (heuristic.feasible && optimal.feasible) {
    const double tol = options.tolerance *
                       std::max({1.0, heuristic.rate, optimal.rate});
    if (heuristic.rate > optimal.rate + tol &&
        unique_route_topology(*problem.net))
      out.report.violations.push_back(make_violation(
          InvariantCode::kOracleSuboptimal,
          "heuristic rate " + std::to_string(heuristic.rate) +
              " exceeds the enumerated optimum " +
              std::to_string(optimal.rate) +
              " on a unique-route topology",
          optimal.rate - heuristic.rate));
    out.gap = optimal.rate > 0 ? heuristic.rate / optimal.rate : 1.0;
  } else if (!heuristic.feasible && !optimal.feasible) {
    out.gap = 1.0;
  } else {
    out.gap = 0.0;
  }
  return out;
}

CheckReport oracle_capacity_monotonicity(const AssignmentProblem& problem,
                                         const OracleOptions& options) {
  CheckReport report;
  const ExhaustiveAssigner exhaustive(
      options.max_exhaustive_assignments);
  const AssignmentResult base = exhaustive.assign(problem);
  const std::size_t nr = problem.net->schema().size();
  for (NcpId j = 0; j < static_cast<NcpId>(problem.net->ncp_count()); ++j) {
    for (std::size_t r = 0; r < nr; ++r) {
      AssignmentProblem raised = problem;
      raised.capacities.ncp(j)[r] *= 2.0;
      const AssignmentResult after = exhaustive.assign(raised);
      if (!base.feasible) continue;  // gaining feasibility is fine
      const double tol =
          options.tolerance * std::max({1.0, base.rate, after.rate});
      if (!after.feasible || after.rate < base.rate - tol) {
        Violation v = make_violation(
            InvariantCode::kOracleNotMonotone,
            "doubling ncp " + std::to_string(j) + " resource " +
                problem.net->schema().name(r) +
                " dropped the exhaustive optimum from " +
                std::to_string(base.rate) + " to " +
                std::to_string(after.feasible ? after.rate : 0.0),
            (after.feasible ? after.rate : 0.0) - base.rate);
        v.element = ElementKey::ncp(j);
        v.element_scoped = true;
        report.violations.push_back(v);
      }
    }
  }
  return report;
}

CheckReport oracle_scaling(const AssignmentProblem& problem,
                           const Assigner& assigner, double factor,
                           const OracleOptions& options) {
  CheckReport report;
  if (!(factor > 0) || std::exp2(std::round(std::log2(factor))) != factor) {
    report.violations.push_back(make_violation(
        InvariantCode::kOracleScalingBroken,
        "scaling factor " + std::to_string(factor) +
            " is not a positive power of two; the exactness argument "
            "does not apply"));
    return report;
  }
  const AssignmentResult base = assigner.assign(problem);
  const TaskGraph scaled_graph = scale_graph(*problem.graph, factor);

  struct Variant {
    const char* what;
    AssignmentProblem problem;
    double expected_rate;
  };
  std::vector<Variant> variants;
  {
    Variant caps{"capacities x f", problem, base.rate * factor};
    scale_capacities(caps.problem.capacities, factor);
    variants.push_back(std::move(caps));
  }
  {
    Variant demands{"demands x f", problem, base.rate * (1.0 / factor)};
    demands.problem.graph = &scaled_graph;
    variants.push_back(std::move(demands));
  }
  {
    Variant joint{"capacities and demands x f", problem, base.rate};
    joint.problem.graph = &scaled_graph;
    scale_capacities(joint.problem.capacities, factor);
    variants.push_back(std::move(joint));
  }

  for (const Variant& variant : variants) {
    const AssignmentResult scaled = assigner.assign(variant.problem);
    if (scaled.feasible != base.feasible) {
      report.violations.push_back(make_violation(
          InvariantCode::kOracleScalingBroken,
          std::string(variant.what) + " flipped feasibility from " +
              (base.feasible ? "feasible" : "infeasible") + " to " +
              (scaled.feasible ? "feasible" : "infeasible")));
      continue;
    }
    if (!base.feasible) continue;
    if (!same_placement(*problem.graph, base.placement, scaled.placement))
      report.violations.push_back(make_violation(
          InvariantCode::kOracleScalingBroken,
          std::string(variant.what) +
              " changed the produced placement (uniform scaling must "
              "preserve every argmax decision)"));
    if (!close_rel(scaled.rate, variant.expected_rate, options.tolerance))
      report.violations.push_back(make_violation(
          InvariantCode::kOracleScalingBroken,
          std::string(variant.what) + " produced rate " +
              std::to_string(scaled.rate) + ", expected " +
              std::to_string(variant.expected_rate),
          scaled.rate - variant.expected_rate));
  }
  return report;
}

CheckReport oracle_unused_link_removal(const AssignmentProblem& problem,
                                       const AssignmentResult& result,
                                       const OracleOptions& /*options*/) {
  // The rate comparison is exact: unused links contribute no load, so the
  // bottleneck minimum runs over an identical set of loaded elements.
  CheckReport report;
  if (!result.feasible) return report;
  const Network& net = *problem.net;
  const TaskGraph& graph = *problem.graph;

  std::set<LinkId> used;
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k)
    for (LinkId l : result.placement.tt_route(k)) used.insert(l);
  if (used.size() == net.link_count()) return report;  // nothing to drop

  // Rebuild the network with only the used links; NCP ids are stable, so
  // hosts and pins carry over verbatim.
  Network reduced(net.schema());
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const Ncp& ncp = net.ncp(j);
    reduced.add_ncp(ncp.name, ncp.capacity, ncp.fail_prob);
  }
  std::map<LinkId, LinkId> link_map;
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    if (!used.count(l)) continue;
    const Link& link = net.link(l);
    link_map[l] = link.directed
                      ? reduced.add_directed_link(link.name, link.a, link.b,
                                                  link.bandwidth,
                                                  link.fail_prob)
                      : reduced.add_link(link.name, link.a, link.b,
                                         link.bandwidth, link.fail_prob);
  }

  Placement remapped(graph);
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i)
    remapped.place_ct(i, result.placement.ct_host(i));
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    std::vector<LinkId> route;
    for (LinkId l : result.placement.tt_route(k))
      route.push_back(link_map.at(l));
    remapped.place_tt(k, std::move(route));
  }

  std::string err;
  if (!remapped.validate(graph, reduced, &err)) {
    report.violations.push_back(make_violation(
        InvariantCode::kOracleRemovalVariant,
        "solution no longer structurally valid after dropping the links "
        "it does not use: " +
            err));
    return report;
  }

  CapacitySnapshot reduced_cap(reduced);
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    reduced_cap.ncp(j) = problem.capacities.ncp(j);
  for (const auto& [old_l, new_l] : link_map)
    reduced_cap.link(new_l) = problem.capacities.link(old_l);

  const LoadMap load(reduced, graph, remapped);
  const double rate = bottleneck_rate(reduced_cap, load);
  if (rate != result.rate)
    report.violations.push_back(make_violation(
        InvariantCode::kOracleRemovalVariant,
        "rate changed from " + std::to_string(result.rate) + " to " +
            std::to_string(rate) +
            " after dropping unused links (load accounting depends on "
            "elements the solution never touches)",
        rate - result.rate));
  return report;
}

CheckReport oracle_arrival_order(const workload::ScenarioFile& scenario,
                                 const std::vector<std::size_t>& permutation,
                                 const SchedulerOptions& sched_options,
                                 const OracleOptions& options) {
  CheckReport report;
  const std::size_t n = scenario.apps.size();
  if (permutation.size() != n) {
    report.violations.push_back(make_violation(
        InvariantCode::kOracleOrderDependent,
        "permutation size does not match the application count"));
    return report;
  }

  Scheduler in_order(scenario.net, sched_options);
  Scheduler permuted(scenario.net, sched_options);
  std::vector<char> admitted_in_order(n, 0), admitted_permuted(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    admitted_in_order[i] = in_order.submit(scenario.apps[i]).admitted;
  for (std::size_t i : permutation)
    admitted_permuted[i] = permuted.submit(scenario.apps[i]).admitted;

  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = scenario.apps[i].name;
    if (admitted_in_order[i] != admitted_permuted[i]) {
      Violation v = make_violation(
          InvariantCode::kOracleOrderDependent,
          std::string("admission depends on arrival order (Thm 3): ") +
              (admitted_in_order[i] ? "admitted" : "rejected") +
              " in file order, " +
              (admitted_permuted[i] ? "admitted" : "rejected") +
              " when permuted");
      v.app = name;
      report.violations.push_back(v);
      continue;
    }
    if (!admitted_in_order[i]) continue;

    const PlacedApp* a = nullptr;
    const PlacedApp* b = nullptr;
    for (const PlacedApp& p : in_order.placed())
      if (p.app.name == name) a = &p;
    for (const PlacedApp& p : permuted.placed())
      if (p.app.name == name) b = &p;
    if (!a || !b) {
      Violation v = make_violation(InvariantCode::kOracleOrderDependent,
                                   "admitted app missing from placed()");
      v.app = name;
      report.violations.push_back(v);
      continue;
    }
    if (a->paths.size() != b->paths.size()) {
      Violation v = make_violation(
          InvariantCode::kOracleOrderDependent,
          "path count depends on arrival order: " +
              std::to_string(a->paths.size()) + " vs " +
              std::to_string(b->paths.size()));
      v.app = name;
      report.violations.push_back(v);
      continue;
    }
    const TaskGraph& graph = *a->app.graph;
    for (std::size_t p = 0; p < a->paths.size(); ++p)
      if (!same_placement(graph, a->paths[p].placement,
                          b->paths[p].placement)) {
        Violation v = make_violation(
            InvariantCode::kOracleOrderDependent,
            "path " + std::to_string(p) +
                " placement depends on arrival order (pinned CTs on a "
                "tree admit exactly one route)");
        v.app = name;
        report.violations.push_back(v);
      }
    if (!close_rel(a->allocated_rate, b->allocated_rate,
                   options.arrival_rate_tolerance)) {
      Violation v = make_violation(
          InvariantCode::kOracleOrderDependent,
          "allocated rate depends on arrival order: " +
              std::to_string(a->allocated_rate) + " vs " +
              std::to_string(b->allocated_rate),
          a->allocated_rate - b->allocated_rate);
      v.app = name;
      report.violations.push_back(v);
    }
  }
  return report;
}

}  // namespace sparcle::check
