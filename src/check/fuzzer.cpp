#include "check/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "model/application.hpp"
#include "model/network.hpp"
#include "model/task_graph.hpp"
#include "policy/policy.hpp"
#include "sim/churn_injector.hpp"

namespace sparcle::check {

namespace {

using workload::ScenarioFile;

/// A scenario decomposed into plain mutable vectors.  Network and
/// TaskGraph are immutable after build, so the generator and the shrinker
/// both work on this form and materialize through rebuild().
struct EditableApp {
  std::string name;
  QoeSpec qoe;
  std::map<CtId, NcpId> pinned;
  std::vector<ComputeTask> cts;
  std::vector<TransportTask> tts;
};

struct EditableScenario {
  ResourceSchema schema;
  std::vector<Ncp> ncps;
  std::vector<Link> links;
  std::vector<EditableApp> apps;
};

EditableScenario decompose(const ScenarioFile& s) {
  EditableScenario e;
  e.schema = s.net.schema();
  for (NcpId j = 0; j < static_cast<NcpId>(s.net.ncp_count()); ++j)
    e.ncps.push_back(s.net.ncp(j));
  for (LinkId l = 0; l < static_cast<LinkId>(s.net.link_count()); ++l)
    e.links.push_back(s.net.link(l));
  for (const Application& app : s.apps) {
    EditableApp a;
    a.name = app.name;
    a.qoe = app.qoe;
    a.pinned = app.pinned;
    for (CtId i = 0; i < static_cast<CtId>(app.graph->ct_count()); ++i)
      a.cts.push_back(app.graph->ct(i));
    for (TtId k = 0; k < static_cast<TtId>(app.graph->tt_count()); ++k)
      a.tts.push_back(app.graph->tt(k));
    e.apps.push_back(std::move(a));
  }
  return e;
}

/// Materializes an edited scenario; nullopt when any model-layer validity
/// rule rejects it (the shrinker treats that as "candidate not viable").
std::optional<ScenarioFile> rebuild(const EditableScenario& e) {
  try {
    ScenarioFile out;
    out.net = Network(e.schema);
    for (const Ncp& n : e.ncps) out.net.add_ncp(n.name, n.capacity, n.fail_prob);
    for (const Link& l : e.links) {
      if (l.directed)
        out.net.add_directed_link(l.name, l.a, l.b, l.bandwidth, l.fail_prob);
      else
        out.net.add_link(l.name, l.a, l.b, l.bandwidth, l.fail_prob);
    }
    for (const EditableApp& a : e.apps) {
      TaskGraph g(e.schema);
      for (const ComputeTask& ct : a.cts) g.add_ct(ct.name, ct.requirement);
      for (const TransportTask& tt : a.tts)
        g.add_tt(tt.name, tt.bits_per_unit, tt.src, tt.dst);
      g.finalize();
      Application app;
      app.name = a.name;
      app.qoe = a.qoe;
      app.pinned = a.pinned;
      app.graph = std::make_shared<TaskGraph>(std::move(g));
      for (const auto& [ct, j] : app.pinned)
        if (ct < 0 || ct >= static_cast<CtId>(app.graph->ct_count()) ||
            j < 0 || j >= static_cast<NcpId>(out.net.ncp_count()))
          throw std::invalid_argument("pin out of range");
      app.validate();
      out.apps.push_back(std::move(app));
    }
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

double random_fail_prob(Rng& rng) {
  return rng.bernoulli(0.4) ? rng.uniform(0.01, 0.15) : 0.0;
}

ResourceVector random_vector(Rng& rng, std::size_t nr, double lo, double hi) {
  ResourceVector v(nr);
  for (std::size_t r = 0; r < nr; ++r) v[r] = rng.uniform(lo, hi);
  return v;
}

/// Appends a chain / diamond / vee task graph and pins for one app.
void random_app_graph(Rng& rng, std::size_t nr, std::size_t app_index,
                      std::size_t ncps, EditableApp& app) {
  const std::string prefix = "a" + std::to_string(app_index);
  auto ct_name = [&](std::size_t i) { return prefix + "c" + std::to_string(i); };
  auto tt_name = [&](std::size_t k) { return prefix + "t" + std::to_string(k); };
  auto add_ct = [&] {
    app.cts.push_back(
        {ct_name(app.cts.size()), random_vector(rng, nr, 0.5, 4.0)});
  };
  auto add_tt = [&](CtId src, CtId dst) {
    app.tts.push_back({tt_name(app.tts.size()), rng.uniform(1.0, 10.0),
                       src, dst});
  };
  switch (rng.uniform_int(0, 2)) {
    case 0: {  // chain
      const std::size_t len = static_cast<std::size_t>(rng.uniform_int(2, 4));
      for (std::size_t i = 0; i < len; ++i) add_ct();
      for (std::size_t i = 0; i + 1 < len; ++i)
        add_tt(static_cast<CtId>(i), static_cast<CtId>(i + 1));
      break;
    }
    case 1:  // diamond
      for (std::size_t i = 0; i < 4; ++i) add_ct();
      add_tt(0, 1);
      add_tt(0, 2);
      add_tt(1, 3);
      add_tt(2, 3);
      break;
    default:  // vee: two sources into one sink
      for (std::size_t i = 0; i < 3; ++i) add_ct();
      add_tt(0, 2);
      add_tt(1, 2);
      break;
  }
  // Pin every source and sink (the model requires it); occasionally pin
  // an interior CT too.
  std::vector<int> indeg(app.cts.size(), 0), outdeg(app.cts.size(), 0);
  for (const TransportTask& tt : app.tts) {
    ++outdeg[tt.src];
    ++indeg[tt.dst];
  }
  for (std::size_t i = 0; i < app.cts.size(); ++i) {
    const bool endpoint = indeg[i] == 0 || outdeg[i] == 0;
    if (endpoint || rng.bernoulli(0.2))
      app.pinned[static_cast<CtId>(i)] = static_cast<NcpId>(
          rng.uniform_int(0, static_cast<std::int64_t>(ncps) - 1));
  }
}

std::string signature(const ScenarioVerdict& v) {
  return v.phase + "/" +
         (v.report.violations.empty()
              ? "none"
              : to_string(v.report.violations.front().code));
}

bool fully_pinned_best_effort(const ScenarioFile& s) {
  for (const Application& app : s.apps) {
    if (app.qoe.cls != QoeClass::kBestEffort) return false;
    if (app.pinned.size() != app.graph->ct_count()) return false;
  }
  return true;
}

// ----- shrinker mutations ------------------------------------------------

using Mutation = std::function<std::optional<EditableScenario>()>;

std::optional<EditableScenario> drop_app(EditableScenario e, std::size_t i) {
  e.apps.erase(e.apps.begin() + static_cast<std::ptrdiff_t>(i));
  if (e.apps.empty()) return std::nullopt;  // nothing left to check
  return e;
}

std::optional<EditableScenario> drop_link(EditableScenario e, std::size_t l) {
  e.links.erase(e.links.begin() + static_cast<std::ptrdiff_t>(l));
  return e;
}

std::optional<EditableScenario> drop_ncp(EditableScenario e, NcpId j) {
  for (const EditableApp& a : e.apps)
    for (const auto& [ct, host] : a.pinned)
      if (host == j) return std::nullopt;  // pinned NCPs must stay
  e.ncps.erase(e.ncps.begin() + j);
  std::vector<Link> kept;
  for (Link l : e.links) {
    if (l.a == j || l.b == j) continue;
    if (l.a > j) --l.a;
    if (l.b > j) --l.b;
    kept.push_back(std::move(l));
  }
  e.links = std::move(kept);
  for (EditableApp& a : e.apps) {
    std::map<CtId, NcpId> pins;
    for (const auto& [ct, host] : a.pinned)
      pins[ct] = host > j ? host - 1 : host;
    a.pinned = std::move(pins);
  }
  return e;
}

/// Drops one CT (and its incident TTs); CTs newly exposed as sources or
/// sinks are pinned to the dropped CT's host (or NCP 0) so the app stays
/// model-valid — the reproduction predicate decides whether the semantic
/// change still fails the same way.
std::optional<EditableScenario> drop_ct(EditableScenario e, std::size_t ai,
                                        CtId c) {
  EditableApp& a = e.apps[ai];
  if (a.cts.size() <= 1) return std::nullopt;
  NcpId fallback = 0;
  if (auto it = a.pinned.find(c); it != a.pinned.end()) fallback = it->second;
  a.cts.erase(a.cts.begin() + c);
  std::vector<TransportTask> tts;
  for (TransportTask tt : a.tts) {
    if (tt.src == c || tt.dst == c) continue;
    if (tt.src > c) --tt.src;
    if (tt.dst > c) --tt.dst;
    tts.push_back(std::move(tt));
  }
  a.tts = std::move(tts);
  std::map<CtId, NcpId> pins;
  for (const auto& [ct, host] : a.pinned) {
    if (ct == c) continue;
    pins[ct > c ? ct - 1 : ct] = host;
  }
  a.pinned = std::move(pins);
  std::vector<int> indeg(a.cts.size(), 0), outdeg(a.cts.size(), 0);
  for (const TransportTask& tt : a.tts) {
    ++outdeg[tt.src];
    ++indeg[tt.dst];
  }
  for (std::size_t i = 0; i < a.cts.size(); ++i)
    if ((indeg[i] == 0 || outdeg[i] == 0) &&
        !a.pinned.count(static_cast<CtId>(i)))
      a.pinned[static_cast<CtId>(i)] = fallback;
  return e;
}

/// One roundable numeric field of the scenario.
struct NumericSite {
  std::function<double(const EditableScenario&)> get;
  std::function<void(EditableScenario&, double)> set;
};

std::vector<NumericSite> numeric_sites(const EditableScenario& e) {
  std::vector<NumericSite> sites;
  const std::size_t nr = e.schema.size();
  for (std::size_t j = 0; j < e.ncps.size(); ++j) {
    for (std::size_t r = 0; r < nr; ++r)
      sites.push_back(
          {[j, r](const EditableScenario& s) { return s.ncps[j].capacity[r]; },
           [j, r](EditableScenario& s, double v) { s.ncps[j].capacity[r] = v; }});
    sites.push_back(
        {[j](const EditableScenario& s) { return s.ncps[j].fail_prob; },
         [j](EditableScenario& s, double v) { s.ncps[j].fail_prob = v; }});
  }
  for (std::size_t l = 0; l < e.links.size(); ++l) {
    sites.push_back(
        {[l](const EditableScenario& s) { return s.links[l].bandwidth; },
         [l](EditableScenario& s, double v) { s.links[l].bandwidth = v; }});
    sites.push_back(
        {[l](const EditableScenario& s) { return s.links[l].fail_prob; },
         [l](EditableScenario& s, double v) { s.links[l].fail_prob = v; }});
  }
  for (std::size_t ai = 0; ai < e.apps.size(); ++ai) {
    sites.push_back(
        {[ai](const EditableScenario& s) { return s.apps[ai].qoe.priority; },
         [ai](EditableScenario& s, double v) { s.apps[ai].qoe.priority = v; }});
    sites.push_back(
        {[ai](const EditableScenario& s) {
           return s.apps[ai].qoe.availability;
         },
         [ai](EditableScenario& s, double v) {
           s.apps[ai].qoe.availability = v;
         }});
    sites.push_back(
        {[ai](const EditableScenario& s) { return s.apps[ai].qoe.min_rate; },
         [ai](EditableScenario& s, double v) { s.apps[ai].qoe.min_rate = v; }});
    sites.push_back({[ai](const EditableScenario& s) {
                       return s.apps[ai].qoe.min_rate_availability;
                     },
                     [ai](EditableScenario& s, double v) {
                       s.apps[ai].qoe.min_rate_availability = v;
                     }});
    for (std::size_t ci = 0; ci < e.apps[ai].cts.size(); ++ci)
      for (std::size_t r = 0; r < nr; ++r)
        sites.push_back({[ai, ci, r](const EditableScenario& s) {
                           return s.apps[ai].cts[ci].requirement[r];
                         },
                         [ai, ci, r](EditableScenario& s, double v) {
                           s.apps[ai].cts[ci].requirement[r] = v;
                         }});
    for (std::size_t ti = 0; ti < e.apps[ai].tts.size(); ++ti)
      sites.push_back({[ai, ti](const EditableScenario& s) {
                         return s.apps[ai].tts[ti].bits_per_unit;
                       },
                       [ai, ti](EditableScenario& s, double v) {
                         s.apps[ai].tts[ti].bits_per_unit = v;
                       }});
  }
  return sites;
}

/// Candidate reductions for one shrink round, structural drops first
/// (biggest wins), then number rounding.  Each mutation owns a copy of
/// the current scenario.
std::vector<Mutation> enumerate_mutations(const EditableScenario& cur) {
  std::vector<Mutation> out;
  for (std::size_t i = 0; i < cur.apps.size(); ++i)
    out.push_back([cur, i] { return drop_app(cur, i); });
  for (NcpId j = 0; j < static_cast<NcpId>(cur.ncps.size()); ++j)
    out.push_back([cur, j] { return drop_ncp(cur, j); });
  for (std::size_t l = 0; l < cur.links.size(); ++l)
    out.push_back([cur, l] { return drop_link(cur, l); });
  for (std::size_t ai = 0; ai < cur.apps.size(); ++ai)
    for (CtId c = 0; c < static_cast<CtId>(cur.apps[ai].cts.size()); ++c)
      out.push_back([cur, ai, c] { return drop_ct(cur, ai, c); });
  for (const NumericSite& site : numeric_sites(cur)) {
    const double v = site.get(cur);
    for (const double rounded :
         {std::rint(v), std::rint(v * 10.0) / 10.0}) {
      if (rounded == v) continue;
      out.push_back([cur, site, rounded]() -> std::optional<EditableScenario> {
        EditableScenario next = cur;
        site.set(next, rounded);
        return next;
      });
    }
  }
  return out;
}

}  // namespace

ScenarioFile random_scenario(Rng& rng, const FuzzOptions& options) {
  EditableScenario e;
  e.schema = rng.bernoulli(0.25) ? ResourceSchema::cpu_memory()
                                 : ResourceSchema::cpu_only();
  const std::size_t nr = e.schema.size();
  const std::size_t n = static_cast<std::size_t>(
      rng.uniform_int(2, static_cast<std::int64_t>(std::max<std::size_t>(
                             2, options.max_ncps))));
  for (std::size_t j = 0; j < n; ++j)
    e.ncps.push_back({"n" + std::to_string(j),
                      random_vector(rng, nr, 4.0, 40.0),
                      random_fail_prob(rng), {}});
  // Random spanning tree (connected by construction) ...
  std::size_t link_idx = 0;
  auto add_link = [&](NcpId a, NcpId b, bool directed) {
    e.links.push_back({"l" + std::to_string(link_idx++),
                       rng.uniform(8.0, 80.0), a, b, random_fail_prob(rng),
                       directed});
  };
  for (std::size_t j = 1; j < n; ++j)
    add_link(static_cast<NcpId>(
                 rng.uniform_int(0, static_cast<std::int64_t>(j) - 1)),
             static_cast<NcpId>(j), false);
  // ... plus a few chords, occasionally directed.
  const std::size_t extra =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
  for (std::size_t i = 0; i < extra; ++i) {
    const NcpId a = static_cast<NcpId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const NcpId b = static_cast<NcpId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (a == b) continue;
    add_link(a, b, rng.bernoulli(0.2));
  }
  const std::size_t apps = static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<std::int64_t>(std::max<std::size_t>(1, options.max_apps))));
  for (std::size_t ai = 0; ai < apps; ++ai) {
    EditableApp app;
    app.name = "app" + std::to_string(ai);
    if (rng.bernoulli(0.75)) {
      app.qoe = QoeSpec::best_effort(
          rng.uniform(0.5, 4.0),
          rng.bernoulli(0.3) ? rng.uniform(0.3, 0.8) : 0.0);
    } else {
      app.qoe = QoeSpec::guaranteed_rate(
          rng.uniform(0.05, 0.4),
          rng.bernoulli(0.5) ? rng.uniform(0.2, 0.6) : 0.0);
    }
    random_app_graph(rng, nr, ai, n, app);
    e.apps.push_back(std::move(app));
  }
  std::optional<ScenarioFile> built = rebuild(e);
  if (!built)
    throw std::logic_error("random_scenario produced an invalid scenario");
  return std::move(*built);
}

ScenarioFile random_pinned_tree_scenario(Rng& rng, const FuzzOptions& options) {
  EditableScenario e;
  e.schema = ResourceSchema::cpu_only();
  const std::size_t n = static_cast<std::size_t>(
      rng.uniform_int(2, static_cast<std::int64_t>(std::max<std::size_t>(
                             2, options.max_ncps))));
  for (std::size_t j = 0; j < n; ++j)
    e.ncps.push_back({"n" + std::to_string(j),
                      random_vector(rng, 1, 4.0, 40.0), 0.0, {}});
  for (std::size_t j = 1; j < n; ++j)
    e.links.push_back({"l" + std::to_string(j - 1), rng.uniform(8.0, 80.0),
                       static_cast<NcpId>(rng.uniform_int(
                           0, static_cast<std::int64_t>(j) - 1)),
                       static_cast<NcpId>(j), 0.0, false});
  const std::size_t apps = static_cast<std::size_t>(rng.uniform_int(
      2, static_cast<std::int64_t>(std::max<std::size_t>(2, options.max_apps))));
  for (std::size_t ai = 0; ai < apps; ++ai) {
    EditableApp app;
    app.name = "app" + std::to_string(ai);
    app.qoe = QoeSpec::best_effort(rng.uniform(0.5, 4.0));
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(2, 3));
    const std::string prefix = "a" + std::to_string(ai);
    for (std::size_t i = 0; i < len; ++i) {
      app.cts.push_back({prefix + "c" + std::to_string(i),
                         random_vector(rng, 1, 0.5, 4.0)});
      // Thm 3 is deterministic only with forced routes, so pin every CT.
      app.pinned[static_cast<CtId>(i)] = static_cast<NcpId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    for (std::size_t i = 0; i + 1 < len; ++i)
      app.tts.push_back({prefix + "t" + std::to_string(i),
                         rng.uniform(1.0, 10.0), static_cast<CtId>(i),
                         static_cast<CtId>(i + 1)});
    e.apps.push_back(std::move(app));
  }
  std::optional<ScenarioFile> built = rebuild(e);
  if (!built)
    throw std::logic_error(
        "random_pinned_tree_scenario produced an invalid scenario");
  return std::move(*built);
}

ScenarioVerdict run_scenario_checks(const ScenarioFile& s,
                                    const AssignerFactory& factory,
                                    const FuzzOptions& options) {
  ScenarioVerdict verdict;
  SchedulerOptions sched_options;
  // The policy axis: run the scheduler-pipeline phase under the named
  // plugin.  The oracles below keep the default algorithm regardless —
  // they verify optimality claims that only the paper's rule makes.
  if (!options.policy.empty())
    sched_options.policy = std::shared_ptr<const policy::SchedulingPolicy>(
        policy::make_policy(options.policy));
  Scheduler scheduler = factory
                            ? Scheduler(s.net, factory(), sched_options)
                            : Scheduler(s.net, sched_options);
  CheckOptions pristine = options.check;
  pristine.assume_pristine = true;
  auto state_ok_as = [&](const CheckOptions& check, const char* phase) {
    CheckReport report = check_scheduler_state(scheduler, check);
    if (report.ok()) return true;
    verdict.phase = phase;
    verdict.report = std::move(report);
    return false;
  };
  auto state_ok_with = [&](const CheckOptions& check) {
    return state_ok_as(check, "scheduler");
  };
  auto state_ok = [&] { return state_ok_with(options.check); };

  // Deterministic pipeline: submit everything, kill and repair one link,
  // recover it, remove one admitted app — validating after every step.
  std::vector<std::string> admitted;
  for (const Application& app : s.apps) {
    if (scheduler.submit(app).admitted) admitted.push_back(app.name);
    // No failures yet: the strict admission-time invariants apply.
    if (!state_ok_with(pristine)) return verdict;
  }
  if (s.net.link_count() > 0) {
    scheduler.mark_failed(ElementKey::link(0));
    if (!state_ok()) return verdict;
    scheduler.rebalance();
    if (!state_ok()) return verdict;
    scheduler.mark_recovered(ElementKey::link(0));
    if (!state_ok()) return verdict;
  }

  // Churn phase: replay a deterministic generated failure/recovery trace
  // through the incremental repair path, running the full invariant suite
  // after every event.  The trace seed is a pure function of the scenario
  // shape and the fuzz seed, so the shrinker's reproduction predicate
  // stays deterministic.
  if (options.churn_events > 0 && s.net.link_count() > 0) {
    sim::ChurnModel model;
    model.default_mtbf = 8.0;
    model.default_mttr = 3.0;
    const std::uint64_t churn_seed =
        options.seed ^ (0x9e3779b97f4a7c15ull *
                        (s.net.ncp_count() + 7 * s.net.link_count() +
                         31 * s.apps.size() + 1));
    sim::ChurnTrace trace =
        sim::generate_poisson_churn(s.net, model, /*horizon=*/40.0,
                                    churn_seed);
    if (trace.events.size() > options.churn_events)
      trace.events.resize(options.churn_events);
    sim::ChurnInjector injector(scheduler, std::move(trace));
    std::size_t churn_step = 0;
    for (;;) {
      // Flip the PF solver between warm-started and cold across events:
      // the invariant suite after each event (PF-optimality re-solve
      // included) then certifies that warm starting never changes what
      // the scheduler computes, only how fast.
      if (options.alternate_pf_warm)
        scheduler.set_pf_warm_start(churn_step++ % 2 == 0);
      if (!injector.step()) break;
      if (!state_ok_as(options.check, "churn")) return verdict;
    }
    // Heal everything the truncated trace left down, repairing after each
    // recovery, so the steps below start from an all-alive network.
    while (!scheduler.failed_elements().empty()) {
      const ElementKey e = *scheduler.failed_elements().begin();
      if (options.alternate_pf_warm)
        scheduler.set_pf_warm_start(churn_step++ % 2 == 0);
      scheduler.mark_recovered(e);
      scheduler.repair(e);
      if (!state_ok_as(options.check, "churn")) return verdict;
    }
    scheduler.set_pf_warm_start(true);
  }
  if (!admitted.empty()) {
    scheduler.remove(admitted.front());
    if (!state_ok()) return verdict;
  }

  if (!options.run_oracles) return verdict;

  auto make_assigner = [&]() -> std::unique_ptr<Assigner> {
    return factory ? factory() : std::make_unique<SparcleAssigner>();
  };
  for (const Application& app : s.apps) {
    AssignmentProblem problem;
    problem.net = &s.net;
    problem.graph = app.graph.get();
    problem.capacities = CapacitySnapshot(s.net);
    problem.pinned = app.pinned;
    const std::unique_ptr<Assigner> assigner = make_assigner();
    if (exhaustively_enumerable(problem, options.oracle)) {
      DifferentialReport diff =
          differential_vs_exhaustive(problem, *assigner, options.oracle);
      if (!diff.report.ok()) {
        verdict.phase = "oracle:differential";
        verdict.report = std::move(diff.report);
        return verdict;
      }
      CheckReport mono =
          oracle_capacity_monotonicity(problem, options.oracle);
      if (!mono.ok()) {
        verdict.phase = "oracle:monotonicity";
        verdict.report = std::move(mono);
        return verdict;
      }
    }
    CheckReport scaling =
        oracle_scaling(problem, *assigner, 4.0, options.oracle);
    if (!scaling.ok()) {
      verdict.phase = "oracle:scaling";
      verdict.report = std::move(scaling);
      return verdict;
    }
    const AssignmentResult result = assigner->assign(problem);
    CheckReport removal =
        oracle_unused_link_removal(problem, result, options.oracle);
    if (!removal.ok()) {
      verdict.phase = "oracle:unused-removal";
      verdict.report = std::move(removal);
      return verdict;
    }
  }

  if (s.apps.size() >= 2 && unique_route_topology(s.net) &&
      fully_pinned_best_effort(s)) {
    std::vector<std::size_t> reversed(s.apps.size());
    for (std::size_t i = 0; i < reversed.size(); ++i)
      reversed[i] = reversed.size() - 1 - i;
    CheckReport order =
        oracle_arrival_order(s, reversed, sched_options, options.oracle);
    if (!order.ok()) {
      verdict.phase = "oracle:arrival-order";
      verdict.report = std::move(order);
      return verdict;
    }
  }
  return verdict;
}

ScenarioFile shrink_failure(const ScenarioFile& scenario,
                            const AssignerFactory& factory,
                            const FuzzOptions& options,
                            const ScenarioVerdict& original) {
  const std::string target = signature(original);
  EditableScenario current = decompose(scenario);
  ScenarioFile best = scenario;
  std::size_t budget = options.shrink_budget;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (const Mutation& mutation : enumerate_mutations(current)) {
      if (budget == 0) break;
      std::optional<EditableScenario> candidate = mutation();
      if (!candidate) continue;
      std::optional<ScenarioFile> built = rebuild(*candidate);
      if (!built) continue;
      --budget;
      ScenarioVerdict verdict =
          run_scenario_checks(*built, factory, options);
      if (verdict.failed() && signature(verdict) == target) {
        current = std::move(*candidate);
        best = std::move(*built);
        progress = true;
        break;  // restart enumeration on the smaller scenario
      }
    }
  }
  return best;
}

std::string save_repro(const ScenarioFile& scenario, const std::string& dir,
                       std::uint64_t seed, const std::string& policy) {
  if (dir.empty()) return "";
  const std::string path =
      dir + "/sparcle-fuzz-repro-" + std::to_string(seed) + ".scn";
  std::ofstream out(path);
  if (!out) return "";
  if (!policy.empty()) out << "# policy: " << policy << "\n";
  out << workload::write_scenario(scenario);
  out.close();
  return out.fail() ? "" : path;
}

FuzzOutcome fuzz_scheduler(const FuzzOptions& options,
                           const AssignerFactory& factory) {
  FuzzOutcome outcome;
  for (std::size_t i = 0; i < options.iterations; ++i) {
    // splitmix-style seed mixing keeps per-iteration streams independent
    // while the pair (base seed, iteration) stays reconstructible.
    const std::uint64_t scenario_seed =
        options.seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    Rng rng(scenario_seed);
    const bool order_iteration =
        options.arrival_order_every > 0 &&
        (i + 1) % options.arrival_order_every == 0;
    const ScenarioFile scenario =
        order_iteration ? random_pinned_tree_scenario(rng, options)
                        : random_scenario(rng, options);
    // Policy axis: an independent stream draws the iteration's plugin,
    // so enabling the axis does not reshuffle the scenario corpus.
    FuzzOptions iter_options = options;
    if (!options.policies.empty()) {
      Rng policy_rng(scenario_seed ^ 0x90116cull);
      iter_options.policy = options.policies[static_cast<std::size_t>(
          policy_rng.uniform_int(
              0, static_cast<std::int64_t>(options.policies.size()) - 1))];
    }
    ScenarioVerdict verdict =
        run_scenario_checks(scenario, factory, iter_options);
    ++outcome.iterations_run;
    if (!verdict.failed()) continue;

    FuzzFailure failure;
    failure.iteration = i;
    failure.scenario_seed = scenario_seed;
    failure.policy = iter_options.policy;
    failure.phase = verdict.phase;
    failure.report = verdict.report;
    failure.scenario = scenario;
    failure.shrunk =
        shrink_failure(scenario, factory, iter_options, verdict);
    failure.repro_path = save_repro(failure.shrunk, options.repro_dir,
                                    scenario_seed, iter_options.policy);
    outcome.failure = std::move(failure);
    return outcome;
  }
  return outcome;
}

}  // namespace sparcle::check
