#pragma once

#include <cstdint>
#include <vector>

#include "check/invariants.hpp"
#include "core/assignment.hpp"
#include "core/scheduler.hpp"
#include "workload/scenario_io.hpp"

/// \file oracles.hpp
/// Cross-checking oracles: properties a correct solver must satisfy that
/// can be tested *without* knowing the right answer for one run in
/// isolation.
///
/// Two families, matched to where they are sound (docs/testing.md carries
/// the full matrix):
///
///  - **Differential**: on exhaustively-enumerable instances, compare an
///    assigner against baselines/exhaustive — feasibility must agree and
///    the heuristic can never beat the enumerated optimum (if it does, the
///    shared rate accounting is broken).  Capacity monotonicity is also
///    checked here: raising an *NCP* capacity can never lower the
///    exhaustive optimum, exactly, because TT routing weighs links only
///    (widest_path.hpp), so every enumerated assignment keeps its routes
///    and its rate min_j C_j/Σa_i is monotone in C.  (The same claim for
///    *link* capacities is not a theorem — a wider link can reroute the
///    greedy router onto an ultimately narrower path — so it is not
///    checked.)
///
///  - **Metamorphic**: on instances of any size, transform the input and
///    predict the output exactly.  Scaling all capacities (or all demands,
///    or both) by a power of two multiplies every γ, path width and
///    bottleneck rate by that factor exactly in IEEE arithmetic, so the
///    argmax decisions — and hence the placement — are bit-identical and
///    the rate scales linearly.  Removing links a solution does not use
///    cannot change that solution's evaluated rate (load accounting must
///    not depend on unrelated elements).  And per Thm 3, submitting the
///    same fully-pinned applications in any arrival order must admit the
///    same set at the same rates when routes are forced (tree topologies).

namespace sparcle::check {

struct OracleOptions {
  /// Relative tolerance for comparisons that are exact up to FP noise.
  double tolerance{1e-9};
  /// Assignment-enumeration budget handed to ExhaustiveAssigner.
  std::uint64_t max_exhaustive_assignments{2'000'000};
  /// Per-app rate tolerance for the arrival-order oracle (two independent
  /// PF interior-point solves, each stopped at a ~1e-8 duality gap).
  double arrival_rate_tolerance{1e-4};
  /// Options for the single-solution checks folded into each oracle.
  CheckOptions check{};
};

/// True when the problem is small enough to enumerate: the unpinned CTs
/// admit at most `max_exhaustive_assignments` host combinations.
bool exhaustively_enumerable(const AssignmentProblem& problem,
                             const OracleOptions& options = {});

/// True when the network forces routing: connected, undirected, and a
/// tree (link_count == ncp_count - 1), so each NCP pair has exactly one
/// route.  On such instances the exhaustive enumeration is a true optimum
/// (the per-assignment greedy routing has no choices to get wrong) and
/// the differential oracle asserts heuristic <= optimum; on general
/// graphs commit-order routing effects can legitimately put the heuristic
/// above the topo-order-routed "optimum", so only feasibility agreement
/// is asserted and the gap is reported.
bool unique_route_topology(const Network& net);

/// Outcome of the differential oracle (report.ok() == pass).
struct DifferentialReport {
  CheckReport report;
  bool heuristic_feasible{false};
  bool optimal_feasible{false};
  double heuristic_rate{0.0};
  double optimal_rate{0.0};
  /// heuristic/optimal rate ratio in [0, 1]; 1.0 when both infeasible.
  double gap{1.0};
};

/// Runs `assigner` and baselines/exhaustive on the same problem; both
/// results are invariant-checked, feasibility must agree, and the
/// heuristic must not exceed the optimum.  Requires
/// exhaustively_enumerable(problem).
DifferentialReport differential_vs_exhaustive(const AssignmentProblem& problem,
                                              const Assigner& assigner,
                                              const OracleOptions& options = {});

/// Doubles each NCP capacity component in turn and re-runs the exhaustive
/// search: the optimum must never drop.  Requires
/// exhaustively_enumerable(problem); cost is (1 + ncps·resources)
/// exhaustive runs.
CheckReport oracle_capacity_monotonicity(const AssignmentProblem& problem,
                                         const OracleOptions& options = {});

/// Metamorphic scaling: re-solves with capacities ×factor, demands
/// ×factor, and both ×factor.  The placement must be identical in all
/// three runs and the rate must scale to rate·factor, rate/factor and
/// rate respectively, exactly within `tolerance`.  `factor` must be a
/// positive power of two (exactness argument above).
CheckReport oracle_scaling(const AssignmentProblem& problem,
                           const Assigner& assigner, double factor,
                           const OracleOptions& options = {});

/// Metamorphic unused-element removal: rebuilds the network without the
/// links the (feasible) result does not touch, remaps the placement, and
/// re-evaluates the bottleneck rate — it must equal result.rate exactly.
CheckReport oracle_unused_link_removal(const AssignmentProblem& problem,
                                       const AssignmentResult& result,
                                       const OracleOptions& options = {});

/// Thm 3 arrival-order invariance: submits `scenario`'s applications in
/// the given `permutation` and in file order into two fresh Schedulers;
/// the admitted set, every CT host, and every allocated rate (within
/// arrival_rate_tolerance, relative) must agree.  Sound when every CT of
/// every app is pinned and the topology forces unique routes (trees) —
/// the fuzzer's pinned-tree generator guarantees both.
CheckReport oracle_arrival_order(const workload::ScenarioFile& scenario,
                                 const std::vector<std::size_t>& permutation,
                                 const SchedulerOptions& sched_options = {},
                                 const OracleOptions& options = {});

}  // namespace sparcle::check
