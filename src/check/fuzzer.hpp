#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "check/invariants.hpp"
#include "check/oracles.hpp"
#include "core/assignment.hpp"
#include "workload/rng.hpp"
#include "workload/scenario_io.hpp"

/// \file fuzzer.hpp
/// The shrinking scenario fuzzer: seeded random scenarios are driven
/// through the full Scheduler pipeline (submit / fail / rebalance /
/// recover / remove, plus a generated churn trace through the incremental
/// repair path) with check_scheduler_state after every mutation, and
/// through the differential + metamorphic oracles where they are sound.
/// Any failure is greedily minimized — drop applications, NCPs, links and
/// CTs, round numbers — while it keeps reproducing the *same* violation
/// (same phase, same leading invariant code), and the minimized scenario
/// is serialized through scenario_io as a `.scn` repro anyone can replay
/// with `sparcle_cli --validate`.

namespace sparcle::check {

/// Builds a fresh Assigner per scheduler/oracle run.  An empty factory
/// means SPARCLE's own assigner; tests inject deliberately broken ones.
using AssignerFactory = std::function<std::unique_ptr<Assigner>()>;

struct FuzzOptions {
  /// Base seed; iteration i fuzzes scenario seed `seed ^ splitmix(i)`.
  std::uint64_t seed{1};
  std::size_t iterations{200};
  /// Generated network / workload size caps.
  std::size_t max_ncps{6};
  std::size_t max_apps{4};
  /// Run the differential + metamorphic oracles (on the instances where
  /// each is sound; see oracles.hpp).
  bool run_oracles{true};
  /// Every k-th iteration generates a fully-pinned tree scenario for the
  /// Thm 3 arrival-order oracle instead of a general one (0 = never).
  std::size_t arrival_order_every{4};
  /// Cap on generated churn-trace events replayed through the incremental
  /// repair path per scenario, with the full invariant suite after every
  /// event (0 = skip the churn phase).
  std::size_t churn_events{8};
  /// Alternate the scheduler's PF warm start on/off across churn events,
  /// so every scenario exercises both solver paths under repair (warm
  /// starting must be behaviorally invisible; the per-event invariant
  /// suite's PF-optimality re-solve is the oracle).
  bool alternate_pf_warm{true};
  /// Scheduling-policy plugin (policy::make_policy name) installed for
  /// the scheduler-pipeline phase of run_scenario_checks; "" = legacy
  /// hard-coded rules (no plugin).  The optimality oracles always run
  /// the default algorithm — invariants must hold under ANY policy, but
  /// optimality claims are the default's alone.
  std::string policy{};
  /// Policy axis: when non-empty, fuzz_scheduler draws one of these
  /// names per iteration (from a stream independent of the scenario
  /// stream, so adding the axis does not reshuffle generated scenarios)
  /// and records it in FuzzFailure::policy and the `# policy:` header of
  /// the saved repro.
  std::vector<std::string> policies{};
  /// Where shrunk `.scn` repros are written ("" = don't write).
  std::string repro_dir{"."};
  /// Cap on candidate evaluations during shrinking.
  std::size_t shrink_budget{400};
  CheckOptions check{};
  OracleOptions oracle{};
};

/// A random valid scenario: a connected network (random tree plus chords,
/// occasionally directed, with failure probabilities) and 1..max_apps
/// BE/GR applications with chain/diamond/layered task graphs, sources and
/// sinks pinned.
workload::ScenarioFile random_scenario(Rng& rng, const FuzzOptions& options);

/// A scenario on which Thm 3 is deterministic: undirected tree topology
/// (unique routes) and Best-Effort applications with *every* CT pinned.
workload::ScenarioFile random_pinned_tree_scenario(Rng& rng,
                                                   const FuzzOptions& options);

/// The verdict of one scenario run.  `phase` identifies which harness
/// stage tripped: "scheduler", "churn", "oracle:differential",
/// "oracle:monotonicity", "oracle:scaling", "oracle:unused-removal",
/// "oracle:arrival-order".
struct ScenarioVerdict {
  std::string phase;
  CheckReport report;
  bool failed() const { return !report.ok(); }
};

/// Drives one scenario through the scheduler pipeline (checking state
/// after every mutating call) and the applicable oracles; returns the
/// first failure.  Deterministic per scenario, so the shrinker can use it
/// as the reproduction predicate.
ScenarioVerdict run_scenario_checks(const workload::ScenarioFile& scenario,
                                    const AssignerFactory& factory,
                                    const FuzzOptions& options);

/// Greedy shrink: repeatedly applies the smallest-first reductions that
/// keep `original`'s failure signature reproducing, until a fixpoint or
/// the shrink budget is exhausted.  Returns the minimized scenario.
workload::ScenarioFile shrink_failure(const workload::ScenarioFile& scenario,
                                      const AssignerFactory& factory,
                                      const FuzzOptions& options,
                                      const ScenarioVerdict& original);

/// Serializes `scenario` to `<dir>/sparcle-fuzz-repro-<seed>.scn`; a
/// non-empty `policy` is recorded as a `# policy: <name>` header comment
/// so the repro replays under the same plugin.  Returns the path, or ""
/// when dir is empty or the write failed.
std::string save_repro(const workload::ScenarioFile& scenario,
                       const std::string& dir, std::uint64_t seed,
                       const std::string& policy = {});

/// One minimized failure.
struct FuzzFailure {
  std::size_t iteration{0};
  std::uint64_t scenario_seed{0};
  std::string policy;  ///< plugin active at failure ("" = legacy rules)
  std::string phase;
  CheckReport report;
  workload::ScenarioFile scenario;  ///< as generated
  workload::ScenarioFile shrunk;    ///< after greedy minimization
  std::string repro_path;           ///< written .scn ("" if not written)
};

struct FuzzOutcome {
  std::size_t iterations_run{0};
  std::optional<FuzzFailure> failure;
};

/// The top-level loop: `iterations` seeded scenarios through
/// run_scenario_checks; stops at the first failure, shrinks it and writes
/// the repro.
FuzzOutcome fuzz_scheduler(const FuzzOptions& options,
                           const AssignerFactory& factory = {});

}  // namespace sparcle::check
