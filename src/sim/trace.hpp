#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "model/ids.hpp"
#include "model/task_graph.hpp"

/// \file trace.hpp
/// Unit-lifecycle tracing for the discrete-event simulator: every
/// emission, per-task enqueue/finish and delivery can be recorded through
/// a TraceSink, and TraceAnalysis turns the record into the per-stage
/// latency breakdown an operator profiles a placement with ("where do my
/// frames spend their time?").

namespace sparcle::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kEmitted,      ///< unit left the source
    kCtEnqueued,   ///< unit queued at a CT's host
    kCtFinished,   ///< CT completed the unit
    kHopEnqueued,  ///< packet/unit queued at one hop of a TT route
    kHopFinished,  ///< hop transfer completed
    kDelivered,    ///< every sink finished the unit
  };

  double time{0.0};
  std::size_t stream{0};
  std::uint64_t unit{0};
  Kind kind{Kind::kEmitted};
  std::int32_t task{kInvalidId};  ///< CtId or TtId (kEmitted/kDelivered: -1)
  std::size_t hop{0};             ///< hop index for TT events
};

/// Receives every trace event as it happens.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Buffers events in memory (tests, analysis).
class VectorTraceSink : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams events as CSV rows: time,stream,unit,kind,kind_code,task,hop.
/// `kind` is the symbolic name (e.g. ct_finished); `kind_code` keeps the
/// raw enum integer for tools that predate the names.
class CsvTraceSink : public TraceSink {
 public:
  /// `out` must outlive the sink.  Writes the header immediately.
  explicit CsvTraceSink(std::ostream& out);
  /// Flushes the stream so a sink destroyed before the program's streams
  /// unwind still leaves a complete file behind.
  ~CsvTraceSink() override;
  void record(const TraceEvent& event) override;

 private:
  std::ostream* out_;
};

/// Per-stage latency breakdown computed from a trace.
struct TraceAnalysis {
  /// Mean queue+service sojourn per CT (seconds), indexed by CtId;
  /// 0 where no samples exist.
  std::vector<double> ct_mean_sojourn;
  /// Mean total transfer sojourn per TT (all hops), indexed by TtId.
  std::vector<double> tt_mean_sojourn;
  /// Completed sojourn samples per CT / TT (the divisor behind the means —
  /// a mean over 3 samples deserves less trust than one over 3000).
  std::vector<std::size_t> ct_samples;
  std::vector<std::size_t> tt_samples;
  /// Sojourn percentiles per stage, same indexing and same idx = p*(n-1)
  /// convention as StreamStats; 0 where no samples exist.
  std::vector<double> ct_p50_sojourn;
  std::vector<double> ct_p99_sojourn;
  std::vector<double> tt_p50_sojourn;
  std::vector<double> tt_p99_sojourn;
  /// Mean emission-to-delivery latency.
  double mean_latency{0.0};
  std::size_t delivered_units{0};
};

/// Analyzes the events of one stream.  Units without a delivery event are
/// ignored for the end-to-end mean but still contribute stage samples.
TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                            const TaskGraph& graph, std::size_t stream = 0);

}  // namespace sparcle::sim
