#include "sim/trace.hpp"

#include <map>
#include <ostream>

namespace sparcle::sim {

namespace {

const char* kind_name(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kEmitted: return "emitted";
    case TraceEvent::Kind::kCtEnqueued: return "ct_enqueued";
    case TraceEvent::Kind::kCtFinished: return "ct_finished";
    case TraceEvent::Kind::kHopEnqueued: return "hop_enqueued";
    case TraceEvent::Kind::kHopFinished: return "hop_finished";
    case TraceEvent::Kind::kDelivered: return "delivered";
  }
  return "?";
}

}  // namespace

CsvTraceSink::CsvTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "time,stream,unit,kind,task,hop\n";
}

void CsvTraceSink::record(const TraceEvent& e) {
  *out_ << e.time << ',' << e.stream << ',' << e.unit << ','
        << kind_name(e.kind) << ',' << e.task << ',' << e.hop << '\n';
}

TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                            const TaskGraph& graph, std::size_t stream) {
  TraceAnalysis out;
  out.ct_mean_sojourn.assign(graph.ct_count(), 0.0);
  out.tt_mean_sojourn.assign(graph.tt_count(), 0.0);
  std::vector<std::size_t> ct_samples(graph.ct_count(), 0);
  std::vector<std::size_t> tt_samples(graph.tt_count(), 0);

  // Start times keyed by (unit, task): CTs enqueue once per unit; TTs may
  // see several packets per unit, so the TT sojourn spans the first
  // enqueue at hop 0 to the last finish at the final hop.
  std::map<std::pair<std::uint64_t, std::int32_t>, double> ct_start;
  std::map<std::pair<std::uint64_t, std::int32_t>, double> tt_start;
  std::map<std::pair<std::uint64_t, std::int32_t>, double> tt_last_finish;
  std::map<std::uint64_t, double> emitted;
  double latency_sum = 0;

  for (const TraceEvent& e : events) {
    if (e.stream != stream) continue;
    const auto key = std::make_pair(e.unit, e.task);
    switch (e.kind) {
      case TraceEvent::Kind::kEmitted:
        emitted[e.unit] = e.time;
        break;
      case TraceEvent::Kind::kCtEnqueued:
        ct_start.emplace(key, e.time);
        break;
      case TraceEvent::Kind::kCtFinished: {
        const auto it = ct_start.find(key);
        if (it != ct_start.end()) {
          out.ct_mean_sojourn[e.task] += e.time - it->second;
          ++ct_samples[e.task];
          ct_start.erase(it);
        }
        break;
      }
      case TraceEvent::Kind::kHopEnqueued:
        if (e.hop == 0) tt_start.emplace(key, e.time);
        break;
      case TraceEvent::Kind::kHopFinished:
        tt_last_finish[key] = e.time;
        break;
      case TraceEvent::Kind::kDelivered: {
        const auto it = emitted.find(e.unit);
        if (it != emitted.end()) {
          latency_sum += e.time - it->second;
          ++out.delivered_units;
        }
        break;
      }
    }
  }
  // Fold completed TT transfers.
  for (const auto& [key, finish] : tt_last_finish) {
    const auto it = tt_start.find(key);
    if (it == tt_start.end()) continue;
    out.tt_mean_sojourn[key.second] += finish - it->second;
    ++tt_samples[key.second];
  }

  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i)
    if (ct_samples[i] > 0)
      out.ct_mean_sojourn[i] /= static_cast<double>(ct_samples[i]);
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k)
    if (tt_samples[k] > 0)
      out.tt_mean_sojourn[k] /= static_cast<double>(tt_samples[k]);
  out.mean_latency = out.delivered_units > 0
                         ? latency_sum /
                               static_cast<double>(out.delivered_units)
                         : 0.0;
  return out;
}

}  // namespace sparcle::sim
