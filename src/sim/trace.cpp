#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace sparcle::sim {

namespace {

const char* kind_name(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kEmitted: return "emitted";
    case TraceEvent::Kind::kCtEnqueued: return "ct_enqueued";
    case TraceEvent::Kind::kCtFinished: return "ct_finished";
    case TraceEvent::Kind::kHopEnqueued: return "hop_enqueued";
    case TraceEvent::Kind::kHopFinished: return "hop_finished";
    case TraceEvent::Kind::kDelivered: return "delivered";
  }
  return "?";
}

/// Percentile of an unsorted sample vector, idx = p*(n-1) like StreamStats.
double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

CsvTraceSink::CsvTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "time,stream,unit,kind,kind_code,task,hop\n";
}

CsvTraceSink::~CsvTraceSink() { out_->flush(); }

void CsvTraceSink::record(const TraceEvent& e) {
  *out_ << e.time << ',' << e.stream << ',' << e.unit << ','
        << kind_name(e.kind) << ',' << static_cast<int>(e.kind) << ','
        << e.task << ',' << e.hop << '\n';
}

TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                            const TaskGraph& graph, std::size_t stream) {
  TraceAnalysis out;
  out.ct_mean_sojourn.assign(graph.ct_count(), 0.0);
  out.tt_mean_sojourn.assign(graph.tt_count(), 0.0);
  out.ct_samples.assign(graph.ct_count(), 0);
  out.tt_samples.assign(graph.tt_count(), 0);
  out.ct_p50_sojourn.assign(graph.ct_count(), 0.0);
  out.ct_p99_sojourn.assign(graph.ct_count(), 0.0);
  out.tt_p50_sojourn.assign(graph.tt_count(), 0.0);
  out.tt_p99_sojourn.assign(graph.tt_count(), 0.0);
  std::vector<std::vector<double>> ct_sojourns(graph.ct_count());
  std::vector<std::vector<double>> tt_sojourns(graph.tt_count());

  // Start times keyed by (unit, task): CTs enqueue once per unit; TTs may
  // see several packets per unit, so the TT sojourn spans the first
  // enqueue at hop 0 to the last finish at the final hop.
  std::map<std::pair<std::uint64_t, std::int32_t>, double> ct_start;
  std::map<std::pair<std::uint64_t, std::int32_t>, double> tt_start;
  std::map<std::pair<std::uint64_t, std::int32_t>, double> tt_last_finish;
  std::map<std::uint64_t, double> emitted;
  double latency_sum = 0;

  for (const TraceEvent& e : events) {
    if (e.stream != stream) continue;
    const auto key = std::make_pair(e.unit, e.task);
    switch (e.kind) {
      case TraceEvent::Kind::kEmitted:
        emitted[e.unit] = e.time;
        break;
      case TraceEvent::Kind::kCtEnqueued:
        ct_start.emplace(key, e.time);
        break;
      case TraceEvent::Kind::kCtFinished: {
        const auto it = ct_start.find(key);
        if (it != ct_start.end()) {
          ct_sojourns[e.task].push_back(e.time - it->second);
          ct_start.erase(it);
        }
        break;
      }
      case TraceEvent::Kind::kHopEnqueued:
        if (e.hop == 0) tt_start.emplace(key, e.time);
        break;
      case TraceEvent::Kind::kHopFinished:
        tt_last_finish[key] = e.time;
        break;
      case TraceEvent::Kind::kDelivered: {
        const auto it = emitted.find(e.unit);
        if (it != emitted.end()) {
          latency_sum += e.time - it->second;
          ++out.delivered_units;
        }
        break;
      }
    }
  }
  // Fold completed TT transfers.
  for (const auto& [key, finish] : tt_last_finish) {
    const auto it = tt_start.find(key);
    if (it == tt_start.end()) continue;
    tt_sojourns[key.second].push_back(finish - it->second);
  }

  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    auto& samples = ct_sojourns[i];
    out.ct_samples[i] = samples.size();
    if (samples.empty()) continue;
    double sum = 0;
    for (const double s : samples) sum += s;
    out.ct_mean_sojourn[i] = sum / static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    out.ct_p50_sojourn[i] = percentile(samples, 0.50);
    out.ct_p99_sojourn[i] = percentile(samples, 0.99);
  }
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    auto& samples = tt_sojourns[k];
    out.tt_samples[k] = samples.size();
    if (samples.empty()) continue;
    double sum = 0;
    for (const double s : samples) sum += s;
    out.tt_mean_sojourn[k] = sum / static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    out.tt_p50_sojourn[k] = percentile(samples, 0.50);
    out.tt_p99_sojourn[k] = percentile(samples, 0.99);
  }
  out.mean_latency = out.delivered_units > 0
                         ? latency_sum /
                               static_cast<double>(out.delivered_units)
                         : 0.0;
  return out;
}

}  // namespace sparcle::sim
