#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

/// \file event_queue.hpp
/// The discrete-event core: a time-ordered queue of callbacks with stable
/// FIFO ordering among simultaneous events and O(1) logical cancellation
/// (events carry a generation stamp; stale ones are skipped on pop).

namespace sparcle::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using Token = std::uint64_t;

  double now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now).  Returns a token
  /// usable with cancel().
  Token schedule(double when, Callback cb) {
    const Token token = next_token_++;
    heap_.push(Entry{when, token, std::move(cb)});
    live_.push_back(true);
    return token;
  }

  /// Logically removes a scheduled event (no-op if already fired).
  void cancel(Token token) {
    if (token < live_.size()) live_[token] = false;
  }

  /// Fires the next live event; returns false when the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (!live_[e.token]) continue;
      live_[e.token] = false;
      now_ = e.when;
      ++fired_;
      e.cb();
      return true;
    }
    return false;
  }

  /// Number of live events fired so far (cancelled events don't count).
  std::uint64_t fired() const { return fired_; }

  /// Runs until the queue drains or the clock passes `until`.
  void run_until(double until) {
    while (!heap_.empty()) {
      if (peek_time() > until) break;
      step();
    }
    now_ = until;
  }

  bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    double when;
    Token token;
    Callback cb;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return token > o.token;  // FIFO among ties
    }
  };

  double peek_time() {
    while (!heap_.empty() && !live_[heap_.top().token]) heap_.pop();
    return heap_.empty() ? now_ : heap_.top().when;
  }

  double now_{0.0};
  Token next_token_{0};
  std::uint64_t fired_{0};
  std::vector<bool> live_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

}  // namespace sparcle::sim
