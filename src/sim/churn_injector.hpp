#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"

/// \file churn_injector.hpp
/// Deterministic fault injection for the admission scheduler: element
/// failure/recovery traces (generated from seeded stochastic models or
/// loaded from a file) are replayed against a Scheduler, driving its
/// incremental repair() path — the network-dynamics regime the paper
/// defers to future work.  docs/churn.md is the operator runbook.
///
/// Trace file format (line-oriented, `#` comments, scenario_io style):
///
///     churn v1
///     fail    <time> ncp:<name>
///     recover <time> link:<name>
///
/// Times are non-decreasing seconds; elements are named against the
/// Network the trace is replayed on.

namespace sparcle::sim {

/// One churn event: `element` fails (or recovers) at `time`.
struct ChurnEvent {
  double time{0.0};
  ElementKey element;
  bool fail{true};  ///< false: the element recovers

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

/// A time-ordered failure/recovery schedule.
struct ChurnTrace {
  std::vector<ChurnEvent> events;  ///< non-decreasing in time
};

/// Reliability parameters for the stochastic trace generators.  Each
/// element alternates exponentially distributed up-times (mean MTBF) and
/// down-times (mean MTTR); per-element overrides refine the defaults.
struct ChurnModel {
  double default_mtbf{50.0};  ///< mean time between failures (s)
  double default_mttr{5.0};   ///< mean time to repair (s)
  /// Per-element mean overrides; elements not listed use the defaults.
  std::unordered_map<ElementKey, double> mtbf_override;
  std::unordered_map<ElementKey, double> mttr_override;
  bool include_ncps{true};   ///< NCPs participate in the failure process
  bool include_links{true};  ///< links participate in the failure process
};

/// Independent per-element renewal processes: every participating element
/// draws alternating exponential up/down periods from `model` until
/// `horizon`.  Deterministic in (`net` shape, `model`, `horizon`, `seed`);
/// events come out sorted by (time, element kind, element index).
ChurnTrace generate_poisson_churn(const Network& net, const ChurnModel& model,
                                  double horizon, std::uint64_t seed);

/// Correlated-burst model on top of ChurnModel's MTTR: burst epicenters
/// arrive as a Poisson process and knock out a topological neighborhood.
struct BurstChurnConfig {
  ChurnModel model{};        ///< MTTR (and overrides) for down-time draws
  double burst_rate{0.05};   ///< burst arrivals per second (Poisson)
  double spread_prob{0.6};   ///< chance each neighbor element joins a burst
  double spread_span{1.0};   ///< neighbor failures land within this window
};

/// Bursty, spatially correlated churn (a rack power dip, a mobile cluster
/// moving out of range): each burst picks an epicenter NCP uniformly,
/// fails it, and fails each incident link / adjacent NCP with probability
/// `spread_prob` at a uniform offset within `spread_span`.  Recoveries
/// follow per-element MTTR draws.  Deterministic in the same inputs as
/// generate_poisson_churn.
ChurnTrace generate_burst_churn(const Network& net,
                                const BurstChurnConfig& config, double horizon,
                                std::uint64_t seed);

/// Serializes a trace with elements named against `net` (round-trips
/// through parse_churn_trace).  Throws std::out_of_range on an element
/// index outside `net`.
std::string write_churn_trace(const ChurnTrace& trace, const Network& net);

/// Parses the trace format above, resolving element names against `net`.
/// Throws std::runtime_error with a "line N: ..." message on malformed
/// input, unknown element names, or decreasing timestamps.
ChurnTrace parse_churn_trace(std::istream& in, const Network& net);

/// Parses a trace from a string (convenience for tests).
ChurnTrace parse_churn_trace_text(const std::string& text, const Network& net);

/// Loads a trace from a file path; throws std::runtime_error if the file
/// cannot be opened.
ChurnTrace load_churn_trace_file(const std::string& path, const Network& net);

/// How the injector repairs the scheduler after each applied event.
enum class RepairMode : std::uint8_t {
  kIncremental,   ///< Scheduler::repair() — the churn-resilient default
  kFullRebalance, ///< Scheduler::rebalance() after every event (baseline)
  kNone,          ///< only mark_failed/mark_recovered (measurement harness)
};

struct ChurnInjectorOptions {
  RepairMode repair_mode{RepairMode::kIncremental};
};

/// Aggregate outcome counters across all applied events.
struct ChurnInjectorStats {
  std::size_t failures{0};    ///< fail events applied
  std::size_t recoveries{0};  ///< recover events applied
  /// Events skipped because the element was already in the target state
  /// (e.g. a burst trace failing an element twice).
  std::size_t redundant{0};
  std::size_t repairs{0};       ///< repair passes run (either mode)
  std::size_t fallbacks{0};     ///< incremental repairs that fell back
  std::size_t apps_touched{0};  ///< summed over incremental repairs
  std::size_t paths_dropped{0};
  std::size_t paths_added{0};
  std::size_t retries{0};
};

/// Replays a ChurnTrace against a live Scheduler, one event at a time:
/// `mark_failed`/`mark_recovered` followed by the configured repair pass.
/// The caller owns the scheduler and may interleave its own submissions
/// between step()/run_until() calls — that is how the fuzzer mixes churn
/// into application workloads.  Deterministic: the same trace replayed
/// against schedulers in the same state produces identical end states.
class ChurnInjector {
 public:
  /// Events are stably sorted by time on construction (ties keep trace
  /// order, so replay order is reproducible).
  ChurnInjector(Scheduler& scheduler, ChurnTrace trace,
                ChurnInjectorOptions options = {});

  /// True when every event has been applied.
  bool done() const { return next_ >= trace_.events.size(); }

  /// Timestamp of the next pending event; meaningless when done().
  double next_time() const;

  /// Applies the next pending event (and its repair pass).  Returns false
  /// when the trace is exhausted.
  bool step();

  /// Applies every pending event with `time <= until`; returns how many.
  std::size_t run_until(double until);

  /// Applies every remaining event; returns how many.
  std::size_t run_all();

  const ChurnInjectorStats& stats() const { return stats_; }
  const ChurnTrace& trace() const { return trace_; }

 private:
  Scheduler* scheduler_;
  ChurnTrace trace_;
  ChurnInjectorOptions options_;
  std::size_t next_{0};
  ChurnInjectorStats stats_;
};

}  // namespace sparcle::sim
