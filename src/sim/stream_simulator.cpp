#include "sim/stream_simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"

namespace sparcle::sim {

namespace {
constexpr double kJobEps = 1e-12;
}

StreamSimulator::StreamSimulator(const Network& net, std::uint64_t seed)
    : net_(&net), rng_(seed) {
  servers_.resize(net.ncp_count() + net.link_count());
}

std::size_t StreamSimulator::add_stream(const TaskGraph& graph,
                                        const Placement& placement,
                                        double input_rate, bool poisson,
                                        double packet_bits) {
  if (ran_) throw std::logic_error("add_stream after run()");
  if (!(input_rate > 0))
    throw std::invalid_argument("add_stream: rate must be positive");
  if (packet_bits < 0)
    throw std::invalid_argument("add_stream: packet_bits must be >= 0");
  std::string err;
  if (!placement.validate(graph, *net_, &err))
    throw std::invalid_argument("add_stream: " + err);

  Stream s;
  s.graph = &graph;
  s.placement = &placement;
  s.rate = input_rate;
  s.poisson = poisson;
  s.packet_bits = packet_bits;
  s.ct_work.resize(graph.ct_count(), 0.0);
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    const ResourceVector& a = graph.ct(i).requirement;
    const ResourceVector& c = net_->ncp(placement.ct_host(i)).capacity;
    double work = 0;
    for (std::size_t r = 0; r < a.size(); ++r) {
      if (a[r] <= 0) continue;
      if (c[r] <= 0)
        throw std::invalid_argument("add_stream: CT '" + graph.ct(i).name +
                                    "' needs a resource its host lacks");
      work = std::max(work, a[r] / c[r]);
    }
    s.ct_work[i] = work;
  }
  streams_.push_back(std::move(s));
  return streams_.size() - 1;
}

void StreamSimulator::add_failure(ElementKey element, double mean_up,
                                  double mean_down) {
  if (ran_) throw std::logic_error("add_failure after run()");
  if (!(mean_up > 0) || !(mean_down > 0))
    throw std::invalid_argument("add_failure: means must be positive");
  failures_.push_back({element, mean_up, mean_down, true});
}

void StreamSimulator::advance(Server& s) {
  const double elapsed = queue_.now() - s.last_update;
  s.last_update = queue_.now();
  if (elapsed <= 0 || s.queues.empty() || s.speed <= 0) return;
  // Capacity is processor-shared across the active tasks; only the FIFO
  // head of each task receives service.
  const double per_task =
      elapsed * s.speed / static_cast<double>(s.queues.size());
  for (TaskQueue& q : s.queues) q.head_remaining -= per_task;
  s.busy_time += elapsed;
}

void StreamSimulator::reschedule(std::size_t server_id) {
  Server& s = servers_[server_id];
  if (s.has_pending) {
    queue_.cancel(s.pending);
    s.has_pending = false;
  }
  if (s.queues.empty() || s.speed <= 0) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const TaskQueue& q : s.queues)
    min_remaining = std::min(min_remaining, q.head_remaining);
  min_remaining = std::max(min_remaining, 0.0);
  const double when =
      queue_.now() +
      min_remaining * static_cast<double>(s.queues.size()) / s.speed;
  s.pending = queue_.schedule(when, [this, server_id] {
    on_completion(server_id);
  });
  s.has_pending = true;
}

void StreamSimulator::enqueue_unit(std::size_t server_id, double work,
                                   const JobRef& ref) {
  if (trace_ != nullptr)
    trace_->record({queue_.now(), ref.stream, ref.unit,
                    ref.is_ct ? TraceEvent::Kind::kCtEnqueued
                              : TraceEvent::Kind::kHopEnqueued,
                    ref.task, ref.hop});
  if (work <= kJobEps) {
    finish_job(ref);  // zero-demand task: completes instantaneously
    return;
  }
  Server& s = servers_[server_id];
  advance(s);
  const TaskKey key{ref.stream, ref.is_ct, ref.task, ref.hop};
  TaskQueue* queue = nullptr;
  for (TaskQueue& q : s.queues)
    if (q.key == key) {
      queue = &q;
      break;
    }
  if (queue == nullptr) {
    s.queues.push_back(TaskQueue{key, work, {}, 0});
    queue = &s.queues.back();
  }
  queue->entries.push_back({work, ref});
  ++s.backlog;
  s.peak_backlog = std::max(s.peak_backlog, s.backlog);
  if (queue_depth_hist_ != nullptr)
    queue_depth_hist_->observe(static_cast<double>(s.backlog));
  reschedule(server_id);
}

void StreamSimulator::on_completion(std::size_t server_id) {
  Server& s = servers_[server_id];
  s.has_pending = false;
  advance(s);
  // Pop the head of every task whose in-service unit has finished.
  std::vector<JobRef> finished;
  for (std::size_t k = 0; k < s.queues.size();) {
    TaskQueue& q = s.queues[k];
    if (q.head_remaining <= kJobEps) {
      finished.push_back(q.entries[q.head++].ref);
      --s.backlog;
      if (q.head < q.entries.size()) {
        q.head_remaining = q.entries[q.head].work;  // next enters service
        // Reclaim the served prefix occasionally.
        if (q.head > 1024) {
          q.entries.erase(
              q.entries.begin(),
              q.entries.begin() + static_cast<std::ptrdiff_t>(q.head));
          q.head = 0;
        }
        ++k;
      } else {
        s.queues[k] = std::move(s.queues.back());
        s.queues.pop_back();  // task idle: leaves the PS share set
      }
    } else {
      ++k;
    }
  }
  reschedule(server_id);
  for (const JobRef& ref : finished) finish_job(ref);
}

double StreamSimulator::hop_work(const Stream& s, TtId k, LinkId l,
                                 const JobRef& ref) const {
  const double total_bits = s.graph->tt(k).bits_per_unit;
  double bits = total_bits;
  if (ref.packets_total > 1) {
    const double full = s.packet_bits;
    bits = ref.packet + 1 == ref.packets_total
               ? total_bits - full * (ref.packets_total - 1)
               : full;
  }
  return bits / net_->link(l).bandwidth;
}

void StreamSimulator::finish_job(const JobRef& ref) {
  if (trace_ != nullptr)
    trace_->record({queue_.now(), ref.stream, ref.unit,
                    ref.is_ct ? TraceEvent::Kind::kCtFinished
                              : TraceEvent::Kind::kHopFinished,
                    ref.task, ref.hop});
  if (ref.is_ct) {
    ct_finished(ref.stream, ref.unit, ref.task);
    return;
  }
  // A TT hop (of one packet, possibly the whole unit) completed: forward
  // to the next hop, or count arrivals at the destination CT.
  Stream& s = streams_[ref.stream];
  const TaskGraph& g = *s.graph;
  const auto& route = s.placement->tt_route(ref.task);
  const std::size_t next_hop = ref.hop + 1;
  if (next_hop < route.size()) {
    JobRef next = ref;
    next.hop = next_hop;
    enqueue_unit(server_index(ElementKey::link(route[next_hop])),
                 hop_work(s, ref.task, route[next_hop], next), next);
    return;
  }
  if (ref.packets_total > 1) {
    UnitState& u = s.units[ref.unit];
    if (++u.tt_packets[ref.task] < ref.packets_total) return;
  }
  deliver_to_ct(ref.stream, ref.unit, g.tt(ref.task).dst);
}

void StreamSimulator::start_tt(std::size_t stream_id, std::uint64_t unit,
                               TtId k) {
  Stream& s = streams_[stream_id];
  const TaskGraph& g = *s.graph;
  const auto& route = s.placement->tt_route(k);
  if (route.empty()) {
    deliver_to_ct(stream_id, unit, g.tt(k).dst);
    return;
  }
  std::uint32_t packets = 1;
  if (s.packet_bits > 0 && g.tt(k).bits_per_unit > s.packet_bits)
    packets = static_cast<std::uint32_t>(
        (g.tt(k).bits_per_unit + s.packet_bits - 1) / s.packet_bits);
  for (std::uint32_t pkt = 0; pkt < packets; ++pkt) {
    JobRef ref{stream_id, unit, false, k, 0, pkt, packets};
    enqueue_unit(server_index(ElementKey::link(route[0])),
                 hop_work(s, k, route[0], ref), ref);
  }
}

void StreamSimulator::deliver_to_ct(std::size_t stream_id, std::uint64_t unit,
                                    CtId ct) {
  Stream& s = streams_[stream_id];
  UnitState& u = s.units[unit];
  const auto fanin =
      static_cast<std::uint16_t>(s.graph->in_tts(ct).size());
  if (++u.ct_arrivals[ct] == fanin) start_ct(stream_id, unit, ct);
}

void StreamSimulator::start_ct(std::size_t stream_id, std::uint64_t unit,
                               CtId ct) {
  Stream& s = streams_[stream_id];
  JobRef ref{stream_id, unit, true, ct, 0};
  enqueue_unit(server_index(ElementKey::ncp(s.placement->ct_host(ct))),
              s.ct_work[ct], ref);
}

void StreamSimulator::ct_finished(std::size_t stream_id, std::uint64_t unit,
                                  CtId ct) {
  Stream& s = streams_[stream_id];
  const TaskGraph& g = *s.graph;
  if (g.out_tts(ct).empty()) {
    // A sink finished this unit.
    UnitState& u = s.units[unit];
    if (--u.sinks_remaining == 0 && !u.done) {
      u.done = true;
      if (trace_ != nullptr)
        trace_->record({queue_.now(), stream_id, unit,
                        TraceEvent::Kind::kDelivered, kInvalidId, 0});
      // Measure by completion time so overloaded systems still report
      // their sustained drain rate.
      if (queue_.now() >= warmup_) {
        ++s.delivered;
        const double lat = queue_.now() - u.emitted_at;
        s.latency_sum += lat;
        s.latency_max = std::max(s.latency_max, lat);
        s.latencies.push_back(lat);
      }
    }
    return;
  }
  for (TtId k : g.out_tts(ct)) start_tt(stream_id, unit, k);
}

void StreamSimulator::emit_unit(std::size_t stream_id) {
  Stream& s = streams_[stream_id];
  const std::uint64_t unit = s.next_unit++;
  if (trace_ != nullptr)
    trace_->record({queue_.now(), stream_id, unit,
                    TraceEvent::Kind::kEmitted, kInvalidId, 0});
  UnitState u;
  u.emitted_at = queue_.now();
  u.ct_arrivals.assign(s.graph->ct_count(), 0);
  if (s.packet_bits > 0) u.tt_packets.assign(s.graph->tt_count(), 0);
  u.sinks_remaining = static_cast<std::uint16_t>(s.graph->sinks().size());
  s.units.push_back(std::move(u));
  if (queue_.now() >= warmup_) ++s.emitted;
  for (CtId src : s.graph->sources()) start_ct(stream_id, unit, src);

  // Schedule the next emission.
  double gap = 1.0 / s.rate;
  if (s.poisson) {
    std::exponential_distribution<double> exp(s.rate);
    gap = exp(rng_);
  }
  queue_.schedule(queue_.now() + gap,
                  [this, stream_id] { emit_unit(stream_id); });
}

void StreamSimulator::set_element_down(ElementKey element, bool down) {
  const std::size_t sid = server_index(element);
  Server& s = servers_[sid];
  advance(s);
  s.down_count += down ? 1 : -1;
  s.speed = s.down_count > 0 ? 0.0 : 1.0;
  reschedule(sid);
}

void StreamSimulator::toggle_failure(std::size_t failure_id) {
  Failure& f = failures_[failure_id];
  f.up = !f.up;
  set_element_down(f.element, !f.up);
  std::exponential_distribution<double> exp(1.0 /
                                            (f.up ? f.mean_up : f.mean_down));
  queue_.schedule(queue_.now() + exp(rng_),
                  [this, failure_id] { toggle_failure(failure_id); });
}

void StreamSimulator::add_outage(ElementKey element, double start,
                                 double end) {
  if (ran_) throw std::logic_error("add_outage after run()");
  if (!(start >= 0) || !(end > start))
    throw std::invalid_argument("add_outage: need 0 <= start < end");
  outages_.push_back({element, start, end});
}

SimReport StreamSimulator::run(double duration, double warmup) {
  if (ran_) throw std::logic_error("run() may be called once");
  if (!(duration > 0) || warmup < 0 || warmup >= duration)
    throw std::invalid_argument("run: need 0 <= warmup < duration");
  ran_ = true;
  warmup_ = warmup;

  const obs::ScopedTimer span("sim.run");
  if (obs::MetricsRegistry* reg = obs::metrics())
    queue_depth_hist_ = &reg->histogram(
        "sim.queue_depth",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0});

  for (std::size_t i = 0; i < streams_.size(); ++i)
    queue_.schedule(0.0, [this, i] { emit_unit(i); });
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    std::exponential_distribution<double> exp(1.0 / failures_[i].mean_up);
    queue_.schedule(exp(rng_), [this, i] { toggle_failure(i); });
  }
  for (const Outage& o : outages_) {
    queue_.schedule(o.start,
                    [this, e = o.element] { set_element_down(e, true); });
    queue_.schedule(o.end,
                    [this, e = o.element] { set_element_down(e, false); });
  }

  queue_.run_until(duration);

  SimReport report;
  const double window = duration - warmup;
  for (Stream& s : streams_) {
    StreamStats st;
    st.emitted = s.emitted;
    st.delivered = s.delivered;
    st.throughput = static_cast<double>(s.delivered) / window;
    st.mean_latency =
        s.delivered > 0 ? s.latency_sum / static_cast<double>(s.delivered)
                        : 0.0;
    st.max_latency = s.latency_max;
    if (!s.latencies.empty()) {
      std::sort(s.latencies.begin(), s.latencies.end());
      auto pct = [&](double p) {
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(s.latencies.size() - 1));
        return s.latencies[idx];
      };
      st.p50_latency = pct(0.50);
      st.p95_latency = pct(0.95);
      st.p99_latency = pct(0.99);
    }
    report.streams.push_back(st);
  }
  for (std::size_t j = 0; j < net_->ncp_count(); ++j) {
    Server& s = servers_[j];
    advance(s);
    report.ncp_utilization.push_back(s.busy_time / duration);
    report.ncp_peak_backlog.push_back(s.peak_backlog);
  }
  for (std::size_t l = 0; l < net_->link_count(); ++l) {
    Server& s = servers_[net_->ncp_count() + l];
    advance(s);
    report.link_utilization.push_back(s.busy_time / duration);
    report.link_peak_backlog.push_back(s.peak_backlog);
  }

  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("sim.events_processed").add(queue_.fired());
    std::uint64_t emitted = 0, delivered = 0;
    for (const Stream& s : streams_) {
      emitted += s.next_unit;
      delivered += s.delivered;
    }
    reg->counter("sim.units_emitted").add(emitted);
    reg->counter("sim.units_delivered").add(delivered);
    std::size_t peak = 0;
    for (const Server& s : servers_) peak = std::max(peak, s.peak_backlog);
    reg->gauge("sim.peak_backlog").max(static_cast<double>(peak));
  }
  return report;
}

}  // namespace sparcle::sim
