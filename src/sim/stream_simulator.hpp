#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"
#include "model/task_graph.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

/// \file stream_simulator.hpp
/// A discrete-event simulator of stream-processing applications running on
/// a dispersed computing network — the repository's substitute for the
/// paper's physical testbed and Mininet emulation (§V-A).
///
/// Every NCP and link is a server shared by the *tasks* placed on it: the
/// element's capacity is processor-shared equally across tasks with work
/// pending (one CPU process per CT, one flow per TT hop), and data units
/// of the same task are served FIFO — the discipline of a real stream
/// engine worker.  A data unit emitted by a source traverses its
/// application's task graph: it is processed at each CT's host (service
/// demand = max_r a^(r)/C^(r) seconds when alone), crosses each hop of
/// each TT's route (demand = bits/bandwidth), honours fan-out
/// (duplication) and fan-in (join: a CT starts a unit only when every
/// inbound TT has delivered it), and counts as delivered when every sink
/// CT has finished it.  This discipline is work-conserving, so the
/// stability region is exactly the paper's rate constraint x·Σa <= C on
/// every element — which the tests verify against the analytic bottleneck
/// rate — and under overload the drain rate saturates at the element
/// capacity.
///
/// Element failures are optional on/off renewal processes (exponential up
/// and down times); a failed element pauses service, work-conservingly.
///
/// Multi-resource note: a CT's service demand collapses the resource types
/// via max_r a/C.  For a single resource type this is exact; with several,
/// sharing is (slightly) more pessimistic than the fluid bound, so the
/// quantitative sim/analytic cross-checks in the tests use one resource.

namespace sparcle::sim {

/// Per-stream results over the measurement window.
struct StreamStats {
  std::uint64_t emitted{0};
  std::uint64_t delivered{0};
  double throughput{0.0};    ///< delivered units per second
  double mean_latency{0.0};  ///< seconds from emission to last-sink finish
  double max_latency{0.0};
  double p50_latency{0.0};   ///< median
  double p95_latency{0.0};
  double p99_latency{0.0};
};

/// Simulation report: per-stream stats plus element utilizations and
/// peak backlogs (data units queued — bounded backlog is the §IV-A
/// stability criterion made visible).
struct SimReport {
  std::vector<StreamStats> streams;
  std::vector<double> ncp_utilization;   ///< busy fraction per NCP
  std::vector<double> link_utilization;  ///< busy fraction per link
  std::vector<std::size_t> ncp_peak_backlog;   ///< max units queued per NCP
  std::vector<std::size_t> link_peak_backlog;  ///< max units queued per link
};

class StreamSimulator {
 public:
  explicit StreamSimulator(const Network& net, std::uint64_t seed = 1);

  /// Adds one application path pushing `input_rate` units/s from its
  /// sources.  `graph` and `placement` must outlive run().  Deterministic
  /// inter-arrival spacing by default; Poisson when `poisson` is true.
  /// `packet_bits` > 0 enables packet-level pipelining: TT transfers are
  /// chopped into packets that are forwarded hop-by-hop as they arrive
  /// (cut-through), instead of the default whole-unit store-and-forward —
  /// this is what real networking does and it slashes multi-hop latency
  /// without changing throughput.  Returns the stream index.  Throws
  /// std::invalid_argument if the placement is incomplete/invalid or a CT
  /// requires a resource its host lacks entirely.
  std::size_t add_stream(const TaskGraph& graph, const Placement& placement,
                         double input_rate, bool poisson = false,
                         double packet_bits = 0.0);

  /// Attaches an on/off failure process to an element: exponential up
  /// times with mean `mean_up` and down times with mean `mean_down`.
  void add_failure(ElementKey element, double mean_up, double mean_down);

  /// Schedules a deterministic outage: `element` is down during
  /// [start, end).  Composes with add_failure (an element is down while
  /// any failure process or outage holds it down) — useful for
  /// reproducible what-if runs and maintenance-window studies.
  void add_outage(ElementKey element, double start, double end);

  /// Streams every unit-lifecycle event (emission, per-task enqueue and
  /// finish, delivery) to `sink` during run().  Pass nullptr to disable.
  /// The sink must outlive run().
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Runs for `duration` simulated seconds; throughput and latency are
  /// measured over [warmup, duration].  May be called once.
  SimReport run(double duration, double warmup = 0.0);

 private:
  /// Identifies a task instance: a CT's service or one hop of a TT route.
  struct TaskKey {
    std::size_t stream;
    bool is_ct;         // true: CT service; false: TT hop
    std::int32_t task;  // CtId or TtId
    std::size_t hop;    // hop index for TTs
    friend bool operator==(const TaskKey&, const TaskKey&) = default;
  };

  struct JobRef {
    std::size_t stream;
    std::uint64_t unit;
    bool is_ct;
    std::int32_t task;
    std::size_t hop;
    std::uint32_t packet{0};         // packet index within the unit
    std::uint32_t packets_total{1};  // packets per unit on this TT
  };

  /// One task's FIFO queue at a server.  Entries are data units (or, with
  /// packetization, individual packets — the last packet of a unit may be
  /// shorter, hence per-entry work).
  struct TaskQueue {
    TaskKey key;
    struct Entry {
      double work;
      JobRef ref;
    };
    double head_remaining;  // remaining demand of the entry in service
    std::vector<Entry> entries;  // FIFO: front at index `head`
    std::size_t head{0};
  };

  struct Server {
    double speed{1.0};
    int down_count{0};  // >0 while any failure process / outage holds it
    double last_update{0.0};
    double busy_time{0.0};
    std::vector<TaskQueue> queues;  // active tasks only
    std::size_t backlog{0};         // units currently queued or in service
    std::size_t peak_backlog{0};
    bool has_pending{false};
    EventQueue::Token pending{0};
  };

  struct UnitState {
    double emitted_at{0.0};
    std::vector<std::uint16_t> ct_arrivals;  // per CT: inbound deliveries
    std::vector<std::uint32_t> tt_packets;   // per TT: packets at last hop
    std::uint16_t sinks_remaining{0};
    bool done{false};
  };

  struct Stream {
    const TaskGraph* graph;
    const Placement* placement;
    double rate;
    bool poisson;
    double packet_bits{0.0};  // 0 = whole-unit store-and-forward
    std::vector<double> ct_work;  // service demand at the assigned host
    std::uint64_t next_unit{0};
    std::vector<UnitState> units;
    // measurement
    std::uint64_t emitted{0};
    std::uint64_t delivered{0};
    double latency_sum{0.0};
    double latency_max{0.0};
    std::vector<double> latencies;  // one per delivered unit (percentiles)
  };

  std::size_t server_index(ElementKey e) const {
    return e.kind == ElementKey::Kind::kNcp
               ? static_cast<std::size_t>(e.index)
               : net_->ncp_count() + static_cast<std::size_t>(e.index);
  }

  void advance(Server& s);
  void reschedule(std::size_t server_id);
  void enqueue_unit(std::size_t server_id, double work, const JobRef& ref);
  void on_completion(std::size_t server_id);
  void finish_job(const JobRef& ref);
  /// Launches the transfer of `unit` over TT `k` starting at hop 0
  /// (splitting into packets when the stream is packetized).
  void start_tt(std::size_t stream_id, std::uint64_t unit, TtId k);
  /// Work of one packet/unit of TT `k` at link `l` for stream `s`.
  double hop_work(const Stream& s, TtId k, LinkId l,
                  const JobRef& ref) const;
  void deliver_to_ct(std::size_t stream_id, std::uint64_t unit, CtId ct);
  void start_ct(std::size_t stream_id, std::uint64_t unit, CtId ct);
  void ct_finished(std::size_t stream_id, std::uint64_t unit, CtId ct);
  void emit_unit(std::size_t stream_id);
  void toggle_failure(std::size_t failure_id);
  void set_element_down(ElementKey element, bool down);

  const Network* net_;
  EventQueue queue_;
  std::mt19937_64 rng_;
  std::vector<Server> servers_;  // NCPs then links
  std::vector<Stream> streams_;
  struct Failure {
    ElementKey element;
    double mean_up, mean_down;
    bool up{true};
  };
  std::vector<Failure> failures_;
  struct Outage {
    ElementKey element;
    double start, end;
  };
  std::vector<Outage> outages_;
  TraceSink* trace_{nullptr};
  double warmup_{0.0};
  bool ran_{false};
  /// Queue-depth histogram of the installed registry, cached at run()
  /// start; nullptr (no per-event work) when no registry is installed.
  obs::Histogram* queue_depth_hist_{nullptr};
};

}  // namespace sparcle::sim
