#include "sim/churn_injector.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "obs/obs.hpp"

namespace sparcle::sim {

namespace {

/// SplitMix64 finalizer: decorrelates per-element RNG streams derived from
/// one user seed so adding an element never perturbs the others' draws.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t element_stream(std::uint64_t seed, const ElementKey& e) {
  return mix(mix(seed, static_cast<std::uint64_t>(e.kind)),
             static_cast<std::uint64_t>(e.index));
}

/// Uniform in [0, 1) from the top 53 bits — identical on every standard
/// library (std::uniform_real_distribution is implementation-defined).
double u01(std::mt19937_64& g) {
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

/// Exponential with the given mean; strictly positive for u in [0, 1).
double exponential(std::mt19937_64& g, double mean) {
  return -mean * std::log(1.0 - u01(g));
}

double mean_for(const std::unordered_map<ElementKey, double>& overrides,
                const ElementKey& e, double fallback) {
  const auto it = overrides.find(e);
  return it == overrides.end() ? fallback : it->second;
}

void require_positive(double v, const char* what) {
  if (!(v > 0)) throw std::invalid_argument(std::string(what) +
                                            " must be positive");
}

std::vector<ElementKey> participating_elements(const Network& net,
                                               const ChurnModel& model) {
  std::vector<ElementKey> elems;
  if (model.include_ncps)
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
      elems.push_back(ElementKey::ncp(j));
  if (model.include_links)
    for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
      elems.push_back(ElementKey::link(l));
  return elems;
}

void sort_events(std::vector<ChurnEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return std::tie(a.time, a.element, b.fail) <
                     std::tie(b.time, b.element, a.fail);
            });
}

std::string element_label(const Network& net, const ElementKey& e) {
  return e.kind == ElementKey::Kind::kNcp ? "ncp:" + net.ncp(e.index).name
                                          : "link:" + net.link(e.index).name;
}

}  // namespace

ChurnTrace generate_poisson_churn(const Network& net, const ChurnModel& model,
                                  double horizon, std::uint64_t seed) {
  require_positive(model.default_mtbf, "ChurnModel::default_mtbf");
  require_positive(model.default_mttr, "ChurnModel::default_mttr");
  ChurnTrace trace;
  for (const ElementKey& e : participating_elements(net, model)) {
    const double mtbf = mean_for(model.mtbf_override, e, model.default_mtbf);
    const double mttr = mean_for(model.mttr_override, e, model.default_mttr);
    require_positive(mtbf, "ChurnModel MTBF override");
    require_positive(mttr, "ChurnModel MTTR override");
    std::mt19937_64 g(element_stream(seed, e));
    double t = 0;
    for (;;) {
      t += exponential(g, mtbf);
      if (t >= horizon) break;
      trace.events.push_back({t, e, true});
      t += exponential(g, mttr);
      if (t >= horizon) break;  // stays down past the horizon
      trace.events.push_back({t, e, false});
    }
  }
  sort_events(trace.events);
  return trace;
}

ChurnTrace generate_burst_churn(const Network& net,
                                const BurstChurnConfig& config, double horizon,
                                std::uint64_t seed) {
  require_positive(config.model.default_mttr, "ChurnModel::default_mttr");
  ChurnTrace trace;
  if (config.burst_rate <= 0 || net.ncp_count() == 0) return trace;

  std::mt19937_64 g(mix(seed, 0x6275727374ull));  // "burst"
  auto fail_and_recover = [&](const ElementKey& e, double at) {
    if (at >= horizon) return;
    trace.events.push_back({at, e, true});
    const double mttr = mean_for(config.model.mttr_override, e,
                                 config.model.default_mttr);
    require_positive(mttr, "ChurnModel MTTR override");
    const double up = at + exponential(g, mttr);
    if (up < horizon) trace.events.push_back({up, e, false});
  };

  double t = 0;
  for (;;) {
    t += exponential(g, 1.0 / config.burst_rate);
    if (t >= horizon) break;
    // Epicenter NCP plus a spread_prob-thinned topological neighborhood:
    // every incident link and every adjacent NCP.
    const NcpId center = static_cast<NcpId>(
        g() % static_cast<std::uint64_t>(net.ncp_count()));
    fail_and_recover(ElementKey::ncp(center), t);
    for (LinkId l : net.incident_links(center)) {
      if (u01(g) < config.spread_prob)
        fail_and_recover(ElementKey::link(l),
                         t + u01(g) * config.spread_span);
      if (u01(g) < config.spread_prob)
        fail_and_recover(ElementKey::ncp(net.other_end(l, center)),
                         t + u01(g) * config.spread_span);
    }
  }
  sort_events(trace.events);
  return trace;
}

std::string write_churn_trace(const ChurnTrace& trace, const Network& net) {
  std::ostringstream out;
  out.precision(17);  // doubles round-trip exactly
  out << "# SPARCLE churn trace: <verb> <time> <element>\n";
  out << "churn v1\n";
  for (const ChurnEvent& ev : trace.events)
    out << (ev.fail ? "fail    " : "recover ") << ev.time << ' '
        << element_label(net, ev.element) << '\n';
  return out.str();
}

ChurnTrace parse_churn_trace(std::istream& in, const Network& net) {
  std::unordered_map<std::string, NcpId> ncp_by_name;
  std::unordered_map<std::string, LinkId> link_by_name;
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    ncp_by_name[net.ncp(j).name] = j;
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    link_by_name[net.link(l).name] = l;

  ChurnTrace trace;
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  double prev_time = 0;
  auto fail = [&](const std::string& msg) -> std::runtime_error {
    return std::runtime_error("line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only line
    if (!saw_header) {
      std::string version;
      if (verb != "churn" || !(ls >> version) || version != "v1")
        throw fail("expected header 'churn v1'");
      saw_header = true;
      continue;
    }
    const bool is_fail = verb == "fail";
    if (!is_fail && verb != "recover")
      throw fail("unknown verb '" + verb + "' (want fail|recover)");
    double time = 0;
    std::string elem;
    if (!(ls >> time >> elem)) throw fail("expected '<time> <element>'");
    if (!(time >= prev_time)) throw fail("timestamps must be non-decreasing");
    prev_time = time;
    const std::size_t colon = elem.find(':');
    if (colon == std::string::npos)
      throw fail("element must be ncp:<name> or link:<name>");
    const std::string kind = elem.substr(0, colon);
    const std::string name = elem.substr(colon + 1);
    ElementKey key;
    if (kind == "ncp") {
      const auto it = ncp_by_name.find(name);
      if (it == ncp_by_name.end()) throw fail("unknown NCP '" + name + "'");
      key = ElementKey::ncp(it->second);
    } else if (kind == "link") {
      const auto it = link_by_name.find(name);
      if (it == link_by_name.end()) throw fail("unknown link '" + name + "'");
      key = ElementKey::link(it->second);
    } else {
      throw fail("element must be ncp:<name> or link:<name>");
    }
    trace.events.push_back({time, key, is_fail});
  }
  if (!saw_header) throw fail("missing header 'churn v1'");
  return trace;
}

ChurnTrace parse_churn_trace_text(const std::string& text,
                                  const Network& net) {
  std::istringstream in(text);
  return parse_churn_trace(in, net);
}

ChurnTrace load_churn_trace_file(const std::string& path, const Network& net) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open churn trace: " + path);
  return parse_churn_trace(in, net);
}

ChurnInjector::ChurnInjector(Scheduler& scheduler, ChurnTrace trace,
                             ChurnInjectorOptions options)
    : scheduler_(&scheduler), trace_(std::move(trace)), options_(options) {
  // Stable: events at the same instant keep their trace order.
  std::stable_sort(trace_.events.begin(), trace_.events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time < b.time;
                   });
}

double ChurnInjector::next_time() const {
  return done() ? 0.0 : trace_.events[next_].time;
}

bool ChurnInjector::step() {
  if (done()) return false;
  const obs::ScopedTimer span("churn.event");
  const ChurnEvent& ev = trace_.events[next_++];
  const bool currently_failed =
      scheduler_->failed_elements().contains(ev.element);
  if (ev.fail == currently_failed) {
    // Burst traces can fail an already-down element; nothing to do.
    ++stats_.redundant;
    return true;
  }
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter(ev.fail ? "churn.failures" : "churn.recoveries").add(1);
  if (ev.fail) {
    scheduler_->mark_failed(ev.element);
    ++stats_.failures;
  } else {
    scheduler_->mark_recovered(ev.element);
    ++stats_.recoveries;
  }
  switch (options_.repair_mode) {
    case RepairMode::kIncremental: {
      const Scheduler::RepairReport r = scheduler_->repair(ev.element);
      ++stats_.repairs;
      stats_.apps_touched += r.apps_touched;
      stats_.paths_dropped += r.paths_dropped;
      stats_.paths_added += r.paths_added;
      stats_.retries += r.retries;
      if (r.fell_back) ++stats_.fallbacks;
      break;
    }
    case RepairMode::kFullRebalance:
      scheduler_->rebalance();
      ++stats_.repairs;
      break;
    case RepairMode::kNone:
      break;
  }
  return true;
}

std::size_t ChurnInjector::run_until(double until) {
  std::size_t applied = 0;
  while (!done() && next_time() <= until && step()) ++applied;
  return applied;
}

std::size_t ChurnInjector::run_all() {
  std::size_t applied = 0;
  while (step()) ++applied;
  return applied;
}

}  // namespace sparcle::sim
