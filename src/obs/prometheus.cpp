#include "obs/prometheus.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sparcle::obs {

namespace {

/// Shortest representation of a double that round-trips.
std::string fmt(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

bool valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':')
    return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

[[noreturn]] void fail_line(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("prometheus: line " + std::to_string(line_no) +
                           ": " + what);
}

}  // namespace

std::string prometheus_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (valid_name_char(c, /*first=*/false))
      out += c;
    else
      out += '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])))
    out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snap,
                      std::string_view prefix) {
  const std::string pfx =
      prefix.empty() ? std::string() : prometheus_name(prefix) + "_";
  for (const auto& [raw, value] : snap.counters) {
    const std::string name = pfx + prometheus_name(raw) + "_total";
    out << "# HELP " << name << " SPARCLE counter " << raw << "\n";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [raw, value] : snap.gauges) {
    const std::string name = pfx + prometheus_name(raw);
    out << "# HELP " << name << " SPARCLE gauge " << raw << "\n";
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << fmt(value) << "\n";
  }
  for (const auto& [raw, h] : snap.histograms) {
    const std::string name = pfx + prometheus_name(raw);
    out << "# HELP " << name << " SPARCLE histogram " << raw << "\n";
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.buckets.size() ? h.buckets[i] : 0;
      out << name << "_bucket{le=\"" << fmt(h.bounds[i]) << "\"} " << cum
          << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << fmt(h.sum) << "\n";
    out << name << "_count " << h.count << "\n";
  }
}

std::string to_prometheus(const MetricsSnapshot& snap,
                          std::string_view prefix) {
  std::ostringstream os;
  write_prometheus(os, snap, prefix);
  return os.str();
}

std::vector<ExpositionSample> parse_exposition(const std::string& text) {
  std::vector<ExpositionSample> samples;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only HELP/TYPE comments are produced; tolerate any comment.
      continue;
    }
    std::size_t i = 0;
    ExpositionSample sample;
    while (i < line.size() && valid_name_char(line[i], i == 0)) {
      sample.name += line[i];
      ++i;
    }
    if (sample.name.empty()) fail_line(line_no, "expected a metric name");
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::string key;
        while (i < line.size() && valid_name_char(line[i], key.empty())) {
          key += line[i];
          ++i;
        }
        if (key.empty()) fail_line(line_no, "expected a label name");
        if (i >= line.size() || line[i] != '=')
          fail_line(line_no, "expected '=' after label '" + key + "'");
        ++i;
        if (i >= line.size() || line[i] != '"')
          fail_line(line_no, "label value of '" + key + "' must be quoted");
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size()) fail_line(line_no, "dangling escape");
            value += line[i] == 'n' ? '\n' : line[i];
          } else {
            value += line[i];
          }
          ++i;
        }
        if (i >= line.size()) fail_line(line_no, "unterminated label value");
        ++i;  // closing quote
        sample.labels[key] = std::move(value);
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) fail_line(line_no, "unterminated label set");
      ++i;  // closing brace
    }
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) fail_line(line_no, "missing sample value");
    const std::string value_text = line.substr(i);
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0')
        fail_line(line_no, "bad sample value '" + value_text + "'");
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<ExpositionSample> validate_exposition(const std::string& text) {
  std::vector<ExpositionSample> samples = parse_exposition(text);
  // Group histogram families by base name, in sample order (the writer
  // emits buckets by ascending le, so order-checking covers cumulation).
  std::map<std::string, std::vector<const ExpositionSample*>> buckets;
  std::map<std::string, double> sums, counts;
  for (const ExpositionSample& s : samples) {
    const auto ends_with = [&](const char* suffix) {
      const std::string_view sv(suffix);
      return s.name.size() > sv.size() &&
             s.name.compare(s.name.size() - sv.size(), sv.size(), sv) == 0;
    };
    if (ends_with("_bucket") && s.labels.count("le"))
      buckets[s.name.substr(0, s.name.size() - 7)].push_back(&s);
    else if (ends_with("_sum"))
      sums[s.name.substr(0, s.name.size() - 4)] = s.value;
    else if (ends_with("_count"))
      counts[s.name.substr(0, s.name.size() - 6)] = s.value;
  }
  for (const auto& [base, series] : buckets) {
    if (!sums.count(base))
      throw std::runtime_error("prometheus: histogram '" + base +
                               "' has buckets but no _sum");
    if (!counts.count(base))
      throw std::runtime_error("prometheus: histogram '" + base +
                               "' has buckets but no _count");
    double prev = -1.0;
    double prev_le = -std::numeric_limits<double>::infinity();
    bool saw_inf = false;
    for (const ExpositionSample* s : series) {
      const std::string& le = s->labels.at("le");
      const double le_value = le == "+Inf"
                                  ? std::numeric_limits<double>::infinity()
                                  : std::strtod(le.c_str(), nullptr);
      if (le_value <= prev_le)
        throw std::runtime_error("prometheus: histogram '" + base +
                                 "' buckets not ascending at le=\"" + le +
                                 "\"");
      if (s->value + 1e-9 < prev)
        throw std::runtime_error("prometheus: histogram '" + base +
                                 "' buckets not cumulative at le=\"" + le +
                                 "\"");
      prev = s->value;
      prev_le = le_value;
      if (le == "+Inf") {
        saw_inf = true;
        if (std::abs(s->value - counts[base]) > 1e-9)
          throw std::runtime_error("prometheus: histogram '" + base +
                                   "' +Inf bucket != _count");
      }
    }
    if (!saw_inf)
      throw std::runtime_error("prometheus: histogram '" + base +
                               "' missing the +Inf bucket");
  }
  return samples;
}

}  // namespace sparcle::obs
