#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>

/// \file chrome_trace.hpp
/// Collects Chrome trace-event "complete" spans (ph "X") and flow
/// start/finish markers (ph "s"/"f") and exports the JSON array format that
/// chrome://tracing and https://ui.perfetto.dev load directly.  Nesting is
/// implicit: spans on the same thread whose intervals contain each other
/// render as a flame graph; spans carrying the same flow id are joined by
/// flow arrows across threads, which is how one service request's
/// queue-wait → batch → solve → reply stages read as a single causal chain.
/// Spans are recorded by obs::ScopedTimer (obs.hpp); this class only
/// stores and serializes them.
///
/// Storage is bounded: set_capacity() caps the event count and recording
/// past the cap drops the *oldest* event (a long-running daemon keeps the
/// most recent window).  Drops are counted locally (dropped()) and, when a
/// global metrics registry is installed, on the `trace.dropped` counter.

namespace sparcle::obs {

class ChromeTraceCollector {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default event capacity (spans + flow markers) before oldest-drop.
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  ChromeTraceCollector() : origin_(Clock::now()) {}

  /// Microseconds since the collector was created.
  double to_origin_us(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - origin_).count();
  }

  /// Records one complete span on the calling thread.  A non-zero
  /// `flow_id` tags the span (args.trace_id) and binds it to the flow of
  /// the same id.
  void record_complete(std::string name, double ts_us, double dur_us,
                       std::uint64_t flow_id = 0);

  /// Records a flow start (ph "s") or finish (ph "f") marker.  `flow_id`
  /// must be non-zero; zero is silently ignored (no flow to join).
  void record_flow(std::string name, double ts_us, bool start,
                   std::uint64_t flow_id);

  /// Caps stored events; excess recordings drop the oldest event.  A cap
  /// of 0 means "drop everything" (size stays 0).  Shrinks eagerly.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const;
  /// Events discarded so far by the capacity cap.
  std::uint64_t dropped() const;

  std::size_t event_count() const;

  /// {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
  ///  "pid": 1, "tid": ...}, ...]}; flow markers serialize as ph "s"/"f"
  /// with "id" and "bp": "e".
  std::string to_json() const;
  void write_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    double ts_us;
    double dur_us;
    std::uint64_t tid;
    std::uint64_t flow;  ///< 0 = not part of a flow
    char ph;             ///< 'X' complete, 's' flow start, 'f' flow finish
  };

  void push_locked(Event e);

  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  std::size_t capacity_{kDefaultCapacity};
  std::uint64_t dropped_{0};
};

}  // namespace sparcle::obs
