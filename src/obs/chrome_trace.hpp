#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

/// \file chrome_trace.hpp
/// Collects Chrome trace-event "complete" spans (ph "X") and exports the
/// JSON array format that chrome://tracing and https://ui.perfetto.dev load
/// directly.  Nesting is implicit: spans on the same thread whose intervals
/// contain each other render as a flame graph.  Spans are recorded by
/// obs::ScopedTimer (obs.hpp); this class only stores and serializes them.

namespace sparcle::obs {

class ChromeTraceCollector {
 public:
  using Clock = std::chrono::steady_clock;

  ChromeTraceCollector() : origin_(Clock::now()) {}

  /// Microseconds since the collector was created.
  double to_origin_us(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - origin_).count();
  }

  /// Records one complete span on the calling thread.
  void record_complete(std::string name, double ts_us, double dur_us);

  std::size_t event_count() const;

  /// {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
  ///  "pid": 1, "tid": ...}, ...]}
  std::string to_json() const;
  void write_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    double ts_us;
    double dur_us;
    std::uint64_t tid;
  };

  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace sparcle::obs
