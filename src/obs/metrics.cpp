#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sparcle::obs {

namespace {

/// CAS add (std::atomic<double>::fetch_add is C++20 but spotty pre-GCC12).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Shortest round-trippable representation of a double.
std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void json_escape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument("Histogram: bounds must strictly increase");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
}

std::vector<double> default_time_bounds_us() {
  return {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge_or(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.buckets.reserve(h->bucket_count());
    for (std::size_t i = 0; i < h->bucket_count(); ++i)
      hs.buckets.push_back(h->bucket(i));
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": " << num(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i)
      out << (i ? ", " : "") << num(h->bounds()[i]);
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h->bucket_count(); ++i)
      out << (i ? ", " : "") << h->bucket(i);
    out << "], \"count\": " << h->count() << ", \"sum\": " << num(h->sum())
        << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "kind,name,key,value\n";
  for (const auto& [name, c] : counters_)
    out << "counter," << name << ",value," << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    out << "gauge," << name << ",value," << num(g->value()) << "\n";
  for (const auto& [name, h] : histograms_) {
    for (std::size_t i = 0; i < h->bounds().size(); ++i)
      out << "histogram," << name << ",le_" << num(h->bounds()[i]) << ","
          << h->bucket(i) << "\n";
    out << "histogram," << name << ",le_inf,"
        << h->bucket(h->bucket_count() - 1) << "\n";
    out << "histogram," << name << ",count," << h->count() << "\n";
    out << "histogram," << name << ",sum," << num(h->sum()) << "\n";
  }
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace sparcle::obs
