#include "obs/decision_log.hpp"

#include <ostream>
#include <sstream>

#include "obs/obs.hpp"

namespace sparcle::obs {

namespace {

void csv_field(std::ostream& out, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

const char* to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kAdmit: return "admit";
    case DecisionKind::kReject: return "reject";
    case DecisionKind::kPathAdd: return "path_add";
    case DecisionKind::kRepair: return "repair";
    case DecisionKind::kQueueReject: return "queue_reject";
    case DecisionKind::kWireReject: return "wire_reject";
    case DecisionKind::kFederate: return "federate";
  }
  return "?";
}

void DecisionLog::record(DecisionKind kind, std::string app, std::string qoe,
                         std::string reason, double rate, double availability,
                         std::size_t paths) {
  if (reason.empty()) reason = "(unspecified)";
  const std::uint64_t trace = current_trace();
  std::uint64_t newly_dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Decision d;
    d.seq = seq_++;
    d.kind = kind;
    d.app = std::move(app);
    d.qoe = std::move(qoe);
    d.reason = std::move(reason);
    d.rate = rate;
    d.availability = availability;
    d.paths = paths;
    d.trace = trace;
    if (capacity_ == 0) {
      newly_dropped = 1;
    } else {
      while (rows_.size() >= capacity_) {
        rows_.pop_front();
        ++newly_dropped;
      }
      rows_.push_back(std::move(d));
    }
    dropped_ += newly_dropped;
  }
  if (newly_dropped > 0) {
    if (MetricsRegistry* reg = metrics(); reg != nullptr)
      reg->counter("decision_log.dropped").add(newly_dropped);
  }
}

void DecisionLog::set_capacity(std::size_t cap) {
  std::uint64_t newly_dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = cap;
    while (rows_.size() > capacity_) {
      rows_.pop_front();
      ++newly_dropped;
    }
    dropped_ += newly_dropped;
  }
  if (newly_dropped > 0) {
    if (MetricsRegistry* reg = metrics(); reg != nullptr)
      reg->counter("decision_log.dropped").add(newly_dropped);
  }
}

std::size_t DecisionLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::uint64_t DecisionLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Decision> DecisionLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {rows_.begin(), rows_.end()};
}

std::size_t DecisionLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

void DecisionLog::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << kCsvHeader << "\n";
  for (const Decision& d : rows_) {
    out << d.seq << ',' << to_string(d.kind) << ',';
    csv_field(out, d.app);
    out << ',' << d.qoe << ',';
    csv_field(out, d.reason);
    std::ostringstream nums;
    nums.precision(12);
    nums << ',' << d.rate << ',' << d.availability << ',' << d.paths << ','
         << d.trace;
    out << nums.str() << "\n";
  }
}

std::string DecisionLog::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace sparcle::obs
