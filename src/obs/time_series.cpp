#include "obs/time_series.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace sparcle::obs {

namespace {

/// Interpolated quantile from merged per-bucket counts (bucket i counts
/// observations <= bounds[i]; the last slot is the overflow bucket).
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double prev = cum;
    cum += static_cast<double>(counts[i]);
    if (cum + 1e-12 < target) continue;
    if (i >= bounds.size()) return bounds.back();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    if (counts[i] == 0) return upper;
    const double frac = (target - prev) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.back();
}

}  // namespace

const std::vector<double>& window_value_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double v = 1.0; v <= 16777216.0; v *= 2.0) b.push_back(v);
    return b;
  }();
  return bounds;
}

TimeSeriesWindow::TimeSeriesWindow(std::size_t seconds,
                                   Clock::time_point origin)
    : seconds_(seconds == 0 ? 1 : seconds), origin_(origin) {}

std::int64_t TimeSeriesWindow::effective_second(Clock::time_point now) const {
  const std::int64_t sec = std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::seconds>(now - origin_)
             .count());
  // Monotone guard: a time-point behind the newest second ever seen is
  // clamped forward, so a regressing clock cannot reopen closed buckets.
  std::lock_guard<std::mutex> lock(clock_mu_);
  high_second_ = std::max(high_second_, sec);
  return high_second_;
}

TimeSeriesWindow::Series& TimeSeriesWindow::series(std::string_view name,
                                                   bool values_kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    auto s = std::make_unique<Series>(values_kind);
    s->ring.resize(seconds_);
    if (values_kind)
      for (Bucket& b : s->ring)
        b.hist.assign(window_value_bounds().size() + 1, 0);
    it = series_.emplace(std::string(name), std::move(s)).first;
  }
  return *it->second;
}

const TimeSeriesWindow::Series* TimeSeriesWindow::find(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void TimeSeriesWindow::add(std::string_view name, double v) {
  add_at(name, v, Clock::now());
}

void TimeSeriesWindow::add_at(std::string_view name, double v,
                              Clock::time_point now) {
  const std::int64_t sec = effective_second(now);
  Series& s = series(name, /*values_kind=*/false);
  std::lock_guard<std::mutex> lock(s.mu);
  Bucket& b = s.ring[static_cast<std::size_t>(sec) % seconds_];
  if (b.second != sec) {  // lazy recycle of a previous-lap bucket
    b.second = sec;
    b.count = 0;
    b.sum = 0.0;
  }
  ++b.count;
  b.sum += v;
}

void TimeSeriesWindow::observe(std::string_view name, double v) {
  observe_at(name, v, Clock::now());
}

void TimeSeriesWindow::observe_at(std::string_view name, double v,
                                  Clock::time_point now) {
  const std::int64_t sec = effective_second(now);
  Series& s = series(name, /*values_kind=*/true);
  std::lock_guard<std::mutex> lock(s.mu);
  Bucket& b = s.ring[static_cast<std::size_t>(sec) % seconds_];
  if (b.second != sec) {
    b.second = sec;
    b.count = 0;
    b.sum = 0.0;
    std::fill(b.hist.begin(), b.hist.end(), 0);
  }
  ++b.count;
  b.sum += v;
  const auto& bounds = window_value_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  ++b.hist[static_cast<std::size_t>(it - bounds.begin())];
}

TimeSeriesWindow::RateStats TimeSeriesWindow::rate(
    std::string_view name) const {
  return rate_at(name, Clock::now());
}

TimeSeriesWindow::RateStats TimeSeriesWindow::rate_at(
    std::string_view name, Clock::time_point now) const {
  RateStats out;
  const Series* s = find(name);
  if (s == nullptr) return out;
  const std::int64_t now_sec = effective_second(now);
  const std::int64_t oldest = now_sec - static_cast<std::int64_t>(seconds_) + 1;
  std::lock_guard<std::mutex> lock(s->mu);
  for (const Bucket& b : s->ring) {
    if (b.second < oldest || b.second > now_sec) continue;  // idle-gap skip
    out.total += b.sum;
    out.samples += b.count;
  }
  // The denominator is the window span actually covered: a process 3s old
  // divides by 3, not 60, so early rates aren't underestimated.
  const double covered = static_cast<double>(
      std::min<std::int64_t>(static_cast<std::int64_t>(seconds_),
                             now_sec + 1));
  out.per_second = covered > 0.0 ? out.total / covered : 0.0;
  return out;
}

TimeSeriesWindow::ValueStats TimeSeriesWindow::values(
    std::string_view name) const {
  return values_at(name, Clock::now());
}

TimeSeriesWindow::ValueStats TimeSeriesWindow::values_at(
    std::string_view name, Clock::time_point now) const {
  ValueStats out;
  const Series* s = find(name);
  if (s == nullptr || !s->values) return out;
  const std::int64_t now_sec = effective_second(now);
  const std::int64_t oldest = now_sec - static_cast<std::int64_t>(seconds_) + 1;
  std::vector<std::uint64_t> merged(window_value_bounds().size() + 1, 0);
  {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const Bucket& b : s->ring) {
      if (b.second < oldest || b.second > now_sec) continue;
      out.count += b.count;
      out.sum += b.sum;
      for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += b.hist[i];
    }
  }
  if (out.count > 0) {
    out.mean = out.sum / static_cast<double>(out.count);
    out.p50 = bucket_quantile(window_value_bounds(), merged, out.count, 0.50);
    out.p99 = bucket_quantile(window_value_bounds(), merged, out.count, 0.99);
  }
  return out;
}

std::vector<std::string> TimeSeriesWindow::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

bool TimeSeriesWindow::is_value_series(std::string_view name) const {
  const Series* s = find(name);
  return s != nullptr && s->values;
}

void TimeSeriesWindow::export_to(MetricsSnapshot& snap,
                                 const std::string& prefix,
                                 Clock::time_point now) const {
  for (const std::string& name : series_names()) {
    if (is_value_series(name)) {
      const ValueStats v = values_at(name, now);
      snap.gauges[prefix + name + ".count"] = static_cast<double>(v.count);
      snap.gauges[prefix + name + ".mean"] = v.mean;
      snap.gauges[prefix + name + ".p50"] = v.p50;
      snap.gauges[prefix + name + ".p99"] = v.p99;
    } else {
      const RateStats r = rate_at(name, now);
      snap.gauges[prefix + name + ".total"] = r.total;
      snap.gauges[prefix + name + ".per_second"] = r.per_second;
    }
  }
}

}  // namespace sparcle::obs
