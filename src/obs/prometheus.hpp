#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

/// \file prometheus.hpp
/// Prometheus text exposition (format version 0.0.4) from a
/// MetricsSnapshot, plus a strict parser used by tests and the
/// `sparcle_serve --oneshot` smoke to validate what the ops endpoint
/// serves.  Mapping rules:
///
///   - metric names are `<prefix>_<name>` with every character outside
///     `[a-zA-Z0-9_:]` (dots, dashes) replaced by `_`; counters get the
///     conventional `_total` suffix;
///   - histograms follow the native histogram contract: **cumulative**
///     `_bucket{le="..."}` series (the registry's per-bucket counts are
///     summed), a closing `le="+Inf"` bucket equal to `_count`, plus
///     `_sum` and `_count`;
///   - output ordering is deterministic: counters, then gauges, then
///     histograms, each sorted by name — diffable scrape-to-scrape.

namespace sparcle::obs {

/// `raw` sanitized into a valid Prometheus metric name: characters
/// outside [a-zA-Z0-9_:] become '_', and a leading digit is prefixed
/// with '_'.
std::string prometheus_name(std::string_view raw);

/// `raw` escaped as a label value body: backslash, double quote, and
/// newline get backslash escapes.
std::string prometheus_label_value(std::string_view raw);

/// Writes `snap` as text exposition; every metric name is prefixed with
/// `<prefix>_`.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snap,
                      std::string_view prefix = "sparcle");
std::string to_prometheus(const MetricsSnapshot& snap,
                          std::string_view prefix = "sparcle");

/// One sample line of an exposition (`name{labels} value`).
struct ExpositionSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value{0.0};
};

/// Parses text exposition into samples, skipping `# HELP` / `# TYPE`
/// comment lines.  Throws std::runtime_error naming the offending line on
/// malformed input (bad metric/label characters, missing value, unquoted
/// label values).
std::vector<ExpositionSample> parse_exposition(const std::string& text);

/// Structural validation of an exposition: parses it, then checks the
/// histogram contract for every `*_bucket` family — buckets cumulative
/// (non-decreasing by `le`), a `+Inf` bucket present and equal to
/// `_count`, `_sum` and `_count` series present.  Throws
/// std::runtime_error describing the first violation.  Returns the
/// samples for further checks (the oneshot smoke compares two scrapes for
/// counter monotonicity).
std::vector<ExpositionSample> validate_exposition(const std::string& text);

}  // namespace sparcle::obs
