#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.hpp
/// A lock-cheap registry of named counters, gauges, and fixed-bucket
/// histograms.  Registration (name lookup) takes a mutex; every update on a
/// registered instrument is a relaxed atomic, so hot paths grab the
/// instrument pointer once and then update wait-free.  Snapshots export as
/// JSON (machine-readable, parse-back tested) or CSV (spreadsheet-ready).
///
/// The metric name catalog lives in docs/observability.md; instrument names
/// use dotted lowercase (`assigner.memo.hits`).

namespace sparcle::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (also offers a monotone max update).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (CAS loop; racing maxes both land).
  void max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram.  Bucket i counts observations x <= bounds[i]
/// (first matching bound); one implicit overflow bucket catches the rest.
/// Bounds are fixed at registration so concurrent observes never resize.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket count for index i in [0, bounds().size()]; the last index is
  /// the overflow bucket.
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bounds for ScopedTimer duration histograms, in microseconds
/// (1 µs .. 10 s, one bucket per decade).
std::vector<double> default_time_bounds_us();

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count{0};
  double sum{0.0};
};

/// Point-in-time copy of a whole registry (plus any derived gauges a
/// caller merges in).  This is the single input of the Prometheus
/// exposition writer (prometheus.hpp) and the centralized source of the
/// placement service's ServiceStats, so a newly registered instrument can
/// never silently miss a snapshot path.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name (0 when absent).
  std::uint64_t counter_or(const std::string& name) const;
  /// Gauge value by name (0.0 when absent).
  double gauge_or(const std::string& name) const;
};

/// Named instrument registry.  Instrument references stay valid for the
/// registry's lifetime (instruments are never removed).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Returns the histogram named `name`, creating it with `bounds` on
  /// first use.  Later calls ignore `bounds` (the first registration wins).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// The histogram if it exists, else nullptr (no creation).
  const Histogram* find_histogram(std::string_view name) const;

  /// Structured copy of every registered instrument (export layers and
  /// the service stats path consume this instead of touching instruments
  /// field by field).
  MetricsSnapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"bounds": [...], "buckets": [...], "count": N, "sum": S}}}
  std::string to_json() const;
  /// Rows of kind,name,key,value; histograms flatten to one row per
  /// bucket (key "le_<bound>" / "le_inf") plus "count" and "sum".
  std::string to_csv() const;
  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sparcle::obs
