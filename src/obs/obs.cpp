#include "obs/obs.hpp"

namespace sparcle::obs {

namespace detail {

Globals& globals() {
  static Globals g;
  return g;
}

}  // namespace detail

void install(const Observability& o) {
  detail::Globals& g = detail::globals();
  g.metrics.store(o.metrics, std::memory_order_relaxed);
  g.trace.store(o.trace, std::memory_order_relaxed);
  g.decisions.store(o.decisions, std::memory_order_relaxed);
}

void uninstall() { install(Observability{}); }

}  // namespace sparcle::obs
