#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file time_series.hpp
/// A sliding window of per-second buckets, so rates and latency
/// percentiles are queryable *live* ("what is the service doing right
/// now?") instead of only at process exit like the cumulative
/// MetricsRegistry.  Two series kinds share the same ring:
///
///   - rate series (`add`): per-second event counts — arrivals, admits,
///     rejects — queried as totals and per-second rates over the window;
///   - value series (`observe`): per-second {count, sum, log-bucket
///     histogram} — latencies, batch occupancy, queue depth — queried as
///     mean and interpolated p50/p99 over the window.
///
/// Buckets recycle lazily: writing into a bucket whose stamp belongs to a
/// previous lap resets it, and queries skip buckets whose stamp has fallen
/// out of the window, so idle gaps cost nothing and never leak stale data
/// back into a rate.  Timestamps are monotone-guarded: a time-point before
/// the newest one ever seen is clamped forward, so a (buggy or mocked)
/// backwards clock can never corrupt a bucket that is already closed.
///
/// Lock discipline: the series map takes a registry-style mutex on first
/// use of a name; each series then has its own mutex held only for the
/// few-word bucket update.  docs/observability.md documents the
/// `service.window.*` metric family this feeds.

namespace sparcle::obs {

struct MetricsSnapshot;

/// Bucket bounds shared by every value series: powers of two from 1 to
/// 2^24 (≈16.8M), 25 bounds plus one overflow bucket.  Tuned for
/// microsecond latencies (1µs .. ~16.8s) but unit-agnostic.
const std::vector<double>& window_value_bounds();

class TimeSeriesWindow {
 public:
  using Clock = std::chrono::steady_clock;

  /// A window of `seconds` one-second buckets (default 60).  `origin` is
  /// the time bucket 0 starts at; tests pass an explicit origin so the
  /// `*_at` overloads land in deterministic buckets.
  explicit TimeSeriesWindow(std::size_t seconds = 60,
                            Clock::time_point origin = Clock::now());

  // --- recording -----------------------------------------------------

  /// Counts `v` into rate series `series` at the current second.
  void add(std::string_view series, double v = 1.0);
  /// add() with an explicit time-point (tests; replayed traces).
  void add_at(std::string_view series, double v, Clock::time_point now);

  /// Observes sample `v` into value series `series` at the current second.
  void observe(std::string_view series, double v);
  /// observe() with an explicit time-point.
  void observe_at(std::string_view series, double v, Clock::time_point now);

  // --- queries -------------------------------------------------------

  struct RateStats {
    double total{0.0};        ///< Σ over the live buckets
    double per_second{0.0};   ///< total / seconds the window covers
    std::uint64_t samples{0}; ///< add() calls contributing
  };
  /// Rate stats for `series` over the window ending now.  Unknown series
  /// read as all-zero.
  RateStats rate(std::string_view series) const;
  RateStats rate_at(std::string_view series, Clock::time_point now) const;

  struct ValueStats {
    std::uint64_t count{0};
    double sum{0.0};
    double mean{0.0};
    double p50{0.0};  ///< interpolated within the matching log bucket
    double p99{0.0};
  };
  /// Value stats for `series` over the window ending now.  Unknown series
  /// read as all-zero.
  ValueStats values(std::string_view series) const;
  ValueStats values_at(std::string_view series, Clock::time_point now) const;

  /// Registered series names, sorted (rate and value series together).
  std::vector<std::string> series_names() const;
  /// True if `series` exists and was registered by observe().
  bool is_value_series(std::string_view series) const;

  std::size_t window_seconds() const { return seconds_; }

  /// Materializes the window into `snap` as gauges named
  /// `<prefix><series>.total` / `.per_second` (rate series) and
  /// `<prefix><series>.count` / `.mean` / `.p50` / `.p99` (value series),
  /// evaluated at `now`.  The ops endpoint uses prefix
  /// `service.window.`.
  void export_to(MetricsSnapshot& snap, const std::string& prefix,
                 Clock::time_point now = Clock::now()) const;

 private:
  struct Bucket {
    std::int64_t second{-1};  ///< stamp; -1 = never written
    std::uint64_t count{0};
    double sum{0.0};
    std::vector<std::uint64_t> hist;  ///< value series only
  };
  struct Series {
    explicit Series(bool values_kind) : values(values_kind) {}
    const bool values;
    mutable std::mutex mu;
    std::vector<Bucket> ring;
  };

  Series& series(std::string_view name, bool values_kind);
  const Series* find(std::string_view name) const;
  /// Seconds since origin, clamped monotone (never before the newest
  /// second any recording or query has seen).
  std::int64_t effective_second(Clock::time_point now) const;

  const std::size_t seconds_;
  const Clock::time_point origin_;
  mutable std::mutex mu_;  ///< guards series_ (name registration)
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
  mutable std::mutex clock_mu_;  ///< guards high_second_
  mutable std::int64_t high_second_{0};
};

}  // namespace sparcle::obs
