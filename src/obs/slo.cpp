#include "obs/slo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace sparcle::obs {

const char* to_string(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kDegraded: return "degraded";
    case SloState::kBreached: return "breached";
  }
  return "?";
}

const SloEvaluation* SloReport::find(const std::string& name) const {
  for (const SloEvaluation& eval : targets)
    if (eval.name == name) return &eval;
  return nullptr;
}

void SloTracker::add(SloSpec spec) {
  if (spec.target <= 0.0) return;  // disabled objective
  if (spec.breach_burn <= 1.0) spec.breach_burn = 2.0;
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back(std::move(spec));
}

std::size_t SloTracker::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return specs_.size();
}

SloReport SloTracker::evaluate(const TimeSeriesWindow& window,
                               TimeSeriesWindow::Clock::time_point now) const {
  std::vector<SloSpec> specs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    specs = specs_;
  }
  SloReport report;
  report.targets.reserve(specs.size());
  for (const SloSpec& spec : specs) {
    SloEvaluation eval;
    eval.name = spec.name;
    eval.series = spec.series;
    eval.target = spec.target;
    switch (spec.aggregate) {
      case SloSpec::Aggregate::kP50:
      case SloSpec::Aggregate::kP99:
      case SloSpec::Aggregate::kMean: {
        const TimeSeriesWindow::ValueStats v =
            window.values_at(spec.series, now);
        eval.samples = v.count;
        eval.observed = spec.aggregate == SloSpec::Aggregate::kP50   ? v.p50
                        : spec.aggregate == SloSpec::Aggregate::kP99 ? v.p99
                                                                     : v.mean;
        break;
      }
      case SloSpec::Aggregate::kRatePerSecond: {
        const TimeSeriesWindow::RateStats r = window.rate_at(spec.series, now);
        eval.samples = r.samples;
        eval.observed = r.per_second;
        break;
      }
      case SloSpec::Aggregate::kRatio: {
        const TimeSeriesWindow::RateStats num =
            window.rate_at(spec.series, now);
        const TimeSeriesWindow::RateStats den =
            window.rate_at(spec.denominator, now);
        eval.samples = den.samples;
        eval.observed = den.total > 0.0 ? num.total / den.total : 0.0;
        break;
      }
    }
    eval.burn = eval.observed / spec.target;
    if (eval.samples < spec.min_samples || eval.burn <= 1.0)
      eval.state = SloState::kOk;
    else if (eval.burn < spec.breach_burn)
      eval.state = SloState::kDegraded;
    else
      eval.state = SloState::kBreached;
    report.worst = std::max(report.worst, eval.state);
    report.targets.push_back(std::move(eval));
  }
  return report;
}

void SloTracker::export_to(const SloReport& report, MetricsSnapshot& snap) {
  snap.gauges["slo.state"] = static_cast<double>(report.worst);
  for (const SloEvaluation& eval : report.targets) {
    const std::string base = "slo." + eval.name;
    snap.gauges[base + ".observed"] = eval.observed;
    snap.gauges[base + ".target"] = eval.target;
    snap.gauges[base + ".burn"] = eval.burn;
    snap.gauges[base + ".state"] = static_cast<double>(eval.state);
  }
}

}  // namespace sparcle::obs
