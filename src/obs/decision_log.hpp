#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

/// \file decision_log.hpp
/// A structured record of every admission-control decision the scheduler
/// takes: admissions, rejections, and individual path additions, each with
/// a human-readable reason ("QoE unmet", "no feasible task-assignment
/// path", ...).  The log is the audit trail that lets an operator answer
/// "why was this application rejected?" without re-running the scheduler.
/// Schema is documented in docs/observability.md.
///
/// Rows recorded while a request trace id is active on the calling thread
/// (obs::ScopedTrace) carry that id in the trailing `trace` column, tying
/// the decision back to the service request that caused it.  Storage is
/// bounded by set_capacity(): past the cap the *oldest* row is dropped (a
/// long-running daemon keeps the recent audit window); seq stays globally
/// monotone across drops so gaps are detectable.

namespace sparcle::obs {

enum class DecisionKind : std::uint8_t {
  kAdmit,    ///< application admitted
  kReject,   ///< application rejected
  kPathAdd,  ///< one task-assignment path provisioned for an application
  kRepair,   ///< one application touched by a failure-repair pass
  /// A request bounced at the placement-service queue *before* reaching the
  /// scheduler: the bounded queue was full (reason `queue_full ...`) or the
  /// request's deadline passed while it waited (reason
  /// `deadline_exceeded ...`).  docs/service.md covers the backpressure
  /// semantics.
  kQueueReject,
  /// A request rejected at the wire layer before it could be parsed into a
  /// service request: oversized NDJSON line or binary frame, bad magic /
  /// version byte, or a malformed frame body.  The peer receives a
  /// structured error response (not a silent connection drop); the reason
  /// column records the wire-level cause.  docs/wire.md covers the framing
  /// rules these rejects enforce.
  kWireReject,
  /// A federation-router decision on one arrival (docs/federation.md):
  /// routed to its home shard, admitted cross-shard via two-phase
  /// reserve-commit, aborted at reserve/commit, or rejected by the γ
  /// pre-gate.  The reason column records the route taken and the shards
  /// touched.
  kFederate,
};

/// Symbolic name of a decision kind (`admit`, `reject`, `path_add`,
/// `repair`, `queue_reject`, `wire_reject`, `federate`) as written into
/// the CSV `kind` column.
const char* to_string(DecisionKind kind);

struct Decision {
  std::uint64_t seq{0};  ///< global decision order (0-based, drop-proof)
  DecisionKind kind{DecisionKind::kAdmit};
  std::string app;       ///< application name
  std::string qoe;       ///< "BE" or "GR"
  std::string reason;    ///< never empty
  double rate{0.0};          ///< allocated / standalone rate
  double availability{0.0};  ///< achieved availability at decision time
  std::size_t paths{0};      ///< path count at decision time
  std::uint64_t trace{0};    ///< originating request trace id (0 = none)
};

/// Thread-safe append-only decision record with CSV export.
class DecisionLog {
 public:
  static constexpr const char* kCsvHeader =
      "seq,kind,app,qoe,reason,rate,availability,paths,trace";

  /// Default row capacity before oldest-drop.
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  /// Appends one row, stamping it with the calling thread's active trace
  /// id (obs::current_trace(); 0 when no request scope is open).
  void record(DecisionKind kind, std::string app, std::string qoe,
              std::string reason, double rate, double availability,
              std::size_t paths);

  /// Caps stored rows; excess recordings drop the oldest row.  A cap of 0
  /// drops everything.  Shrinks eagerly.  Drops are counted locally
  /// (dropped()) and on the global `decision_log.dropped` counter when a
  /// metrics registry is installed.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const;
  /// Rows discarded so far by the capacity cap.
  std::uint64_t dropped() const;

  std::vector<Decision> snapshot() const;
  std::size_t size() const;

  /// Header plus one row per decision; fields containing commas or quotes
  /// are double-quote escaped per RFC 4180.
  void write_csv(std::ostream& out) const;
  std::string to_csv() const;

 private:
  mutable std::mutex mu_;
  std::deque<Decision> rows_;
  std::uint64_t seq_{0};
  std::size_t capacity_{kDefaultCapacity};
  std::uint64_t dropped_{0};
};

}  // namespace sparcle::obs
