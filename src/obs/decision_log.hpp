#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

/// \file decision_log.hpp
/// A structured record of every admission-control decision the scheduler
/// takes: admissions, rejections, and individual path additions, each with
/// a human-readable reason ("QoE unmet", "no feasible task-assignment
/// path", ...).  The log is the audit trail that lets an operator answer
/// "why was this application rejected?" without re-running the scheduler.
/// Schema is documented in docs/observability.md.

namespace sparcle::obs {

enum class DecisionKind : std::uint8_t {
  kAdmit,    ///< application admitted
  kReject,   ///< application rejected
  kPathAdd,  ///< one task-assignment path provisioned for an application
  kRepair,   ///< one application touched by a failure-repair pass
  /// A request bounced at the placement-service queue *before* reaching the
  /// scheduler: the bounded queue was full (reason `queue_full ...`) or the
  /// request's deadline passed while it waited (reason
  /// `deadline_exceeded ...`).  docs/service.md covers the backpressure
  /// semantics.
  kQueueReject,
};

/// Symbolic name of a decision kind (`admit`, `reject`, `path_add`,
/// `repair`, `queue_reject`) as written into the CSV `kind` column.
const char* to_string(DecisionKind kind);

struct Decision {
  std::uint64_t seq{0};  ///< global decision order (0-based)
  DecisionKind kind{DecisionKind::kAdmit};
  std::string app;       ///< application name
  std::string qoe;       ///< "BE" or "GR"
  std::string reason;    ///< never empty
  double rate{0.0};          ///< allocated / standalone rate
  double availability{0.0};  ///< achieved availability at decision time
  std::size_t paths{0};      ///< path count at decision time
};

/// Thread-safe append-only decision record with CSV export.
class DecisionLog {
 public:
  static constexpr const char* kCsvHeader =
      "seq,kind,app,qoe,reason,rate,availability,paths";

  void record(DecisionKind kind, std::string app, std::string qoe,
              std::string reason, double rate, double availability,
              std::size_t paths);

  std::vector<Decision> snapshot() const;
  std::size_t size() const;

  /// Header plus one row per decision; fields containing commas or quotes
  /// are double-quote escaped per RFC 4180.
  void write_csv(std::ostream& out) const;
  std::string to_csv() const;

 private:
  mutable std::mutex mu_;
  std::vector<Decision> rows_;
};

}  // namespace sparcle::obs
