#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/time_series.hpp"

/// \file slo.hpp
/// Declarative service-level objectives evaluated over a
/// TimeSeriesWindow.  Each SloSpec names a window series, an aggregate
/// (p50/p99/mean/rate/ratio), and a ceiling; evaluation reports the
/// observed value, the **burn rate** (observed / target — how fast the
/// error budget is being consumed; 1.0 = exactly on target), and a
/// three-state health verdict:
///
///   - `ok`        burn <= 1 (within target), or too few samples to judge
///   - `degraded`  1 < burn < breach_burn (over target, budget burning)
///   - `breached`  burn >= breach_burn (default 2x: budget gone)
///
/// The placement service installs two default objectives (admission p99
/// latency, reject-rate ceiling — ServiceOptions) and surfaces the worst
/// state in its health document and `slo.*` exposition family; see
/// docs/observability.md.

namespace sparcle::obs {

enum class SloState : std::uint8_t { kOk, kDegraded, kBreached };

/// Symbolic name of an SLO state (`ok`, `degraded`, `breached`).
const char* to_string(SloState state);

/// One declarative objective over a window series.
struct SloSpec {
  /// Aggregate of the window series the target constrains.
  enum class Aggregate {
    kP50,            ///< value series p50
    kP99,            ///< value series p99
    kMean,           ///< value series mean
    kRatePerSecond,  ///< rate series events/second
    kRatio,          ///< rate series total / `denominator` series total
  };

  std::string name;          ///< objective name (`admission_p99_us`)
  std::string series;        ///< window series the aggregate reads
  Aggregate aggregate{Aggregate::kP99};
  std::string denominator;   ///< kRatio only: denominator rate series
  double target{0.0};        ///< ceiling; breach when observed exceeds it
  double breach_burn{2.0};   ///< burn at/over this => kBreached
  std::uint64_t min_samples{1};  ///< below this the verdict is kOk (no data)
};

/// Evaluation of one objective at a point in time.
struct SloEvaluation {
  std::string name;
  std::string series;
  double observed{0.0};
  double target{0.0};
  double burn{0.0};          ///< observed / target
  std::uint64_t samples{0};  ///< window samples the aggregate saw
  SloState state{SloState::kOk};
};

/// Evaluation of every tracked objective; `worst` aggregates the states.
struct SloReport {
  SloState worst{SloState::kOk};
  std::vector<SloEvaluation> targets;

  /// The evaluation named `name`, or nullptr.
  const SloEvaluation* find(const std::string& name) const;
};

/// Holds the objective set and evaluates it against a window.  add() at
/// setup, evaluate() from any thread.
class SloTracker {
 public:
  /// Registers an objective.  Specs with target <= 0 are ignored (the
  /// service options use 0 as "objective disabled").
  void add(SloSpec spec);

  std::size_t size() const;

  /// Evaluates every objective against `window` at `now`.
  SloReport evaluate(const TimeSeriesWindow& window,
                     TimeSeriesWindow::Clock::time_point now =
                         TimeSeriesWindow::Clock::now()) const;

  /// Materializes `report` into `snap` as gauges `slo.<name>.observed` /
  /// `.target` / `.burn` / `.state` (0=ok 1=degraded 2=breached) plus the
  /// aggregate `slo.state`.
  static void export_to(const SloReport& report, MetricsSnapshot& snap);

 private:
  mutable std::mutex mu_;
  std::vector<SloSpec> specs_;
};

}  // namespace sparcle::obs
