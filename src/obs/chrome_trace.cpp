#include "obs/chrome_trace.hpp"

#include <functional>
#include <ostream>
#include <sstream>
#include <thread>

namespace sparcle::obs {

namespace {

/// Small stable per-thread id (hashing thread::id keeps the JSON compact).
std::uint64_t tid_token() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      default: out << c;
    }
  }
}

}  // namespace

void ChromeTraceCollector::record_complete(std::string name, double ts_us,
                                           double dur_us) {
  const std::uint64_t tid = tid_token();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({std::move(name), ts_us, dur_us, tid});
}

std::size_t ChromeTraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ChromeTraceCollector::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \"";
    json_escape(out, e.name);
    std::ostringstream ts, dur;
    ts.precision(17);
    dur.precision(17);
    ts << e.ts_us;
    dur << e.dur_us;
    out << "\", \"cat\": \"sparcle\", \"ph\": \"X\", \"ts\": " << ts.str()
        << ", \"dur\": " << dur.str() << ", \"pid\": 1, \"tid\": " << e.tid
        << "}";
    first = false;
  }
  out << (first ? "" : "\n") << "]}\n";
}

std::string ChromeTraceCollector::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace sparcle::obs
