#include "obs/chrome_trace.hpp"

#include <functional>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"

namespace sparcle::obs {

namespace {

/// Small stable per-thread id (hashing thread::id keeps the JSON compact).
std::uint64_t tid_token() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      default: out << c;
    }
  }
}

}  // namespace

void ChromeTraceCollector::push_locked(Event e) {
  std::uint64_t newly_dropped = 0;
  if (capacity_ == 0) {
    newly_dropped = 1;
  } else {
    while (events_.size() >= capacity_) {
      events_.pop_front();
      ++newly_dropped;
    }
    events_.push_back(std::move(e));
  }
  dropped_ += newly_dropped;
  if (newly_dropped > 0) {
    if (MetricsRegistry* reg = metrics(); reg != nullptr)
      reg->counter("trace.dropped").add(newly_dropped);
  }
}

void ChromeTraceCollector::record_complete(std::string name, double ts_us,
                                           double dur_us,
                                           std::uint64_t flow_id) {
  const std::uint64_t tid = tid_token();
  std::lock_guard<std::mutex> lock(mu_);
  push_locked({std::move(name), ts_us, dur_us, tid, flow_id, 'X'});
}

void ChromeTraceCollector::record_flow(std::string name, double ts_us,
                                       bool start, std::uint64_t flow_id) {
  if (flow_id == 0) return;
  const std::uint64_t tid = tid_token();
  std::lock_guard<std::mutex> lock(mu_);
  push_locked({std::move(name), ts_us, 0.0, tid, flow_id, start ? 's' : 'f'});
}

void ChromeTraceCollector::set_capacity(std::size_t cap) {
  std::uint64_t newly_dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = cap;
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++newly_dropped;
    }
    dropped_ += newly_dropped;
  }
  if (newly_dropped > 0) {
    if (MetricsRegistry* reg = metrics(); reg != nullptr)
      reg->counter("trace.dropped").add(newly_dropped);
  }
}

std::size_t ChromeTraceCollector::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::uint64_t ChromeTraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t ChromeTraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ChromeTraceCollector::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \"";
    json_escape(out, e.name);
    std::ostringstream ts, dur;
    ts.precision(17);
    dur.precision(17);
    ts << e.ts_us;
    dur << e.dur_us;
    out << "\", \"cat\": \"sparcle\", \"ph\": \"" << e.ph
        << "\", \"ts\": " << ts.str();
    if (e.ph == 'X') out << ", \"dur\": " << dur.str();
    out << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.flow != 0) {
      // Flow markers need "id"; a finish marker binds to the enclosing
      // slice ("bp": "e").  Complete events carry the id in args so an
      // operator can filter one request's spans by trace id.
      if (e.ph == 'X')
        out << ", \"args\": {\"trace_id\": " << e.flow << "}";
      else
        out << ", \"id\": " << e.flow
            << (e.ph == 'f' ? ", \"bp\": \"e\"" : "");
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n") << "]}\n";
}

std::string ChromeTraceCollector::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace sparcle::obs
