#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/decision_log.hpp"
#include "obs/metrics.hpp"

/// \file obs.hpp
/// Process-wide observability context.  Production code (assigner,
/// scheduler, simulator) reads the installed sinks through the accessors
/// below; when nothing is installed every accessor is a single relaxed
/// atomic load returning nullptr and all instrumentation collapses to
/// no-ops — the overhead budget (tools/bench_assign.sh gates 3% on
/// BM_SparcleAssignNetworkSize/32) is enforced against that state.
///
/// Ownership stays with the installer: install() stores raw pointers and
/// the objects must outlive the instrumented calls (the CLI installs
/// stack-allocated sinks around the scheduler run and uninstalls before
/// they go out of scope).  Installation is process-global, so concurrent
/// schedulers share sinks — every sink type is itself thread-safe.

namespace sparcle::obs {

/// The sinks to install; any pointer may be null to disable that facet.
struct Observability {
  MetricsRegistry* metrics{nullptr};
  ChromeTraceCollector* trace{nullptr};
  DecisionLog* decisions{nullptr};
};

namespace detail {
struct Globals {
  std::atomic<MetricsRegistry*> metrics{nullptr};
  std::atomic<ChromeTraceCollector*> trace{nullptr};
  std::atomic<DecisionLog*> decisions{nullptr};
};
Globals& globals();
/// The request trace id active on this thread (0 = none).  Thread-local so
/// sinks can stamp rows/spans without threading an id through every call.
inline thread_local std::uint64_t t_trace_id = 0;
}  // namespace detail

/// The service-request trace id active on the calling thread, or 0 when no
/// request scope is open.  DecisionLog::record and ScopedTimer read this to
/// tag rows and spans automatically.
inline std::uint64_t current_trace() { return detail::t_trace_id; }
inline void set_current_trace(std::uint64_t id) { detail::t_trace_id = id; }

/// RAII trace scope: makes `id` the calling thread's active trace id for
/// the enclosing block, restoring the previous id (usually 0) on exit.
/// Scopes nest; the innermost id wins.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::uint64_t id) : prev_(current_trace()) {
    set_current_trace(id);
  }
  ~ScopedTrace() { set_current_trace(prev_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::uint64_t prev_;
};

/// Installs (replaces) the process-wide sinks.
void install(const Observability& o);
/// Resets every sink to null (instrumentation becomes no-ops again).
void uninstall();

inline MetricsRegistry* metrics() {
  return detail::globals().metrics.load(std::memory_order_relaxed);
}
inline ChromeTraceCollector* trace_collector() {
  return detail::globals().trace.load(std::memory_order_relaxed);
}
inline DecisionLog* decision_log() {
  return detail::globals().decisions.load(std::memory_order_relaxed);
}

/// RAII install for tests and short scopes: installs on construction,
/// restores the previous sinks on destruction.
class ScopedInstall {
 public:
  explicit ScopedInstall(const Observability& o)
      : prev_{metrics(), trace_collector(), decision_log()} {
    install(o);
  }
  ~ScopedInstall() { install(prev_); }
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  Observability prev_;
};

/// RAII phase timer.  While a trace collector is installed the span lands
/// in the Chrome trace; while a metrics registry is installed the duration
/// is observed into the histogram "<name>.us" (decade buckets, µs).  With
/// neither installed the constructor does one pointer load each and the
/// destructor returns immediately — no clock reads, no allocation.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : trace_(trace_collector()), metrics_(metrics()), name_(name) {
    if (trace_ != nullptr || metrics_ != nullptr)
      start_ = ChromeTraceCollector::Clock::now();
  }
  ~ScopedTimer() {
    if (trace_ == nullptr && metrics_ == nullptr) return;
    const auto end = ChromeTraceCollector::Clock::now();
    const double dur_us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    if (trace_ != nullptr)
      trace_->record_complete(name_, trace_->to_origin_us(start_), dur_us,
                              current_trace());
    if (metrics_ != nullptr)
      metrics_->histogram(std::string(name_) + ".us",
                          default_time_bounds_us())
          .observe(dur_us);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ChromeTraceCollector* trace_;
  MetricsRegistry* metrics_;
  const char* name_;
  ChromeTraceCollector::Clock::time_point start_;
};

}  // namespace sparcle::obs
