#include "federation/check.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace sparcle::federation {

namespace {

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

}  // namespace

std::string ConservationReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << "\n";
    os << violations[i];
  }
  return os.str();
}

ConservationReport check_federation(FederatedService& fed,
                                    const check::CheckOptions& options) {
  ConservationReport report;
  const auto add = [&report](std::string v) {
    report.violations.push_back(std::move(v));
  };
  const ShardPlan& plan = fed.plan();
  const Network& net = fed.network();
  const double tol = options.tolerance;

  // Layer 1: every shard passes the single-scheduler invariant checker;
  // grab each shard's reservation table and failed set while we hold the
  // scheduling thread.
  std::vector<std::map<std::string, Scheduler::ExternalReservation>> ext(
      fed.shard_count());
  std::vector<std::set<ElementKey>> shard_failed(fed.shard_count());
  for (std::size_t s = 0; s < fed.shard_count(); ++s) {
    check::CheckReport shard_report;
    const bool ran = fed.shard(s).inspect([&](const Scheduler& sc) {
      shard_report = check::check_scheduler_state(sc, options);
      ext[s] = sc.external_reservations();
      shard_failed[s] = sc.failed_elements();
    });
    if (!ran) {
      add("shard " + std::to_string(s) + ": not inspectable (stopping)");
      continue;
    }
    for (const check::Violation& v : shard_report.violations)
      add("shard " + std::to_string(s) + ": " +
          std::string(check::to_string(v.code)) + ": " + v.detail);
  }

  const std::map<std::string, CrossApp> cross = fed.cross_apps();

  // Layer 2a: every shard hold belongs to a committed cross app that
  // lists this shard, and the held load matches the app's committed load
  // restricted to the shard, element by element.
  const std::size_t resources = net.schema().size();
  for (std::size_t s = 0; s < fed.shard_count(); ++s) {
    const Shard& shard = plan.shards[s];
    for (const auto& [name, res] : ext[s]) {
      const auto it = cross.find(name);
      if (it == cross.end()) {
        add("shard " + std::to_string(s) + ": orphan external reservation '" +
            name + "' (leaked reserve: no such cross-shard app)");
        continue;
      }
      const CrossApp& ca = it->second;
      if (std::find(ca.shards.begin(), ca.shards.end(), s) ==
          ca.shards.end())
        add("shard " + std::to_string(s) + ": reservation '" + name +
            "' but the cross app does not list this shard");
      if (!res.committed)
        add("shard " + std::to_string(s) + ": reservation '" + name +
            "' still pending on a quiescent federation (leaked two-phase)");
      if (!close(res.rate, 1.0, tol))
        add("shard " + std::to_string(s) + ": reservation '" + name +
            "' rate " + std::to_string(res.rate) + " != 1");
      for (const ElementKey& local : res.elements) {
        if (local.kind == ElementKey::Kind::kNcp) {
          const NcpId global =
              shard.global_ncps.at(static_cast<std::size_t>(local.index));
          for (std::size_t r = 0; r < resources; ++r) {
            const double held = res.load.ncp_load(local.index)[r];
            const double committed = ca.load.ncp_load(global)[r];
            if (!close(held, committed, tol))
              add("shard " + std::to_string(s) + ": reservation '" + name +
                  "' holds " + std::to_string(held) + " of " +
                  net.schema().name(r) + " on ncp " + net.ncp(global).name +
                  " but the cross app committed " + std::to_string(committed));
          }
        } else {
          const LinkId global =
              shard.global_links.at(static_cast<std::size_t>(local.index));
          const double held = res.load.link_load(local.index);
          const double committed = ca.load.link_load(global);
          if (!close(held, committed, tol))
            add("shard " + std::to_string(s) + ": reservation '" + name +
                "' holds " + std::to_string(held) + " bandwidth on link " +
                net.link(global).name + " but the cross app committed " +
                std::to_string(committed));
        }
      }
    }
  }

  // Layer 2b: every cross app holds a reservation on every shard it
  // lists (a missing hold means a commit landed without its reserve, or
  // a release ran on only part of the shard set).
  for (const auto& [name, ca] : cross)
    for (const std::size_t s : ca.shards)
      if (s >= ext.size() || !ext[s].contains(name))
        add("cross app '" + name + "' lists shard " + std::to_string(s) +
            " but that shard holds no reservation for it");

  // Layer 3: the planning residual equals full capacity minus the
  // recomputed sum of committed cross loads, failed elements zeroed.
  LoadMap cross_total = LoadMap::zeros(net);
  for (const auto& [name, ca] : cross)
    cross_total.add_scaled_at(ca.elements, ca.load, 1.0);
  const std::set<ElementKey> failed = fed.failed_elements();
  const CapacitySnapshot residual = fed.plan_residual();
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const bool dead = failed.contains(ElementKey::ncp(j));
    for (std::size_t r = 0; r < resources; ++r) {
      const double expected =
          dead ? 0.0
               : std::max(0.0, net.ncp(j).capacity[r] -
                                   cross_total.ncp_load(j)[r]);
      if (!close(residual.ncp(j)[r], expected, tol))
        add("plan residual drift on ncp " + net.ncp(j).name + " " +
            net.schema().name(r) + ": have " +
            std::to_string(residual.ncp(j)[r]) + ", expected " +
            std::to_string(expected));
    }
  }
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    const bool dead = failed.contains(ElementKey::link(l));
    const double expected =
        dead ? 0.0
             : std::max(0.0, net.link(l).bandwidth - cross_total.link_load(l));
    if (!close(residual.link(l), expected, tol))
      add("plan residual drift on link " + net.link(l).name + ": have " +
          std::to_string(residual.link(l)) + ", expected " +
          std::to_string(expected));
  }

  // Layer 4: boundary links (owned by no shard) stay within capacity.
  for (const LinkId l : plan.boundary_links) {
    const double cap = net.link(l).bandwidth;
    const double used = cross_total.link_load(l);
    if (used > cap + tol * (1.0 + cap))
      add("boundary link " + net.link(l).name + " overcommitted: " +
          std::to_string(used) + " > capacity " + std::to_string(cap));
  }

  return report;
}

}  // namespace sparcle::federation
