#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/provisioning.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "federation/shard_plan.hpp"
#include "model/application.hpp"
#include "model/capacity.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"
#include "obs/metrics.hpp"
#include "service/scheduler_service.hpp"

/// \file federation.hpp
/// Federated placement: one site partitioned into regional scheduler
/// shards, each served by its own service::SchedulerService, with a
/// routing-and-admission layer on top (docs/federation.md).
///
/// The scaling problem: a single global Scheduler serializes every
/// admission through one proportional-fair re-solve over the whole site,
/// so admission throughput *falls* as the site grows.  The federation
/// splits the site along region labels (ShardPlan), runs the unchanged
/// per-shard admission pipeline concurrently, and pays a coordination
/// protocol only for the (rare, locality-dependent) arrivals whose pinned
/// sources and sinks span shards:
///
///   - shard-local arrivals are routed straight to their home shard and
///     admitted by the stock pipeline — no cross-shard synchronization;
///   - cross-shard arrivals are planned optimistically by the federation
///     router against its own residual snapshot of the *whole* site
///     (boundary links included — no shard owns those), then admitted via
///     two-phase reserve/commit: every touched shard takes an atomic
///     capacity hold (Scheduler::reserve_external, validated against the
///     shard's authoritative residual), and the placement commits only if
///     *all* shards accepted — any refusal releases every hold, leaving
///     no residue (the per-shard invariant checker plus the federation
///     conservation check in federation/check.hpp prove it).

namespace sparcle::federation {

/// Tuning knobs of the federated placement layer.
struct FederationOptions {
  /// Number of regional shards (ShardPlan is built with make_shard_plan:
  /// region labels when present, balanced graph cut otherwise).  1 is the
  /// degenerate single-scheduler federation (useful as a baseline).
  std::size_t shards{2};
  /// Options for every per-shard Scheduler (policy plugin included).
  SchedulerOptions scheduler{};
  /// Options for every per-shard SchedulerService.
  service::ServiceOptions service{};
  /// Fraction of each path's standalone bottleneck rate reserved for a
  /// *cross-shard* Best-Effort application.  Cross-shard BE apps cannot
  /// join any single shard's proportional-fair solve (their paths span
  /// solvers), so the federation pins them a fixed-rate hold instead —
  /// conservative by design; shard-local BE apps keep exact PF shares.
  double be_rate_fraction{0.25};
  /// Cap on task-assignment paths provisioned for one cross-shard app.
  std::size_t max_paths{2};
  /// Test hook fired after every touched shard accepted the reserve phase
  /// and before any commit is sent, with the application name.  Throwing
  /// from the hook aborts the admission between the phases (all holds are
  /// released) — the two-phase edge-case tests drive abort/churn races
  /// through this seam.  Runs on the federation router thread.
  std::function<void(const std::string&)> on_reserved{};
};

/// One committed cross-shard application, in federation (full-network)
/// coordinates.  The per-shard fragments of `load` are held as external
/// reservations named after the app inside each touched shard.
struct CrossApp {
  Application app;                 ///< the admitted request (global pins)
  std::vector<PathInfo> paths;     ///< committed paths on the full network
  std::vector<double> path_rates;  ///< committed rate per path
  double total_rate{0.0};          ///< Σ path_rates
  double availability{0.0};        ///< achieved availability estimate
  std::vector<std::size_t> shards;      ///< touched shard indices, ascending
  LoadMap load;                    ///< Σ_k path_rates[k] · paths[k].load
  std::vector<ElementKey> elements;     ///< distinct global elements of load
};

/// The federated placement service: service::PlacementService over
/// regional shards.  All public methods are thread-safe.  Construction
/// spawns one SchedulerService per shard plus one federation router
/// thread; destruction stops all of them.
class FederatedService : public service::PlacementService {
 public:
  /// Partitions `net` into options.shards regional shards and starts a
  /// SchedulerService on each.  Throws std::invalid_argument on an
  /// impossible partition (see make_shard_plan).
  explicit FederatedService(Network net, FederationOptions options = {});
  ~FederatedService() override;

  FederatedService(const FederatedService&) = delete;
  FederatedService& operator=(const FederatedService&) = delete;

  // --- service::PlacementService ---
  std::future<service::ServiceResult> submit(Application app) override;
  std::future<service::ServiceResult> remove(std::string app_name) override;
  void submit_async(Application app, Completion on_done) override;
  void remove_async(std::string app_name, Completion on_done) override;
  /// Aggregated view: every shard's placed apps (admission order within a
  /// shard) followed by the committed cross-shard apps; version is the sum
  /// of shard versions plus the federation's own mutation counter.
  std::shared_ptr<const service::ServiceSnapshot> snapshot() const override;
  /// Blocks until the router queue is empty and every shard drained.
  void drain() override;
  /// Stops the router, then every shard.  Idempotent.
  void stop() override;
  /// Shard counters summed, plus the federation's own `federation.*`
  /// instruments merged into ServiceStats::metrics.
  service::ServiceStats stats() const override;
  obs::MetricsRegistry& registry() override { return registry_; }
  const obs::MetricsRegistry& registry() const override { return registry_; }
  /// Federation registry plus the per-shard registries summed by
  /// instrument name, rendered as one exposition.
  std::string prometheus_text() const override;
  std::map<std::string, std::string> health_fields() const override;
  /// The full site network (not one shard).
  const Network& network() const override { return net_; }

  // --- federation surface ---
  /// The immutable partition this service runs on.
  const ShardPlan& plan() const { return plan_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Shard `s`'s admission service (tests drive inspect() through this).
  service::SchedulerService& shard(std::size_t s) { return *shards_.at(s); }
  const service::SchedulerService& shard(std::size_t s) const {
    return *shards_.at(s);
  }

  /// Copy of the committed cross-shard app table (name → CrossApp).
  std::map<std::string, CrossApp> cross_apps() const;
  /// Copy of the federation planning residual: full capacities minus the
  /// committed cross-shard loads, failed elements zeroed.  Optimistic —
  /// shard-internal GR load is invisible here by design (the reserve
  /// phase is the authoritative check); boundary links are exact.
  CapacitySnapshot plan_residual() const;
  /// Elements currently failed from the federation's point of view
  /// (everything injected through mark_failed, boundary links included).
  std::set<ElementKey> failed_elements() const;

  /// Fails element `e` (global id): forwarded to the owning shard's
  /// scheduler (blocking until applied); boundary links are federation-
  /// owned and only update the planning residual.  Idempotent.
  void mark_failed(ElementKey e);
  /// Clears a mark_failed; same routing.
  void mark_recovered(ElementKey e);
  /// Runs the owning shard's incremental repair pass for `e` (no-op for
  /// boundary links — cross-shard apps hold fixed reservations that are
  /// never re-provisioned; remove and resubmit to re-route them).
  void repair(ElementKey e);

 private:
  /// Per-shard slice of one cross-shard app's load, in shard-local ids.
  struct Fragment {
    LoadMap load;                      ///< shard-net shape, rate-scaled
    std::vector<ElementKey> elements;  ///< distinct local elements
  };

  /// The union sub-network of one touched-shard set: those shards' NCPs,
  /// their intra-shard links, and every boundary link with both endpoints
  /// inside the union.  Cross-shard planning provisions on this instead
  /// of the full site, so the router's cost scales with the regions an
  /// app actually spans rather than the whole federation — on a 2048-NCP
  /// site a two-region app plans on a 128-node graph.
  struct UnionSubnet {
    Network net;                          ///< the induced sub-graph
    std::vector<NcpId> to_global_ncp;     ///< sub node id -> full-site id
    std::vector<LinkId> to_global_link;   ///< sub link id -> full-site id
    std::map<NcpId, NcpId> to_sub_ncp;    ///< full-site node id -> sub id
  };

  static constexpr std::size_t kCrossRoute = static_cast<std::size_t>(-1);

  /// Routes one arrival: home shard when every pin lands in one shard,
  /// otherwise a router job for the two-phase path.  Never blocks.
  void dispatch_submit(Application app, Completion on_done);
  /// The two-phase cross-shard admission (router thread).
  void cross_admit(Application app, Completion on_done);
  /// Cross-shard removal (router thread): release every hold, return the
  /// load to the planning residual.
  void cross_remove(const std::string& name, Completion on_done);
  /// Releases the named hold on the given shards, ignoring failures
  /// (unknown names are no-ops) — the abort path.
  void release_on_shards(const std::string& name,
                         const std::vector<std::size_t>& shards);
  /// Rebuilds plan_residual_ = full capacities − cross_load_, failed
  /// elements zeroed.  Caller holds cross_mu_.
  void rebuild_plan_residual();
  /// Translates an application's pinned NCPs to shard-local ids.
  Application to_local(const Application& app, std::size_t s) const;
  /// The (lazily built, cached) union sub-network for an ascending
  /// touched-shard index set.  Router thread only — the cache is
  /// unsynchronized by design.
  const UnionSubnet& union_subnet(const std::vector<std::size_t>& shards);
  /// Ascending distinct shard indices the app's pins land in.
  std::vector<std::size_t> pinned_shards(const Application& app) const;
  void enqueue_job(std::function<void()> job);
  void router_loop();
  void bump(const char* name, std::uint64_t n = 1);
  /// Records a kFederate decision-log row when a log is installed.
  void log_decision(const std::string& app, bool guaranteed,
                    const std::string& reason, double rate,
                    double availability, std::size_t paths);
  /// Completes `on_done` with a rejection carrying `reason`.
  static void complete_rejected(const Completion& on_done,
                                const std::string& reason);
  /// Wraps a cross-request completion so the result carries the wire's
  /// request-tracing contract (trace_id / queue_us / apply_us /
  /// latency_us).  Call at job start on the router thread; `enqueued` is
  /// when the request entered the router queue.
  Completion stamp_timeline(Completion on_done,
                            std::chrono::steady_clock::time_point enqueued);

  Network net_;      ///< the full site
  ShardPlan plan_;   ///< immutable partition of net_
  FederationOptions options_;
  std::vector<std::unique_ptr<service::SchedulerService>> shards_;
  SparcleAssigner assigner_;  ///< assigner driving cross planning

  /// union_subnet() cache, keyed by the ascending touched-shard set.
  /// Touched only from the router thread, so no lock guards it.
  std::map<std::vector<std::size_t>, UnionSubnet> subnets_;

  obs::MetricsRegistry registry_;  ///< federation.* instruments

  /// Trace ids for requests the *federation* answers (the cross-shard
  /// path); shard-local requests carry their shard service's ids.
  std::atomic<std::uint64_t> next_trace_{1};

  /// Route table: app name → home shard index, or kCrossRoute.  Guards
  /// duplicate names across shards and directs removals.
  mutable std::mutex route_mu_;
  std::map<std::string, std::size_t> route_;

  /// Cross-shard state: committed apps, their aggregate load, the
  /// planning residual derived from it, and the failed-element set.
  mutable std::mutex cross_mu_;
  std::map<std::string, CrossApp> cross_;
  LoadMap cross_load_;
  CapacitySnapshot plan_residual_;
  std::set<ElementKey> failed_;
  std::uint64_t cross_version_{0};  ///< bumps on every cross mutation

  /// Router: one thread serializing cross-shard admissions/removals.
  mutable std::mutex router_mu_;
  std::condition_variable router_cv_;   ///< wakes the router thread
  std::condition_variable idle_cv_;     ///< wakes drain()ers
  std::deque<std::function<void()>> jobs_;
  bool router_busy_{false};
  bool stopping_{false};
  std::thread router_;  ///< last member: joins before teardown
};

}  // namespace sparcle::federation
