#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/network.hpp"

/// \file shard_plan.hpp
/// Partitioning a dispersed-computing site into regional scheduler shards
/// (docs/federation.md).  A ShardPlan slices one Network into disjoint
/// sub-networks — one per shard, each owning a set of NCPs and every link
/// whose endpoints both fall inside it — plus the *boundary links* that
/// cross shards and therefore belong to no shard: only the federation
/// layer routes over those, so its planning snapshot is authoritative for
/// them.  Two builders: region-label grouping (workload::soak_site stamps
/// `r<g>` labels) and a multi-seed BFS balanced graph cut for unlabeled
/// networks, following the decentralized resource-mapping direction of
/// Asaduzzaman & Maheswaran (arXiv 0903.4392).

namespace sparcle::federation {

/// One regional shard of a federated site.
struct Shard {
  /// The shard sub-network: its NCPs (names, capacities, fail
  /// probabilities, and region labels preserved) plus every intra-shard
  /// link, with dense local ids.
  Network net;
  /// Local NCP id -> global NCP id (ascending: locals preserve the
  /// global ordering).
  std::vector<NcpId> global_ncps;
  /// Local link id -> global link id (ascending).
  std::vector<LinkId> global_links;
  /// Region labels grouped into this shard, sorted (empty for graph-cut
  /// plans over unlabeled networks).
  std::vector<std::string> regions;
};

/// A complete partition of a site into shards.  Built once per
/// FederatedService; immutable afterwards.
struct ShardPlan {
  std::vector<Shard> shards;
  /// Global NCP id -> owning shard index.
  std::vector<std::size_t> shard_of_ncp;
  /// Global NCP id -> local id within its owning shard.
  std::vector<NcpId> local_ncp;
  /// Global link id -> owning shard index, or kBoundary when the
  /// endpoints live in different shards.
  std::vector<std::size_t> shard_of_link;
  /// Global link id -> local id within its owning shard (undefined for
  /// boundary links).
  std::vector<LinkId> local_link;
  /// Global ids of every boundary link, ascending.
  std::vector<LinkId> boundary_links;

  /// Sentinel in shard_of_link: the link crosses shards.
  static constexpr std::size_t kBoundary = static_cast<std::size_t>(-1);

  std::size_t shard_count() const { return shards.size(); }
  /// True when global link `l` crosses shards.
  bool is_boundary(LinkId l) const {
    return shard_of_link.at(static_cast<std::size_t>(l)) == kBoundary;
  }
};

/// Partitions by region label: regions are sorted shortlex (by label
/// length, then lexicographically — "r2" before "r10") and dealt in
/// contiguous balanced blocks, so every shard owns at least one whole
/// region when `shards` <= region count and numerically-suffixed region
/// schemes keep *neighboring* regions in the same shard (on a backbone
/// ring like workload::soak_site this makes each shard's sub-network a
/// connected chain of regions instead of a scatter of islands).  Throws
/// std::invalid_argument when any NCP is unlabeled, `shards` is 0, or
/// `shards` exceeds the region count.
ShardPlan plan_by_region(const Network& net, std::size_t shards);

/// Partitions an arbitrary (connected or not) network into `shards`
/// balanced parts by multi-seed BFS: greedy farthest-point seeding, then
/// round-robin frontier growth so parts stay within one node of each
/// other until frontiers collide.  Deterministic.  Throws
/// std::invalid_argument when `shards` is 0 or exceeds the NCP count.
ShardPlan plan_by_graph_cut(const Network& net, std::size_t shards);

/// Picks the builder automatically: region grouping when every NCP
/// carries a region label and at least `shards` distinct labels exist,
/// the graph cut otherwise.
ShardPlan make_shard_plan(const Network& net, std::size_t shards);

}  // namespace sparcle::federation
