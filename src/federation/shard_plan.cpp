#include "federation/shard_plan.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

namespace sparcle::federation {

namespace {

/// Materializes the plan's index maps and shard sub-networks from a
/// global-NCP -> shard assignment.
ShardPlan assemble(const Network& net, std::size_t shards,
                   const std::vector<std::size_t>& assignment) {
  ShardPlan plan;
  plan.shards.resize(shards);
  plan.shard_of_ncp = assignment;
  plan.local_ncp.assign(net.ncp_count(), kInvalidId);
  plan.shard_of_link.assign(net.link_count(), ShardPlan::kBoundary);
  plan.local_link.assign(net.link_count(), kInvalidId);

  for (std::size_t s = 0; s < shards; ++s)
    plan.shards[s].net = Network(net.schema());

  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const std::size_t s = assignment[static_cast<std::size_t>(j)];
    const Ncp& n = net.ncp(j);
    const NcpId local =
        plan.shards[s].net.add_ncp(n.name, n.capacity, n.fail_prob, n.region);
    plan.local_ncp[static_cast<std::size_t>(j)] = local;
    plan.shards[s].global_ncps.push_back(j);
  }

  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    const Link& lk = net.link(l);
    const std::size_t sa = assignment[static_cast<std::size_t>(lk.a)];
    const std::size_t sb = assignment[static_cast<std::size_t>(lk.b)];
    if (sa != sb) {
      plan.boundary_links.push_back(l);
      continue;
    }
    Shard& shard = plan.shards[sa];
    const NcpId la = plan.local_ncp[static_cast<std::size_t>(lk.a)];
    const NcpId lb = plan.local_ncp[static_cast<std::size_t>(lk.b)];
    const LinkId local =
        lk.directed
            ? shard.net.add_directed_link(lk.name, la, lb, lk.bandwidth,
                                          lk.fail_prob)
            : shard.net.add_link(lk.name, la, lb, lk.bandwidth, lk.fail_prob);
    plan.shard_of_link[static_cast<std::size_t>(l)] = sa;
    plan.local_link[static_cast<std::size_t>(l)] = local;
    shard.global_links.push_back(l);
  }

  // Shard region label sets, sorted and deduplicated.
  for (Shard& shard : plan.shards) {
    for (NcpId local = 0; local < static_cast<NcpId>(shard.net.ncp_count());
         ++local) {
      const std::string& label = shard.net.ncp(local).region;
      if (!label.empty()) shard.regions.push_back(label);
    }
    std::sort(shard.regions.begin(), shard.regions.end());
    shard.regions.erase(
        std::unique(shard.regions.begin(), shard.regions.end()),
        shard.regions.end());
  }
  return plan;
}

}  // namespace

ShardPlan plan_by_region(const Network& net, std::size_t shards) {
  if (shards == 0)
    throw std::invalid_argument("plan_by_region: shards must be positive");
  // Region label -> dense region rank in *shortlex* order (label length,
  // then lexicographic), so "r2" ranks before "r10" and the partition is
  // independent of NCP insertion order.
  std::map<std::string, std::size_t> region_index;
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const std::string& label = net.ncp(j).region;
    if (label.empty())
      throw std::invalid_argument("plan_by_region: NCP '" + net.ncp(j).name +
                                  "' has no region label");
    region_index.emplace(label, 0);
  }
  if (shards > region_index.size())
    throw std::invalid_argument(
        "plan_by_region: " + std::to_string(shards) + " shards but only " +
        std::to_string(region_index.size()) + " region label(s)");
  std::vector<std::string> labels;
  labels.reserve(region_index.size());
  for (const auto& [label, idx] : region_index) labels.push_back(label);
  std::sort(labels.begin(), labels.end(),
            [](const std::string& x, const std::string& y) {
              return x.size() != y.size() ? x.size() < y.size() : x < y;
            });
  for (std::size_t i = 0; i < labels.size(); ++i) region_index[labels[i]] = i;

  // Deal regions in contiguous balanced blocks: region rank i -> shard
  // i*shards/regions keeps shard sizes within one region of each other
  // for equal-sized regions while keeping consecutive regions together —
  // a numbered-region site (r0..rN on a backbone ring) yields shards of
  // adjacent regions rather than islands scattered around the ring.
  const std::size_t regions = labels.size();
  std::vector<std::size_t> assignment(net.ncp_count(), 0);
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    assignment[static_cast<std::size_t>(j)] =
        region_index.at(net.ncp(j).region) * shards / regions;
  return assemble(net, shards, assignment);
}

ShardPlan plan_by_graph_cut(const Network& net, std::size_t shards) {
  if (shards == 0)
    throw std::invalid_argument("plan_by_graph_cut: shards must be positive");
  const std::size_t n = net.ncp_count();
  if (shards > n)
    throw std::invalid_argument("plan_by_graph_cut: " +
                                std::to_string(shards) + " shards but only " +
                                std::to_string(n) + " NCP(s)");

  // Greedy farthest-point seeds: start at NCP 0; each further seed is the
  // node with the largest BFS distance to the nearest existing seed
  // (lowest id on ties) — unreached components naturally win, so every
  // component gets a seed before any is split.
  constexpr std::size_t kUnreached = static_cast<std::size_t>(-1);
  std::vector<NcpId> seeds{0};
  std::vector<std::size_t> dist(n, kUnreached);
  while (seeds.size() < shards) {
    std::fill(dist.begin(), dist.end(), kUnreached);
    std::deque<NcpId> frontier;
    for (NcpId s : seeds) {
      dist[static_cast<std::size_t>(s)] = 0;
      frontier.push_back(s);
    }
    while (!frontier.empty()) {
      const NcpId v = frontier.front();
      frontier.pop_front();
      for (LinkId l : net.incident_links(v)) {
        const NcpId u = net.other_end(l, v);
        if (dist[static_cast<std::size_t>(u)] != kUnreached) continue;
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        frontier.push_back(u);
      }
    }
    NcpId best = kInvalidId;
    std::size_t best_dist = 0;
    for (NcpId j = 0; j < static_cast<NcpId>(n); ++j) {
      const std::size_t d = dist[static_cast<std::size_t>(j)];
      if (d == 0) continue;  // a seed
      const std::size_t score = d == kUnreached ? kUnreached - 1 : d;
      if (best == kInvalidId || score > best_dist) {
        best = j;
        best_dist = score;
      }
    }
    if (best == kInvalidId) {
      // Fewer reachable non-seed nodes than shards; grab the lowest
      // unseeded id (isolated singletons).
      for (NcpId j = 0; j < static_cast<NcpId>(n); ++j)
        if (std::find(seeds.begin(), seeds.end(), j) == seeds.end()) {
          best = j;
          break;
        }
    }
    seeds.push_back(best);
  }

  // Balanced growth: shards take turns consuming their BFS frontier, one
  // node per turn, so parts grow in lockstep until frontiers collide.
  std::vector<std::size_t> assignment(n, ShardPlan::kBoundary);
  std::vector<std::deque<NcpId>> frontiers(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    assignment[static_cast<std::size_t>(seeds[s])] = s;
    frontiers[s].push_back(seeds[s]);
  }
  std::size_t assigned = shards;
  bool progress = true;
  while (assigned < n && progress) {
    progress = false;
    for (std::size_t s = 0; s < shards; ++s) {
      // Claim one new node for shard s from its frontier.
      while (!frontiers[s].empty()) {
        const NcpId v = frontiers[s].front();
        NcpId claimed = kInvalidId;
        for (LinkId l : net.incident_links(v)) {
          const NcpId u = net.other_end(l, v);
          if (assignment[static_cast<std::size_t>(u)] ==
              ShardPlan::kBoundary) {
            claimed = u;
            break;
          }
        }
        if (claimed == kInvalidId) {
          frontiers[s].pop_front();  // exhausted node, drop and retry
          continue;
        }
        assignment[static_cast<std::size_t>(claimed)] = s;
        frontiers[s].push_back(claimed);
        ++assigned;
        progress = true;
        break;
      }
    }
  }
  // Disconnected leftovers (no frontier reaches them): round-robin onto
  // the smallest shards for balance.
  if (assigned < n) {
    std::vector<std::size_t> sizes(shards, 0);
    for (std::size_t j = 0; j < n; ++j)
      if (assignment[j] != ShardPlan::kBoundary) ++sizes[assignment[j]];
    for (std::size_t j = 0; j < n; ++j) {
      if (assignment[j] != ShardPlan::kBoundary) continue;
      const std::size_t s = static_cast<std::size_t>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
      assignment[j] = s;
      ++sizes[s];
    }
  }
  return assemble(net, shards, assignment);
}

ShardPlan make_shard_plan(const Network& net, std::size_t shards) {
  bool all_labeled = net.ncp_count() > 0;
  std::map<std::string, bool> labels;
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const std::string& label = net.ncp(j).region;
    if (label.empty()) {
      all_labeled = false;
      break;
    }
    labels.emplace(label, true);
  }
  if (all_labeled && labels.size() >= shards)
    return plan_by_region(net, shards);
  return plan_by_graph_cut(net, shards);
}

}  // namespace sparcle::federation
