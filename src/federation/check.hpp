#pragma once

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "federation/federation.hpp"

/// \file check.hpp
/// The federation-level conservation check: proof that the two-phase
/// cross-shard protocol leaks nothing, no matter how admissions, aborts,
/// removals, and churn interleave (docs/federation.md, "Correctness").
///
/// Four layers, each rebuilt from first principles:
///
///  1. every shard scheduler passes check::check_scheduler_state (which
///     already rebuilds external-reservation load from the reservation
///     table — a shard-local leak trips kResidualMismatch there);
///  2. the shard reservation tables and the federation's cross-app table
///     correspond exactly: every hold belongs to a committed cross app
///     that lists the shard (an orphan hold is a leaked reserve), every
///     cross app holds on every shard it lists, and the held load equals
///     the app's committed load restricted to that shard, element by
///     element;
///  3. the federation planning residual equals full capacity minus the
///     recomputed sum of committed cross loads (failed elements zeroed);
///  4. boundary links — owned by no shard — carry at most their capacity.

namespace sparcle::federation {

/// Outcome of check_federation: every violation found, human-readable.
struct ConservationReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// Newline-joined rendering (empty string when ok()).
  std::string to_string() const;
};

/// Runs the four-layer conservation check against a quiescent federation
/// (call drain() first: a cross admission in flight legitimately holds
/// uncommitted reservations).  Shard states are observed race-free via
/// SchedulerService::inspect().
ConservationReport check_federation(FederatedService& fed,
                                    const check::CheckOptions& options = {});

}  // namespace sparcle::federation
