#include "federation/federation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/availability.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"

namespace sparcle::federation {

using service::ServiceResult;
using service::ServiceSnapshot;
using service::ServiceStats;

namespace {

constexpr double kTol = 1e-9;

/// One shard's outcome of a reserve/commit/release control function,
/// written on the shard's scheduling thread and read by the router after
/// the apply future resolved (the future is the synchronization edge).
struct PhaseResult {
  bool ok{false};
  std::string why;
};

}  // namespace

FederatedService::FederatedService(Network net, FederationOptions options)
    : net_(std::move(net)),
      plan_(make_shard_plan(net_, options.shards)),
      options_(std::move(options)),
      assigner_(options_.scheduler.assigner_options),
      cross_load_(LoadMap::zeros(net_)),
      plan_residual_(net_) {
  shards_.reserve(plan_.shard_count());
  for (std::size_t s = 0; s < plan_.shard_count(); ++s)
    shards_.push_back(std::make_unique<service::SchedulerService>(
        plan_.shards[s].net, options_.scheduler, options_.service));
  registry_.gauge("federation.shards")
      .set(static_cast<double>(plan_.shard_count()));
  registry_.gauge("federation.boundary_links")
      .set(static_cast<double>(plan_.boundary_links.size()));
  registry_.gauge("federation.cross.apps").set(0.0);
  router_ = std::thread([this] { router_loop(); });
}

FederatedService::~FederatedService() { stop(); }

// ---------------------------------------------------------------------------
// PlacementService surface

std::future<ServiceResult> FederatedService::submit(Application app) {
  auto prom = std::make_shared<std::promise<ServiceResult>>();
  auto fut = prom->get_future();
  submit_async(std::move(app),
               [prom](ServiceResult r) { prom->set_value(std::move(r)); });
  return fut;
}

std::future<ServiceResult> FederatedService::remove(std::string app_name) {
  auto prom = std::make_shared<std::promise<ServiceResult>>();
  auto fut = prom->get_future();
  remove_async(std::move(app_name),
               [prom](ServiceResult r) { prom->set_value(std::move(r)); });
  return fut;
}

void FederatedService::submit_async(Application app, Completion on_done) {
  {
    std::lock_guard<std::mutex> lock(router_mu_);
    if (stopping_) {
      ServiceResult r;
      r.status = ServiceResult::Status::kShutdown;
      r.reason = "service is stopping";
      on_done(std::move(r));
      return;
    }
  }
  dispatch_submit(std::move(app), std::move(on_done));
}

void FederatedService::dispatch_submit(Application app, Completion on_done) {
  try {
    app.validate();
  } catch (const std::exception& e) {
    bump("federation.invalid");
    complete_rejected(on_done, e.what());
    return;
  }

  const std::vector<std::size_t> touched = pinned_shards(app);
  const bool cross = touched.size() > 1;
  // Unpinned apps (no sources/sinks — degenerate but valid graphs) have
  // no locality signal; shard 0 hosts them.
  const std::size_t home = touched.empty() ? 0 : touched.front();

  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (route_.contains(app.name)) {
      bump("federation.duplicates");
      complete_rejected(on_done, "duplicate application name '" + app.name +
                                     "' across the federation");
      return;
    }
    route_.emplace(app.name, cross ? kCrossRoute : home);
  }

  if (!cross) {
    bump("federation.local.routed");
    log_decision(app.name, app.qoe.cls == QoeClass::kGuaranteedRate,
                 "routed to shard " + std::to_string(home), 0.0, 0.0, 0);
    const std::string name = app.name;
    shards_[home]->submit_async(
        to_local(app, home),
        [this, name, on_done = std::move(on_done)](ServiceResult r) {
          if (r.status != ServiceResult::Status::kAdmitted) {
            std::lock_guard<std::mutex> lock(route_mu_);
            route_.erase(name);
          }
          on_done(std::move(r));
        });
    return;
  }

  bump("federation.cross.submits");
  auto shared_app = std::make_shared<Application>(std::move(app));
  const auto enqueued = std::chrono::steady_clock::now();
  enqueue_job(
      [this, shared_app, enqueued, on_done = std::move(on_done)]() mutable {
        cross_admit(std::move(*shared_app),
                    stamp_timeline(std::move(on_done), enqueued));
      });
}

FederatedService::Completion FederatedService::stamp_timeline(
    Completion on_done, std::chrono::steady_clock::time_point enqueued) {
  // Cross-shard requests never pass through a SchedulerService queue, so
  // the federation fills the wire's request-tracing contract itself:
  // queue_us is the wait for the router thread, apply_us is the
  // two-phase protocol's own work (there is no batch or shared PF solve
  // to report).  Called at job start on the router thread; the stamp
  // wraps the completion, so every cross outcome — admitted, rejected,
  // both abort flavors, removals — carries a timeline.
  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  const std::uint64_t trace =
      next_trace_.fetch_add(1, std::memory_order_relaxed);
  return [on_done = std::move(on_done), enqueued, started,
          trace](ServiceResult r) {
    const auto done = Clock::now();
    const auto us = [](Clock::duration d) {
      return std::chrono::duration<double, std::micro>(d).count();
    };
    r.timeline.trace_id = trace;
    r.timeline.queue_us = us(started - enqueued);
    r.timeline.apply_us = us(done - started);
    r.latency_us = us(done - enqueued);
    on_done(std::move(r));
  };
}

void FederatedService::remove_async(std::string app_name, Completion on_done) {
  std::size_t route = 0;
  {
    std::lock_guard<std::mutex> lock(router_mu_);
    if (stopping_) {
      ServiceResult r;
      r.status = ServiceResult::Status::kShutdown;
      r.reason = "service is stopping";
      on_done(std::move(r));
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    const auto it = route_.find(app_name);
    if (it == route_.end()) {
      ServiceResult r;
      r.status = ServiceResult::Status::kNotFound;
      r.reason = "no application '" + app_name + "' in the federation";
      on_done(std::move(r));
      return;
    }
    route = it->second;
  }

  if (route != kCrossRoute) {
    bump("federation.local.removes");
    const std::string name = app_name;
    shards_[route]->remove_async(
        std::move(app_name),
        [this, name, on_done = std::move(on_done)](ServiceResult r) {
          if (r.status == ServiceResult::Status::kRemoved) {
            std::lock_guard<std::mutex> lock(route_mu_);
            route_.erase(name);
          }
          on_done(std::move(r));
        });
    return;
  }

  auto shared_name = std::make_shared<std::string>(std::move(app_name));
  const auto enqueued = std::chrono::steady_clock::now();
  enqueue_job(
      [this, shared_name, enqueued, on_done = std::move(on_done)]() mutable {
        cross_remove(*shared_name,
                     stamp_timeline(std::move(on_done), enqueued));
      });
}

std::shared_ptr<const ServiceSnapshot> FederatedService::snapshot() const {
  auto out = std::make_shared<ServiceSnapshot>();
  for (const auto& shard : shards_) {
    const std::shared_ptr<const ServiceSnapshot> s = shard->snapshot();
    out->version += s->version;
    out->total_gr_rate += s->total_gr_rate;
    out->total_be_rate += s->total_be_rate;
    out->be_utility += s->be_utility;
    out->apps.insert(out->apps.end(), s->apps.begin(), s->apps.end());
  }
  std::lock_guard<std::mutex> lock(cross_mu_);
  out->version += cross_version_;
  for (const auto& [name, ca] : cross_) {
    service::AppView view;
    view.name = name;
    view.guaranteed = ca.app.qoe.cls == QoeClass::kGuaranteedRate;
    view.allocated_rate = ca.total_rate;
    view.paths = ca.paths.size();
    if (view.guaranteed) {
      view.min_rate = ca.app.qoe.min_rate;
      out->total_gr_rate += ca.total_rate;
    } else {
      view.priority = ca.app.qoe.priority;
      out->total_be_rate += ca.total_rate;
      if (ca.total_rate > 0)
        out->be_utility += ca.app.qoe.priority * std::log(ca.total_rate);
    }
    out->apps.push_back(std::move(view));
  }
  return out;
}

void FederatedService::drain() {
  {
    std::unique_lock<std::mutex> lock(router_mu_);
    idle_cv_.wait(lock, [this] { return jobs_.empty() && !router_busy_; });
  }
  for (const auto& shard : shards_) shard->drain();
}

void FederatedService::stop() {
  {
    std::lock_guard<std::mutex> lock(router_mu_);
    if (stopping_ && !router_.joinable()) return;
    stopping_ = true;
  }
  router_cv_.notify_all();
  if (router_.joinable()) router_.join();
  for (const auto& shard : shards_) shard->stop();
}

ServiceStats FederatedService::stats() const {
  ServiceStats out;
  for (const auto& shard : shards_) {
    const ServiceStats s = shard->stats();
    out.submits += s.submits;
    out.removes += s.removes;
    out.admitted += s.admitted;
    out.rejected += s.rejected;
    out.queue_full += s.queue_full;
    out.deadline_expired += s.deadline_expired;
    out.batches += s.batches;
    out.max_batch_seen = std::max(out.max_batch_seen, s.max_batch_seen);
    out.resolves_saved += s.resolves_saved;
    out.invariant_violations += s.invariant_violations;
    if (out.first_violation.empty()) out.first_violation = s.first_violation;
    out.pf_solves += s.pf_solves;
    out.pf_warm_hits += s.pf_warm_hits;
    out.pf_warm_fallbacks += s.pf_warm_fallbacks;
    out.pf_newton_iters += s.pf_newton_iters;
    for (const auto& [name, v] : s.metrics) out.metrics[name] += v;
  }
  const obs::MetricsSnapshot fed = registry_.snapshot();
  for (const auto& [name, v] : fed.counters)
    out.metrics[name] += static_cast<double>(v);
  for (const auto& [name, v] : fed.gauges) out.metrics[name] += v;
  // Cross-shard admissions never enter a shard's submit pipeline; fold
  // them into the federation-level totals so `stats` reflects all traffic.
  out.submits += fed.counter_or("federation.cross.submits");
  out.admitted += fed.counter_or("federation.cross.admitted");
  out.rejected += fed.counter_or("federation.cross.rejected") +
                  fed.counter_or("federation.cross.aborted_reserve") +
                  fed.counter_or("federation.cross.aborted_commit");
  out.removes += fed.counter_or("federation.cross.removes");
  return out;
}

std::string FederatedService::prometheus_text() const {
  obs::MetricsSnapshot merged = registry_.snapshot();
  for (const auto& shard : shards_) {
    const obs::MetricsSnapshot s = shard->registry().snapshot();
    for (const auto& [name, v] : s.counters) merged.counters[name] += v;
    for (const auto& [name, v] : s.gauges) merged.gauges[name] += v;
    for (const auto& [name, h] : s.histograms) {
      auto [it, inserted] = merged.histograms.emplace(name, h);
      if (inserted) continue;
      obs::HistogramSnapshot& acc = it->second;
      if (acc.bounds != h.bounds) continue;  // incompatible, keep first
      for (std::size_t i = 0; i < acc.buckets.size(); ++i)
        acc.buckets[i] += h.buckets[i];
      acc.count += h.count;
      acc.sum += h.sum;
    }
  }
  return obs::to_prometheus(merged);
}

std::map<std::string, std::string> FederatedService::health_fields() const {
  const std::shared_ptr<const ServiceSnapshot> view = snapshot();
  std::size_t queue_depth = 0;
  for (const auto& shard : shards_) queue_depth += shard->queue_depth();
  std::size_t cross_apps = 0;
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    cross_apps = cross_.size();
  }
  // The federation's SLO state is the worst of its shards' — one
  // breached shard means the site is breached, whatever the others say.
  const auto rank = [](const std::string& s) {
    return s == "breached" ? 2 : s == "degraded" ? 1 : 0;
  };
  std::string slo_state = "ok";
  for (const auto& shard : shards_) {
    const auto shard_fields = shard->health_fields();
    const auto it = shard_fields.find("slo_state");
    if (it != shard_fields.end() && rank(it->second) > rank(slo_state))
      slo_state = it->second;
  }

  std::map<std::string, std::string> fields;
  fields["status"] = "ok";
  fields["federated"] = "true";
  fields["slo_state"] = slo_state;
  fields["shards"] = std::to_string(plan_.shard_count());
  fields["boundary_links"] = std::to_string(plan_.boundary_links.size());
  fields["version"] = std::to_string(view->version);
  fields["apps"] = std::to_string(view->apps.size());
  fields["cross_apps"] = std::to_string(cross_apps);
  fields["queue_depth"] = std::to_string(queue_depth);
  return fields;
}

// ---------------------------------------------------------------------------
// Federation surface

std::map<std::string, CrossApp> FederatedService::cross_apps() const {
  std::lock_guard<std::mutex> lock(cross_mu_);
  return cross_;
}

CapacitySnapshot FederatedService::plan_residual() const {
  std::lock_guard<std::mutex> lock(cross_mu_);
  return plan_residual_;
}

std::set<ElementKey> FederatedService::failed_elements() const {
  std::lock_guard<std::mutex> lock(cross_mu_);
  return failed_;
}

void FederatedService::mark_failed(ElementKey e) {
  if (e.kind == ElementKey::Kind::kNcp || !plan_.is_boundary(e.index)) {
    const std::size_t s =
        e.kind == ElementKey::Kind::kNcp
            ? plan_.shard_of_ncp.at(static_cast<std::size_t>(e.index))
            : plan_.shard_of_link.at(static_cast<std::size_t>(e.index));
    const ElementKey local =
        e.kind == ElementKey::Kind::kNcp
            ? ElementKey::ncp(
                  plan_.local_ncp.at(static_cast<std::size_t>(e.index)))
            : ElementKey::link(
                  plan_.local_link.at(static_cast<std::size_t>(e.index)));
    shards_[s]->apply([local](Scheduler& sc) { sc.mark_failed(local); }).get();
  }
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    failed_.insert(e);
    rebuild_plan_residual();
    ++cross_version_;
  }
  bump("federation.churn.failures");
}

void FederatedService::mark_recovered(ElementKey e) {
  if (e.kind == ElementKey::Kind::kNcp || !plan_.is_boundary(e.index)) {
    const std::size_t s =
        e.kind == ElementKey::Kind::kNcp
            ? plan_.shard_of_ncp.at(static_cast<std::size_t>(e.index))
            : plan_.shard_of_link.at(static_cast<std::size_t>(e.index));
    const ElementKey local =
        e.kind == ElementKey::Kind::kNcp
            ? ElementKey::ncp(
                  plan_.local_ncp.at(static_cast<std::size_t>(e.index)))
            : ElementKey::link(
                  plan_.local_link.at(static_cast<std::size_t>(e.index)));
    shards_[s]
        ->apply([local](Scheduler& sc) { sc.mark_recovered(local); })
        .get();
  }
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    failed_.erase(e);
    rebuild_plan_residual();
    ++cross_version_;
  }
  bump("federation.churn.recoveries");
}

void FederatedService::repair(ElementKey e) {
  if (e.kind == ElementKey::Kind::kLink && plan_.is_boundary(e.index)) return;
  const std::size_t s =
      e.kind == ElementKey::Kind::kNcp
          ? plan_.shard_of_ncp.at(static_cast<std::size_t>(e.index))
          : plan_.shard_of_link.at(static_cast<std::size_t>(e.index));
  const ElementKey local =
      e.kind == ElementKey::Kind::kNcp
          ? ElementKey::ncp(
                plan_.local_ncp.at(static_cast<std::size_t>(e.index)))
          : ElementKey::link(
                plan_.local_link.at(static_cast<std::size_t>(e.index)));
  shards_[s]->apply([local](Scheduler& sc) { sc.repair(local); }).get();
  bump("federation.churn.repairs");
}

// ---------------------------------------------------------------------------
// Cross-shard two-phase admission (router thread)

void FederatedService::cross_admit(Application app, Completion on_done) {
  const std::string name = app.name;
  const bool gr = app.qoe.cls == QoeClass::kGuaranteedRate;

  const auto reject = [&](const char* counter, const std::string& reason) {
    bump(counter);
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      route_.erase(name);
    }
    log_decision(name, gr, reason, 0.0, 0.0, 0);
    complete_rejected(on_done, reason);
  };

  // 1. Optimistic planning on the union sub-network of the pinned shards
  // (transit-closed: shards on a shortest boundary path between the pins
  // join too) against the federation's residual snapshot — the only view
  // that covers boundary links.  Planning on the closure instead of the
  // full site keeps the router's provisioning cost proportional to the
  // regions an app actually spans, not the whole federation.  Shard-
  // internal reservations are invisible here; the reserve phase is the
  // authoritative check.
  const UnionSubnet& sub = union_subnet(pinned_shards(app));
  std::map<CtId, NcpId> sub_pins;
  for (const auto& [ct, g] : app.pinned)
    sub_pins.emplace(ct, sub.to_sub_ncp.at(g));
  CapacitySnapshot start(sub.net);
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    for (std::size_t j = 0; j < sub.to_global_ncp.size(); ++j)
      start.ncp(j) = plan_residual_.ncp(sub.to_global_ncp[j]);
    for (std::size_t l = 0; l < sub.to_global_link.size(); ++l)
      start.link(l) = plan_residual_.link(sub.to_global_link[l]);
  }
  ProvisioningOptions popt;
  popt.max_paths = options_.max_paths;
  popt.diversity = options_.scheduler.path_diversity;
  popt.overlap_penalty = options_.scheduler.overlap_penalty;
  if (gr) popt.rate_cap = app.qoe.min_rate;
  const double min_rate = app.qoe.min_rate;
  const StopPredicate enough = [gr,
                                min_rate](const std::vector<PathInfo>& paths) {
    if (!gr) return false;  // BE: take every path up to the cap
    double sum = 0.0;
    for (const PathInfo& p : paths) sum += p.standalone_rate;
    return sum >= min_rate;
  };
  std::vector<PathInfo> paths = provision_paths(
      sub.net, *app.graph, sub_pins, start, assigner_, popt, enough);
  if (paths.empty()) {
    reject("federation.cross.rejected",
           "cross-shard: no feasible task-assignment path");
    return;
  }

  // Back to full-site coordinates: every PathInfo leaves this loop with
  // global placements, element keys, and per-unit loads, so the rest of
  // the protocol (and the stored CrossApp record) never sees sub ids.
  for (PathInfo& p : paths) {
    Placement global_placement(*app.graph);
    for (std::size_t i = 0; i < p.placement.ct_count(); ++i)
      if (p.placement.ct_placed(i))
        global_placement.place_ct(i, sub.to_global_ncp[p.placement.ct_host(i)]);
    for (std::size_t k = 0; k < p.placement.tt_count(); ++k) {
      if (!p.placement.tt_placed(k)) continue;
      std::vector<LinkId> route;
      route.reserve(p.placement.tt_route(k).size());
      for (const LinkId l : p.placement.tt_route(k))
        route.push_back(sub.to_global_link[l]);
      global_placement.place_tt(k, std::move(route));
    }
    LoadMap global_load = LoadMap::zeros(net_);
    std::vector<ElementKey> global_elements;
    global_elements.reserve(p.elements.size());
    for (const ElementKey& e : p.elements) {
      if (e.kind == ElementKey::Kind::kNcp) {
        const NcpId g = sub.to_global_ncp[static_cast<std::size_t>(e.index)];
        global_load.ncp_load(g) = p.load.ncp_load(e.index);
        global_elements.push_back(ElementKey::ncp(g));
      } else {
        const LinkId g = sub.to_global_link[static_cast<std::size_t>(e.index)];
        global_load.link_load(g) = p.load.link_load(e.index);
        global_elements.push_back(ElementKey::link(g));
      }
    }
    p.placement = std::move(global_placement);
    p.load = std::move(global_load);
    p.elements = std::move(global_elements);
  }

  // 2. Committed per-path rates: GR paths fill the guarantee in path
  // order; BE paths take a conservative fixed fraction of their
  // standalone rate (they cannot join any single shard's PF solve).
  std::vector<double> rates;
  double total_rate = 0.0;
  {
    std::vector<PathInfo> kept;
    double remaining = min_rate;
    for (PathInfo& p : paths) {
      double r = 0.0;
      if (gr) {
        r = std::min(p.standalone_rate, remaining);
        remaining -= r;
      } else {
        r = options_.be_rate_fraction * p.standalone_rate;
      }
      if (r <= kTol) continue;
      rates.push_back(r);
      total_rate += r;
      kept.push_back(std::move(p));
    }
    paths = std::move(kept);
    if (gr && remaining > kTol * (1.0 + min_rate)) {
      reject("federation.cross.rejected",
             "cross-shard γ pre-gate: placeable rate " +
                 std::to_string(total_rate) + " below guaranteed minimum " +
                 std::to_string(min_rate));
      return;
    }
    if (paths.empty()) {
      reject("federation.cross.rejected",
             "cross-shard: no path with positive rate");
      return;
    }
  }

  // 3. Predicted availability gate (eq. (7) for GR, any-path for BE).
  std::vector<std::vector<ElementKey>> element_sets;
  element_sets.reserve(paths.size());
  for (const PathInfo& p : paths) element_sets.push_back(p.elements);
  const double availability =
      gr ? min_rate_availability(net_, element_sets, rates, min_rate)
         : availability_any(net_, element_sets);
  const double required = gr ? app.qoe.min_rate_availability
                             : app.qoe.availability;
  if (availability + 1e-12 < required) {
    reject("federation.cross.rejected",
           "cross-shard availability " + std::to_string(availability) +
               " below requested " + std::to_string(required));
    return;
  }

  // 4. Aggregate load and element footprint on the full network.
  LoadMap load = LoadMap::zeros(net_);
  for (std::size_t k = 0; k < paths.size(); ++k)
    load.add_scaled_at(paths[k].elements, paths[k].load, rates[k]);
  std::vector<ElementKey> elements;
  for (const PathInfo& p : paths)
    elements.insert(elements.end(), p.elements.begin(), p.elements.end());
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());

  // 5. Boundary links belong to no shard — the federation residual is
  // authoritative for them, so re-check under the lock (planning ran on
  // a copy that concurrent churn may have invalidated).
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    for (const ElementKey& e : elements) {
      if (e.kind != ElementKey::Kind::kLink || !plan_.is_boundary(e.index))
        continue;
      if (failed_.contains(e)) {
        reject("federation.cross.rejected",
               "cross-shard: boundary link " + net_.link(e.index).name +
                   " is failed");
        return;
      }
      const double have = plan_residual_.link(e.index);
      const double want = load.link_load(e.index);
      if (want > have + kTol * (1.0 + have)) {
        reject("federation.cross.rejected",
               "cross-shard: boundary link " + net_.link(e.index).name +
                   " lacks capacity (" + std::to_string(want) + " > " +
                   std::to_string(have) + ")");
        return;
      }
    }
  }

  // 6. Split the load into per-shard fragments (shard-local ids).
  std::map<std::size_t, Fragment> fragments;
  for (const ElementKey& e : elements) {
    if (e.kind == ElementKey::Kind::kNcp) {
      const std::size_t s =
          plan_.shard_of_ncp.at(static_cast<std::size_t>(e.index));
      auto [it, inserted] = fragments.try_emplace(s);
      Fragment& frag = it->second;
      if (inserted) frag.load = LoadMap::zeros(plan_.shards[s].net);
      const NcpId local = plan_.local_ncp.at(static_cast<std::size_t>(e.index));
      frag.load.ncp_load(local) = load.ncp_load(e.index);
      frag.elements.push_back(ElementKey::ncp(local));
    } else {
      if (plan_.is_boundary(e.index)) continue;
      const std::size_t s =
          plan_.shard_of_link.at(static_cast<std::size_t>(e.index));
      auto [it, inserted] = fragments.try_emplace(s);
      Fragment& frag = it->second;
      if (inserted) frag.load = LoadMap::zeros(plan_.shards[s].net);
      const LinkId local =
          plan_.local_link.at(static_cast<std::size_t>(e.index));
      frag.load.link_load(local) = load.link_load(e.index);
      frag.elements.push_back(ElementKey::link(local));
    }
  }

  std::vector<std::size_t> touched;
  touched.reserve(fragments.size());
  for (const auto& [s, frag] : fragments) touched.push_back(s);

  // 7. Phase one: reserve on every touched shard.  Each hold is taken
  // atomically against the shard's authoritative residual on the shard's
  // own scheduling thread; the futures are the barrier.
  std::vector<std::pair<std::size_t, std::shared_ptr<PhaseResult>>> reserves;
  std::vector<std::future<ServiceResult>> futures;
  for (auto& [s, frag] : fragments) {
    auto fragp = std::make_shared<Fragment>(std::move(frag));
    auto res = std::make_shared<PhaseResult>();
    futures.push_back(shards_[s]->apply([name, fragp, res](Scheduler& sc) {
      res->ok = sc.reserve_external(name, fragp->load, fragp->elements,
                                    /*rate=*/1.0, &res->why);
    }));
    reserves.emplace_back(s, res);
  }
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    if (r.status != ServiceResult::Status::kApplied) {
      // Service stopping mid-protocol: release whatever may have landed.
      release_on_shards(name, touched);
      reject("federation.cross.aborted_reserve",
             "cross-shard reserve interrupted: " + r.reason);
      return;
    }
  }
  for (const auto& [s, res] : reserves) {
    if (res->ok) continue;
    release_on_shards(name, touched);
    bump("federation.cross.aborted_reserve");
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      route_.erase(name);
    }
    const std::string reason = "cross-shard reserve rejected by shard " +
                               std::to_string(s) + ": " + res->why;
    log_decision(name, gr, reason, 0.0, 0.0, 0);
    complete_rejected(on_done, reason);
    return;
  }

  // 8. Between the phases: the abort seam the edge-case tests drive.
  if (options_.on_reserved) {
    try {
      options_.on_reserved(name);
    } catch (const std::exception& e) {
      release_on_shards(name, touched);
      reject("federation.cross.aborted_reserve",
             std::string("cross-shard admission aborted between phases: ") +
                 e.what());
      return;
    }
  }

  // 9. Phase two: commit on every touched shard.  A refusal (an element
  // failed between the phases) aborts the whole admission — release on
  // *all* shards, committed holds included.
  std::vector<std::pair<std::size_t, std::shared_ptr<PhaseResult>>> commits;
  futures.clear();
  for (const std::size_t s : touched) {
    auto res = std::make_shared<PhaseResult>();
    futures.push_back(shards_[s]->apply([name, res](Scheduler& sc) {
      res->ok = sc.commit_external(name, &res->why);
    }));
    commits.emplace_back(s, res);
  }
  bool commit_ok = true;
  std::string commit_why;
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    if (r.status != ServiceResult::Status::kApplied) {
      commit_ok = false;
      commit_why = "commit interrupted: " + r.reason;
    }
  }
  for (const auto& [s, res] : commits)
    if (!res->ok && commit_ok) {
      commit_ok = false;
      commit_why = "shard " + std::to_string(s) + ": " + res->why;
    }
  if (!commit_ok) {
    release_on_shards(name, touched);
    reject("federation.cross.aborted_commit",
           "cross-shard commit aborted: " + commit_why);
    return;
  }

  // 10. Success: account the committed load at the federation level.
  CrossApp record;
  record.app = std::move(app);
  record.paths = std::move(paths);
  record.path_rates = std::move(rates);
  record.total_rate = total_rate;
  record.availability = availability;
  record.shards = touched;
  record.load = std::move(load);
  record.elements = std::move(elements);
  std::size_t path_count = record.paths.size();
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    cross_load_.add_scaled_at(record.elements, record.load, 1.0);
    rebuild_plan_residual();
    cross_.emplace(name, std::move(record));
    registry_.gauge("federation.cross.apps")
        .set(static_cast<double>(cross_.size()));
    ++cross_version_;
  }
  bump("federation.cross.admitted");
  log_decision(name, gr,
               "cross-shard admitted over " + std::to_string(touched.size()) +
                   " shard(s), two-phase commit",
               total_rate, availability, path_count);
  ServiceResult r;
  r.status = ServiceResult::Status::kAdmitted;
  r.rate = total_rate;
  r.availability = availability;
  r.paths = path_count;
  on_done(std::move(r));
}

void FederatedService::cross_remove(const std::string& name,
                                    Completion on_done) {
  std::vector<std::size_t> touched;
  bool gr = false;
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    const auto it = cross_.find(name);
    if (it == cross_.end()) {
      ServiceResult r;
      r.status = ServiceResult::Status::kNotFound;
      r.reason = "no cross-shard application '" + name + "'";
      on_done(std::move(r));
      return;
    }
    touched = it->second.shards;
    gr = it->second.app.qoe.cls == QoeClass::kGuaranteedRate;
  }
  release_on_shards(name, touched);
  {
    std::lock_guard<std::mutex> lock(cross_mu_);
    const auto it = cross_.find(name);
    if (it != cross_.end()) {
      cross_load_.add_scaled_at(it->second.elements, it->second.load, -1.0);
      rebuild_plan_residual();
      cross_.erase(it);
    }
    registry_.gauge("federation.cross.apps")
        .set(static_cast<double>(cross_.size()));
    ++cross_version_;
  }
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    route_.erase(name);
  }
  bump("federation.cross.removes");
  log_decision(name, gr, "cross-shard removed, holds released", 0.0, 0.0, 0);
  ServiceResult r;
  r.status = ServiceResult::Status::kRemoved;
  on_done(std::move(r));
}

void FederatedService::release_on_shards(
    const std::string& name, const std::vector<std::size_t>& shards) {
  std::vector<std::future<ServiceResult>> futures;
  for (const std::size_t s : shards)
    futures.push_back(shards_[s]->apply(
        [name](Scheduler& sc) { sc.release_external(name); }));
  for (auto& f : futures) f.get();
}

void FederatedService::rebuild_plan_residual() {
  plan_residual_ = CapacitySnapshot(net_);
  plan_residual_.subtract_scaled(cross_load_, 1.0);
  if (!failed_.empty())
    plan_residual_.scale_elements(
        std::vector<ElementKey>(failed_.begin(), failed_.end()), 0.0);
}

const FederatedService::UnionSubnet& FederatedService::union_subnet(
    const std::vector<std::size_t>& shards) {
  const auto cached = subnets_.find(shards);
  if (cached != subnets_.end()) return cached->second;

  // Transit closure: the pinned shards plus every shard on a shortest
  // boundary-link path between them.  On a backbone-ring site two distant
  // regions only connect through the hubs between them, so a placement
  // may have to relay through shards that own no pin — those transit
  // shards join the planning graph (and, if the placement lands load on
  // them, the reserve/commit protocol) like any other touched shard.
  std::set<std::size_t> closure(shards.begin(), shards.end());
  {
    std::vector<std::set<std::size_t>> adj(plan_.shard_count());
    for (const LinkId l : plan_.boundary_links) {
      const Link& lk = net_.link(l);
      const std::size_t sa = plan_.shard_of_ncp[static_cast<std::size_t>(lk.a)];
      const std::size_t sb = plan_.shard_of_ncp[static_cast<std::size_t>(lk.b)];
      adj[sa].insert(sb);
      adj[sb].insert(sa);
    }
    constexpr std::size_t kUnreached = static_cast<std::size_t>(-1);
    std::vector<std::size_t> parent(plan_.shard_count(), kUnreached);
    std::deque<std::size_t> frontier;
    const std::size_t root = shards.front();
    parent[root] = root;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop_front();
      for (const std::size_t w : adj[v])
        if (parent[w] == kUnreached) {
          parent[w] = v;
          frontier.push_back(w);
        }
    }
    for (const std::size_t t : shards) {
      if (parent[t] == kUnreached) continue;  // disconnected: reject later
      for (std::size_t v = t; v != root; v = parent[v]) closure.insert(v);
    }
  }

  // Pinned shards contribute every NCP: any of them may host a CT.  A
  // transit shard only relays, so it contributes just its *backbone* —
  // the NCPs on shortest intra-shard paths between its boundary-link
  // endpoints (on the soak site: the region hubs, not the leaves).
  // Planning cost then scales with the pinned regions plus a few relay
  // hubs, not with every site a transit shard happens to own.
  std::map<std::size_t, std::set<NcpId>> border;  // shard -> global NCPs
  for (const LinkId l : plan_.boundary_links) {
    const Link& lk = net_.link(l);
    border[plan_.shard_of_ncp[static_cast<std::size_t>(lk.a)]].insert(lk.a);
    border[plan_.shard_of_ncp[static_cast<std::size_t>(lk.b)]].insert(lk.b);
  }
  const std::set<std::size_t> pinned(shards.begin(), shards.end());

  UnionSubnet sub;
  sub.net = Network(net_.schema());
  for (const std::size_t s : closure) {
    const auto& shard = plan_.shards[s];
    std::set<NcpId> keep;  // local ids, ascending for determinism
    if (pinned.count(s)) {
      for (NcpId j = 0; j < static_cast<NcpId>(shard.net.ncp_count()); ++j)
        keep.insert(j);
    } else {
      std::vector<NcpId> gates;  // boundary-incident NCPs, local ids
      for (const NcpId g : border[s])
        gates.push_back(plan_.local_ncp.at(static_cast<std::size_t>(g)));
      std::sort(gates.begin(), gates.end());
      keep.insert(gates.begin(), gates.end());
      // Shortest gate-to-gate paths (direction-blind BFS: the relay view
      // over-includes for directed links, but the widest-path planner
      // still honors direction on the assembled sub-network).
      for (std::size_t i = 0; i + 1 < gates.size(); ++i) {
        std::vector<NcpId> par(shard.net.ncp_count(), kInvalidId);
        std::deque<NcpId> frontier{gates[i]};
        par[static_cast<std::size_t>(gates[i])] = gates[i];
        while (!frontier.empty()) {
          const NcpId v = frontier.front();
          frontier.pop_front();
          for (const LinkId l : shard.net.incident_links(v)) {
            const NcpId w = shard.net.other_end(l, v);
            if (par[static_cast<std::size_t>(w)] != kInvalidId) continue;
            par[static_cast<std::size_t>(w)] = v;
            frontier.push_back(w);
          }
        }
        for (std::size_t j = i + 1; j < gates.size(); ++j) {
          if (par[static_cast<std::size_t>(gates[j])] == kInvalidId) continue;
          for (NcpId v = gates[j]; v != gates[i];
               v = par[static_cast<std::size_t>(v)])
            keep.insert(v);
        }
      }
    }
    for (const NcpId local : keep) {
      const NcpId g = shard.global_ncps[static_cast<std::size_t>(local)];
      const Ncp& n = net_.ncp(g);
      const NcpId j =
          sub.net.add_ncp(n.name, n.capacity, n.fail_prob, n.region);
      sub.to_global_ncp.push_back(g);
      sub.to_sub_ncp.emplace(g, j);
    }
  }
  for (std::size_t l = 0; l < net_.link_count(); ++l) {
    const Link& lk = net_.link(l);
    const auto a = sub.to_sub_ncp.find(lk.a);
    const auto b = sub.to_sub_ncp.find(lk.b);
    if (a == sub.to_sub_ncp.end() || b == sub.to_sub_ncp.end()) continue;
    if (lk.directed)
      sub.net.add_directed_link(lk.name, a->second, b->second, lk.bandwidth,
                                lk.fail_prob);
    else
      sub.net.add_link(lk.name, a->second, b->second, lk.bandwidth,
                       lk.fail_prob);
    sub.to_global_link.push_back(l);
  }
  return subnets_.emplace(shards, std::move(sub)).first->second;
}

Application FederatedService::to_local(const Application& app,
                                       std::size_t s) const {
  (void)s;
  Application local = app;
  local.pinned.clear();
  for (const auto& [ct, ncp] : app.pinned)
    local.pinned.emplace(
        ct, plan_.local_ncp.at(static_cast<std::size_t>(ncp)));
  return local;
}

std::vector<std::size_t> FederatedService::pinned_shards(
    const Application& app) const {
  std::vector<std::size_t> out;
  for (const auto& [ct, ncp] : app.pinned)
    out.push_back(plan_.shard_of_ncp.at(static_cast<std::size_t>(ncp)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Router plumbing

void FederatedService::enqueue_job(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(router_mu_);
    jobs_.push_back(std::move(job));
  }
  router_cv_.notify_one();
}

void FederatedService::router_loop() {
  std::unique_lock<std::mutex> lock(router_mu_);
  for (;;) {
    router_cv_.wait(lock, [this] { return !jobs_.empty() || stopping_; });
    if (jobs_.empty() && stopping_) return;
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    router_busy_ = true;
    lock.unlock();
    job();
    lock.lock();
    router_busy_ = false;
    if (jobs_.empty()) idle_cv_.notify_all();
  }
}

void FederatedService::bump(const char* name, std::uint64_t n) {
  registry_.counter(name).add(n);
  if (obs::MetricsRegistry* reg = obs::metrics();
      reg != nullptr && reg != &registry_)
    reg->counter(name).add(n);
}

void FederatedService::log_decision(const std::string& app, bool guaranteed,
                                    const std::string& reason, double rate,
                                    double availability, std::size_t paths) {
  if (obs::DecisionLog* log = obs::decision_log(); log != nullptr)
    log->record(obs::DecisionKind::kFederate, app, guaranteed ? "GR" : "BE",
                reason, rate, availability, paths);
}

void FederatedService::complete_rejected(const Completion& on_done,
                                         const std::string& reason) {
  ServiceResult r;
  r.status = ServiceResult::Status::kRejected;
  r.reason = reason;
  on_done(std::move(r));
}

}  // namespace sparcle::federation
