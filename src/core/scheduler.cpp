#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "core/availability.hpp"
#include "core/prediction.hpp"
#include "obs/obs.hpp"

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

const char* qoe_name(const Application& app) {
  return app.qoe.cls == QoeClass::kGuaranteedRate ? "GR" : "BE";
}

/// Counts the submission outcome and appends the admit/reject row to the
/// installed decision log (docs/observability.md, "Decision log schema").
void log_admission(const Application& app, const AdmissionResult& r) {
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("scheduler.submits").add(1);
    reg->counter(r.admitted ? "scheduler.admitted" : "scheduler.rejected")
        .add(1);
  }
  obs::DecisionLog* log = obs::decision_log();
  if (log == nullptr) return;
  std::string reason =
      r.admitted ? "QoE target met (rate " + std::to_string(r.rate) +
                       ", availability " + std::to_string(r.availability) +
                       ", " + std::to_string(r.path_count) + " path(s))"
                 : r.reason;
  log->record(r.admitted ? obs::DecisionKind::kAdmit
                         : obs::DecisionKind::kReject,
              app.name, qoe_name(app), std::move(reason), r.rate,
              r.availability, r.path_count);
}

/// One row per provisioned path, with the availability progress that
/// justified (or will reject) the addition.
void log_path_add(const Application& app, std::size_t path_count,
                  double path_rate, double achieved, double target,
                  const char* measure) {
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter("scheduler.paths_provisioned").add(1);
  if (obs::DecisionLog* log = obs::decision_log())
    log->record(obs::DecisionKind::kPathAdd, app.name, qoe_name(app),
                "path " + std::to_string(path_count) + ": " + measure + " " +
                    std::to_string(achieved) + " vs target " +
                    std::to_string(target),
                path_rate, achieved, path_count);
}
/// "ncp:<name>" / "link:<name>" for decision-log rows about an element.
std::string element_label(const Network& net, ElementKey e) {
  if (e.kind == ElementKey::Kind::kNcp)
    return e.index >= 0 && e.index < static_cast<NcpId>(net.ncp_count())
               ? "ncp:" + net.ncp(e.index).name
               : "ncp:?";
  return e.index >= 0 && e.index < static_cast<LinkId>(net.link_count())
             ? "link:" + net.link(e.index).name
             : "link:?";
}

/// Installed by check::ScopedValidation; intentionally leaked global state
/// (the harness uninstalls by passing nullptr).
Scheduler::ValidationHook g_validation_hook;

/// Assigner options for the default-constructed SparcleAssigner, with the
/// scheduler-level policy plugin forwarded when the caller did not set an
/// assigner-level one.  The raw pointer stays valid because the
/// scheduler's own options_ copy shares ownership of the plugin.
SparcleAssignerOptions assigner_options_with_policy(
    const SchedulerOptions& options) {
  SparcleAssignerOptions a = options.assigner_options;
  if (a.policy == nullptr) a.policy = options.policy.get();
  return a;
}

/// Σ CT computation requirement (resource 0) — the "job size" the policy
/// plugins rank by.
double app_size(const Application& app) {
  double size = 0;
  for (CtId i = 0; i < static_cast<CtId>(app.graph->ct_count()); ++i)
    size += app.graph->ct(i).requirement[0];
  return size;
}

}  // namespace

void Scheduler::set_validation_hook(ValidationHook hook) {
  g_validation_hook = std::move(hook);
}

void Scheduler::run_validation_hook() const {
  if (batch_active_) return;  // deferred: end_batch() validates the batch
  if (g_validation_hook) g_validation_hook(*this);
}

void Scheduler::begin_batch() {
  if (batch_active_)
    throw std::logic_error("Scheduler::begin_batch: a batch is already open");
  batch_active_ = true;
  batch_dirty_ = false;
  batch_deferred_ = 0;
  batch_added_be_.clear();
}

bool Scheduler::maybe_reallocate() {
  if (batch_active_) {
    batch_dirty_ = true;
    ++batch_deferred_;
    return true;
  }
  return reallocate_best_effort();
}

Scheduler::BatchReport Scheduler::end_batch() {
  if (!batch_active_)
    throw std::logic_error("Scheduler::end_batch: no batch is open");
  const obs::ScopedTimer span("scheduler.end_batch");
  BatchReport report;
  report.deferred_resolves = batch_deferred_;
  batch_active_ = false;
  if (batch_dirty_) {
    // One solve covers every deferred re-solve.  If it fails (numerically
    // degenerate instance), shed the batch's own BE admissions newest
    // first — the per-call path would have rejected them with "resource
    // allocation failed" — until the solve goes through.
    while (!reallocate_best_effort() && !batch_added_be_.empty()) {
      const std::string victim = std::move(batch_added_be_.back());
      batch_added_be_.pop_back();
      for (std::size_t i = placed_.size(); i-- > 0;) {
        if (placed_[i].app.name != victim) continue;
        placed_.erase(placed_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      usage_valid_ = false;  // placed indices shifted
      competing_valid_ = false;
      report.evicted.push_back(victim);
    }
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("scheduler.batches").add(1);
      if (report.deferred_resolves > 1)
        reg->counter("scheduler.batch.resolves_saved")
            .add(report.deferred_resolves - 1);
    }
  }
  batch_dirty_ = false;
  batch_deferred_ = 0;
  batch_added_be_.clear();
  healthy_rate_ = global_rate();
  run_validation_hook();
  return report;
}

Scheduler::Scheduler(Network net, SchedulerOptions options)
    : Scheduler(
          std::move(net),
          std::make_unique<SparcleAssigner>(assigner_options_with_policy(options)),
          options) {}

Scheduler::Scheduler(Network net, std::unique_ptr<Assigner> assigner,
                     SchedulerOptions options)
    : net_(std::move(net)),
      options_(options),
      assigner_(std::move(assigner)),
      gr_reserved_(LoadMap::zeros(net_)),
      ext_reserved_(LoadMap::zeros(net_)),
      residual_(net_) {
  if (!assigner_) throw std::invalid_argument("Scheduler: null assigner");
  if (options_.max_paths == 0 || options_.max_paths > kMaxExactPaths)
    throw std::invalid_argument("Scheduler: max_paths out of [1, 12]");
}

void Scheduler::rebuild_residual() {
  residual_ = CapacitySnapshot(net_);
  residual_.subtract_scaled(gr_reserved_, 1.0);
  residual_.subtract_scaled(ext_reserved_, 1.0);
  std::vector<ElementKey> dead(failed_.begin(), failed_.end());
  residual_.scale_elements(dead, 0.0);
  predict_scratch_valid_ = false;  // scratch no longer mirrors residual_
}

void Scheduler::recompute_residual_element(const ElementKey& e) {
  if (e.kind == ElementKey::Kind::kNcp) {
    ResourceVector v = net_.ncp(e.index).capacity;
    v -= gr_reserved_.ncp_load(e.index);
    v -= ext_reserved_.ncp_load(e.index);
    v.clamp_nonnegative();
    if (failed_.contains(e)) v *= 0.0;
    residual_.ncp(e.index) = std::move(v);
  } else {
    double c = net_.link(e.index).bandwidth - gr_reserved_.link_load(e.index) -
               ext_reserved_.link_load(e.index);
    if (c < 0 || failed_.contains(e)) c = 0;
    residual_.link(e.index) = c;
  }
  if (predict_scratch_valid_) {
    if (e.kind == ElementKey::Kind::kNcp)
      predict_scratch_.ncp(e.index) = residual_.ncp(e.index);
    else
      predict_scratch_.link(e.index) = residual_.link(e.index);
  }
}

void Scheduler::apply_gr_delta(const PathInfo& path, double rate_delta) {
  gr_reserved_.add_scaled_at(path.elements, path.load, rate_delta);
  for (const ElementKey& e : path.elements) recompute_residual_element(e);
}

bool Scheduler::reserve_external(const std::string& name, const LoadMap& load,
                                 std::vector<ElementKey> elements, double rate,
                                 std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why) *why = std::move(reason);
    if (obs::MetricsRegistry* reg = obs::metrics())
      reg->counter("scheduler.external.reserve_rejects").add(1);
    return false;
  };
  if (!(rate > 0)) return fail("external reservation rate must be positive");
  if (external_.contains(name))
    return fail("external reservation '" + name + "' already exists");
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  // Authoritative fit check against the *current* residual (GR + prior
  // external holds already subtracted) — the federation plans on an
  // optimistic snapshot, so this is where stale plans get caught.
  constexpr double kTol = 1e-9;
  for (const ElementKey& e : elements) {
    const bool is_ncp = e.kind == ElementKey::Kind::kNcp;
    const std::string& ename =
        is_ncp ? net_.ncp(e.index).name : net_.link(e.index).name;
    if (failed_.contains(e))
      return fail("element '" + ename + "' is marked failed");
    if (is_ncp) {
      const ResourceVector& need = load.ncp_load(e.index);
      const ResourceVector& have = residual_.ncp(e.index);
      for (std::size_t r = 0; r < need.size(); ++r)
        if (rate * need[r] >
            have[r] + kTol * (1.0 + net_.ncp(e.index).capacity[r]))
          return fail("insufficient residual on NCP '" + ename + "'");
    } else {
      if (rate * load.link_load(e.index) >
          residual_.link(e.index) +
              kTol * (1.0 + net_.link(e.index).bandwidth))
        return fail("insufficient residual on link '" + ename + "'");
    }
  }
  ExternalReservation res;
  res.load = LoadMap::zeros(net_);
  res.load.add_scaled_at(elements, load, 1.0);  // masked to `elements`
  res.rate = rate;
  ext_reserved_.add_scaled_at(elements, res.load, rate);
  bool touches_be = false;
  for (const ElementKey& e : elements) {
    recompute_residual_element(e);
    if (!touches_be) touches_be = element_touches_be(e);
  }
  res.elements = std::move(elements);
  external_.emplace(name, std::move(res));
  if (touches_be) maybe_reallocate();
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter("scheduler.external.reserves").add(1);
  run_validation_hook();
  return true;
}

bool Scheduler::commit_external(const std::string& name, std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why) *why = std::move(reason);
    return false;
  };
  auto it = external_.find(name);
  if (it == external_.end())
    return fail("unknown external reservation '" + name + "'");
  if (it->second.committed)
    return fail("external reservation '" + name + "' already committed");
  for (const ElementKey& e : it->second.elements)
    if (failed_.contains(e)) {
      const std::string& ename = e.kind == ElementKey::Kind::kNcp
                                     ? net_.ncp(e.index).name
                                     : net_.link(e.index).name;
      return fail("element '" + ename +
                  "' failed between reserve and commit");
    }
  it->second.committed = true;
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter("scheduler.external.commits").add(1);
  return true;
}

bool Scheduler::release_external(const std::string& name) {
  auto it = external_.find(name);
  if (it == external_.end()) return false;
  ext_reserved_.add_scaled_at(it->second.elements, it->second.load,
                              -it->second.rate);
  bool touches_be = false;
  for (const ElementKey& e : it->second.elements) {
    recompute_residual_element(e);
    if (!touches_be) touches_be = element_touches_be(e);
  }
  external_.erase(it);
  if (touches_be) maybe_reallocate();
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter("scheduler.external.releases").add(1);
  run_validation_hook();
  return true;
}

double Scheduler::total_external_rate() const {
  double sum = 0.0;
  for (const auto& [name, res] : external_) sum += res.rate;
  return sum;
}

bool Scheduler::element_touches_be(const ElementKey& e) const {
  ensure_usage_index();
  for (const ElementUsageIndex::PathRef& ref : usage_.users(e))
    if (placed_[ref.app].app.qoe.cls == QoeClass::kBestEffort) return true;
  return false;
}

bool Scheduler::path_alive(const PathInfo& path) const {
  for (const ElementKey& e : path.elements)
    if (failed_.contains(e)) return false;
  return true;
}

void Scheduler::ensure_usage_index() const {
  if (usage_valid_) return;
  usage_.clear();
  for (std::size_t i = 0; i < placed_.size(); ++i)
    for (std::size_t k = 0; k < placed_[i].paths.size(); ++k)
      usage_.add_path(i, k, placed_[i].paths[k].elements);
  usage_valid_ = true;
}

void Scheduler::index_new_app() {
  const std::size_t i = placed_.size() - 1;
  if (usage_valid_)
    for (std::size_t k = 0; k < placed_[i].paths.size(); ++k)
      usage_.add_path(i, k, placed_[i].paths[k].elements);
  competing_add_app(placed_[i]);
}

const ElementUsageIndex& Scheduler::element_usage() const {
  ensure_usage_index();
  return usage_;
}

void Scheduler::competing_add_app(const PlacedApp& pa) const {
  if (!competing_valid_) return;
  if (pa.app.qoe.cls != QoeClass::kBestEffort) return;
  // An app competes once per element, however many of its paths use it
  // (same distinct-set semantics as predict_capacities()).
  std::set<ElementKey> distinct;
  for (const PathInfo& p : pa.paths)
    distinct.insert(p.elements.begin(), p.elements.end());
  for (const ElementKey& e : distinct)
    be_competing_[e] += pa.app.qoe.priority;
}

void Scheduler::ensure_competing_index() const {
  if (competing_valid_) return;
  be_competing_.clear();
  competing_valid_ = true;
  for (const PlacedApp& pa : placed_) competing_add_app(pa);
}

const CapacitySnapshot& Scheduler::predicted_capacities(
    double priority) const {
  ensure_competing_index();
  if (!predict_scratch_valid_) {
    predict_scratch_ = residual_;
    predict_touched_.clear();
    predict_scratch_valid_ = true;
  } else {
    // Undo the previous prediction's scaling: only the touched elements
    // diverge from residual_ (mutations patch the scratch in place).
    predict_scratch_.copy_elements_from(residual_, predict_touched_);
    predict_touched_.clear();
  }
  apply_priority_shares(predict_scratch_, be_competing_, priority,
                        predict_touched_);
  return predict_scratch_;
}

bool Scheduler::remove(const std::string& app_name) {
  for (std::size_t i = 0; i < placed_.size(); ++i) {
    if (placed_[i].app.name != app_name) continue;
    const PlacedApp& pa = placed_[i];
    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate) {
      // Release the reservations incrementally: only the departing paths'
      // own elements change, so a full residual rebuild is unnecessary.
      for (std::size_t k = 0; k < pa.paths.size(); ++k)
        apply_gr_delta(pa.paths[k], -pa.path_rates[k]);
    } else {
      competing_valid_ = false;  // a BE footprint left the eq. (6) pool
    }
    placed_.erase(placed_.begin() + static_cast<std::ptrdiff_t>(i));
    usage_valid_ = false;  // placed indices shifted
    maybe_reallocate();
    healthy_rate_ = global_rate();
    run_validation_hook();
    return true;
  }
  return false;
}

void Scheduler::mark_failed(ElementKey element) {
  if (!failed_.insert(element).second) return;
  // Only the failed element's capacity changes; re-solving problem (4) is
  // needed only when a placed BE path actually crosses it (rows no column
  // loads never enter the solve).
  const bool resolve = element_touches_be(element);
  recompute_residual_element(element);
  if (resolve) maybe_reallocate();
  run_validation_hook();
}

void Scheduler::mark_recovered(ElementKey element) {
  if (failed_.erase(element) == 0) return;
  const bool resolve = element_touches_be(element);
  recompute_residual_element(element);
  if (resolve) maybe_reallocate();
  run_validation_hook();
}

Scheduler::RebalanceReport Scheduler::rebalance() {
  const obs::ScopedTimer span("scheduler.rebalance");
  if (obs::MetricsRegistry* reg = obs::metrics())
    reg->counter("scheduler.rebalances").add(1);
  RebalanceReport report;
  for (PlacedApp& pa : placed_) {
    // Partition the app's paths into alive and dead.
    std::vector<PathInfo> alive;
    std::vector<double> alive_rates;
    std::size_t dead = 0;
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      if (path_alive(pa.paths[k])) {
        alive.push_back(std::move(pa.paths[k]));
        alive_rates.push_back(pa.path_rates[k]);
      } else {
        ++dead;
        if (pa.app.qoe.cls == QoeClass::kGuaranteedRate)
          gr_reserved_.add_scaled(pa.paths[k].load, -pa.path_rates[k]);
      }
    }
    const std::size_t want = pa.paths.size();
    // The alive paths were moved out above; put them back in either case.
    pa.paths = std::move(alive);
    pa.path_rates = std::move(alive_rates);
    if (dead == 0) continue;
    rebuild_residual();  // released reservations are available again

    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate) {
      double alive_rate = 0;
      for (double r : pa.path_rates) alive_rate += r;
      const double shortfall = pa.app.qoe.min_rate - alive_rate;
      if (shortfall > kEps) {
        double recovered = 0;
        auto enough = [&](const std::vector<PathInfo>& paths) {
          recovered = 0;
          for (const PathInfo& pi : paths) recovered += pi.standalone_rate;
          log_path_add(pa.app, pa.paths.size() + paths.size(),
                       paths.back().standalone_rate, recovered, shortfall,
                       "rebalance: recovered rate");
          return recovered + kEps >= shortfall;
        };
        std::vector<PathInfo> extra =
            find_paths(pa.app, residual_, shortfall, enough);
        if (recovered + kEps >= shortfall) {
          for (PathInfo& pi : extra) {
            gr_reserved_.add_scaled(pi.load, pi.standalone_rate);
            pa.path_rates.push_back(pi.standalone_rate);
            pa.paths.push_back(std::move(pi));
          }
          rebuild_residual();
          report.repaired.push_back(pa.app.name);
        } else {
          report.still_degraded.push_back(pa.app.name);
        }
      }
      pa.allocated_rate = 0;
      for (double r : pa.path_rates) pa.allocated_rate += r;
    } else {
      // Best-Effort: top back up to the previous path count; rates come
      // from the PF re-solve below.
      auto enough = [&](const std::vector<PathInfo>& paths) {
        log_path_add(pa.app, pa.paths.size() + paths.size(),
                     paths.back().standalone_rate,
                     static_cast<double>(pa.paths.size() + paths.size()),
                     static_cast<double>(want), "rebalance: path count");
        return pa.paths.size() + paths.size() >= want;
      };
      std::vector<PathInfo> extra = find_paths(
          pa.app, residual_, std::numeric_limits<double>::infinity(),
          enough);
      if (!extra.empty()) report.repaired.push_back(pa.app.name);
      for (PathInfo& pi : extra) {
        pa.path_rates.push_back(0.0);
        pa.paths.push_back(std::move(pi));
      }
    }
  }
  reallocate_best_effort();
  usage_valid_ = false;  // path sets changed
  competing_valid_ = false;
  healthy_rate_ = global_rate();
  run_validation_hook();
  return report;
}

Scheduler::ReoptimizeReport Scheduler::global_reoptimize(
    double min_utility_gain) {
  ReoptimizeReport report;
  report.old_be_utility = be_utility();
  report.old_gr_rate = total_gr_rate();

  // Snapshot for rollback.
  const std::vector<PlacedApp> saved_placed = placed_;
  const LoadMap saved_reserved = gr_reserved_;
  const std::vector<double> saved_dual = pf_last_dual_;

  // Re-admission order: GR by descending guarantee, then BE by descending
  // priority (the order the prediction machinery assumes favours).
  std::vector<const PlacedApp*> order;
  for (const PlacedApp& pa : saved_placed) order.push_back(&pa);
  std::stable_sort(order.begin(), order.end(),
                   [](const PlacedApp* a, const PlacedApp* b) {
                     const bool ga =
                         a->app.qoe.cls == QoeClass::kGuaranteedRate;
                     const bool gb =
                         b->app.qoe.cls == QoeClass::kGuaranteedRate;
                     if (ga != gb) return ga;
                     if (ga) return a->app.qoe.min_rate > b->app.qoe.min_rate;
                     return a->app.qoe.priority > b->app.qoe.priority;
                   });

  placed_.clear();
  gr_reserved_ = LoadMap::zeros(net_);
  usage_valid_ = false;  // nested submits must not append to a stale index
  competing_valid_ = false;
  rebuild_residual();

  bool all_admitted = true;
  for (const PlacedApp* pa : order) {
    if (!submit(pa->app).admitted) {
      all_admitted = false;
      break;
    }
  }

  const double new_utility = be_utility();
  const double new_gr = total_gr_rate();
  const bool improves = all_admitted &&
                        new_gr + kEps >= report.old_gr_rate &&
                        new_utility >= report.old_be_utility +
                                           min_utility_gain - kEps &&
                        new_utility > report.old_be_utility + kEps;
  if (!improves) {
    // The snapshot holds the exact pre-reoptimize allocation (rates
    // included), so restoring it needs no PF re-solve — and re-solving
    // would land within tolerance but not bit-identically once warm
    // starts are in play.  The dual state is rolled back with it.
    placed_ = saved_placed;
    gr_reserved_ = saved_reserved;
    rebuild_residual();
    pf_last_dual_ = saved_dual;
    report.new_be_utility = report.old_be_utility;
    report.new_gr_rate = report.old_gr_rate;
    usage_valid_ = false;
    competing_valid_ = false;
    healthy_rate_ = global_rate();
    run_validation_hook();
    return report;
  }

  // Count migrated CTs (first path host differences, matched by name).
  for (const PlacedApp& old_pa : saved_placed)
    for (const PlacedApp& new_pa : placed_) {
      if (old_pa.app.name != new_pa.app.name) continue;
      const Placement& before = old_pa.paths[0].placement;
      const Placement& after = new_pa.paths[0].placement;
      for (CtId i = 0; i < static_cast<CtId>(before.ct_count()); ++i)
        if (before.ct_host(i) != after.ct_host(i)) ++report.migrated_cts;
    }
  report.adopted = true;
  report.new_be_utility = new_utility;
  report.new_gr_rate = new_gr;
  usage_valid_ = false;
  competing_valid_ = false;
  healthy_rate_ = global_rate();
  run_validation_hook();
  return report;
}

Scheduler::RepairReport Scheduler::repair(ElementKey element) {
  const obs::ScopedTimer span("scheduler.repair");
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg) reg->counter("scheduler.repairs").add(1);

  RepairReport report;
  report.global_rate_before = healthy_rate_;

  // Which placed apps need attention?  Users of the triggering element and
  // of every still-failed element, plus apps already degraded by earlier
  // events (a recovery restores capacity they can reclaim).
  ensure_usage_index();
  std::set<std::size_t> affected;
  auto collect = [&](const ElementKey& e) {
    for (const ElementUsageIndex::PathRef& ref : usage_.users(e))
      affected.insert(ref.app);
  };
  collect(element);
  for (const ElementKey& dead : failed_) collect(dead);
  for (std::size_t i = 0; i < placed_.size(); ++i) {
    const PlacedApp& pa = placed_[i];
    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate) {
      double alive_rate = 0;
      for (std::size_t k = 0; k < pa.paths.size(); ++k)
        if (path_alive(pa.paths[k])) alive_rate += pa.path_rates[k];
      if (alive_rate + kEps < pa.app.qoe.min_rate) affected.insert(i);
    } else if (pa.paths.empty()) {
      affected.insert(i);  // BE app shed down to zero paths earlier
    }
  }
  report.apps_touched = affected.size();
  if (reg)
    reg->counter("scheduler.repair.apps_touched").add(affected.size());

  // Nothing placed crosses the trigger or any failed element and no app is
  // degraded: the index proves there is nothing to shed or restore, so skip
  // the residual rebuild and the PF re-solve and keep the warm index.
  if (affected.empty()) {
    report.global_rate_after = healthy_rate_;
    return report;
  }

  // Pass 1: shed dead paths.  GR reservations on dead paths are released
  // so the freed capacity is visible to the restore pass; BE paths are
  // simply dropped (graceful shedding -- the app itself is never evicted).
  for (std::size_t pi : affected) {
    PlacedApp& pa = placed_[pi];
    std::vector<PathInfo> alive;
    std::vector<double> alive_rates;
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      if (path_alive(pa.paths[k])) {
        alive.push_back(std::move(pa.paths[k]));
        alive_rates.push_back(pa.path_rates[k]);
      } else {
        ++report.paths_dropped;
        if (pa.app.qoe.cls == QoeClass::kGuaranteedRate)
          // Incremental release: residual_ is refreshed on the dead
          // path's own elements only (no full rebuild on this hot path).
          apply_gr_delta(pa.paths[k], -pa.path_rates[k]);
      }
    }
    pa.paths = std::move(alive);
    pa.path_rates = std::move(alive_rates);
    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate) {
      pa.allocated_rate = 0;
      for (double r : pa.path_rates) pa.allocated_rate += r;
    }
  }
  competing_valid_ = false;  // shed BE paths shrank eq. (6) footprints

  // Pass 2: restore in policy order (decision point 3; the default — GR
  // first, largest guarantee first, then BE by descending priority — is
  // the pre-refactor hard-coded rule).  Ties break on placed order via
  // stable_sort so a replayed trace reproduces the same state bit for bit.
  std::vector<std::size_t> order(affected.begin(), affected.end());
  if (options_.policy != nullptr) {
    std::vector<policy::RepairCandidate> views(placed_.size());
    for (std::size_t pi : order) {
      const PlacedApp& pa = placed_[pi];
      views[pi] = {&pa.app, pa.allocated_rate, pa.paths.size(),
                   app_size(pa.app)};
    }
    const policy::SchedulingPolicy& pol = *options_.policy;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return pol.repair_before(views[a], views[b]);
                     });
  } else {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const PlacedApp& pa = placed_[a];
                       const PlacedApp& pb = placed_[b];
                       const bool ga =
                           pa.app.qoe.cls == QoeClass::kGuaranteedRate;
                       const bool gb =
                           pb.app.qoe.cls == QoeClass::kGuaranteedRate;
                       if (ga != gb) return ga;
                       if (ga) return pa.app.qoe.min_rate > pb.app.qoe.min_rate;
                       return pa.app.qoe.priority > pb.app.qoe.priority;
                     });
  }

  for (std::size_t pi : order) {
    PlacedApp& pa = placed_[pi];
    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate) {
      const double shortfall = pa.app.qoe.min_rate - pa.allocated_rate;
      if (shortfall <= kEps) continue;  // guarantee still covered
      // Retry with geometrically shrinking targets: a transient admission
      // failure at the full shortfall often succeeds at a partial target,
      // and a partial restore beats none (steady-state invariants accept
      // an acknowledged shortfall).
      bool restored = false;
      for (std::size_t attempt = 0;
           attempt <= options_.repair.max_retries && !restored; ++attempt) {
        const double target =
            shortfall * std::pow(options_.repair.retry_backoff,
                                 static_cast<double>(attempt));
        if (target <= kEps) break;
        double recovered = 0;
        auto enough = [&](const std::vector<PathInfo>& paths) {
          recovered = 0;
          for (const PathInfo& p : paths) recovered += p.standalone_rate;
          return recovered + kEps >= target;
        };
        std::vector<PathInfo> extra =
            find_paths(pa.app, residual_, target, enough);
        const bool last = attempt == options_.repair.max_retries;
        if (recovered + kEps >= target || (last && !extra.empty())) {
          for (PathInfo& p : extra) {
            apply_gr_delta(p, p.standalone_rate);
            pa.path_rates.push_back(p.standalone_rate);
            pa.allocated_rate += p.standalone_rate;
            pa.paths.push_back(std::move(p));
            ++report.paths_added;
          }
          restored = pa.allocated_rate + kEps >= pa.app.qoe.min_rate;
        } else if (!last) {
          ++report.retries;
          if (reg) reg->counter("scheduler.repair.retries").add(1);
        }
      }
      if (pa.allocated_rate + kEps >= pa.app.qoe.min_rate)
        report.repaired.push_back(pa.app.name);
      else
        report.still_degraded.push_back(pa.app.name);
    } else if (pa.paths.empty()) {
      // BE app with no service left: re-provision one path against the
      // priority-share prediction (eq. (6)); rates come from the PF
      // re-solve below.  On failure the app stays placed with zero paths.
      // The app itself has an empty footprint right now, so the cached
      // competing-priority index already excludes it.
      const CapacitySnapshot& effective =
          options_.use_prediction
              ? predicted_capacities(pa.app.qoe.priority)
              : residual_;
      auto enough = [](const std::vector<PathInfo>& paths) {
        return !paths.empty();
      };
      std::vector<PathInfo> extra = find_paths(pa.app, effective, kInf, enough);
      if (!extra.empty()) {
        for (PathInfo& p : extra) {
          pa.path_rates.push_back(0.0);
          pa.paths.push_back(std::move(p));
          ++report.paths_added;
        }
        competing_add_app(pa);  // later restores see the new footprint
        report.repaired.push_back(pa.app.name);
      } else {
        report.still_degraded.push_back(pa.app.name);
      }
    }
    // BE apps that still hold alive paths only need the PF re-solve.
  }
  reallocate_best_effort();
  if (reg) {
    reg->counter("scheduler.repair.paths_dropped").add(report.paths_dropped);
    reg->counter("scheduler.repair.paths_added").add(report.paths_added);
  }

  // Fallback: if the incremental result degraded the global carried rate
  // past the configured bound relative to the last healthy state, escalate
  // to the stop-the-world rebalance.
  report.global_rate_after = global_rate();
  const double floor =
      (1.0 - options_.repair.max_rate_degradation) * report.global_rate_before;
  if (options_.repair.allow_fallback && report.global_rate_before > kEps &&
      report.global_rate_after + kEps < floor) {
    report.fell_back = true;
    if (reg) reg->counter("scheduler.repair.fallbacks").add(1);
    (void)rebalance();  // resets usage/healthy itself
    // rebalance() only reports apps whose dead paths *it* shed — the
    // incremental pass already shed them — so recompute the outcome lists
    // from live state: still degraded = GR below guarantee or BE with no
    // paths left; repaired = every other touched app.
    report.still_degraded = degraded_gr_apps();
    for (const PlacedApp& pa : placed_)
      if (pa.app.qoe.cls == QoeClass::kBestEffort && pa.paths.empty())
        report.still_degraded.push_back(pa.app.name);
    report.repaired.clear();
    for (std::size_t pi : order) {
      const std::string& name = placed_[pi].app.name;
      if (std::find(report.still_degraded.begin(),
                    report.still_degraded.end(),
                    name) == report.still_degraded.end())
        report.repaired.push_back(name);
    }
    report.global_rate_after = global_rate();
  }

  if (obs::DecisionLog* log = obs::decision_log()) {
    const std::string elem = element_label(net_, element);
    for (std::size_t pi : order) {
      const PlacedApp& pa = placed_[pi];
      const bool ok =
          std::find(report.still_degraded.begin(), report.still_degraded.end(),
                    pa.app.name) == report.still_degraded.end();
      log->record(obs::DecisionKind::kRepair, pa.app.name, qoe_name(pa.app),
                  "repair after " + elem + ": " +
                      (ok ? "restored" : "still degraded") +
                      (report.fell_back ? " (fell back to rebalance)" : ""),
                  pa.allocated_rate, 0.0, pa.paths.size());
    }
  }

  usage_valid_ = false;  // touched apps' path lists changed
  competing_valid_ = false;
  healthy_rate_ = report.global_rate_after;
  if (!report.fell_back) run_validation_hook();  // rebalance() already ran it
  return report;
}

std::vector<std::string> Scheduler::degraded_gr_apps() const {
  std::vector<std::string> degraded;
  for (const PlacedApp& pa : placed_) {
    if (pa.app.qoe.cls != QoeClass::kGuaranteedRate) continue;
    double alive_rate = 0;
    for (std::size_t k = 0; k < pa.paths.size(); ++k)
      if (path_alive(pa.paths[k])) alive_rate += pa.path_rates[k];
    if (alive_rate + kEps < pa.app.qoe.min_rate)
      degraded.push_back(pa.app.name);
  }
  return degraded;
}

AdmissionResult Scheduler::submit(const Application& app) {
  const obs::ScopedTimer span("scheduler.submit");
  app.validate();
  const AdmissionResult result = app.qoe.cls == QoeClass::kBestEffort
                                     ? submit_best_effort(app)
                                     : submit_guaranteed_rate(app);
  log_admission(app, result);
  if (result.admitted) {
    index_new_app();  // keep the element->path index warm for repair()
    healthy_rate_ = global_rate();
  }
  run_validation_hook();
  return result;
}

std::vector<PathInfo> Scheduler::find_paths(const Application& app,
                                            const CapacitySnapshot& start,
                                            double rate_cap,
                                            const StopPredicate& enough) const {
  ProvisioningOptions opts;
  opts.max_paths = options_.max_paths;
  opts.diversity = options_.path_diversity;
  opts.overlap_penalty = options_.overlap_penalty;
  opts.rate_cap = rate_cap;
  return provision_paths(net_, *app.graph, app.pinned, start, *assigner_,
                         opts, enough);
}

AdmissionResult Scheduler::submit_best_effort(const Application& app) {
  AdmissionResult result;

  // Step 1 (Fig. 3): predict the capacities this app's priority earns it,
  // on top of what GR reservations left behind.  The competing-priority
  // totals are cached and extended incrementally per admission, so batch
  // member k only touches the elements member k-1 actually changed.
  const CapacitySnapshot& effective =
      options_.use_prediction ? predicted_capacities(app.qoe.priority)
                              : residual_;

  // Steps 2-3: add task-assignment paths until the availability target.
  const double target = app.qoe.availability;
  double achieved = 0.0;
  auto enough = [&](const std::vector<PathInfo>& paths) {
    std::vector<std::vector<ElementKey>> element_sets;
    for (const PathInfo& pi : paths) element_sets.push_back(pi.elements);
    const double prev = achieved;
    achieved = availability_any(net_, element_sets);
    log_path_add(app, paths.size(), paths.back().standalone_rate, achieved,
                 target, "availability");
    if (achieved + kEps >= target) return true;
    // Stagnation: an extra path that reuses the same elements cannot help.
    return paths.size() > 1 && achieved <= prev + kEps;
  };
  std::vector<PathInfo> paths = find_paths(app, effective, kInf, enough);

  if (paths.empty()) {
    result.reason = "no feasible task-assignment path";
    return result;
  }
  if (achieved + kEps < target) {
    result.reason = "availability target not reachable (achieved " +
                    std::to_string(achieved) + ")";
    return result;
  }

  // Steps 4-5: commit tentatively, re-solve the PF allocation (4).
  PlacedApp placed;
  placed.app = app;
  placed.paths = std::move(paths);
  placed.path_rates.assign(placed.paths.size(), 0.0);
  placed_.push_back(std::move(placed));
  if (!maybe_reallocate()) {
    placed_.pop_back();
    reallocate_best_effort();  // restore previous rates
    result.reason = "resource allocation failed";
    return result;
  }
  if (batch_active_) batch_added_be_.push_back(app.name);

  const PlacedApp& committed = placed_.back();
  result.admitted = true;
  result.path_count = committed.paths.size();
  result.rate = committed.allocated_rate;
  result.availability = achieved;
  return result;
}

AdmissionResult Scheduler::submit_guaranteed_rate(const Application& app) {
  AdmissionResult result;
  const double min_rate = app.qoe.min_rate;
  const double target = app.qoe.min_rate_availability;

  double achieved = 0.0;
  auto enough = [&](const std::vector<PathInfo>& paths) {
    std::vector<std::vector<ElementKey>> element_sets;
    std::vector<double> rates;
    double sum = 0;
    for (const PathInfo& pi : paths) {
      element_sets.push_back(pi.elements);
      rates.push_back(pi.standalone_rate);
      sum += pi.standalone_rate;
    }
    if (target <= 0) {
      // Pure rate request: availability is the probability the rate is met
      // assuming everything up, i.e. 1 iff the aggregate reaches R_J.
      achieved = sum + kEps >= min_rate ? 1.0 : 0.0;
      log_path_add(app, paths.size(), paths.back().standalone_rate, sum,
                   min_rate, "aggregate rate");
      return achieved > 0;
    }
    if (obs::MetricsRegistry* reg = obs::metrics())
      reg->counter("scheduler.gr_subset_sum_evals").add(1);
    achieved = min_rate_availability(net_, element_sets, rates, min_rate);
    log_path_add(app, paths.size(), paths.back().standalone_rate, achieved,
                 target, "min-rate availability");
    return achieved + kEps >= target;
  };
  std::vector<PathInfo> paths = find_paths(app, residual_, min_rate, enough);

  if (paths.empty()) {
    result.reason = "no feasible task-assignment path";
    return result;
  }
  const bool met = target <= 0 ? achieved > 0 : achieved + kEps >= target;
  if (!met) {
    result.reason =
        target <= 0
            ? "requested rate not reachable with the available paths"
            : "min-rate availability not reachable (achieved " +
                  std::to_string(achieved) + ")";
    return result;
  }

  // Admit: reserve every path's resources permanently (§IV-C: guaranteed
  // resources are not shared with later arrivals).
  PlacedApp placed;
  placed.app = app;
  placed.allocated_rate = 0;
  for (PathInfo& pi : paths) {
    // Incremental reservation: residual_ is refreshed on the committed
    // path's own elements only.
    apply_gr_delta(pi, pi.standalone_rate);
    placed.path_rates.push_back(pi.standalone_rate);
    placed.allocated_rate += pi.standalone_rate;
  }
  placed.paths = std::move(paths);
  placed_.push_back(std::move(placed));

  // The BE pool shrank: re-run the PF allocation over the survivors.
  maybe_reallocate();

  result.admitted = true;
  result.path_count = placed_.back().paths.size();
  result.rate = placed_.back().allocated_rate;
  result.availability = target <= 0 ? 1.0 : achieved;
  return result;
}

namespace {
/// Bucket bounds of the per-solve Newton-iteration histogram
/// (`scheduler.solver.newton_iters`, docs/observability.md).
std::vector<double> newton_iter_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
}
}  // namespace

bool Scheduler::reallocate_best_effort() {
  const obs::ScopedTimer span("scheduler.be_resolve");
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg) reg->counter("scheduler.be_resolves").add(1);
  // Row layout: NCP j resource r -> j*R + r; link l -> ncp_count*R + l.
  const std::size_t nr = net_.schema().size();
  const std::size_t ncp_rows = net_.ncp_count() * nr;
  const std::size_t rows = ncp_rows + net_.link_count();

  PfProblem pf;
  pf.capacity.assign(rows, 0.0);
  for (NcpId j = 0; j < static_cast<NcpId>(net_.ncp_count()); ++j)
    for (std::size_t r = 0; r < nr; ++r)
      pf.capacity[j * nr + r] = residual_.ncp(j)[r];
  for (LinkId l = 0; l < static_cast<LinkId>(net_.link_count()); ++l)
    pf.capacity[ncp_rows + l] = residual_.link(l);

  struct VarRef {
    std::size_t placed_index;
    std::size_t path_index;
  };
  std::vector<VarRef> var_refs;
  std::vector<std::size_t> app_of_placed(placed_.size(), SIZE_MAX);
  // The previous solve's rates, captured per variable while building the
  // columns (before any reset) — the warm-start primal point.
  PfWarmStart warm;

  for (std::size_t pi = 0; pi < placed_.size(); ++pi) {
    PlacedApp& pa = placed_[pi];
    if (pa.app.qoe.cls != QoeClass::kBestEffort) continue;
    pa.allocated_rate = 0;  // surviving paths are written back post-solve

    bool app_has_variable = false;
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      PfProblem::Column col;
      // A path is unusable when any element it touches failed — including
      // transit NCPs, which carry no load but must forward the stream.
      bool blocked = !path_alive(pa.paths[k]);
      const LoadMap& load = pa.paths[k].load;
      // The load is supported on the path's own element list, so the
      // column can be built from it instead of sweeping the network.
      for (const ElementKey& e : pa.paths[k].elements) {
        if (e.kind == ElementKey::Kind::kNcp) {
          const ResourceVector& a = load.ncp_load(e.index);
          for (std::size_t r = 0; r < nr; ++r) {
            if (a[r] <= 0) continue;
            const std::size_t row =
                static_cast<std::size_t>(e.index) * nr + r;
            if (pf.capacity[row] <= 0) blocked = true;
            col.entries.emplace_back(row, a[r]);
          }
        } else {
          const double a = load.link_load(e.index);
          if (a <= 0) continue;
          const std::size_t row = ncp_rows + static_cast<std::size_t>(e.index);
          if (pf.capacity[row] <= 0) blocked = true;
          col.entries.emplace_back(row, a);
        }
      }
      if (blocked) {  // a failure or GR reservation starved this path
        pa.path_rates[k] = 0.0;
        continue;
      }
      // Keep the historical NCP-rows-then-links entry order (element lists
      // are unordered; rows within a path are distinct).
      std::sort(col.entries.begin(), col.entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (!app_has_variable) {
        app_of_placed[pi] = pf.app_priority.size();
        pf.app_priority.push_back(pa.app.qoe.priority);
        app_has_variable = true;
      }
      pf.columns.push_back(std::move(col));
      pf.var_app.push_back(app_of_placed[pi]);
      warm.path_rate.push_back(pa.path_rates[k]);
      var_refs.push_back({pi, k});
    }
  }

  // On any failure below, leave the same state the historical code did:
  // every BE allocation zeroed (callers re-solve after rolling back).
  auto zero_be_rates = [&] {
    for (PlacedApp& pa : placed_) {
      if (pa.app.qoe.cls != QoeClass::kBestEffort) continue;
      pa.allocated_rate = 0;
      std::fill(pa.path_rates.begin(), pa.path_rates.end(), 0.0);
    }
  };

  if (pf.columns.empty()) {
    zero_be_rates();  // only blocked paths (if any) — all rates are 0
    return true;
  }

  PfOptions popt;
  popt.warm_newton_budget = options_.pf_warm_newton_budget;
  bool warm_usable = options_.pf_warm_start && !pf_last_dual_.empty();
  if (warm_usable) {
    // A warm point needs at least one positive previous rate; a start of
    // all-cold defaults would just be a worse cold solve.
    warm_usable = std::any_of(warm.path_rate.begin(), warm.path_rate.end(),
                              [](double r) { return r > 0; });
  }
  if (warm_usable) {
    warm.dual = pf_last_dual_;
    popt.warm = &warm;
  }

  PfSolution sol;
  try {
    sol = solve_weighted_pf(pf, popt);
  } catch (const std::exception&) {
    zero_be_rates();
    return false;
  }

  ++solver_stats_.solves;
  solver_stats_.newton_iters += static_cast<std::uint64_t>(sol.newton_iters);
  solver_stats_.last_newton_iters = sol.newton_iters;
  if (sol.warm_started)
    ++solver_stats_.warm_hits;
  else if (sol.warm_fallback)
    ++solver_stats_.warm_fallbacks;
  else
    ++solver_stats_.warm_misses;
  if (reg) {
    reg->counter(sol.warm_started    ? "scheduler.solver.warm_start_hits"
                 : sol.warm_fallback ? "scheduler.solver.warm_start_fallbacks"
                                     : "scheduler.solver.warm_start_misses")
        .add(1);
    reg->histogram("scheduler.solver.newton_iters", newton_iter_bounds())
        .observe(static_cast<double>(sol.newton_iters));
  }

  if (sol.max_violation > 1e-6) {
    pf_last_dual_.clear();
    zero_be_rates();
    return false;
  }
  // Persist the dual point for the next solve's warm start (the primal
  // lives in path_rates until then).
  if (sol.converged)
    pf_last_dual_ = std::move(sol.dual);
  else
    pf_last_dual_.clear();

  for (std::size_t v = 0; v < var_refs.size(); ++v) {
    PlacedApp& pa = placed_[var_refs[v].placed_index];
    pa.path_rates[var_refs[v].path_index] = sol.path_rate[v];
    pa.allocated_rate += sol.path_rate[v];
  }
  return true;
}

double Scheduler::be_utility() const {
  double u = 0;
  bool any = false;
  for (const PlacedApp& pa : placed_) {
    if (pa.app.qoe.cls != QoeClass::kBestEffort) continue;
    any = true;
    if (pa.allocated_rate <= 0) return -kInf;
    u += pa.app.qoe.priority * std::log(pa.allocated_rate);
  }
  return any ? u : 0.0;
}

double Scheduler::total_gr_rate() const {
  double total = 0;
  for (const PlacedApp& pa : placed_)
    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate)
      total += pa.allocated_rate;
  return total;
}

double Scheduler::total_be_rate() const {
  double total = 0;
  for (const PlacedApp& pa : placed_)
    if (pa.app.qoe.cls == QoeClass::kBestEffort) total += pa.allocated_rate;
  return total;
}

}  // namespace sparcle
