#pragma once

#include <vector>

#include "core/scheduler.hpp"

/// \file capacity_planner.hpp
/// Deployment sizing on top of the admission controller: given a template
/// workload mix, how many copies can a dispersed site carry before an
/// admission fails?  The question every capacity plan starts with ("how
/// many cameras can this site host?"), answered with the same machinery
/// that will run the site.

namespace sparcle {

/// Outcome of a plan_capacity() scan.
struct PlanningResult {
  /// Largest n such that n interleaved copies of the whole mix are all
  /// admitted by a fresh scheduler.
  std::size_t max_copies{0};
  /// Aggregate GR rate at max_copies (0 when max_copies == 0).
  double total_gr_rate{0.0};
  /// Proportional-fair BE utility at max_copies (0 when max_copies == 0).
  double be_utility{0.0};
  /// The admission result of the first failing application at
  /// max_copies + 1 (why the next copy does not fit).
  std::string limiting_reason;
};

/// Scans n = 1, 2, ... up to `max_copies_cap`, submitting n copies of
/// every application in `mix` (copy-major order, names suffixed "#k") to
/// a fresh Scheduler per probe, and returns the last n that fully fits —
/// where "fits" means every copy is admitted AND no Best-Effort tenant is
/// starved to zero rate.  Throws std::invalid_argument on an empty mix.
PlanningResult plan_capacity(const Network& net,
                             const std::vector<Application>& mix,
                             const SchedulerOptions& options = {},
                             std::size_t max_copies_cap = 64);

}  // namespace sparcle
