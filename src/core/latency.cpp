#include "core/latency.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "model/capacity.hpp"

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LatencyEstimate estimate_latency(const Network& net, const TaskGraph& graph,
                                 const Placement& placement, double rate) {
  if (rate < 0) throw std::invalid_argument("estimate_latency: rate < 0");
  std::string err;
  if (!placement.validate(graph, net, &err))
    throw std::invalid_argument("estimate_latency: " + err);

  const LoadMap load(net, graph, placement);
  const CapacitySnapshot cap(net);

  LatencyEstimate est;
  est.ct_sojourn.assign(graph.ct_count(), 0.0);
  est.tt_sojourn.assign(graph.tt_count(), 0.0);

  // Per-element utilization at this rate.
  auto ncp_utilization = [&](NcpId j) {
    double rho = 0;
    const ResourceVector& a = load.ncp_load(j);
    for (std::size_t r = 0; r < a.size(); ++r)
      if (a[r] > 0 && cap.ncp(j)[r] > 0)
        rho = std::max(rho, rate * a[r] / cap.ncp(j)[r]);
      else if (a[r] > 0)
        rho = kInf;
    return rho;
  };
  auto link_utilization = [&](LinkId l) {
    const double a = load.link_load(l);
    if (a <= 0) return 0.0;
    return cap.link(l) > 0 ? rate * a / cap.link(l) : kInf;
  };

  est.stable = true;
  est.bottleneck_utilization = 0.0;
  auto track = [&](ElementKey e, double rho) {
    if (rho > est.bottleneck_utilization) {
      est.bottleneck_utilization = rho;
      est.bottleneck = e;
    }
    if (rho >= 1.0) est.stable = false;
  };
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    track(ElementKey::ncp(j), ncp_utilization(j));
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    track(ElementKey::link(l), link_utilization(l));
  if (!est.stable) {
    est.total = kInf;
    return est;
  }

  // PS sojourn of each CT and each TT hop.
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i) {
    const NcpId j = placement.ct_host(i);
    const ResourceVector& a = graph.ct(i).requirement;
    double service = 0;
    for (std::size_t r = 0; r < a.size(); ++r)
      if (a[r] > 0) service = std::max(service, a[r] / cap.ncp(j)[r]);
    est.ct_sojourn[i] = service / (1.0 - ncp_utilization(j));
  }
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    double sum = 0;
    for (LinkId l : placement.tt_route(k)) {
      const double service = graph.tt(k).bits_per_unit / cap.link(l);
      sum += service / (1.0 - link_utilization(l));
    }
    est.tt_sojourn[k] = sum;
  }

  // Critical path over the DAG: finish(i) = ct_sojourn(i) + max over
  // inbound TTs of (finish(src) + tt_sojourn).
  std::vector<double> finish(graph.ct_count(), 0.0);
  for (CtId i : graph.topological_order()) {
    double ready = 0;
    for (TtId k : graph.in_tts(i))
      ready = std::max(ready, finish[graph.tt(k).src] + est.tt_sojourn[k]);
    finish[i] = ready + est.ct_sojourn[i];
  }
  est.total = 0;
  for (CtId s : graph.sinks()) est.total = std::max(est.total, finish[s]);
  return est;
}

}  // namespace sparcle
