#include "core/fairness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/smallmat.hpp"

namespace sparcle {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Internal normalized problem: rows scaled so capacity == 1, and rows
/// with no coefficients dropped.
struct Scaled {
  std::vector<PfProblem::Column> columns;  // coefficients divided by C_row
  std::vector<std::size_t> row_of;         // scaled row -> original row
  std::size_t rows{0};
};

Scaled scale_problem(const PfProblem& p) {
  // A row participates if some column loads it.
  std::vector<char> used(p.capacity.size(), 0);
  for (const auto& col : p.columns)
    for (const auto& [row, coeff] : col.entries)
      if (coeff > 0) used.at(row) = 1;

  std::vector<std::size_t> new_row(p.capacity.size(), SIZE_MAX);
  Scaled s;
  for (std::size_t e = 0; e < p.capacity.size(); ++e) {
    if (!used[e]) continue;
    if (p.capacity[e] <= 0)
      throw std::invalid_argument(
          "solve_weighted_pf: a loaded constraint row has zero capacity");
    new_row[e] = s.rows++;
    s.row_of.push_back(e);
  }
  s.columns.resize(p.columns.size());
  for (std::size_t v = 0; v < p.columns.size(); ++v)
    for (const auto& [row, coeff] : p.columns[v].entries)
      if (coeff > 0)
        s.columns[v].entries.emplace_back(new_row[row],
                                          coeff / p.capacity[row]);
  return s;
}

}  // namespace

PfSolution solve_weighted_pf(const PfProblem& p, const PfOptions& opt) {
  const std::size_t nv = p.var_count();
  const std::size_t na = p.app_count();
  if (na == 0 || nv == 0)
    throw std::invalid_argument("solve_weighted_pf: empty problem");
  if (p.var_app.size() != nv)
    throw std::invalid_argument("solve_weighted_pf: var_app size mismatch");
  for (double pr : p.app_priority)
    if (!(pr > 0))
      throw std::invalid_argument(
          "solve_weighted_pf: priorities must be positive");
  std::vector<char> app_has_var(na, 0);
  for (std::size_t a : p.var_app) app_has_var.at(a) = 1;
  for (std::size_t a = 0; a < na; ++a)
    if (!app_has_var[a])
      throw std::invalid_argument(
          "solve_weighted_pf: application with no path variables");

  const Scaled s = scale_problem(p);
  const std::size_t m = s.rows;

  // Strictly feasible start: x_v = t with t = 0.4 / max_row Σ_v coeff.
  std::vector<double> row_sum(m, 0.0);
  for (const auto& col : s.columns)
    for (const auto& [row, coeff] : col.entries) row_sum[row] += coeff;
  double max_row = 0;
  for (double rs : row_sum) max_row = std::max(max_row, rs);
  const double t0 = max_row > 0 ? 0.4 / max_row : 1.0;

  auto app_sum = [&](const std::vector<double>& xx, std::vector<double>& sa) {
    sa.assign(na, 0.0);
    for (std::size_t v = 0; v < nv; ++v) sa[p.var_app[v]] += xx[v];
  };
  auto slacks = [&](const std::vector<double>& xx, std::vector<double>& sl) {
    sl.assign(m, 1.0);
    for (std::size_t v = 0; v < nv; ++v)
      for (const auto& [row, coeff] : s.columns[v].entries)
        sl[row] -= coeff * xx[v];
  };

  std::vector<double> sa, sl;
  // Barrier objective for the line search.
  auto barrier_value = [&](const std::vector<double>& xx, double mu) {
    app_sum(xx, sa);
    slacks(xx, sl);
    double val = 0;
    for (std::size_t a = 0; a < na; ++a) {
      if (sa[a] <= 0) return -kInf;
      val += p.app_priority[a] * std::log(sa[a]);
    }
    for (double sv : sl) {
      if (sv <= 0) return -kInf;
      val += mu * std::log(sv);
    }
    for (double xv : xx) {
      if (xv <= 0) return -kInf;
      val += mu * std::log(xv);
    }
    return val;
  };

  const double n_constraints = static_cast<double>(m + nv);

  // The log-barrier μ-continuation loop, shared by the cold solve and the
  // warm-start attempt.  Runs on `x` in place from barrier parameter `mu0`
  // with at most `budget` Newton iterations.
  struct BarrierStats {
    int iters{0};          // Newton iterations executed
    double mu_final{1.0};  // μ of the last executed Newton phase
    bool reached_tol{false};
    bool stationary{false};  // final phase ended at a stationary point
  };
  std::vector<double> grad(nv), dir(nv), xn(nv);
  auto run_barrier = [&](std::vector<double>& x, double mu0, int budget) {
    BarrierStats st;
    double mu = mu0;
    st.mu_final = mu0;
    int newton_budget = budget;

    while (mu * n_constraints > opt.duality_gap_tol && newton_budget > 0) {
      st.mu_final = mu;
      bool settled = false;
      // Newton iterations at this μ.
      for (int it = 0; it < 50 && newton_budget > 0; ++it, --newton_budget) {
        ++st.iters;
        app_sum(x, sa);
        slacks(x, sl);

        // Gradient.
        for (std::size_t v = 0; v < nv; ++v) {
          double g = p.app_priority[p.var_app[v]] / sa[p.var_app[v]];
          g += mu / x[v];
          for (const auto& [row, coeff] : s.columns[v].entries)
            g -= mu * coeff / sl[row];
          grad[v] = g;
        }

        // Negative Hessian (positive definite).
        Matrix h(nv, nv, 0.0);
        for (std::size_t v = 0; v < nv; ++v) {
          const std::size_t a = p.var_app[v];
          const double app_term = p.app_priority[a] / (sa[a] * sa[a]);
          for (std::size_t u = 0; u < nv; ++u)
            if (p.var_app[u] == a) h(v, u) += app_term;
          h(v, v) += mu / (x[v] * x[v]);
        }
        for (std::size_t v = 0; v < nv; ++v)
          for (std::size_t u = 0; u <= v; ++u) {
            // Σ_rows μ R_rv R_ru / slack², exploiting sparse columns.
            double val = 0;
            for (const auto& [rv, cv] : s.columns[v].entries)
              for (const auto& [ru, cu] : s.columns[u].entries)
                if (rv == ru) val += mu * cv * cu / (sl[rv] * sl[rv]);
            h(v, u) += val;
            if (u != v) h(u, v) += val;
          }

        if (!cholesky_solve(h, grad, dir)) {
          // Numerical trouble: fall back to a (scaled) gradient step.
          dir = grad;
        }

        // Newton decrement (stopping criterion): grad^T dir.
        double decrement = 0;
        for (std::size_t v = 0; v < nv; ++v) decrement += grad[v] * dir[v];
        if (decrement < 1e-12) {
          settled = true;
          break;
        }

        // Backtracking line search on the barrier objective.
        const double base = barrier_value(x, mu);
        double step = 1.0;
        bool moved = false;
        for (int ls = 0; ls < 60; ++ls, step *= 0.5) {
          for (std::size_t v = 0; v < nv; ++v) xn[v] = x[v] + step * dir[v];
          const double val = barrier_value(xn, mu);
          if (val > base + 1e-4 * step * decrement) {
            x = xn;
            moved = true;
            break;
          }
        }
        if (!moved) {
          settled = true;
          break;
        }
      }
      st.stationary = settled;
      mu *= 0.15;
    }
    st.reached_tol = mu * n_constraints <= opt.duality_gap_tol;
    return st;
  };

  PfSolution out;
  std::vector<double> x;
  BarrierStats st;
  int total_iters = 0;
  bool have_solution = false;

  // Warm-start attempt: project the previous primal point into the strict
  // interior of the *new* feasible region, seed μ from the previous duals'
  // complementarity products, and accept only if the attempt reaches the
  // duality-gap tolerance at a Newton-stationary point within budget.
  if (opt.warm != nullptr && opt.warm->path_rate.size() == nv && m > 0) {
    std::vector<double> xw(nv);
    for (std::size_t v = 0; v < nv; ++v)
      xw[v] = opt.warm->path_rate[v] > 0 ? opt.warm->path_rate[v] : t0;
    // Scale into the strict interior: capacities may have shrunk (or new
    // columns landed on tight rows) since the previous solve, and even an
    // unchanged optimum sits on the boundary (tight-row slack ~ tol).  A
    // uniform shrink to usage 1-δ restores enough slack for the barrier to
    // be well-conditioned while displacing the point only O(δ) — δ is the
    // re-centering cost the warm attempt pays, so keep it small.
    constexpr double kInteriorDelta = 1e-3;
    std::vector<double> use(m, 0.0);
    for (std::size_t v = 0; v < nv; ++v)
      for (const auto& [row, coeff] : s.columns[v].entries)
        use[row] += coeff * xw[v];
    double max_use = 0;
    for (double uv : use) max_use = std::max(max_use, uv);
    if (max_use >= 1.0 - kInteriorDelta) {
      const double shrink = (1.0 - kInteriorDelta) / max_use;
      for (double& xv : xw) xv *= shrink;
    }
    // μ₀ ≈ the *median* per-row complementarity λ·slack at the warm point:
    // on the central path every row's product equals μ exactly, so for a
    // small delta the majority of rows still report the μ the previous
    // solve ended at (adjusted by the projection's δ), and the median is
    // blind to the few rows the delta disturbed — a mean is not.
    double mu0 = 1e-4;
    if (opt.warm->dual.size() == p.capacity.size()) {
      slacks(xw, sl);
      std::vector<double> comp(m);
      for (std::size_t row = 0; row < m; ++row)
        comp[row] = opt.warm->dual[s.row_of[row]] *
                    p.capacity[s.row_of[row]] * std::max(sl[row], 0.0);
      std::nth_element(comp.begin(), comp.begin() + m / 2, comp.end());
      mu0 = comp[m / 2];
    }
    // Keep μ₀ above the termination threshold so at least one Newton phase
    // always re-centers the projected point before we report convergence.
    const double mu_floor = 4.0 * opt.duality_gap_tol / n_constraints;
    mu0 = std::clamp(mu0, mu_floor, 0.05);

    BarrierStats warm_st = run_barrier(xw, mu0, opt.warm_newton_budget);
    total_iters += warm_st.iters;
    if (warm_st.reached_tol && warm_st.stationary) {
      x = std::move(xw);
      st = warm_st;
      have_solution = true;
      out.warm_started = true;
    } else {
      out.warm_fallback = true;
    }
  }

  if (!have_solution) {
    x.assign(nv, t0);
    st = run_barrier(x, 1.0, opt.max_newton_steps);
    total_iters += st.iters;
  }

  // Assemble the solution in original units.
  out.path_rate = x;
  app_sum(x, out.app_rate);
  out.utility = 0;
  for (std::size_t a = 0; a < na; ++a)
    out.utility += p.app_priority[a] * std::log(out.app_rate[a]);

  slacks(x, sl);
  out.dual.assign(p.capacity.size(), 0.0);
  double worst = m == 0 ? 0.0 : -kInf;
  const double mu_last = st.mu_final;  // μ of the final Newton phase
  for (std::size_t row = 0; row < m; ++row) {
    // λ_row = μ / slack (scaled); the row was divided by C, so the price in
    // original units is λ_scaled / C.
    out.dual[s.row_of[row]] =
        mu_last / std::max(sl[row], 1e-300) / p.capacity[s.row_of[row]];
    // Violation in original units (negative while strictly feasible).
    worst = std::max(worst, -sl[row] * p.capacity[s.row_of[row]]);
  }
  out.max_violation = worst;
  out.converged = st.reached_tol;
  out.newton_iters = total_iters;
  return out;
}

double pf_utility(const PfProblem& p, const std::vector<double>& path_rate) {
  if (path_rate.size() != p.var_count())
    throw std::invalid_argument("pf_utility: rate vector size mismatch");
  std::vector<double> sa(p.app_count(), 0.0);
  for (std::size_t v = 0; v < p.var_count(); ++v)
    sa[p.var_app[v]] += path_rate[v];
  double u = 0;
  for (std::size_t a = 0; a < p.app_count(); ++a) {
    if (sa[a] <= 0) return -kInf;
    u += p.app_priority[a] * std::log(sa[a]);
  }
  return u;
}

}  // namespace sparcle
