#include "core/smallmat.hpp"

#include <cmath>

namespace sparcle {

bool cholesky_solve(const Matrix& a, const std::vector<double>& b,
                    std::vector<double>& x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("cholesky_solve: shape mismatch");

  // Factor A = L L^T.
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0 || !std::isfinite(sum)) return false;
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return true;
}

}  // namespace sparcle
