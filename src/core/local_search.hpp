#pragma once

#include "core/assignment.hpp"

/// \file local_search.hpp
/// Hill-climbing refinement of a complete task assignment (extension; the
/// paper stops at the greedy of Algorithm 2).
///
/// Rounds of single-CT moves: every unpinned CT is tried on every other
/// host with all TT routes rebuilt (widest-path, source-to-sink order),
/// and the best strictly-improving move is committed.  Terminates at a
/// local optimum or after `max_rounds`.  Each round costs
/// O(|C| · |N| · routing), so the refined assigner stays polynomial; the
/// Fig. 8 ablation shows it closing most of the greedy's balanced-case
/// optimality gap.

namespace sparcle {

/// Knobs for refine_placement().
struct LocalSearchOptions {
  /// Maximum improvement rounds (each round scans all CT/host moves).
  int max_rounds{8};
};

/// Refines `start` (which must be feasible) by hill climbing; returns a
/// result whose rate is >= start.rate.  The problem's pins are respected.
AssignmentResult refine_placement(const AssignmentProblem& problem,
                                  const AssignmentResult& start,
                                  const LocalSearchOptions& options = {});

}  // namespace sparcle
