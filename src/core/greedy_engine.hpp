#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/assignment.hpp"
#include "core/widest_path.hpp"
#include "model/capacity.hpp"
#include "model/placement.hpp"

/// \file greedy_engine.hpp
/// Shared machinery for greedy one-CT-at-a-time assignment algorithms:
/// the γ_{i,j} evaluation of eq. (2), the widest-path TT routing, and the
/// incremental load bookkeeping.  SPARCLE's Algorithm 2 and the GS/GRand/
/// Random/T-Storm/VNE/HEFT/Cloud comparators all commit placements through
/// this engine, so they share identical routing and rate accounting — the
/// comparisons in the benchmarks isolate CT-placement quality.

namespace sparcle {

/// What a commit changed — the information SparcleAssigner's γ memoization
/// needs to decide which cached (best host, γ) entries the commit dirtied.
struct CommitEffects {
  /// At least one TT route added load to at least one link.  When false,
  /// only the host NCP's node load changed.
  bool routed_links{false};
};

/// Work counters one engine accumulated over its lifetime (snapshot of the
/// internal relaxed atomics — safe to read while parallel evaluation runs,
/// exact once the evaluation round joined).  SparcleAssigner flushes these
/// into the installed obs::MetricsRegistry under `assigner.*`.
struct EngineStats {
  std::uint64_t gamma_evals{0};       ///< γ(i,j) evaluations
  std::uint64_t widest_path_calls{0}; ///< Dijkstra runs (probes + routing)
  std::uint64_t bnb_prunes{0};        ///< candidates cut by the exact bound
};

/// Incremental commit engine for one-CT-at-a-time assignment.
class GreedyEngine {
 public:
  /// How commit() routes TTs between hosts.
  enum class Routing {
    kWidestPath,    ///< Algorithm 1 (load-aware) — SPARCLE and Optimal
    kShortestHops,  ///< load-oblivious BFS — the non-network-aware baselines
  };

  /// Binds to the problem (which must outlive the engine).
  explicit GreedyEngine(const AssignmentProblem& problem,
                        bool probe_with_min_bits_tt = true,
                        Routing routing = Routing::kWidestPath);

  /// The bound problem's network.
  const Network& net() const { return *problem_->net; }
  /// The bound problem's task graph.
  const TaskGraph& graph() const { return *problem_->graph; }
  /// The bound problem's effective capacities.
  const CapacitySnapshot& capacities() const { return problem_->capacities; }

  /// True once CT `i` has been committed.
  bool placed(CtId i) const { return placed_[i] != 0; }
  /// Number of committed CTs.
  std::size_t placed_count() const { return placed_count_; }
  /// Host of committed CT `i` (kInvalidId otherwise).
  NcpId host(CtId i) const { return placement_.ct_host(i); }
  /// Per-unit loads of everything committed so far.
  const LoadMap& load() const { return load_; }

  /// γ_{i,j} (eq. (2)): the bottleneck rate placing CT i on NCP j would
  /// impose given everything committed so far.  0 when NCP j cannot reach
  /// the host of a placed reachable CT.  Uses the engine's internal
  /// scratch workspace — not safe to call concurrently; use the overload
  /// below with per-thread workspaces for parallel evaluation.
  double gamma(CtId i, NcpId j) const;

  /// γ_{i,j} with a caller-owned workspace and an exact branch-and-bound
  /// floor: evaluation aborts as soon as the running rate can no longer
  /// exceed `floor`, returning a value <= floor (possibly inexact) in that
  /// case and the exact γ otherwise.  Pass -infinity for an exact answer.
  /// Thread-safe across distinct workspaces while no commit is running
  /// (the engine state is read-only here); call warm_probe_cache() once
  /// before concurrent use.
  double gamma(CtId i, NcpId j, WidestPathWorkspace& ws, double floor) const;

  /// argmax_j γ_{i,j}; stores the γ value in *gamma_out when non-null.
  /// Deterministic tie-break: among hosts with equal γ the lowest NCP id
  /// wins.  This is the spec any reordered or parallel evaluation must
  /// match; the returned γ is always exact even though losing candidates
  /// are pruned against the incumbent.
  NcpId best_host(CtId i, double* gamma_out = nullptr) const;

  /// best_host with a caller-owned workspace (for parallel per-CT rounds).
  NcpId best_host(CtId i, WidestPathWorkspace& ws, double* gamma_out) const;

  /// Commits CT i to NCP j, booking its load and routing every TT towards
  /// already-placed direct neighbours along the widest path.  Reports
  /// which parts of the shared state the commit dirtied.
  CommitEffects commit(CtId i, NcpId j);

  /// Commits all pinned CTs of the bound problem.
  void commit_pins();

  /// True if some *placed* CT is related (ancestor/descendant) to i —
  /// i.e. γ(i, ·) has link terms, not just the node term.
  bool has_placed_relative(CtId i) const;

  /// Precomputes the probe-TT bits of every related CT pair (Alg. 2 line
  /// 12: the min- or max-bit TT of G(i,i')).  The pairs are a static
  /// property of the task graph, so this is computed once and makes
  /// gamma() allocation-free; it is also required before calling gamma()
  /// from multiple threads.
  void warm_probe_cache();

  /// Finalizes: returns the (possibly incomplete) placement and rate.
  AssignmentResult finish() &&;

  /// Snapshot of the work counters (see EngineStats).
  EngineStats stats() const {
    return {gamma_evals_.load(std::memory_order_relaxed),
            widest_path_calls_.load(std::memory_order_relaxed),
            bnb_prunes_.load(std::memory_order_relaxed)};
  }

 private:
  /// min_r C_j^(r) / (a_i^(r) + existing load on j) — the node term of
  /// eq. (2) and an upper bound on γ(i,j).
  double node_term(CtId i, NcpId j) const;
  /// bits_per_unit of the probe TT of G(i, other) (cached when warm).
  double probe_bits(CtId i, CtId other) const;
  double compute_probe_bits(CtId i, CtId other) const;

  const AssignmentProblem* problem_;
  bool probe_min_bits_;
  Routing routing_;
  Placement placement_;
  LoadMap load_;
  std::vector<char> placed_;
  std::size_t placed_count_{0};
  /// probe_bits_[i * ct_count + other]; valid only when probe_warm_.
  std::vector<double> probe_bits_;
  bool probe_warm_{false};
  /// Scratch for the serial gamma()/best_host()/commit() entry points.
  mutable WidestPathWorkspace scratch_;
  /// Relaxed work counters (see stats()); atomic because the per-round
  /// candidate evaluation calls gamma()/best_host() from worker threads.
  mutable std::atomic<std::uint64_t> gamma_evals_{0};
  mutable std::atomic<std::uint64_t> widest_path_calls_{0};
  mutable std::atomic<std::uint64_t> bnb_prunes_{0};
};

}  // namespace sparcle
