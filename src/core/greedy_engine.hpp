#pragma once

#include <vector>

#include "core/assignment.hpp"
#include "model/capacity.hpp"
#include "model/placement.hpp"

/// \file greedy_engine.hpp
/// Shared machinery for greedy one-CT-at-a-time assignment algorithms:
/// the γ_{i,j} evaluation of eq. (2), the widest-path TT routing, and the
/// incremental load bookkeeping.  SPARCLE's Algorithm 2 and the GS/GRand/
/// Random/T-Storm/VNE/HEFT/Cloud comparators all commit placements through
/// this engine, so they share identical routing and rate accounting — the
/// comparisons in the benchmarks isolate CT-placement quality.

namespace sparcle {

class GreedyEngine {
 public:
  /// How commit() routes TTs between hosts.
  enum class Routing {
    kWidestPath,    ///< Algorithm 1 (load-aware) — SPARCLE and Optimal
    kShortestHops,  ///< load-oblivious BFS — the non-network-aware baselines
  };

  /// Binds to the problem (which must outlive the engine).
  explicit GreedyEngine(const AssignmentProblem& problem,
                        bool probe_with_min_bits_tt = true,
                        Routing routing = Routing::kWidestPath);

  const Network& net() const { return *problem_->net; }
  const TaskGraph& graph() const { return *problem_->graph; }
  const CapacitySnapshot& capacities() const { return problem_->capacities; }

  bool placed(CtId i) const { return placed_[i] != 0; }
  std::size_t placed_count() const { return placed_count_; }
  NcpId host(CtId i) const { return placement_.ct_host(i); }
  const LoadMap& load() const { return load_; }

  /// γ_{i,j} (eq. (2)): the bottleneck rate placing CT i on NCP j would
  /// impose given everything committed so far.  0 when NCP j cannot reach
  /// the host of a placed reachable CT.
  double gamma(CtId i, NcpId j) const;

  /// argmax_j γ_{i,j}; stores the γ value in *gamma_out when non-null.
  /// Deterministic tie-break: the lowest NCP index wins.
  NcpId best_host(CtId i, double* gamma_out = nullptr) const;

  /// Commits CT i to NCP j, booking its load and routing every TT towards
  /// already-placed direct neighbours along the widest path.
  void commit(CtId i, NcpId j);

  /// Commits all pinned CTs of the bound problem.
  void commit_pins();

  /// Finalizes: returns the (possibly incomplete) placement and rate.
  AssignmentResult finish() &&;

 private:
  const AssignmentProblem* problem_;
  bool probe_min_bits_;
  Routing routing_;
  Placement placement_;
  LoadMap load_;
  std::vector<char> placed_;
  std::size_t placed_count_{0};
};

}  // namespace sparcle
