#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

/// \file smallmat.hpp
/// Minimal dense linear algebra for the interior-point fairness solver:
/// a row-major matrix and a Cholesky solve for symmetric positive-definite
/// systems.  Sized for the small Newton systems (tens of variables) the
/// resource-allocation problem produces; not a general-purpose BLAS.

namespace sparcle {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;
  /// A rows x cols matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Number of rows.
  std::size_t rows() const { return rows_; }
  /// Number of columns.
  std::size_t cols() const { return cols_; }
  /// Entry (r, c), unchecked.
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Mutable entry (r, c), unchecked.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization (A is not modified).  Returns false when A is not
/// (numerically) positive definite.
bool cholesky_solve(const Matrix& a, const std::vector<double>& b,
                    std::vector<double>& x);

}  // namespace sparcle
