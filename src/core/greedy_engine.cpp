#include "core/greedy_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

GreedyEngine::GreedyEngine(const AssignmentProblem& problem,
                           bool probe_with_min_bits_tt, Routing routing)
    : problem_(&problem),
      probe_min_bits_(probe_with_min_bits_tt),
      routing_(routing),
      placement_(*problem.graph),
      load_(LoadMap::zeros(*problem.net)),
      placed_(problem.graph->ct_count(), 0) {
  if (problem.net == nullptr || problem.graph == nullptr)
    throw std::invalid_argument("GreedyEngine: problem missing net or graph");
  // Force the network's lazy CSR adjacency build now, while we are single
  // threaded; parallel gamma evaluation reads it concurrently later.
  if (net().ncp_count() > 0) (void)net().incident_links(0);
}

double GreedyEngine::node_term(CtId i, NcpId j) const {
  const TaskGraph& g = graph();
  const CapacitySnapshot& cap = capacities();
  double rate = kInf;
  const ResourceVector& req = g.ct(i).requirement;
  const ResourceVector& existing = load_.ncp_load(j);
  for (std::size_t r = 0; r < req.size(); ++r) {
    const double denom = req[r] + existing[r];
    if (denom <= 0) continue;
    rate = std::min(rate, cap.ncp(j)[r] / denom);
  }
  return rate;
}

double GreedyEngine::compute_probe_bits(CtId i, CtId other) const {
  const TaskGraph& g = graph();
  const std::vector<TtId> between = g.tts_between(i, other);
  TtId k = between.front();
  for (TtId cand : between) {
    const bool better = probe_min_bits_
                            ? g.tt(cand).bits_per_unit < g.tt(k).bits_per_unit
                            : g.tt(cand).bits_per_unit > g.tt(k).bits_per_unit;
    if (better) k = cand;
  }
  return g.tt(k).bits_per_unit;
}

void GreedyEngine::warm_probe_cache() {
  if (probe_warm_) return;
  const std::size_t n = graph().ct_count();
  probe_bits_.assign(n * n, 0.0);
  for (CtId i = 0; i < static_cast<CtId>(n); ++i)
    for (CtId other = static_cast<CtId>(i + 1); other < static_cast<CtId>(n);
         ++other) {
      if (!graph().related(i, other)) continue;
      const double bits = compute_probe_bits(i, other);
      probe_bits_[static_cast<std::size_t>(i) * n + other] = bits;
      probe_bits_[static_cast<std::size_t>(other) * n + i] = bits;
    }
  probe_warm_ = true;
}

double GreedyEngine::probe_bits(CtId i, CtId other) const {
  if (probe_warm_)
    return probe_bits_[static_cast<std::size_t>(i) * graph().ct_count() +
                       other];
  return compute_probe_bits(i, other);
}

double GreedyEngine::gamma(CtId i, NcpId j) const {
  return gamma(i, j, scratch_, -kInf);
}

double GreedyEngine::gamma(CtId i, NcpId j, WidestPathWorkspace& ws,
                           double floor) const {
  const TaskGraph& g = graph();
  const CapacitySnapshot& cap = capacities();
  gamma_evals_.fetch_add(1, std::memory_order_relaxed);

  // Node term: min_r C_j^(r) / (a_i^(r) + existing load on j).
  double rate = node_term(i, j);
  if (rate <= floor) return rate;

  // Link terms: widest path towards each placed reachable CT, probed with
  // the minimum-bit TT of G(i, i') (Alg. 2 line 12).
  for (CtId other = 0; other < static_cast<CtId>(g.ct_count()); ++other) {
    if (!placed_[other] || other == i) continue;
    if (!g.related(i, other)) continue;
    const NcpId jo = placement_.ct_host(other);
    if (jo == j) continue;
    const TtPathWeight weight{&cap, &load_, probe_bits(i, other)};
    widest_path_calls_.fetch_add(1, std::memory_order_relaxed);
    const WidestWidthResult probe =
        widest_path_width(net(), j, jo, weight, ws, floor);
    if (probe.pruned) {
      bnb_prunes_.fetch_add(1, std::memory_order_relaxed);
      return std::min(rate, probe.width);  // <= floor
    }
    if (!probe.reachable) return 0.0;
    rate = std::min(rate, probe.width);
    if (rate <= floor) return rate;
  }
  return rate;
}

NcpId GreedyEngine::best_host(CtId i, double* gamma_out) const {
  return best_host(i, scratch_, gamma_out);
}

NcpId GreedyEngine::best_host(CtId i, WidestPathWorkspace& ws,
                              double* gamma_out) const {
  NcpId best = kInvalidId;
  double best_gamma = -kInf;
  for (NcpId j = 0; j < static_cast<NcpId>(net().ncp_count()); ++j) {
    // Exact branch-and-bound: γ(i,j) <= node_term(i,j), and a tie goes to
    // the lower NCP id (already the incumbent), so a candidate whose bound
    // cannot *strictly* beat the incumbent is skipped outright.
    if (best != kInvalidId && node_term(i, j) <= best_gamma) {
      bnb_prunes_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const double g = gamma(i, j, ws, best_gamma);
    if (g > best_gamma || (g == best_gamma && j < best)) {
      best_gamma = g;
      best = j;
    }
  }
  if (gamma_out != nullptr) *gamma_out = best_gamma;
  return best;
}

CommitEffects GreedyEngine::commit(CtId i, NcpId j) {
  if (placed_[i]) throw std::logic_error("GreedyEngine: CT placed twice");
  if (j < 0 || j >= static_cast<NcpId>(net().ncp_count()))
    throw std::invalid_argument("GreedyEngine: commit to unknown NCP");
  const TaskGraph& g = graph();
  placement_.place_ct(i, j);
  placed_[i] = 1;
  ++placed_count_;
  load_.add_ct(g, i, j);

  CommitEffects effects;
  auto route = [&](TtId k, NcpId from, NcpId to) {
    if (from == to) {
      placement_.place_tt(k, {});
      return;
    }
    widest_path_calls_.fetch_add(1, std::memory_order_relaxed);
    const WidestPathResult path =
        routing_ == Routing::kWidestPath
            ? best_tt_path(net(), capacities(), load_, g.tt(k).bits_per_unit,
                           from, to, scratch_)
            : shortest_hop_path(net(), from, to);
    if (!path.reachable) return;  // leaves the placement incomplete
    for (LinkId l : path.links) load_.add_tt(g, k, l);
    if (!path.links.empty()) effects.routed_links = true;
    placement_.place_tt(k, path.links);
  };

  for (TtId k : g.in_tts(i)) {
    const CtId src = g.tt(k).src;
    if (placed_[src]) route(k, placement_.ct_host(src), j);
  }
  for (TtId k : g.out_tts(i)) {
    const CtId dst = g.tt(k).dst;
    if (placed_[dst]) route(k, j, placement_.ct_host(dst));
  }
  return effects;
}

void GreedyEngine::commit_pins() {
  for (const auto& [ct, ncp] : problem_->pinned) commit(ct, ncp);
}

bool GreedyEngine::has_placed_relative(CtId i) const {
  const TaskGraph& g = graph();
  for (CtId other = 0; other < static_cast<CtId>(g.ct_count()); ++other)
    if (other != i && placed_[other] && g.related(i, other)) return true;
  return false;
}

AssignmentResult GreedyEngine::finish() && {
  return finish_assignment(*problem_, std::move(placement_));
}

}  // namespace sparcle
