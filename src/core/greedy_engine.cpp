#include "core/greedy_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/widest_path.hpp"

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

GreedyEngine::GreedyEngine(const AssignmentProblem& problem,
                           bool probe_with_min_bits_tt, Routing routing)
    : problem_(&problem),
      probe_min_bits_(probe_with_min_bits_tt),
      routing_(routing),
      placement_(*problem.graph),
      load_(LoadMap::zeros(*problem.net)),
      placed_(problem.graph->ct_count(), 0) {
  if (problem.net == nullptr || problem.graph == nullptr)
    throw std::invalid_argument("GreedyEngine: problem missing net or graph");
}

double GreedyEngine::gamma(CtId i, NcpId j) const {
  const TaskGraph& g = graph();
  const CapacitySnapshot& cap = capacities();

  // Node term: min_r C_j^(r) / (a_i^(r) + existing load on j).
  double rate = kInf;
  const ResourceVector& req = g.ct(i).requirement;
  const ResourceVector& existing = load_.ncp_load(j);
  for (std::size_t r = 0; r < req.size(); ++r) {
    const double denom = req[r] + existing[r];
    if (denom <= 0) continue;
    rate = std::min(rate, cap.ncp(j)[r] / denom);
  }

  // Link terms: widest path towards each placed reachable CT, probed with
  // the minimum-bit TT of G(i, i') (Alg. 2 line 12).
  for (CtId other = 0; other < static_cast<CtId>(g.ct_count()); ++other) {
    if (!placed_[other] || other == i) continue;
    if (!g.related(i, other)) continue;
    const NcpId jo = placement_.ct_host(other);
    if (jo == j) continue;
    const std::vector<TtId> between = g.tts_between(i, other);
    TtId k = between.front();
    for (TtId cand : between) {
      const bool better =
          probe_min_bits_
              ? g.tt(cand).bits_per_unit < g.tt(k).bits_per_unit
              : g.tt(cand).bits_per_unit > g.tt(k).bits_per_unit;
      if (better) k = cand;
    }
    const WidestPathResult path =
        best_tt_path(net(), cap, load_, g.tt(k).bits_per_unit, j, jo);
    if (!path.reachable) return 0.0;
    rate = std::min(rate, path.width);
  }
  return rate;
}

NcpId GreedyEngine::best_host(CtId i, double* gamma_out) const {
  NcpId best = kInvalidId;
  double best_gamma = -kInf;
  for (NcpId j = 0; j < static_cast<NcpId>(net().ncp_count()); ++j) {
    const double g = gamma(i, j);
    if (g > best_gamma) {
      best_gamma = g;
      best = j;
    }
  }
  if (gamma_out != nullptr) *gamma_out = best_gamma;
  return best;
}

void GreedyEngine::commit(CtId i, NcpId j) {
  if (placed_[i]) throw std::logic_error("GreedyEngine: CT placed twice");
  if (j < 0 || j >= static_cast<NcpId>(net().ncp_count()))
    throw std::invalid_argument("GreedyEngine: commit to unknown NCP");
  const TaskGraph& g = graph();
  placement_.place_ct(i, j);
  placed_[i] = 1;
  ++placed_count_;
  load_.add_ct(g, i, j);

  auto route = [&](TtId k, NcpId from, NcpId to) {
    if (from == to) {
      placement_.place_tt(k, {});
      return;
    }
    const WidestPathResult path =
        routing_ == Routing::kWidestPath
            ? best_tt_path(net(), capacities(), load_,
                           g.tt(k).bits_per_unit, from, to)
            : shortest_hop_path(net(), from, to);
    if (!path.reachable) return;  // leaves the placement incomplete
    for (LinkId l : path.links) load_.add_tt(g, k, l);
    placement_.place_tt(k, path.links);
  };

  for (TtId k : g.in_tts(i)) {
    const CtId src = g.tt(k).src;
    if (placed_[src]) route(k, placement_.ct_host(src), j);
  }
  for (TtId k : g.out_tts(i)) {
    const CtId dst = g.tt(k).dst;
    if (placed_[dst]) route(k, j, placement_.ct_host(dst));
  }
}

void GreedyEngine::commit_pins() {
  for (const auto& [ct, ncp] : problem_->pinned) commit(ct, ncp);
}

AssignmentResult GreedyEngine::finish() && {
  return finish_assignment(*problem_, std::move(placement_));
}

}  // namespace sparcle
