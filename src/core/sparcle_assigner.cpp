#include "core/sparcle_assigner.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/greedy_engine.hpp"
#include "core/local_search.hpp"

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

AssignmentResult SparcleAssigner::assign(
    const AssignmentProblem& problem) const {
  using Ranking = SparcleAssignerOptions::Ranking;
  if (options_.ranking == Ranking::kBestOfBoth) {
    SparcleAssignerOptions a = options_, b = options_;
    a.ranking = Ranking::kMostConstrainedFirst;
    b.ranking = Ranking::kLeastConstrainedFirst;
    a.local_search_rounds = b.local_search_rounds = 0;  // refine once below
    AssignmentResult ra = SparcleAssigner(a).assign(problem);
    AssignmentResult rb = SparcleAssigner(b).assign(problem);
    AssignmentResult best;
    if (!ra.feasible)
      best = std::move(rb);
    else if (!rb.feasible)
      best = std::move(ra);
    else
      best = ra.rate >= rb.rate ? std::move(ra) : std::move(rb);
    if (best.feasible && options_.local_search_rounds > 0)
      best = refine_placement(problem, best,
                              {options_.local_search_rounds});
    return best;
  }
  GreedyEngine engine(problem, options_.probe_with_min_bits_tt);
  engine.commit_pins();  // Alg. 2 lines 3-5

  const std::size_t total = engine.graph().ct_count();

  // Static-ranking ablation: the CT order is frozen after the first
  // evaluation round; hosts are still chosen against current loads.
  std::vector<CtId> static_order;
  bool order_frozen = false;

  while (engine.placed_count() < total) {
    CtId chosen = kInvalidId;
    NcpId chosen_host = kInvalidId;

    const bool most_constrained =
        options_.ranking == Ranking::kMostConstrainedFirst;
    if (options_.dynamic_ranking || !order_frozen) {
      // Lines 7-16: evaluate every unplaced CT's best host, then pick a CT
      // by its best-host γ (see SparcleAssignerOptions on the direction).
      double chosen_gamma = most_constrained ? kInf : -kInf;
      std::vector<std::pair<double, CtId>> ranked;
      for (CtId i = 0; i < static_cast<CtId>(total); ++i) {
        if (engine.placed(i)) continue;
        double gi = -kInf;
        const NcpId ji = engine.best_host(i, &gi);
        ranked.emplace_back(gi, i);
        const bool better =
            most_constrained ? gi < chosen_gamma : gi > chosen_gamma;
        if (better) {
          chosen_gamma = gi;
          chosen = i;
          chosen_host = ji;
        }
      }
      if (!options_.dynamic_ranking) {
        std::sort(ranked.begin(), ranked.end());
        if (!most_constrained)
          std::reverse(ranked.begin(), ranked.end());
        for (const auto& [g, i] : ranked) static_order.push_back(i);
        order_frozen = true;
      }
    }

    if (!options_.dynamic_ranking) {
      chosen = kInvalidId;
      for (CtId i : static_order) {
        if (!engine.placed(i)) {
          chosen = i;
          break;
        }
      }
      if (chosen != kInvalidId) chosen_host = engine.best_host(chosen);
    }

    if (chosen == kInvalidId || chosen_host == kInvalidId) {
      AssignmentResult r;
      r.message = "no placeable CT (disconnected network?)";
      return r;
    }
    engine.commit(chosen, chosen_host);
  }

  AssignmentResult result = std::move(engine).finish();
  if (result.feasible && options_.local_search_rounds > 0)
    result =
        refine_placement(problem, result, {options_.local_search_rounds});
  return result;
}

}  // namespace sparcle
