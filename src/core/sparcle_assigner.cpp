#include "core/sparcle_assigner.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/greedy_engine.hpp"
#include "core/local_search.hpp"
#include "core/parallel.hpp"
#include "core/widest_path.hpp"
#include "obs/obs.hpp"

namespace sparcle {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Memoized (best host, γ) of one unplaced CT.  `valid` entries are exact:
/// the invalidation rules below dirty every entry a commit could change.
struct CachedBest {
  NcpId host{kInvalidId};
  double gamma{-kInf};
  bool valid{false};
};

/// Memoization counters of one assign() run (see docs/observability.md).
struct AssignCounters {
  std::uint64_t rounds{0};
  std::uint64_t memo_hits{0};
  std::uint64_t memo_misses{0};
  std::uint64_t memo_invalidations{0};
};

/// Flushes the run's counters into the installed registry on every exit
/// path (including the infeasible early return).  No-op when no registry
/// is installed.
class MetricsFlush {
 public:
  MetricsFlush(const GreedyEngine& engine, const AssignCounters& counters)
      : engine_(engine), counters_(counters) {}
  ~MetricsFlush() {
    obs::MetricsRegistry* reg = obs::metrics();
    if (reg == nullptr) return;
    const EngineStats es = engine_.stats();
    reg->counter("assigner.assigns").add(1);
    reg->counter("assigner.ranking_rounds").add(counters_.rounds);
    reg->counter("assigner.memo.hits").add(counters_.memo_hits);
    reg->counter("assigner.memo.misses").add(counters_.memo_misses);
    reg->counter("assigner.memo.invalidations")
        .add(counters_.memo_invalidations);
    reg->counter("assigner.gamma_evals").add(es.gamma_evals);
    reg->counter("assigner.widest_path_calls").add(es.widest_path_calls);
    reg->counter("assigner.bnb_prunes").add(es.bnb_prunes);
  }

 private:
  const GreedyEngine& engine_;
  const AssignCounters& counters_;
};

}  // namespace

AssignmentResult SparcleAssigner::assign(
    const AssignmentProblem& problem) const {
  using Ranking = SparcleAssignerOptions::Ranking;
  // Phase span: in kBestOfBoth mode the two sub-assigns nest their own
  // spans inside this one, so the Chrome trace shows the recursion.
  obs::ScopedTimer span("assigner.assign");
  if (options_.ranking == Ranking::kBestOfBoth) {
    SparcleAssignerOptions a = options_, b = options_;
    a.ranking = Ranking::kMostConstrainedFirst;
    b.ranking = Ranking::kLeastConstrainedFirst;
    a.local_search_rounds = b.local_search_rounds = 0;  // refine once below
    AssignmentResult ra = SparcleAssigner(a).assign(problem);
    AssignmentResult rb = SparcleAssigner(b).assign(problem);
    AssignmentResult best;
    if (!ra.feasible)
      best = std::move(rb);
    else if (!rb.feasible)
      best = std::move(ra);
    else
      best = ra.rate >= rb.rate ? std::move(ra) : std::move(rb);
    if (best.feasible && options_.local_search_rounds > 0)
      best = refine_placement(problem, best,
                              {options_.local_search_rounds});
    return best;
  }
  GreedyEngine engine(problem, options_.probe_with_min_bits_tt);
  engine.commit_pins();  // Alg. 2 lines 3-5
  engine.warm_probe_cache();

  const TaskGraph& graph = engine.graph();
  const std::size_t total = graph.ct_count();

  // Memoized per-CT best-host evaluations (lines 7-14 of each round).
  std::vector<CachedBest> cache(total);
  const unsigned threads = WorkerPool::resolve_threads(options_.eval_threads);
  std::vector<WidestPathWorkspace> workspaces(threads);
  std::unique_ptr<WorkerPool> pool;  // spawned on first parallel round
  std::vector<CtId> stale;
  stale.reserve(total);

  AssignCounters counters;
  const MetricsFlush flush(engine, counters);

  // Recomputes every invalid cache entry of an unplaced CT.  The engine is
  // read-only during evaluation and each item writes only its own slot, so
  // the parallel fan-out is race-free; the (serial) reduction over the
  // cache afterwards makes the outcome bit-identical to a serial run.
  const auto refresh_cache = [&] {
    stale.clear();
    for (CtId i = 0; i < static_cast<CtId>(total); ++i) {
      if (engine.placed(i)) continue;
      if (cache[i].valid)
        ++counters.memo_hits;
      else
        stale.push_back(i);
    }
    counters.memo_misses += stale.size();
    const auto evaluate = [&](std::size_t idx, unsigned worker) {
      const CtId i = stale[idx];
      double gi = -kInf;
      const NcpId ji = engine.best_host(i, workspaces[worker], &gi);
      cache[i] = {ji, gi, true};
    };
    if (threads > 1 && stale.size() > 1) {
      if (!pool) pool = std::make_unique<WorkerPool>(threads);
      pool->run(stale.size(), evaluate);
    } else {
      for (std::size_t idx = 0; idx < stale.size(); ++idx) evaluate(idx, 0);
    }
  };

  // Static-ranking ablation: the CT order is frozen after the first
  // evaluation round; hosts are still chosen against current loads.
  std::vector<CtId> static_order;
  bool order_frozen = false;

  while (engine.placed_count() < total) {
    ++counters.rounds;
    CtId chosen = kInvalidId;
    NcpId chosen_host = kInvalidId;

    const bool most_constrained =
        options_.ranking == Ranking::kMostConstrainedFirst;
    if (options_.dynamic_ranking || !order_frozen) {
      // Lines 7-16: evaluate every unplaced CT's best host, then pick a CT
      // by its best-host γ (see SparcleAssignerOptions on the direction).
      refresh_cache();
      if (options_.policy != nullptr && options_.dynamic_ranking) {
        // Policy plugin (decision point 2): hand the round's candidates
        // over in CT order.  policy::DefaultPolicy reproduces the inline
        // rule below bit for bit (tests/test_policy.cpp).
        std::vector<policy::CtCandidate> candidates;
        std::vector<NcpId> hosts(total, kInvalidId);
        for (CtId i = 0; i < static_cast<CtId>(total); ++i) {
          if (engine.placed(i))
            hosts[i] = engine.host(i);
          else
            candidates.push_back({i, cache[i].host, cache[i].gamma});
        }
        policy::SelectContext ctx;
        ctx.net = problem.net;
        ctx.graph = problem.graph;
        ctx.most_constrained_pass = most_constrained;
        ctx.ct_host = &hosts;
        const std::size_t pick = options_.policy->select_ct(ctx, candidates);
        if (pick < candidates.size()) {
          chosen = candidates[pick].ct;
          chosen_host = candidates[pick].host;
        }
      } else {
      double chosen_gamma = most_constrained ? kInf : -kInf;
      std::vector<std::pair<double, CtId>> ranked;
      for (CtId i = 0; i < static_cast<CtId>(total); ++i) {
        if (engine.placed(i)) continue;
        const double gi = cache[i].gamma;
        ranked.emplace_back(gi, i);
        const bool better =
            most_constrained ? gi < chosen_gamma : gi > chosen_gamma;
        if (better) {
          chosen_gamma = gi;
          chosen = i;
          chosen_host = cache[i].host;
        }
      }
      if (!options_.dynamic_ranking) {
        std::sort(ranked.begin(), ranked.end());
        if (!most_constrained)
          std::reverse(ranked.begin(), ranked.end());
        for (const auto& [g, i] : ranked) static_order.push_back(i);
        order_frozen = true;
      }
      }
    }

    if (!options_.dynamic_ranking) {
      chosen = kInvalidId;
      for (CtId i : static_order) {
        if (!engine.placed(i)) {
          chosen = i;
          break;
        }
      }
      if (chosen != kInvalidId) chosen_host = engine.best_host(chosen);
    }

    if (chosen == kInvalidId || chosen_host == kInvalidId) {
      AssignmentResult r;
      r.message = "no placeable CT (disconnected network?)";
      return r;
    }
    const CommitEffects effects = engine.commit(chosen, chosen_host);

    // Dirty-tracking: a commit of `chosen` on `chosen_host` can change
    // γ(i, ·) of an unplaced CT i only through (a) a new placed relative
    // (i related to chosen), (b) node load on i's cached best host, or
    // (c) link load anywhere, which matters only to CTs whose γ has link
    // terms — i.e. CTs with at least one placed relative.  Everything
    // else keeps an exact cache entry (see docs/perf.md for the proof
    // sketch and test_assign_equivalence for the property test).
    for (CtId i = 0; i < static_cast<CtId>(total); ++i) {
      if (engine.placed(i) || !cache[i].valid) continue;
      if (!options_.memoize_gamma || graph.related(i, chosen) ||
          cache[i].host == chosen_host ||
          (effects.routed_links && engine.has_placed_relative(i))) {
        cache[i].valid = false;
        ++counters.memo_invalidations;
      }
    }
  }

  AssignmentResult result = std::move(engine).finish();
  if (result.feasible && options_.local_search_rounds > 0)
    result =
        refine_placement(problem, result, {options_.local_search_rounds});
  return result;
}

}  // namespace sparcle
