#include "core/widest_path.hpp"

#include <queue>

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

namespace {
/// Scratch for the legacy (non-buffered) entry points.  Constructing a
/// WidestPathWorkspace per call costs four vector allocations — measurable
/// on BM_WidestPath — so the wrappers share one workspace per thread.  The
/// kernel is not re-entrant (prepare() invalidates in-flight state), so a
/// weight functor must not call back into these wrappers; the buffered
/// entry points have the same constraint on their caller-owned workspace.
WidestPathWorkspace& legacy_workspace() {
  thread_local WidestPathWorkspace ws;
  return ws;
}
}  // namespace

WidestPathResult widest_path(const Network& net, NcpId from, NcpId to,
                             const std::function<double(LinkId)>& weight) {
  return widest_path_buffered(net, from, to, weight, legacy_workspace());
}

WidestPathResult best_tt_path(const Network& net, const CapacitySnapshot& cap,
                              const LoadMap& load, double tt_bits, NcpId from,
                              NcpId to) {
  return best_tt_path(net, cap, load, tt_bits, from, to, legacy_workspace());
}

WidestPathResult best_tt_path(const Network& net, const CapacitySnapshot& cap,
                              const LoadMap& load, double tt_bits, NcpId from,
                              NcpId to, WidestPathWorkspace& ws) {
  return widest_path_buffered(net, from, to,
                              TtPathWeight{&cap, &load, tt_bits}, ws);
}

WidestPathResult shortest_hop_path(const Network& net, NcpId from, NcpId to) {
  detail::check_endpoints(net, from, to, "shortest_hop_path");
  WidestPathResult result;
  if (from == to) {
    result.reachable = true;
    result.width = kInf;
    return result;
  }
  std::vector<LinkId> prev_link(net.ncp_count(), kInvalidId);
  std::vector<char> seen(net.ncp_count(), 0);
  std::queue<NcpId> q;
  q.push(from);
  seen[from] = 1;
  while (!q.empty() && !seen[to]) {
    const NcpId v = q.front();
    q.pop();
    for (LinkId l : net.incident_links(v)) {
      if (!net.can_traverse(l, v)) continue;
      // Same "unusable link" rule as widest_path: a link with non-positive
      // (or NaN) bandwidth is dead and must never carry a TT route.
      if (!(net.link(l).bandwidth > 0)) continue;
      const NcpId u = net.other_end(l, v);
      if (seen[u]) continue;
      seen[u] = 1;
      prev_link[u] = l;
      q.push(u);
    }
  }
  if (!seen[to]) return result;
  result.reachable = true;
  result.width = kInf;
  for (NcpId at = to; at != from;) {
    const LinkId l = prev_link[at];
    result.links.push_back(l);
    result.width = std::min(result.width, net.link(l).bandwidth);
    at = net.other_end(l, at);
  }
  std::reverse(result.links.begin(), result.links.end());
  return result;
}

}  // namespace sparcle
