#include "core/widest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace sparcle {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

WidestPathResult widest_path(const Network& net, NcpId from, NcpId to,
                             const std::function<double(LinkId)>& weight) {
  if (from < 0 || to < 0 || from >= static_cast<NcpId>(net.ncp_count()) ||
      to >= static_cast<NcpId>(net.ncp_count()))
    throw std::invalid_argument("widest_path: endpoint out of range");

  WidestPathResult result;
  if (from == to) {
    result.reachable = true;
    result.width = kInf;
    return result;
  }

  // phi[v]: best bottleneck width from `from` to v found so far
  // (Algorithm 1's φ), prev_link[v]: the link used to reach v on that path.
  const std::size_t n = net.ncp_count();
  std::vector<double> phi(n, -kInf);
  std::vector<LinkId> prev_link(n, kInvalidId);
  std::vector<char> done(n, 0);
  phi[from] = kInf;

  using Entry = std::pair<double, NcpId>;  // (width, node), max-heap
  std::priority_queue<Entry> heap;
  heap.emplace(kInf, from);

  while (!heap.empty()) {
    const auto [w, v] = heap.top();
    heap.pop();
    if (done[v]) continue;
    done[v] = 1;
    if (v == to) break;
    for (LinkId l : net.incident_links(v)) {
      if (!net.can_traverse(l, v)) continue;
      const double lw = weight(l);
      if (!(lw > 0)) continue;  // unusable (zero, negative, or NaN)
      const NcpId u = net.other_end(l, v);
      if (done[u]) continue;
      const double cand = std::min(phi[v], lw);
      if (cand > phi[u]) {
        phi[u] = cand;
        prev_link[u] = l;
        heap.emplace(cand, u);
      }
    }
  }

  if (phi[to] <= 0 || prev_link[to] == kInvalidId) return result;  // cut off

  result.reachable = true;
  result.width = phi[to];
  for (NcpId at = to; at != from;) {
    const LinkId l = prev_link[at];
    result.links.push_back(l);
    at = net.other_end(l, at);
  }
  std::reverse(result.links.begin(), result.links.end());
  return result;
}

WidestPathResult best_tt_path(const Network& net, const CapacitySnapshot& cap,
                              const LoadMap& load, double tt_bits, NcpId from,
                              NcpId to) {
  return widest_path(net, from, to, [&](LinkId l) {
    const double denom = tt_bits + load.link_load(l);
    if (denom <= 0) return kInf;  // zero-bit TT on an empty link: free
    return cap.link(l) / denom;
  });
}

WidestPathResult shortest_hop_path(const Network& net, NcpId from, NcpId to) {
  if (from < 0 || to < 0 || from >= static_cast<NcpId>(net.ncp_count()) ||
      to >= static_cast<NcpId>(net.ncp_count()))
    throw std::invalid_argument("shortest_hop_path: endpoint out of range");
  WidestPathResult result;
  if (from == to) {
    result.reachable = true;
    result.width = kInf;
    return result;
  }
  std::vector<LinkId> prev_link(net.ncp_count(), kInvalidId);
  std::vector<char> seen(net.ncp_count(), 0);
  std::queue<NcpId> q;
  q.push(from);
  seen[from] = 1;
  while (!q.empty() && !seen[to]) {
    const NcpId v = q.front();
    q.pop();
    for (LinkId l : net.incident_links(v)) {
      if (!net.can_traverse(l, v)) continue;
      const NcpId u = net.other_end(l, v);
      if (seen[u]) continue;
      seen[u] = 1;
      prev_link[u] = l;
      q.push(u);
    }
  }
  if (!seen[to]) return result;
  result.reachable = true;
  result.width = kInf;
  for (NcpId at = to; at != from;) {
    const LinkId l = prev_link[at];
    result.links.push_back(l);
    result.width = std::min(result.width, net.link(l).bandwidth);
    at = net.other_end(l, at);
  }
  std::reverse(result.links.begin(), result.links.end());
  return result;
}

}  // namespace sparcle
