#pragma once

#include <cstdint>
#include <vector>

#include "model/ids.hpp"
#include "model/network.hpp"

/// \file availability.hpp
/// QoE availability analysis under independent element failures (§III-B,
/// §IV-C/D).  A task-assignment path works iff every NCP and link it uses
/// is up; paths of the same application overlap, so the exact probabilities
/// are computed by inclusion–exclusion over path subsets on the *union* of
/// their elements.  Exponential only in the path count (guarded), never in
/// the element count.  Monte-Carlo estimators cross-validate the exact
/// math in tests and cover pathological path counts.

namespace sparcle {

/// Maximum number of paths the exact analysis accepts (3^12 ≈ 5.3e5 terms).
inline constexpr std::size_t kMaxExactPaths = 12;

/// P(every element in `elements` is up) = Π (1 - P_f).  Duplicate elements
/// are counted once.
double all_up_probability(const Network& net,
                          const std::vector<ElementKey>& elements);

/// BE availability: P(at least one of `paths` has all elements up).
/// Inclusion–exclusion over non-empty path subsets.
double availability_any(const Network& net,
                        const std::vector<std::vector<ElementKey>>& paths);

/// P(exactly the paths in `working_mask` are fully up and every other path
/// has at least one failed element) — the summand of eq. (7).
double exact_path_state_probability(
    const Network& net, const std::vector<std::vector<ElementKey>>& paths,
    std::uint32_t working_mask);

/// GR min-rate availability (problem (5) / eq. (7)): the probability that
/// the aggregate rate of the *fully working* paths reaches `min_rate`.
/// `rates[i]` is the provisioned rate of path i (the subset-sum values).
double min_rate_availability(const Network& net,
                             const std::vector<std::vector<ElementKey>>& paths,
                             const std::vector<double>& rates,
                             double min_rate);

/// Monte-Carlo estimate of availability_any (for cross-validation and for
/// path counts beyond kMaxExactPaths).
double availability_any_mc(const Network& net,
                           const std::vector<std::vector<ElementKey>>& paths,
                           std::size_t trials, std::uint64_t seed);

/// Monte-Carlo estimate of min_rate_availability.
double min_rate_availability_mc(
    const Network& net, const std::vector<std::vector<ElementKey>>& paths,
    const std::vector<double>& rates, double min_rate, std::size_t trials,
    std::uint64_t seed);

}  // namespace sparcle
