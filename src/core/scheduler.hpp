#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/assignment.hpp"
#include "core/fairness.hpp"
#include "core/provisioning.hpp"
#include "core/sparcle_assigner.hpp"
#include "model/application.hpp"
#include "model/capacity.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"

/// \file scheduler.hpp
/// The complete SPARCLE system of Fig. 3: applications arrive over time and
/// are admitted (with one or more task-assignment paths) or rejected.
///
/// Best-Effort flow:  predict per-element capacities from priorities
/// (eq. (6)) → run the task-assignment algorithm → add paths until the
/// requested availability is met → re-solve the proportional-fair
/// allocation (4) across all placed BE applications.
///
/// Guaranteed-Rate flow:  iteratively find paths on residual capacities,
/// evaluate the min-rate availability via subset-sum + eq. (7), and admit
/// (permanently reserving the paths' resources) once the requested QoE is
/// met — otherwise reject without mutating any state.

namespace sparcle {

/// A placed application and its allocation.
struct PlacedApp {
  Application app;              ///< the admitted request
  std::vector<PathInfo> paths;  ///< its committed task-assignment paths
  /// Total allocated processing rate: the PF solution for BE apps (updated
  /// on every admission), the reserved rate for GR apps.
  double allocated_rate{0.0};
  /// Per-path allocated rates, aligned with `paths`.
  std::vector<double> path_rates;
};

/// Outcome of a submit() call.
struct AdmissionResult {
  bool admitted{false};       ///< the application was placed
  std::string reason;         ///< human-readable rejection reason
  std::size_t path_count{0};  ///< committed task-assignment paths
  double rate{0.0};          ///< allocated (GR: reserved) total rate
  double availability{0.0};  ///< achieved (min-rate) availability estimate
};

/// Policy knobs for the incremental failure-repair path (repair()).
/// docs/churn.md is the operator runbook for tuning these.
struct RepairPolicy {
  /// Fallback bound: after an incremental repair, if the global carried
  /// rate (GR reserved + BE allocated) falls below
  /// `(1 - max_rate_degradation)` times the last healthy rate, the
  /// scheduler escalates to a full rebalance() pass.
  double max_rate_degradation{0.05};
  /// Extra re-provisioning attempts per GR application when the full
  /// shortfall cannot be restored (transient admission failures while
  /// several repairs contend for the same residuals).
  std::size_t max_retries{2};
  /// Backoff factor applied to the requested restore target on each
  /// retry: attempt k asks for `shortfall * retry_backoff^k`, trading a
  /// partial restoration for repair progress.
  double retry_backoff{0.5};
  /// Escalate to rebalance() when the degradation bound trips.  Benchmarks
  /// disable this to measure the pure incremental path.
  bool allow_fallback{true};
};

/// Configuration of the admission-control scheduler.
struct SchedulerOptions {
  /// Cap on task-assignment paths per application.
  std::size_t max_paths{4};
  /// Apply the eq. (6) priority prediction before BE assignment (ablation
  /// switch; the paper's system always predicts).
  bool use_prediction{true};
  /// How additional paths are searched (§IV-D residual loop, or the
  /// overlap-penalizing diversity extension — see provisioning.hpp).
  PathDiversity path_diversity{PathDiversity::kResidualOnly};
  /// Capacity multiplier for already-used elements in kPenalizeOverlap
  /// diversity mode (see ProvisioningOptions::overlap_penalty).
  double overlap_penalty{0.3};
  /// Policy for the incremental failure-repair path (repair()).
  RepairPolicy repair{};
  /// Options forwarded to the default SPARCLE assigner.
  SparcleAssignerOptions assigner_options{};
  /// Warm-start the weighted-PF re-solve of problem (4) from the previous
  /// solve's primal/dual point when the BE path set changed by a small
  /// delta (admission, removal, repair).  The solver falls back to a cold
  /// solve whenever the warm attempt misses its budget, so this trades
  /// iterations, never correctness — docs/perf.md, "Warm-started PF".
  bool pf_warm_start{true};
  /// Newton-iteration budget of a warm attempt before the cold fallback
  /// (forwarded to PfOptions::warm_newton_budget).
  int pf_warm_newton_budget{160};
  /// Scheduling-policy plugin (docs/policies.md): decision point 2
  /// (candidate ranking — forwarded into the default assigner's options
  /// when assigner_options.policy is unset) and decision point 3 (the
  /// restore order of repair()).  nullptr reproduces the pre-refactor
  /// hard-coded rules bit for bit, and so does policy::DefaultPolicy
  /// (tests/test_policy.cpp).  Shared ownership: copies of these options
  /// keep the plugin alive for the scheduler's lifetime.
  std::shared_ptr<const policy::SchedulingPolicy> policy{};
};

/// The admission-control scheduler.  Thread-compatible (external
/// synchronization required for concurrent use).
class Scheduler {
 public:
  /// Uses SPARCLE's own assignment algorithm.
  explicit Scheduler(Network net, SchedulerOptions options = {});

  /// Uses a caller-supplied assignment algorithm (lets the multi-app
  /// benchmarks drive the identical admission pipeline with baselines).
  Scheduler(Network net, std::unique_ptr<Assigner> assigner,
            SchedulerOptions options = {});

  /// Admits or rejects one arriving application.
  AdmissionResult submit(const Application& app);

  /// Outcome of an end_batch() call (see begin_batch()).
  struct BatchReport {
    /// Weighted-PF re-solves that were coalesced into the single solve at
    /// batch end (each would have run separately outside a batch).
    std::size_t deferred_resolves{0};
    /// Best-Effort applications admitted during the batch that had to be
    /// evicted because the final PF solve failed (the per-call equivalent
    /// of the "resource allocation failed" rejection).  Rare: the solver
    /// only fails on numerically degenerate instances.
    std::vector<std::string> evicted;
  };

  /// Opens a batch: until the matching end_batch(), submit() and remove()
  /// defer the weighted proportional-fair re-solve of problem (4) and the
  /// validation hook, so a burst of admissions pays for ONE re-solve
  /// instead of one per call.  Admission *decisions* are unaffected (they
  /// depend on residual capacities and the eq. (6) prediction, both kept
  /// current mid-batch) — but AdmissionResult::rate for Best-Effort apps
  /// admitted mid-batch reads 0 until end_batch() publishes the solved
  /// allocation (read it back via placed()).  The batched admission path
  /// of service::SchedulerService is the production consumer.  Throws
  /// std::logic_error if a batch is already open.  rebalance(), repair()
  /// and global_reoptimize() must not be called inside a batch.
  void begin_batch();

  /// Closes the batch opened by begin_batch(): runs the single deferred
  /// PF re-solve (evicting batch-admitted BE apps, newest first, in the
  /// unlikely case the solve fails), refreshes the healthy-rate baseline,
  /// and runs the validation hook once on the settled state.  Throws
  /// std::logic_error if no batch is open.
  BatchReport end_batch();

  /// True between begin_batch() and end_batch().
  bool in_batch() const { return batch_active_; }

  /// Removes a placed application (it finished or departed).  GR
  /// reservations are released and the Best-Effort allocation is re-solved
  /// over the survivors.  Returns false if no app with that name is placed.
  bool remove(const std::string& app_name);

  /// Marks a network element failed: its capacity drops to zero for all
  /// future assignment and allocation decisions, BE paths crossing it stop
  /// receiving rate (the PF solve is re-run), and GR applications whose
  /// surviving paths no longer reach their minimum rate show up in
  /// degraded_gr_apps().  Models the network dynamics of §III-B; idempotent.
  void mark_failed(ElementKey element);

  /// Clears a previous mark_failed(); re-solves the BE allocation.
  void mark_recovered(ElementKey element);

  /// Names of GR applications whose currently-alive paths sum below their
  /// guaranteed minimum rate (given the marked failures).
  std::vector<std::string> degraded_gr_apps() const;

  /// Outcome of a rebalance() pass.
  struct RebalanceReport {
    /// Apps that had dead paths replaced (GR: guarantee restored).
    std::vector<std::string> repaired;
    /// GR apps still below their guarantee after the pass.
    std::vector<std::string> still_degraded;
  };

  /// Repairs applications hurt by marked failures — the "network resource
  /// fluctuation" the paper defers to future work.  Dead paths (crossing a
  /// failed element) are dropped: GR reservations on them are released and
  /// replacement paths are provisioned on the surviving capacity to
  /// restore the guaranteed rate; BE apps get replacement paths up to
  /// their previous path count.  Finishes with a fresh PF allocation.
  RebalanceReport rebalance();

  /// Outcome of a repair() pass.
  struct RepairReport {
    /// Apps that had dead paths replaced (GR: guarantee restored, possibly
    /// after retries; BE: re-provisioned from zero alive paths).
    std::vector<std::string> repaired;
    /// GR apps still below their guarantee after the pass.
    std::vector<std::string> still_degraded;
    /// Applications whose paths crossed a failed element (the repair
    /// working set — everything else was left untouched).
    std::size_t apps_touched{0};
    std::size_t paths_dropped{0};  ///< dead paths shed across all apps
    std::size_t paths_added{0};    ///< replacement paths committed
    std::size_t retries{0};        ///< backoff retries spent on GR restores
    /// True when the degradation bound tripped and the pass escalated to a
    /// full rebalance().
    bool fell_back{false};
    /// Global carried rate (GR reserved + BE allocated) of the last
    /// healthy state — the baseline the fallback bound compares against.
    double global_rate_before{0.0};
    /// Global carried rate after the pass.
    double global_rate_after{0.0};
  };

  /// Incremental failure repair — the churn-resilient counterpart of
  /// rebalance().  Where rebalance() walks *every* placed application,
  /// repair() consults a reverse `element → {app, path}` usage index and
  /// touches only the applications whose task-assignment paths actually
  /// cross a currently-failed element:
  ///
  ///  1. dead paths are shed and their GR reservations released;
  ///  2. GR apps are re-provisioned first (largest guarantee first) on the
  ///     residual capacities, with retry-and-backoff
  ///     (RepairPolicy::max_retries / retry_backoff) accepting a partial
  ///     restore when the full shortfall is not placeable;
  ///  3. BE apps shed dead paths gracefully — they are never evicted —
  ///     and are re-provisioned (against the eq. (6) predicted capacities)
  ///     only when no alive path remains;
  ///  4. one Best-Effort PF re-solve finishes the pass; if the global
  ///     carried rate degraded beyond RepairPolicy::max_rate_degradation
  ///     relative to the last healthy state, the pass escalates to a full
  ///     rebalance() (RepairReport::fell_back).
  ///
  /// `element` names the element whose failure triggered the pass (used
  /// for the decision log); the pass repairs damage from *all* currently
  /// failed elements.  Typical call pattern: `mark_failed(e); repair(e);`
  /// — sim::ChurnInjector automates it.  Deterministic for identical
  /// call sequences.
  RepairReport repair(ElementKey element);

  /// Outcome of a global_reoptimize() attempt.
  struct ReoptimizeReport {
    bool adopted{false};           ///< the new plan replaced the old one
    double old_be_utility{0.0};    ///< BE utility before
    double new_be_utility{0.0};    ///< BE utility of the candidate plan
    double old_gr_rate{0.0};       ///< total GR rate before
    double new_gr_rate{0.0};       ///< total GR rate of the candidate plan
    /// CTs whose host changed between the old and new first paths.
    std::size_t migrated_cts{0};
  };

  /// What-if global re-optimization (extension): replace every placed
  /// application from scratch — GR apps first (largest guarantee first),
  /// then BE apps in descending priority — and adopt the new plan only if
  /// every app is still admitted, no guaranteed rate shrinks, and the BE
  /// utility improves by at least `min_utility_gain`; otherwise the
  /// current state is restored untouched.  The paper freezes placements
  /// because migration is costly (§IV intro); the report's migrated_cts
  /// counts that cost so operators can weigh it.
  ReoptimizeReport global_reoptimize(double min_utility_gain = 0.0);

  /// A capacity reservation held by an external owner (the federation
  /// layer's two-phase cross-shard admission, src/federation): `rate`
  /// times the per-unit `load` is pinned on this scheduler's elements
  /// exactly like a GR reservation, but the owning application is placed
  /// *outside* this scheduler, so nothing shows up in placed().
  struct ExternalReservation {
    LoadMap load;                      ///< per-unit load, this net's shape
    std::vector<ElementKey> elements;  ///< distinct elements `load` touches
    double rate{0.0};                  ///< reserved processing rate
    bool committed{false};             ///< reserve -> commit transition done
  };

  /// Phase one of the two-phase cross-shard admission: atomically reserves
  /// `rate * load` on this scheduler's residual capacities under `name`.
  /// Fails without mutating anything — filling `why` when non-null — if a
  /// reservation with that name already exists, any touched element is
  /// marked failed, or the request does not fit the current residual
  /// (after GR and prior external reservations).  On success the capacity
  /// is held (invisible to later submits and the BE allocation) until
  /// release_external(); the BE PF allocation is re-solved when a touched
  /// element carries Best-Effort paths.
  bool reserve_external(const std::string& name, const LoadMap& load,
                        std::vector<ElementKey> elements, double rate,
                        std::string* why = nullptr);

  /// Phase two: marks the pending reservation `name` committed.  No
  /// capacity changes (the hold was taken at reserve time); this only
  /// records that every co-reserving shard accepted.  Fails — filling
  /// `why` — on an unknown name, a double commit, or when a touched
  /// element failed between the phases (the caller must then abort the
  /// distributed admission and release everywhere).
  bool commit_external(const std::string& name, std::string* why = nullptr);

  /// Releases reservation `name` (pending or committed): returns its
  /// capacity to the residual and re-solves the BE allocation when a
  /// touched element carries BE paths.  The abort path of the two-phase
  /// protocol and the removal path of committed cross-shard apps both land
  /// here.  Returns false (no-op) for an unknown name; always leak-free —
  /// the invariant checker proves residual == capacity − GR − external
  /// after any reserve/commit/release interleaving.
  bool release_external(const std::string& name);

  /// Current external reservations by name (deterministic order).
  const std::map<std::string, ExternalReservation>& external_reservations()
      const {
    return external_;
  }

  /// Σ over external reservations of rate * per-unit load, by element —
  /// the checker's counterpart of the GR reserved load.
  const LoadMap& external_reserved_load() const { return ext_reserved_; }

  /// Total reserved rate over external reservations (pending + committed).
  double total_external_rate() const;

  /// The (copied-in) network this scheduler manages.
  const Network& network() const { return net_; }
  /// All currently placed applications, in admission order.
  const std::vector<PlacedApp>& placed() const { return placed_; }

  /// Elements currently marked failed (capacity zero; see mark_failed()).
  const std::set<ElementKey>& failed_elements() const { return failed_; }

  /// Process-global self-validation hook, run after every mutating
  /// operation (submit / remove / mark_failed / mark_recovered / rebalance
  /// / global_reoptimize) with the post-operation state.  Installed by the
  /// correctness harness (`check::ScopedValidation`, src/check) so debug
  /// builds and fuzz tests validate every intermediate state; pass nullptr
  /// to uninstall.  The hook may throw to fail the operation loudly; it
  /// must not mutate the scheduler.  Not thread-safe against concurrent
  /// scheduler use (the Scheduler itself is thread-compatible only).
  using ValidationHook = std::function<void(const Scheduler&)>;
  /// Installs (or, with nullptr, removes) the process-global hook.
  static void set_validation_hook(ValidationHook hook);

  /// Residual capacities after all GR reservations and marked failures
  /// (BE apps do not reserve).
  const CapacitySnapshot& gr_residual_capacities() const { return residual_; }

  /// Σ P_i log(x_i) over placed BE applications under the current
  /// allocation; -inf if any BE app currently has rate 0.
  double be_utility() const;

  /// Total reserved rate over admitted GR applications.
  double total_gr_rate() const;

  /// Total allocated rate over placed BE applications.
  double total_be_rate() const;

  /// The reverse `element → {app, path}` usage index over the current
  /// placed paths (rebuilt lazily after mutations that reshuffle path
  /// indices).  Exposed for tests and diagnostics; repair() is the
  /// production consumer.
  const ElementUsageIndex& element_usage() const;

  /// Cumulative weighted-PF solver telemetry, mirroring the
  /// `scheduler.solver.*` metrics (docs/observability.md) for callers
  /// without a metrics registry installed (tests, service stats).
  struct PfSolverStats {
    std::uint64_t solves{0};          ///< PF solves actually run
    std::uint64_t warm_hits{0};       ///< warm attempts accepted
    std::uint64_t warm_misses{0};     ///< solves with no usable warm state
    std::uint64_t warm_fallbacks{0};  ///< warm attempts that went cold
    std::uint64_t newton_iters{0};    ///< Newton iterations, all solves
    int last_newton_iters{0};         ///< iterations of the latest solve
  };
  /// Telemetry of the PF re-solves this scheduler has run.
  const PfSolverStats& pf_solver_stats() const { return solver_stats_; }

  /// Toggles the warm-start policy at runtime.  Operators can switch a
  /// misbehaving instance to always-cold without a restart; the fuzzer
  /// alternates it under churn to cross-check warm against cold solves.
  void set_pf_warm_start(bool on) { options_.pf_warm_start = on; }
  /// Current warm-start policy (see SchedulerOptions::pf_warm_start).
  bool pf_warm_start() const { return options_.pf_warm_start; }

 private:
  AdmissionResult submit_best_effort(const Application& app);
  AdmissionResult submit_guaranteed_rate(const Application& app);

  /// Finds up to `max_paths` paths for `app` on top of `start` capacities,
  /// stopping early when `enough(paths)` returns true (delegates to
  /// provision_paths with this scheduler's diversity options).
  std::vector<PathInfo> find_paths(const Application& app,
                                   const CapacitySnapshot& start,
                                   double rate_cap,
                                   const StopPredicate& enough) const;

  /// Re-solves problem (4) over all placed BE applications and updates
  /// their allocated rates.  Returns false if the solve failed.
  bool reallocate_best_effort();

  /// reallocate_best_effort(), unless a batch is open — then the re-solve
  /// is deferred to end_batch() and this reports success.
  bool maybe_reallocate();

  /// Recomputes residual_ = full capacities - GR reservations, with the
  /// failed elements zeroed.
  void rebuild_residual();

  /// Recomputes residual_ for one element from net_ capacity minus the
  /// accumulated gr_reserved_ (zero if failed) — the O(1) building block
  /// of the incremental residual bookkeeping.  Produces exactly the value
  /// a full rebuild_residual() would, and patches the prediction scratch
  /// when it is live.
  void recompute_residual_element(const ElementKey& e);

  /// Applies a GR reservation change of one path (`rate_delta` > 0
  /// reserves, < 0 releases): updates gr_reserved_ and refreshes residual_
  /// on the path's own elements only.
  void apply_gr_delta(const PathInfo& path, double rate_delta);

  /// True when any placed Best-Effort path crosses `e` — the condition
  /// under which a failure/recovery of `e` changes the PF problem (4) and
  /// a re-solve is actually needed.
  bool element_touches_be(const ElementKey& e) const;

  /// Rebuilds be_competing_ from placed_ when a mutation invalidated it.
  void ensure_competing_index() const;

  /// Adds a placed BE app's distinct element footprint to be_competing_
  /// (no-op while the index is invalid or for GR apps).
  void competing_add_app(const PlacedApp& pa) const;

  /// eq. (6) effective capacities for an arriving (or re-provisioned) BE
  /// app with `priority`: the prediction scratch, restored to residual_ on
  /// the previously-scaled elements and re-scaled by the current
  /// competing-priority totals.  Valid until the next scheduler mutation.
  const CapacitySnapshot& predicted_capacities(double priority) const;

  /// True when every element the path touches is currently alive.
  bool path_alive(const PathInfo& path) const;

  /// Runs the installed validation hook (if any) on *this.
  void run_validation_hook() const;

  /// Rebuilds usage_ from placed_ when a mutation invalidated it.
  void ensure_usage_index() const;

  /// Registers the freshly admitted app at the back of placed_ in the
  /// usage index (cheap incremental update on the churn hot path).
  void index_new_app();

  /// GR reserved + BE allocated rate (the fallback-bound measure).
  double global_rate() const { return total_gr_rate() + total_be_rate(); }

  Network net_;
  SchedulerOptions options_;
  std::unique_ptr<Assigner> assigner_;
  LoadMap gr_reserved_;        ///< Σ over GR paths of rate * per-unit load
  LoadMap ext_reserved_;       ///< Σ over external reservations, likewise
  std::map<std::string, ExternalReservation> external_;
  std::set<ElementKey> failed_;
  CapacitySnapshot residual_;  ///< see rebuild_residual()
  std::vector<PlacedApp> placed_;
  /// Reverse element → {app, path} index over placed_ (lazily rebuilt;
  /// mutable so const accessors can refresh it).
  mutable ElementUsageIndex usage_;
  mutable bool usage_valid_{false};
  /// eq. (6) prediction cache: per-element Σ priority over placed BE apps
  /// (lazily rebuilt like usage_, extended incrementally on admission) ...
  mutable std::unordered_map<ElementKey, double> be_competing_;
  mutable bool competing_valid_{false};
  /// ... and a scratch snapshot that diverges from residual_ only on
  /// predict_touched_, so each prediction restores + re-scales a handful
  /// of elements instead of copying the whole network.
  mutable CapacitySnapshot predict_scratch_;
  mutable std::vector<ElementKey> predict_touched_;
  mutable bool predict_scratch_valid_{false};
  /// Duals of the previous PF solve (row layout of
  /// reallocate_best_effort()), seeding the next warm start; cleared when
  /// the previous solve did not converge.
  std::vector<double> pf_last_dual_;
  PfSolverStats solver_stats_;
  /// Global carried rate after the last healthy (fully repaired or
  /// failure-free) state — the baseline for RepairPolicy's fallback bound.
  double healthy_rate_{0.0};
  bool batch_active_{false};  ///< between begin_batch() and end_batch()
  bool batch_dirty_{false};   ///< a PF re-solve was deferred this batch
  std::size_t batch_deferred_{0};  ///< re-solves coalesced this batch
  /// BE apps admitted during the open batch, in admission order (eviction
  /// candidates if the final PF solve fails).
  std::vector<std::string> batch_added_be_;
};

}  // namespace sparcle
