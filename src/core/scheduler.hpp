#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "core/fairness.hpp"
#include "core/provisioning.hpp"
#include "core/sparcle_assigner.hpp"
#include "model/application.hpp"
#include "model/capacity.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"

/// \file scheduler.hpp
/// The complete SPARCLE system of Fig. 3: applications arrive over time and
/// are admitted (with one or more task-assignment paths) or rejected.
///
/// Best-Effort flow:  predict per-element capacities from priorities
/// (eq. (6)) → run the task-assignment algorithm → add paths until the
/// requested availability is met → re-solve the proportional-fair
/// allocation (4) across all placed BE applications.
///
/// Guaranteed-Rate flow:  iteratively find paths on residual capacities,
/// evaluate the min-rate availability via subset-sum + eq. (7), and admit
/// (permanently reserving the paths' resources) once the requested QoE is
/// met — otherwise reject without mutating any state.

namespace sparcle {

/// A placed application and its allocation.
struct PlacedApp {
  Application app;
  std::vector<PathInfo> paths;
  /// Total allocated processing rate: the PF solution for BE apps (updated
  /// on every admission), the reserved rate for GR apps.
  double allocated_rate{0.0};
  /// Per-path allocated rates, aligned with `paths`.
  std::vector<double> path_rates;
};

/// Outcome of a submit() call.
struct AdmissionResult {
  bool admitted{false};
  std::string reason;
  std::size_t path_count{0};
  double rate{0.0};          ///< allocated (GR: reserved) total rate
  double availability{0.0};  ///< achieved (min-rate) availability estimate
};

struct SchedulerOptions {
  /// Cap on task-assignment paths per application.
  std::size_t max_paths{4};
  /// Apply the eq. (6) priority prediction before BE assignment (ablation
  /// switch; the paper's system always predicts).
  bool use_prediction{true};
  /// How additional paths are searched (§IV-D residual loop, or the
  /// overlap-penalizing diversity extension — see provisioning.hpp).
  PathDiversity path_diversity{PathDiversity::kResidualOnly};
  double overlap_penalty{0.3};
  /// Options forwarded to the default SPARCLE assigner.
  SparcleAssignerOptions assigner_options{};
};

/// The admission-control scheduler.  Thread-compatible (external
/// synchronization required for concurrent use).
class Scheduler {
 public:
  /// Uses SPARCLE's own assignment algorithm.
  explicit Scheduler(Network net, SchedulerOptions options = {});

  /// Uses a caller-supplied assignment algorithm (lets the multi-app
  /// benchmarks drive the identical admission pipeline with baselines).
  Scheduler(Network net, std::unique_ptr<Assigner> assigner,
            SchedulerOptions options = {});

  /// Admits or rejects one arriving application.
  AdmissionResult submit(const Application& app);

  /// Removes a placed application (it finished or departed).  GR
  /// reservations are released and the Best-Effort allocation is re-solved
  /// over the survivors.  Returns false if no app with that name is placed.
  bool remove(const std::string& app_name);

  /// Marks a network element failed: its capacity drops to zero for all
  /// future assignment and allocation decisions, BE paths crossing it stop
  /// receiving rate (the PF solve is re-run), and GR applications whose
  /// surviving paths no longer reach their minimum rate show up in
  /// degraded_gr_apps().  Models the network dynamics of §III-B; idempotent.
  void mark_failed(ElementKey element);

  /// Clears a previous mark_failed(); re-solves the BE allocation.
  void mark_recovered(ElementKey element);

  /// Names of GR applications whose currently-alive paths sum below their
  /// guaranteed minimum rate (given the marked failures).
  std::vector<std::string> degraded_gr_apps() const;

  /// Outcome of a rebalance() pass.
  struct RebalanceReport {
    /// Apps that had dead paths replaced (GR: guarantee restored).
    std::vector<std::string> repaired;
    /// GR apps still below their guarantee after the pass.
    std::vector<std::string> still_degraded;
  };

  /// Repairs applications hurt by marked failures — the "network resource
  /// fluctuation" the paper defers to future work.  Dead paths (crossing a
  /// failed element) are dropped: GR reservations on them are released and
  /// replacement paths are provisioned on the surviving capacity to
  /// restore the guaranteed rate; BE apps get replacement paths up to
  /// their previous path count.  Finishes with a fresh PF allocation.
  RebalanceReport rebalance();

  /// Outcome of a global_reoptimize() attempt.
  struct ReoptimizeReport {
    bool adopted{false};
    double old_be_utility{0.0}, new_be_utility{0.0};
    double old_gr_rate{0.0}, new_gr_rate{0.0};
    /// CTs whose host changed between the old and new first paths.
    std::size_t migrated_cts{0};
  };

  /// What-if global re-optimization (extension): replace every placed
  /// application from scratch — GR apps first (largest guarantee first),
  /// then BE apps in descending priority — and adopt the new plan only if
  /// every app is still admitted, no guaranteed rate shrinks, and the BE
  /// utility improves by at least `min_utility_gain`; otherwise the
  /// current state is restored untouched.  The paper freezes placements
  /// because migration is costly (§IV intro); the report's migrated_cts
  /// counts that cost so operators can weigh it.
  ReoptimizeReport global_reoptimize(double min_utility_gain = 0.0);

  const Network& network() const { return net_; }
  const std::vector<PlacedApp>& placed() const { return placed_; }

  /// Elements currently marked failed (capacity zero; see mark_failed()).
  const std::set<ElementKey>& failed_elements() const { return failed_; }

  /// Process-global self-validation hook, run after every mutating
  /// operation (submit / remove / mark_failed / mark_recovered / rebalance
  /// / global_reoptimize) with the post-operation state.  Installed by the
  /// correctness harness (`check::ScopedValidation`, src/check) so debug
  /// builds and fuzz tests validate every intermediate state; pass nullptr
  /// to uninstall.  The hook may throw to fail the operation loudly; it
  /// must not mutate the scheduler.  Not thread-safe against concurrent
  /// scheduler use (the Scheduler itself is thread-compatible only).
  using ValidationHook = std::function<void(const Scheduler&)>;
  static void set_validation_hook(ValidationHook hook);

  /// Residual capacities after all GR reservations and marked failures
  /// (BE apps do not reserve).
  const CapacitySnapshot& gr_residual_capacities() const { return residual_; }

  /// Σ P_i log(x_i) over placed BE applications under the current
  /// allocation; -inf if any BE app currently has rate 0.
  double be_utility() const;

  /// Total reserved rate over admitted GR applications.
  double total_gr_rate() const;

 private:
  AdmissionResult submit_best_effort(const Application& app);
  AdmissionResult submit_guaranteed_rate(const Application& app);

  /// Finds up to `max_paths` paths for `app` on top of `start` capacities,
  /// stopping early when `enough(paths)` returns true (delegates to
  /// provision_paths with this scheduler's diversity options).
  std::vector<PathInfo> find_paths(const Application& app,
                                   const CapacitySnapshot& start,
                                   double rate_cap,
                                   const StopPredicate& enough) const;

  /// Re-solves problem (4) over all placed BE applications and updates
  /// their allocated rates.  Returns false if the solve failed.
  bool reallocate_best_effort();

  /// Recomputes residual_ = full capacities - GR reservations, with the
  /// failed elements zeroed.
  void rebuild_residual();

  /// True when every element the path touches is currently alive.
  bool path_alive(const PathInfo& path) const;

  /// Runs the installed validation hook (if any) on *this.
  void run_validation_hook() const;

  Network net_;
  SchedulerOptions options_;
  std::unique_ptr<Assigner> assigner_;
  LoadMap gr_reserved_;        ///< Σ over GR paths of rate * per-unit load
  std::set<ElementKey> failed_;
  CapacitySnapshot residual_;  ///< see rebuild_residual()
  std::vector<PlacedApp> placed_;
};

}  // namespace sparcle
