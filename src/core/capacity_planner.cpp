#include "core/capacity_planner.hpp"

#include <stdexcept>
#include <string>

namespace sparcle {

namespace {

/// Submits n copies of the mix; returns the failing reason ("" = all fit)
/// and fills the metrics when everything fits.
std::string probe(const Network& net, const std::vector<Application>& mix,
                  const SchedulerOptions& options, std::size_t n,
                  double* gr_rate, double* utility) {
  Scheduler sched(net, options);
  for (std::size_t copy = 0; copy < n; ++copy)
    for (const Application& app : mix) {
      Application instance = app;
      instance.name = app.name + "#" + std::to_string(copy);
      const AdmissionResult r = sched.submit(instance);
      if (!r.admitted)
        return instance.name +
               (r.reason.empty() ? " rejected" : ": " + r.reason);
    }
  // A "fit" where a BE tenant ends up with zero rate is not a usable
  // plan: later GR reservations starved it.  Count that as the limit.
  for (const PlacedApp& pa : sched.placed())
    if (pa.app.qoe.cls == QoeClass::kBestEffort && pa.allocated_rate <= 0)
      return pa.app.name + ": starved to zero rate";
  if (gr_rate != nullptr) *gr_rate = sched.total_gr_rate();
  if (utility != nullptr) *utility = sched.be_utility();
  return "";
}

}  // namespace

PlanningResult plan_capacity(const Network& net,
                             const std::vector<Application>& mix,
                             const SchedulerOptions& options,
                             std::size_t max_copies_cap) {
  if (mix.empty())
    throw std::invalid_argument("plan_capacity: empty workload mix");
  for (const Application& app : mix) app.validate();

  PlanningResult result;
  for (std::size_t n = 1; n <= max_copies_cap; ++n) {
    double gr = 0, utility = 0;
    const std::string reason = probe(net, mix, options, n, &gr, &utility);
    if (!reason.empty()) {
      result.limiting_reason = reason;
      return result;
    }
    result.max_copies = n;
    result.total_gr_rate = gr;
    result.be_utility = utility;
  }
  result.limiting_reason = "reached max_copies_cap";
  return result;
}

}  // namespace sparcle
