#include "core/prediction.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace sparcle {

CapacitySnapshot predict_capacities(const CapacitySnapshot& base,
                                    const std::vector<BePresence>& placed_be,
                                    double new_priority) {
  if (!(new_priority > 0))
    throw std::invalid_argument("predict_capacities: priority must be > 0");

  // Accumulate the total priority of placed BE apps touching each element.
  std::map<ElementKey, double> competing;
  for (const BePresence& be : placed_be) {
    if (!(be.priority > 0))
      throw std::invalid_argument(
          "predict_capacities: placed priority must be > 0");
    // An app competes once per element, however many of its paths use it.
    const std::set<ElementKey> distinct(be.elements.begin(),
                                        be.elements.end());
    for (const ElementKey& e : distinct) competing[e] += be.priority;
  }

  CapacitySnapshot out = base;
  for (const auto& [e, total_priority] : competing) {
    const double share = new_priority / (new_priority + total_priority);
    out.scale_elements({e}, share);
  }
  return out;
}

void apply_priority_shares(
    CapacitySnapshot& scratch,
    const std::unordered_map<ElementKey, double>& competing,
    double new_priority, std::vector<ElementKey>& touched) {
  if (!(new_priority > 0))
    throw std::invalid_argument("apply_priority_shares: priority must be > 0");
  for (const auto& [e, total_priority] : competing) {
    if (!(total_priority > 0)) continue;  // stale zero-total entry: share 1
    const double share = new_priority / (new_priority + total_priority);
    if (e.kind == ElementKey::Kind::kNcp)
      scratch.ncp(e.index) *= share;
    else
      scratch.link(e.index) *= share;
    touched.push_back(e);
  }
}

}  // namespace sparcle
