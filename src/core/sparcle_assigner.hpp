#pragma once

#include "core/assignment.hpp"
#include "policy/policy.hpp"

/// \file sparcle_assigner.hpp
/// SPARCLE's dynamic-ranking task-assignment algorithm (Algorithm 2).
///
/// Tasks are placed one at a time.  Each round, for every unplaced CT i and
/// every candidate host j, γ_{i,j} (eq. (2)) estimates the bottleneck
/// processing rate the placement would impose, combining (a) the host's
/// residual computation capacity over all resource types and (b) the widest
/// paths (Algorithm 1) towards the hosts of all *placed reachable* CTs of
/// i, probed with the minimum-bit TT of G(i,i').  The CT whose best-host
/// rate is smallest — the most constrained task — is committed first
/// (line 16), and the routes of the TTs linking it to already-placed
/// neighbours are committed along their widest paths.

namespace sparcle {

/// Configuration knobs (defaults reproduce the paper's algorithm; the
/// alternatives feed the ablation benchmarks).
struct SparcleAssignerOptions {
  /// If false, CTs are ranked once up-front by their best-host rate
  /// instead of re-ranking after every commitment (ablation: the dynamic
  /// ranking is the paper's key differentiator vs GS/GRand).
  bool dynamic_ranking{true};
  /// If false, probe paths towards reachable CTs with the *maximum*-bit TT
  /// of G(i,i') instead of the minimum (ablation of Alg. 2 line 12).
  bool probe_with_min_bits_tt{true};
  /// Which CT to commit each round (Alg. 2 line 16).  The paper is
  /// self-contradictory: the prose says i* = argmax_i γ_{i,j*_i} while
  /// the listing says argmin (most-constrained CT first).  The argmin
  /// reading is the only one consistent with the paper's §V-B claim that
  /// SPARCLE degenerates to GS in the NCP-bottleneck case, and it wins
  /// that regime by a wide margin; the argmax reading grows the placement
  /// outward from the pinned sources/sinks and wins some balanced
  /// instances.  The default runs both and keeps the better placement
  /// (still polynomial; see bench_ablations for the measured tradeoff).
  enum class Ranking {
    kMostConstrainedFirst,   ///< the Algorithm 2 listing (argmin)
    kLeastConstrainedFirst,  ///< the §IV-B prose (argmax)
    kBestOfBoth,             ///< run both, keep the higher rate
  };
  Ranking ranking{Ranking::kBestOfBoth};  ///< the commit rule in use
  /// Hill-climbing refinement rounds applied after the greedy (extension;
  /// 0 = the paper's algorithm).  See core/local_search.hpp.
  int local_search_rounds{0};

  // --- Performance knobs (never change the produced placement; see
  // docs/perf.md for the invalidation rules and the equivalence test) ---

  /// Cache each unplaced CT's (best host, γ) across ranking rounds and
  /// invalidate only the entries a commit can dirty: CTs related to the
  /// newly placed CT, CTs whose cached best host just absorbed node load,
  /// and — when the commit routed traffic — CTs with placed relatives
  /// (their γ has link terms).  Off = the fresh-per-round reference.
  bool memoize_gamma{true};
  /// Worker threads for the per-round candidate evaluation.  0 = auto
  /// (the SPARCLE_THREADS environment variable when set, otherwise the
  /// hardware concurrency); 1 = serial.  The reduction is deterministic,
  /// so the result is bit-identical for any value.
  int eval_threads{0};

  /// Candidate-ranking policy plugin (decision point 2 of
  /// policy::SchedulingPolicy): each dynamic-ranking round hands the
  /// evaluated (CT, best host, γ) candidates to the policy instead of the
  /// built-in argmin/argmax rule.  Non-owning — the caller keeps the
  /// policy alive for the assigner's lifetime (Scheduler holds it via
  /// SchedulerOptions::policy).  nullptr (and policy::DefaultPolicy,
  /// bit-identically) reproduce the paper's greedy; the static-ranking
  /// ablation path (dynamic_ranking = false) ignores the policy.
  const policy::SchedulingPolicy* policy{nullptr};
};

/// Algorithm 2 as an Assigner.
class SparcleAssigner : public Assigner {
 public:
  /// Assigner with the paper-default options.
  SparcleAssigner() = default;
  /// Assigner with explicit options (ablations, perf knobs).
  explicit SparcleAssigner(SparcleAssignerOptions options)
      : options_(options) {}

  std::string name() const override { return "SPARCLE"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override;

 private:
  SparcleAssignerOptions options_;
};

}  // namespace sparcle
