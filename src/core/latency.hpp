#pragma once

#include <vector>

#include "model/network.hpp"
#include "model/placement.hpp"
#include "model/task_graph.hpp"

/// \file latency.hpp
/// Analytic end-to-end latency estimate for a placed application at a
/// given processing rate, from the same queueing-network view the paper
/// uses for its stability argument (§IV-A).
///
/// Each element is a processor-sharing station; a task's sojourn there is
/// estimated with the PS mean-delay form  s / (1 - ρ), where s is the
/// task's isolated service time on its element and ρ the element's total
/// utilization at the given rate.  The application latency is the longest
/// (critical) path through the task DAG of CT sojourns plus per-hop TT
/// sojourns — the time a data unit needs from source emission until every
/// sink has finished it, assuming fan-out branches progress in parallel.
///
/// This is a mean-value estimate: exact in the light-load limit and a
/// usable planning number elsewhere (the simulator tests bound its error).

namespace sparcle {

/// Breakdown returned by estimate_latency().
struct LatencyEstimate {
  /// False when some element would be at or beyond capacity (ρ >= 1); the
  /// sojourn fields are then meaningless and total is +infinity.
  bool stable{false};
  /// Critical-path latency in seconds.
  double total{0.0};
  /// Estimated sojourn of each CT at its host (seconds).
  std::vector<double> ct_sojourn;
  /// Estimated sojourn of each TT summed over its route hops (seconds).
  std::vector<double> tt_sojourn;
  /// The most utilized element at this rate.
  ElementKey bottleneck{};
  /// Utilization ρ of that element.
  double bottleneck_utilization{0.0};
};

/// Estimates the latency of running `placement` at `rate` data units/s.
/// Throws std::invalid_argument on an incomplete placement or a negative
/// rate.
LatencyEstimate estimate_latency(const Network& net, const TaskGraph& graph,
                                 const Placement& placement, double rate);

}  // namespace sparcle
