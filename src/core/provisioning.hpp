#pragma once

#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "core/assignment.hpp"
#include "model/capacity.hpp"
#include "model/placement.hpp"

/// \file provisioning.hpp
/// Multipath provisioning: finding additional task-assignment paths for
/// one application (§IV-D).  The paper's loop re-runs the assignment on
/// residual capacities (each search sees the capacities minus what the
/// previous paths consume).  As an extension this module also offers a
/// *diversity-seeking* mode that additionally penalizes the elements the
/// previous paths touch, steering later paths onto disjoint hardware —
/// which is what availability (the reason for multiple paths in the first
/// place) actually rewards.

namespace sparcle {

/// One committed task-assignment path of an application.
struct PathInfo {
  Placement placement;          ///< the complete CT/TT mapping
  LoadMap load;                 ///< per-unit loads of this path
  double standalone_rate{0.0};  ///< bottleneck rate when the path was found
  std::vector<ElementKey> elements;  ///< distinct elements (availability)
};

/// How subsequent path searches treat the elements of earlier paths.
enum class PathDiversity {
  kResidualOnly,     ///< the paper's §IV-D loop: subtract consumption only
  kPenalizeOverlap,  ///< extension: also scale used elements' capacities
};

/// Knobs for provision_paths().
struct ProvisioningOptions {
  std::size_t max_paths{4};  ///< stop after this many paths
  /// How later searches treat elements used by earlier paths.
  PathDiversity diversity{PathDiversity::kResidualOnly};
  /// Capacity multiplier applied (during the search only) to elements
  /// already used by earlier paths, in kPenalizeOverlap mode.
  double overlap_penalty{0.3};
  /// Cap on each path's provisioned rate (GR paths are capped at the
  /// requested minimum rate); +infinity for no cap.
  double rate_cap{std::numeric_limits<double>::infinity()};
};

/// Called after each found path; return true to stop searching.
using StopPredicate = std::function<bool(const std::vector<PathInfo>&)>;

/// Finds up to options.max_paths paths for the application (graph + pins)
/// on top of `start` capacities using `assigner`.  Every path's
/// standalone_rate is evaluated against the true residual capacities
/// (penalties only shape the search).  Stops early when `stop` returns
/// true or no further feasible path exists.
std::vector<PathInfo> provision_paths(const Network& net,
                                      const TaskGraph& graph,
                                      const std::map<CtId, NcpId>& pinned,
                                      const CapacitySnapshot& start,
                                      const Assigner& assigner,
                                      const ProvisioningOptions& options,
                                      const StopPredicate& stop);

}  // namespace sparcle
