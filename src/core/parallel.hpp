#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file parallel.hpp
/// A small persistent worker pool for embarrassingly parallel evaluation
/// rounds (SPARCLE's per-round best-host candidate scan).  Work items are
/// claimed from an atomic counter, so the *schedule* is nondeterministic,
/// but callers write results into per-item slots and reduce serially —
/// making the overall output bit-identical to a serial run.

namespace sparcle {

/// Persistent pool of worker threads with an atomic work-claiming run().
class WorkerPool {
 public:
  /// A pool that runs work on `threads` workers total (the calling thread
  /// participates, so `threads - 1` OS threads are spawned).  threads <= 1
  /// means run() executes inline.
  explicit WorkerPool(unsigned threads);
  /// Joins all workers (any in-flight run() must have returned).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;             ///< non-copyable
  WorkerPool& operator=(const WorkerPool&) = delete;  ///< non-copyable

  /// Total workers, including the calling thread.
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(item, worker) for every item in [0, count).  `worker` is in
  /// [0, size()) and is stable within one item — use it to index
  /// per-worker scratch state.  Blocks until every item completed.  The
  /// first exception thrown by fn is rethrown here (remaining items may be
  /// skipped).  Not reentrant.
  void run(std::size_t count,
           const std::function<void(std::size_t item, unsigned worker)>& fn);

  /// Maps a user-facing thread-count knob to a concrete pool size.
  /// `requested > 0` wins outright.  Otherwise (auto) the `SPARCLE_THREADS`
  /// environment variable is consulted (a positive integer overrides
  /// everything else — the operator knob documented in the README), and
  /// failing that the hardware concurrency is used, clamped to `cap` when
  /// `cap` is non-zero (`cap == 0` means "no cap beyond the hardware").
  static unsigned resolve_threads(int requested, unsigned cap = 0);

 private:
  void work(unsigned worker);
  void worker_loop(unsigned worker);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, unsigned)>* fn_{nullptr};
  std::size_t count_{0};
  std::atomic<std::size_t> next_{0};  // lock-free work-item claim
  std::size_t busy_{0};  // workers still draining the current round
  std::uint64_t round_{0};    // bumped per run() to wake the workers
  bool stop_{false};
  std::exception_ptr error_;
};

}  // namespace sparcle
