#include "core/assignment.hpp"

#include <limits>
#include <stdexcept>

#include "core/greedy_engine.hpp"

namespace sparcle {

AssignmentResult evaluate_fixed_hosts(const AssignmentProblem& problem,
                                      const std::vector<NcpId>& hosts) {
  if (hosts.size() != problem.graph->ct_count())
    throw std::invalid_argument("evaluate_fixed_hosts: hosts size mismatch");
  GreedyEngine engine(problem);
  for (CtId i : problem.graph->topological_order()) engine.commit(i, hosts[i]);
  return std::move(engine).finish();
}

AssignmentResult finish_assignment(const AssignmentProblem& problem,
                                   Placement placement) {
  AssignmentResult result;
  result.placement = std::move(placement);
  if (!result.placement.complete()) {
    result.message = "incomplete placement";
    return result;
  }
  std::string err;
  if (!result.placement.validate(*problem.graph, *problem.net, &err)) {
    result.message = "invalid placement: " + err;
    return result;
  }
  result.rate = bottleneck_rate(*problem.net, *problem.graph,
                                result.placement, problem.capacities);
  result.feasible = result.rate > 0 &&
                    result.rate != std::numeric_limits<double>::infinity();
  if (!result.feasible && result.rate == 0)
    result.message = "placement has zero bottleneck rate";
  return result;
}

}  // namespace sparcle
