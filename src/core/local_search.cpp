#include "core/local_search.hpp"

#include <stdexcept>
#include <vector>

namespace sparcle {

AssignmentResult refine_placement(const AssignmentProblem& problem,
                                  const AssignmentResult& start,
                                  const LocalSearchOptions& options) {
  if (!start.feasible)
    throw std::invalid_argument("refine_placement: start is infeasible");
  const TaskGraph& g = *problem.graph;
  const std::size_t ncps = problem.net->ncp_count();

  std::vector<NcpId> hosts(g.ct_count());
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i)
    hosts[i] = start.placement.ct_host(i);

  AssignmentResult best = start;
  // Re-evaluate the start through the canonical router so move comparisons
  // are apples-to-apples (the greedy may have routed in a different order).
  {
    AssignmentResult re = evaluate_fixed_hosts(problem, hosts);
    if (re.feasible && re.rate > best.rate) best = std::move(re);
  }

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i) {
      if (problem.pinned.contains(i)) continue;
      const NcpId original = hosts[i];
      NcpId best_host = original;
      double best_rate = best.rate;
      AssignmentResult best_move;
      for (NcpId j = 0; j < static_cast<NcpId>(ncps); ++j) {
        if (j == original) continue;
        hosts[i] = j;
        AssignmentResult cand = evaluate_fixed_hosts(problem, hosts);
        if (cand.feasible && cand.rate > best_rate + 1e-12) {
          best_rate = cand.rate;
          best_host = j;
          best_move = std::move(cand);
        }
      }
      hosts[i] = best_host;
      if (best_host != original) {
        best = std::move(best_move);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace sparcle
