#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// \file fairness.hpp
/// The Best-Effort resource-allocation problem (4) of §IV-C:
///
///   maximize  Σ_i P_i log(x_i)   subject to  R X <= C,  X >= 0,
///
/// generalized so each application's rate x_i is the *sum* of the rates of
/// its task-assignment paths (§IV-D multipath provisioning).  Each path is
/// one variable; its column in R holds the per-unit load it puts on every
/// network element.  Solved with a log-barrier Newton interior-point
/// method; the solution reports the dual prices λ so tests can verify the
/// KKT conditions.

namespace sparcle {

/// The allocation problem in matrix form (rows = network-element capacity
/// constraints, columns = path-rate variables).
struct PfProblem {
  /// Capacity of each constraint row (one per element resource type).
  std::vector<double> capacity;

  /// Sparse column: (row index, per-unit load) pairs.
  struct Column {
    std::vector<std::pair<std::size_t, double>> entries;  ///< sparse loads
  };
  /// One sparse load column per path variable.
  std::vector<Column> columns;

  /// Which application each path variable belongs to.
  std::vector<std::size_t> var_app;
  /// Priority P_i of each application (all strictly positive).
  std::vector<double> app_priority;

  /// Number of applications.
  std::size_t app_count() const { return app_priority.size(); }
  /// Number of path-rate variables.
  std::size_t var_count() const { return columns.size(); }
};

/// A previous solution used as the starting iterate of a warm solve.
/// Valid whenever the variables still describe the same paths: rates are
/// matched to columns positionally, so the caller must keep index v of
/// `path_rate` aligned with column v of the new problem (new paths get a
/// zero / missing entry and fall back to the cold default).  `dual` is
/// indexed by *original* constraint row and is optional — when present it
/// seeds the barrier parameter μ from the complementarity products, which
/// is what makes a small-delta re-solve land within a couple of Newton
/// phases instead of the full cold μ-schedule.
struct PfWarmStart {
  std::vector<double> path_rate;  ///< previous primal point, one per variable
  std::vector<double> dual;       ///< previous λ per original row (optional)
};

/// Solver knobs for solve_weighted_pf().
struct PfOptions {
  double duality_gap_tol{1e-8};  ///< stop when m*μ (scaled) drops below this
  int max_newton_steps{400};     ///< hard cap on Newton iterations
  /// Previous solution to warm-start from (nullptr = always cold).  The
  /// warm attempt must reach the duality-gap tolerance *and* Newton
  /// stationarity within `warm_newton_budget` iterations; otherwise the
  /// solver transparently falls back to a cold solve, so a warm start can
  /// cost iterations but never correctness.
  const PfWarmStart* warm{nullptr};
  int warm_newton_budget{160};  ///< iteration budget of the warm attempt
};

/// The allocation returned by solve_weighted_pf().
struct PfSolution {
  bool converged{false};  ///< duality gap reached tolerance within the cap
  std::vector<double> path_rate;  ///< one per variable
  std::vector<double> app_rate;   ///< Σ of the app's path rates
  double utility{0.0};            ///< Σ P_i log(app_rate_i)
  /// Dual price per constraint row (λ of the KKT system), in original units.
  std::vector<double> dual;
  /// Largest constraint violation of the returned point (should be <= 0).
  double max_violation{0.0};
  /// Newton iterations spent, warm attempt included (solver-cost metric).
  int newton_iters{0};
  bool warm_started{false};   ///< the warm attempt converged and was kept
  bool warm_fallback{false};  ///< warm attempt failed; result is a cold solve
};

/// Solves the weighted proportional-fairness problem.  Throws
/// std::invalid_argument on malformed input (empty apps, non-positive
/// priorities, an application with no variables, or a variable constrained
/// by a zero-capacity row — such paths must be dropped by the caller).
PfSolution solve_weighted_pf(const PfProblem& problem,
                             const PfOptions& options = {});

/// Σ P_i log(Σ paths of i), for reporting utilities of externally chosen
/// rates (e.g. baseline algorithms in the Fig. 13 benchmark).
double pf_utility(const PfProblem& problem,
                  const std::vector<double>& path_rate);

}  // namespace sparcle
