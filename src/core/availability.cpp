#include "core/availability.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <random>
#include <stdexcept>

namespace sparcle {

namespace {

/// Maps the distinct elements of all paths to dense indices and represents
/// each path as a bitmask over them (chunked into 64-bit words).
struct ElementIndex {
  std::map<ElementKey, std::size_t> index;
  std::vector<double> up_prob;                       // per element
  std::vector<std::vector<std::uint64_t>> path_bits; // per path
  std::size_t words{0};

  ElementIndex(const Network& net,
               const std::vector<std::vector<ElementKey>>& paths) {
    for (const auto& path : paths)
      for (const ElementKey& e : path)
        if (!index.contains(e)) {
          index.emplace(e, index.size());
          up_prob.push_back(1.0 - net.fail_prob(e));
        }
    words = (index.size() + 63) / 64;
    path_bits.assign(paths.size(), std::vector<std::uint64_t>(words, 0));
    for (std::size_t p = 0; p < paths.size(); ++p)
      for (const ElementKey& e : paths[p]) {
        const std::size_t i = index.at(e);
        path_bits[p][i / 64] |= std::uint64_t{1} << (i % 64);
      }
  }

  /// P(all elements in the union of the paths in `mask` are up).
  double union_up_probability(std::uint32_t mask) const {
    std::vector<std::uint64_t> u(words, 0);
    for (std::size_t p = 0; mask != 0; ++p, mask >>= 1)
      if (mask & 1)
        for (std::size_t w = 0; w < words; ++w) u[w] |= path_bits[p][w];
    double prob = 1.0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = u[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        prob *= up_prob[w * 64 + static_cast<std::size_t>(b)];
      }
    }
    return prob;
  }
};

void check_path_count(std::size_t n) {
  if (n == 0)
    throw std::invalid_argument("availability: no paths given");
  if (n > kMaxExactPaths)
    throw std::invalid_argument(
        "availability: too many paths for exact analysis; use the "
        "Monte-Carlo estimators");
}

/// Precomputes P(all paths in mask are up) for every subset mask.
std::vector<double> all_union_probs(const ElementIndex& ix, std::size_t n) {
  std::vector<double> up(1u << n);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask)
    up[mask] = ix.union_up_probability(mask);
  return up;
}

}  // namespace

double all_up_probability(const Network& net,
                          const std::vector<ElementKey>& elements) {
  std::vector<std::vector<ElementKey>> one{elements};
  const ElementIndex ix(net, one);
  return ix.union_up_probability(1u);
}

double availability_any(const Network& net,
                        const std::vector<std::vector<ElementKey>>& paths) {
  check_path_count(paths.size());
  const ElementIndex ix(net, paths);
  const std::size_t n = paths.size();
  // Inclusion–exclusion: P(∪ A_p) = Σ_{∅≠U} (-1)^(|U|+1) P(∩_{p∈U} A_p).
  double prob = 0.0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    const double term = ix.union_up_probability(mask);
    prob += (std::popcount(mask) % 2 == 1) ? term : -term;
  }
  return std::clamp(prob, 0.0, 1.0);
}

double exact_path_state_probability(
    const Network& net, const std::vector<std::vector<ElementKey>>& paths,
    std::uint32_t working_mask) {
  check_path_count(paths.size());
  const std::size_t n = paths.size();
  if (working_mask >= (1u << n))
    throw std::invalid_argument("exact_path_state_probability: bad mask");
  const ElementIndex ix(net, paths);
  // P(S up exactly) = Σ_{T ⊆ complement(S)} (-1)^|T| P(S ∪ T all up).
  const std::uint32_t rest =
      static_cast<std::uint32_t>((1u << n) - 1) & ~working_mask;
  double prob = 0.0;
  // Enumerate submasks of `rest` (including the empty set).
  std::uint32_t t = rest;
  while (true) {
    const double term = ix.union_up_probability(working_mask | t);
    prob += (std::popcount(t) % 2 == 0) ? term : -term;
    if (t == 0) break;
    t = (t - 1) & rest;
  }
  return std::clamp(prob, 0.0, 1.0);
}

double min_rate_availability(const Network& net,
                             const std::vector<std::vector<ElementKey>>& paths,
                             const std::vector<double>& rates,
                             double min_rate) {
  check_path_count(paths.size());
  if (rates.size() != paths.size())
    throw std::invalid_argument("min_rate_availability: rates size mismatch");
  const std::size_t n = paths.size();
  const ElementIndex ix(net, paths);
  const std::vector<double> up = all_union_probs(ix, n);

  // Eq. (7): Σ over subsets S whose rate sum reaches the target of
  // P(paths in S up & the rest down), the latter by inclusion–exclusion.
  double avail = 0.0;
  for (std::uint32_t s = 0; s < (1u << n); ++s) {
    double sum = 0;
    for (std::size_t p = 0; p < n; ++p)
      if (s & (1u << p)) sum += rates[p];
    if (sum + 1e-12 < min_rate) continue;
    const std::uint32_t rest = static_cast<std::uint32_t>((1u << n) - 1) & ~s;
    std::uint32_t t = rest;
    while (true) {
      const double term = up[s | t];
      avail += (std::popcount(t) % 2 == 0) ? term : -term;
      if (t == 0) break;
      t = (t - 1) & rest;
    }
  }
  return std::clamp(avail, 0.0, 1.0);
}

namespace {

/// Shared Monte-Carlo loop: draws element up/down states and reports the
/// fraction of trials where `qualifies(working path mask)` holds.
template <typename Qualifier>
double mc_estimate(const Network& net,
                   const std::vector<std::vector<ElementKey>>& paths,
                   std::size_t trials, std::uint64_t seed,
                   Qualifier qualifies) {
  if (paths.empty() || trials == 0)
    throw std::invalid_argument("availability MC: empty input");
  const ElementIndex ix(net, paths);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const std::size_t ne = ix.index.size();
  std::vector<char> up(ne);
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t e = 0; e < ne; ++e) up[e] = uni(rng) < ix.up_prob[e];
    std::uint32_t mask = 0;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      bool works = true;
      for (std::size_t w = 0; w < ix.words && works; ++w) {
        std::uint64_t bits = ix.path_bits[p][w];
        while (bits) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          if (!up[w * 64 + static_cast<std::size_t>(b)]) {
            works = false;
            break;
          }
        }
      }
      if (works) mask |= 1u << p;
    }
    if (qualifies(mask)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace

double availability_any_mc(const Network& net,
                           const std::vector<std::vector<ElementKey>>& paths,
                           std::size_t trials, std::uint64_t seed) {
  return mc_estimate(net, paths, trials, seed,
                     [](std::uint32_t mask) { return mask != 0; });
}

double min_rate_availability_mc(
    const Network& net, const std::vector<std::vector<ElementKey>>& paths,
    const std::vector<double>& rates, double min_rate, std::size_t trials,
    std::uint64_t seed) {
  if (rates.size() != paths.size())
    throw std::invalid_argument(
        "min_rate_availability_mc: rates size mismatch");
  return mc_estimate(net, paths, trials, seed, [&](std::uint32_t mask) {
    double sum = 0;
    for (std::size_t p = 0; p < paths.size(); ++p)
      if (mask & (1u << p)) sum += rates[p];
    return sum + 1e-12 >= min_rate;
  });
}

}  // namespace sparcle
