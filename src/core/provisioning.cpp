#include "core/provisioning.hpp"

#include <algorithm>
#include <set>

namespace sparcle {

std::vector<PathInfo> provision_paths(const Network& net,
                                      const TaskGraph& graph,
                                      const std::map<CtId, NcpId>& pinned,
                                      const CapacitySnapshot& start,
                                      const Assigner& assigner,
                                      const ProvisioningOptions& options,
                                      const StopPredicate& stop) {
  std::vector<PathInfo> paths;
  CapacitySnapshot residual = start;   // true remaining capacities
  std::set<ElementKey> used_elements;  // by any earlier path

  for (std::size_t iter = 0; iter < options.max_paths; ++iter) {
    AssignmentProblem problem;
    problem.net = &net;
    problem.graph = &graph;
    problem.pinned = pinned;
    problem.capacities = residual;
    if (options.diversity == PathDiversity::kPenalizeOverlap &&
        !used_elements.empty()) {
      // Shape the search away from already-used hardware; evaluation of
      // the found path still uses the unpenalized residual.
      problem.capacities.scale_elements(
          {used_elements.begin(), used_elements.end()},
          options.overlap_penalty);
    }

    const AssignmentResult res = assigner.assign(problem);
    if (!res.feasible) break;

    PathInfo info;
    info.placement = res.placement;
    info.load = LoadMap(net, graph, res.placement);
    // Rate against the *true* residual (penalties are search-only).
    const double true_rate = bottleneck_rate(residual, info.load);
    if (!(true_rate > 0)) break;
    info.standalone_rate = std::min(true_rate, options.rate_cap);
    info.elements = res.placement.used_elements(graph, net);
    paths.push_back(std::move(info));

    if (stop && stop(paths)) break;
    residual.subtract_scaled(paths.back().load,
                             paths.back().standalone_rate);
    for (const ElementKey& e : paths.back().elements) used_elements.insert(e);
  }
  return paths;
}

}  // namespace sparcle
