#pragma once

#include <functional>
#include <vector>

#include "model/capacity.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"

/// \file widest_path.hpp
/// Algorithm 1: the modified Dijkstra that finds the best path for a TT —
/// the path whose minimum link weight is maximal, where the weight of link
/// l is the processing rate the TT would see on it:
///   weight(l) = C_l^(b) / (a_k^(b) + Σ_{TTs already on l} a^(b)).

namespace sparcle {

/// Result of a widest (maximum-bottleneck) path query.
struct WidestPathResult {
  bool reachable{false};
  /// The max-min weight along the path; +infinity when from == to.
  double width{0.0};
  /// Links from source to destination, in hop order; empty when from == to.
  std::vector<LinkId> links;
};

/// Generic widest path between two NCPs under an arbitrary per-link weight.
/// Links with non-positive weight are unusable.  Deterministic tie-break
/// (lower NCP index wins among equal widths).
WidestPathResult widest_path(const Network& net, NcpId from, NcpId to,
                             const std::function<double(LinkId)>& weight);

/// Algorithm 1 proper: the best path P*_k(from, to) for a TT carrying
/// `tt_bits` per data unit, given residual `cap` and the bits already
/// placed on each link in `load` (eq. (3)).
WidestPathResult best_tt_path(const Network& net, const CapacitySnapshot& cap,
                              const LoadMap& load, double tt_bits, NcpId from,
                              NcpId to);

/// Load-oblivious hop-count shortest path (BFS, deterministic tie-break).
/// This is the routing the non-network-aware baselines use; `reachable`
/// is false when the NCPs are disconnected.  `width` reports the minimum
/// raw bandwidth along the route (informational).
WidestPathResult shortest_hop_path(const Network& net, NcpId from, NcpId to);

}  // namespace sparcle
