#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "model/capacity.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"

/// \file widest_path.hpp
/// Algorithm 1: the modified Dijkstra that finds the best path for a TT —
/// the path whose minimum link weight is maximal, where the weight of link
/// l is the processing rate the TT would see on it:
///   weight(l) = C_l^(b) / (a_k^(b) + Σ_{TTs already on l} a^(b)).
///
/// Two call layers:
///  - the legacy std::function entry points (widest_path / best_tt_path /
///    shortest_hop_path), which allocate per call — convenient for tests
///    and one-off queries;
///  - the buffered kernel (widest_path_buffered / widest_path_width),
///    a template over the weight functor with a caller-owned reusable
///    WidestPathWorkspace — the assignment hot path runs thousands of
///    queries per round and pays zero allocations after warm-up.

namespace sparcle {

/// Result of a widest (maximum-bottleneck) path query.
struct WidestPathResult {
  bool reachable{false};  ///< a usable path exists
  /// The max-min weight along the path; +infinity when from == to.
  double width{0.0};
  /// Links from source to destination, in hop order; empty when from == to.
  std::vector<LinkId> links;
};

/// Width-only probe result (no route reconstruction, no allocation).
struct WidestWidthResult {
  /// Destination reached with width > floor.
  bool reachable{false};
  /// The search aborted because no remaining path can exceed the caller's
  /// floor; `width` then holds an upper bound (<= floor) on the true
  /// width, and `reachable` is false even if a path <= floor exists.
  bool pruned{false};
  double width{0.0};  ///< exact width, or the upper bound when pruned
};

/// Caller-owned scratch buffers for the Dijkstra kernel.  Buffers are
/// epoch-stamped: reset between queries is O(1) (a counter bump), and only
/// nodes actually touched by a query are ever written.  Networks of at
/// most 64 nodes — the common dispersed-site size — take a faster route:
/// touched/settled state lives in two uint64_t bitmasks instead of the
/// stamp arrays, so the membership tests in the relax loop are single-bit
/// probes.  One workspace may be reused across networks of different
/// sizes and across different weight functors; it must not be shared by
/// concurrent queries.
///
/// The frontier is a flat 4-ary max-heap keyed by (width desc, node id
/// asc).  Because a node is only re-pushed with a strictly larger width,
/// every live (width, node) entry is distinct, and the key order is total;
/// any valid heap therefore pops entries in exactly the same sequence as
/// the binary std::push_heap it replaced — the arity is a constant-factor
/// change (shallower tree, sibling scan over one cache line), not a
/// behavioral one.
class WidestPathWorkspace {
 public:
  /// Sizes the buffers for an `n`-node network and opens a new epoch.
  void prepare(std::size_t n) {
    small_ = n <= 64;
    if (phi_.size() < n) {
      phi_.resize(n);
      prev_.resize(n);
      stamp_.assign(n, 0);
      done_.assign(n, 0);
    }
    if (small_) {
      touched_mask_ = 0;
      done_mask_ = 0;
    } else if (++epoch_ == 0) {  // epoch counter wrapped: hard-reset stamps
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(done_.begin(), done_.end(), 0);
      epoch_ = 1;
    }
    heap_.clear();
  }

  // Kernel state, valid for nodes touched since the last prepare().

  /// Best width reaching `v` this epoch (-infinity when untouched).
  double phi(NcpId v) const { return touched(v) ? phi_[v] : -kInf_; }
  /// The link `v` was best reached through (kInvalidId when untouched).
  LinkId prev(NcpId v) const { return touched(v) ? prev_[v] : kInvalidId; }
  /// Records width `width` reaching `v` via link `via`.
  void relax(NcpId v, double width, LinkId via) {
    phi_[v] = width;
    prev_[v] = via;
    if (small_)
      touched_mask_ |= std::uint64_t{1} << v;
    else
      stamp_[v] = epoch_;
  }
  /// True once `v` was settled this epoch.
  bool done(NcpId v) const {
    return small_ ? ((done_mask_ >> v) & 1u) != 0 : done_[v] == epoch_;
  }
  /// Settles `v` for this epoch.
  void mark_done(NcpId v) {
    if (small_)
      done_mask_ |= std::uint64_t{1} << v;
    else
      done_[v] = epoch_;
  }

  /// Pushes a frontier entry (sift-up over the 4-ary heap).
  void push(double width, NcpId v) {
    heap_.push_back({width, v});
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t p = (i - 1) >> 2;
      if (!less(heap_[p], heap_[i])) break;
      std::swap(heap_[p], heap_[i]);
      i = p;
    }
  }
  /// True when the frontier heap is empty.
  bool heap_empty() const { return heap_.empty(); }
  /// Pops the widest (width, node) frontier entry (sift-down, scanning the
  /// up-to-four children of each hole for the best successor).
  std::pair<double, NcpId> pop() {
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      const std::size_t n = heap_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t c0 = (i << 2) + 1;
        if (c0 >= n) break;
        std::size_t best = c0;
        const std::size_t cend = c0 + 4 < n ? c0 + 4 : n;
        for (std::size_t c = c0 + 1; c < cend; ++c)
          if (less(heap_[best], heap_[c])) best = c;
        if (!less(last, heap_[best])) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return {top.width, top.node};
  }

 private:
  struct Entry {
    double width;
    NcpId node;
  };
  /// Max-heap order: wider first; among equal widths the lower NCP id is
  /// settled first — the deterministic tie-break rule.
  static bool less(const Entry& a, const Entry& b) {
    if (a.width != b.width) return a.width < b.width;
    return a.node > b.node;
  }
  bool touched(NcpId v) const {
    return small_ ? ((touched_mask_ >> v) & 1u) != 0 : stamp_[v] == epoch_;
  }
  static constexpr double kInf_ = std::numeric_limits<double>::infinity();

  std::vector<double> phi_;
  std::vector<LinkId> prev_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> done_;
  std::vector<Entry> heap_;
  std::uint32_t epoch_{0};
  std::uint64_t touched_mask_{0};
  std::uint64_t done_mask_{0};
  bool small_{false};
};

namespace detail {

/// Shared Dijkstra core.  Returns +1 when `to` was settled, 0 when the
/// search exhausted the reachable set without meeting `to`, and -1 when it
/// aborted because the widest remaining frontier width is <= `floor`
/// (only possible with floor > 0).  On -1, *bound holds that frontier
/// width.  phi/prev for settled nodes live in `ws`.
template <typename WeightFn>
int run_widest_dijkstra(const Network& net, NcpId from, NcpId to,
                        const WeightFn& weight, WidestPathWorkspace& ws,
                        double floor, double* bound) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ws.prepare(net.ncp_count());
  ws.relax(from, kInf, kInvalidId);
  ws.push(kInf, from);
  while (!ws.heap_empty()) {
    const auto [w, v] = ws.pop();
    if (ws.done(v)) continue;
    if (w <= floor) {  // no remaining path can beat the caller's floor
      *bound = w;
      return -1;
    }
    ws.mark_done(v);
    if (v == to) return 1;
    // `w` is phi(v): the first non-settled pop of a node always carries its
    // current (largest) label, so re-reading the array is redundant.  The
    // CSR row guarantees v is an endpoint of every incident link, so the
    // other end is the branch-free `a ^ b ^ v` and can_traverse() reduces
    // to the directed-arrow test — one bounds-checked Link fetch per edge
    // instead of two.  The remaining usability tests are fused into one
    // flag so the compiler can keep the min and both comparisons
    // branch-free over the row; `lw > 0` doubles as the NaN filter (NaN
    // compares false).
    for (LinkId l : net.incident_links(v)) {
      const Link& lk = net.link(l);
      if (lk.directed && lk.a != v) continue;  // against the arrow
      const double lw = weight(l);
      const NcpId u = lk.a ^ lk.b ^ v;
      const double cand = lw < w ? lw : w;
      const bool improves = (lw > 0) & !ws.done(u) & (cand > ws.phi(u));
      if (improves) {
        ws.relax(u, cand, l);
        ws.push(cand, u);
      }
    }
  }
  return 0;
}

inline void check_endpoints(const Network& net, NcpId from, NcpId to,
                            const char* who) {
  if (from < 0 || to < 0 || from >= static_cast<NcpId>(net.ncp_count()) ||
      to >= static_cast<NcpId>(net.ncp_count()))
    throw std::invalid_argument(std::string(who) +
                                ": endpoint out of range");
}

}  // namespace detail

/// Buffered kernel with route reconstruction.  Identical semantics to
/// widest_path() below but allocation-free apart from the result's link
/// vector, and free of the std::function indirection.
template <typename WeightFn>
WidestPathResult widest_path_buffered(const Network& net, NcpId from,
                                      NcpId to, const WeightFn& weight,
                                      WidestPathWorkspace& ws) {
  detail::check_endpoints(net, from, to, "widest_path");
  WidestPathResult result;
  if (from == to) {
    result.reachable = true;
    result.width = std::numeric_limits<double>::infinity();
    return result;
  }
  double bound = 0.0;
  if (detail::run_widest_dijkstra(net, from, to, weight, ws, 0.0, &bound) !=
      1)
    return result;  // cut off
  if (!(ws.phi(to) > 0) || ws.prev(to) == kInvalidId) return result;
  result.reachable = true;
  result.width = ws.phi(to);
  for (NcpId at = to; at != from;) {
    const LinkId l = ws.prev(at);
    result.links.push_back(l);
    at = net.other_end(l, at);
  }
  std::reverse(result.links.begin(), result.links.end());
  return result;
}

/// Width-only buffered probe with exact branch-and-bound pruning: when no
/// path wider than `floor` exists the search aborts early and reports
/// `pruned` with an upper bound instead of the exact width.  Pass
/// floor <= 0 for an exact reachability answer.
template <typename WeightFn>
WidestWidthResult widest_path_width(const Network& net, NcpId from, NcpId to,
                                    const WeightFn& weight,
                                    WidestPathWorkspace& ws,
                                    double floor = 0.0) {
  detail::check_endpoints(net, from, to, "widest_path");
  WidestWidthResult r;
  if (from == to) {
    r.reachable = true;
    r.width = std::numeric_limits<double>::infinity();
    return r;
  }
  double bound = 0.0;
  switch (detail::run_widest_dijkstra(net, from, to, weight, ws, floor,
                                      &bound)) {
    case 1:
      r.reachable = true;
      r.width = ws.phi(to);
      break;
    case -1:
      r.pruned = true;
      r.width = bound;
      break;
    default:
      break;  // unreachable
  }
  return r;
}

/// Algorithm 1's per-link weight (eq. (3)): the rate a TT carrying
/// `tt_bits` would see on link l given residual capacities and the bits
/// already routed over l.
struct TtPathWeight {
  const CapacitySnapshot* cap;  ///< residual capacities (non-owning)
  const LoadMap* load;          ///< bits already routed per link (non-owning)
  double tt_bits;               ///< a_k^(b) of the TT being routed
  /// The rate the TT would see crossing link `l`.
  double operator()(LinkId l) const {
    const double denom = tt_bits + load->link_load(l);
    if (denom <= 0)
      return std::numeric_limits<double>::infinity();  // zero-bit TT: free
    return cap->link(l) / denom;
  }
};

/// Generic widest path between two NCPs under an arbitrary per-link weight.
/// Links with non-positive weight are unusable.  Deterministic tie-break
/// (lower NCP index wins among equal widths).
WidestPathResult widest_path(const Network& net, NcpId from, NcpId to,
                             const std::function<double(LinkId)>& weight);

/// Algorithm 1 proper: the best path P*_k(from, to) for a TT carrying
/// `tt_bits` per data unit, given residual `cap` and the bits already
/// placed on each link in `load` (eq. (3)).
WidestPathResult best_tt_path(const Network& net, const CapacitySnapshot& cap,
                              const LoadMap& load, double tt_bits, NcpId from,
                              NcpId to);

/// Buffered variant of best_tt_path for hot paths.
WidestPathResult best_tt_path(const Network& net, const CapacitySnapshot& cap,
                              const LoadMap& load, double tt_bits, NcpId from,
                              NcpId to, WidestPathWorkspace& ws);

/// Load-oblivious hop-count shortest path (BFS, deterministic tie-break).
/// This is the routing the non-network-aware baselines use; `reachable`
/// is false when the NCPs are disconnected.  `width` reports the minimum
/// raw bandwidth along the route (informational).  Honors the same
/// "unusable link" rule as widest_path: links with non-positive (or NaN)
/// bandwidth are never traversed.
WidestPathResult shortest_hop_path(const Network& net, NcpId from, NcpId to);

}  // namespace sparcle
