#pragma once

#include <map>
#include <string>

#include "model/application.hpp"
#include "model/capacity.hpp"
#include "model/network.hpp"
#include "model/placement.hpp"
#include "model/task_graph.hpp"

/// \file assignment.hpp
/// The task-assignment problem interface (problem (1) of §IV-A) shared by
/// SPARCLE's Algorithm 2 and every baseline comparator: given a network,
/// effective (residual) capacities, a task graph and the pinned CTs, find
/// one complete task-assignment path maximizing the bottleneck rate.

namespace sparcle {

/// One invocation of a task-assignment algorithm.
struct AssignmentProblem {
  const Network* net{nullptr};      ///< the computing network (non-owning)
  const TaskGraph* graph{nullptr};  ///< the application DAG (non-owning)
  /// Effective capacities the algorithm may assume available (already net
  /// of GR reservations / previous paths / priority prediction).
  CapacitySnapshot capacities;
  /// CTs with predetermined hosts (data sources, result consumers).
  std::map<CtId, NcpId> pinned;
};

/// Outcome of a task-assignment attempt.
struct AssignmentResult {
  bool feasible{false};  ///< complete placement with strictly positive rate
  Placement placement;   ///< the found mapping (meaningful when feasible)
  double rate{0.0};      ///< bottleneck rate under the problem's capacities
  std::string message;   ///< human-readable failure reason when infeasible
};

/// Abstract task-assignment algorithm.
class Assigner {
 public:
  virtual ~Assigner() = default;
  /// Short identifier used in benchmark tables ("SPARCLE", "HEFT", ...).
  virtual std::string name() const = 0;
  /// Solves one task-assignment problem; never mutates the network.
  virtual AssignmentResult assign(const AssignmentProblem& problem) const = 0;
};

/// Builds a result from a complete placement: computes the bottleneck rate
/// and validates structure.  Used by all Assigner implementations.
AssignmentResult finish_assignment(const AssignmentProblem& problem,
                                   Placement placement);

/// Evaluates a fully specified CT->NCP map: commits the CTs in topological
/// order (so TT routes are laid source-to-sink) with widest-path routing
/// and returns the resulting placement and rate.  `hosts[i]` is the NCP of
/// CT i and must agree with the problem's pins.  Shared by the exhaustive
/// optimal search and the local-search refinement.
AssignmentResult evaluate_fixed_hosts(const AssignmentProblem& problem,
                                      const std::vector<NcpId>& hosts);

}  // namespace sparcle
