#include "core/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace sparcle {

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (unsigned w = 0; w < spawn; ++w)
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

unsigned WorkerPool::resolve_threads(int requested, unsigned cap) {
  if (requested > 0) return static_cast<unsigned>(requested);
  if (const char* env = std::getenv("SPARCLE_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return cap == 0 ? hw : std::min(hw, cap);
}

void WorkerPool::work(unsigned worker) {
  for (;;) {
    const std::size_t item = next_.fetch_add(1, std::memory_order_relaxed);
    if (item >= count_) return;
    try {
      (*fn_)(item, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
    }
    work(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(
    std::size_t count,
    const std::function<void(std::size_t, unsigned)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    busy_ = workers_.size();
    ++round_;
  }
  start_cv_.notify_all();
  work(0);  // the calling thread participates as worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace sparcle
