#pragma once

#include <unordered_map>
#include <vector>

#include "model/capacity.hpp"
#include "model/ids.hpp"
#include "model/network.hpp"

/// \file prediction.hpp
/// Priority-share capacity prediction, eq. (6) of §IV-D.
///
/// Before running the task-assignment algorithm for an arriving BE
/// application J, SPARCLE predicts how much of each element's capacity J
/// would receive once the proportional-fair allocation (4) runs: on an
/// element hosting tasks of already-placed BE applications J_n, J's share
/// is P_J / (P_J + Σ_{J' ∈ J_n} P_{J'})  (Theorem 3; the paper's worked
/// example — P_b = 2 P_a gives 2/3 C — fixes the denominator convention).
/// This makes the final allocation approximately independent of arrival
/// order.

namespace sparcle {

/// A previously placed BE application's footprint.
struct BePresence {
  double priority{1.0};  ///< its weight P_{J'} in the share denominator
  /// Every element any of its task-assignment paths uses.
  std::vector<ElementKey> elements;
};

/// Returns `base` (capacities already net of GR reservations) with each
/// element scaled by the arriving application's predicted priority share.
CapacitySnapshot predict_capacities(const CapacitySnapshot& base,
                                    const std::vector<BePresence>& placed_be,
                                    double new_priority);

/// In-place counterpart of predict_capacities() for callers that maintain
/// the per-element competing-priority totals incrementally (the scheduler's
/// admission hot path): scales each element of `competing` in `scratch` by
/// the eq. (6) share of an arriving application with `new_priority`, and
/// appends every scaled element to `touched` so the caller can restore
/// `scratch` to its base with a sparse copy instead of a full snapshot.
/// Elements are scaled independently, so the (unordered) map's iteration
/// order does not affect the resulting capacities.
void apply_priority_shares(
    CapacitySnapshot& scratch,
    const std::unordered_map<ElementKey, double>& competing,
    double new_priority, std::vector<ElementKey>& touched);

}  // namespace sparcle
