#include "workload/scenarios.hpp"

#include <stdexcept>

namespace sparcle::workload {

std::string to_string(BottleneckCase c) {
  switch (c) {
    case BottleneckCase::kNcp: return "NCP-bottleneck";
    case BottleneckCase::kLink: return "link-bottleneck";
    case BottleneckCase::kBalanced: return "balanced";
    case BottleneckCase::kMemory: return "memory-bottleneck";
  }
  return "?";
}

std::string to_string(TopologyKind t) {
  switch (t) {
    case TopologyKind::kStar: return "star";
    case TopologyKind::kLinear: return "linear";
    case TopologyKind::kFull: return "fully-connected";
  }
  return "?";
}

std::string to_string(GraphKind g) {
  switch (g) {
    case GraphKind::kLinear: return "linear";
    case GraphKind::kDiamond: return "diamond";
  }
  return "?";
}

NetRanges net_ranges_for(BottleneckCase c) {
  NetRanges r;
  switch (c) {
    case BottleneckCase::kNcp:
      // NCPs tight; links have a ~10x larger capacity-to-requirement
      // ratio (the paper's "10x larger ratio", §V-B1).
      r.ncp_min = 10;
      r.ncp_max = 30;
      r.bw_min = 100;
      r.bw_max = 300;
      break;
    case BottleneckCase::kLink:
      r.ncp_min = 100;
      r.ncp_max = 300;
      r.bw_min = 10;
      r.bw_max = 30;
      break;
    case BottleneckCase::kBalanced:
      // Wide heterogeneity: either kind of element can end up binding.
      r.ncp_min = 15;
      r.ncp_max = 75;
      r.bw_min = 15;
      r.bw_max = 75;
      break;
    case BottleneckCase::kMemory:
      // CPU and links plentiful; memory is the scarce resource.
      r.ncp_min = 100;
      r.ncp_max = 300;
      r.mem_min = 10;
      r.mem_max = 30;
      r.bw_min = 100;
      r.bw_max = 300;
      break;
  }
  return r;
}

TaskRanges task_ranges_for(BottleneckCase c) {
  TaskRanges r;  // U[5,15] per task for every requirement type
  (void)c;
  return r;
}

Scenario make_scenario(const ScenarioSpec& spec, Rng& rng) {
  const std::size_t resources =
      spec.bottleneck == BottleneckCase::kMemory ? 2 : 1;
  NetRanges nr = net_ranges_for(spec.bottleneck);
  // The paper's failure experiments attach failures to links ("the failure
  // probability of links of the considered star computing network is 2%").
  nr.link_fail_prob = spec.fail_prob;
  const TaskRanges tr = task_ranges_for(spec.bottleneck);

  GeneratedNetwork gen;
  switch (spec.topology) {
    case TopologyKind::kStar:
      gen = star_network(spec.ncps, rng, nr, resources);
      break;
    case TopologyKind::kLinear:
      gen = linear_network(spec.ncps, rng, nr, resources);
      break;
    case TopologyKind::kFull:
      gen = full_network(spec.ncps, rng, nr, resources);
      break;
  }

  Scenario s;
  s.net = std::move(gen.net);
  switch (spec.graph) {
    case GraphKind::kLinear:
      s.graph = linear_task_graph(spec.middle_cts, rng, tr, resources);
      break;
    case GraphKind::kDiamond:
      s.graph = diamond_task_graph(rng, tr, resources);
      break;
  }

  const auto& sources = s.graph->sources();
  const auto& sinks = s.graph->sinks();
  if (sources.size() != 1 || sinks.size() != 1)
    throw std::logic_error("make_scenario: expected one source and one sink");
  s.pinned[sources[0]] = gen.source;
  s.pinned[sinks[0]] = gen.sink;
  return s;
}

}  // namespace sparcle::workload
