#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/application.hpp"
#include "model/network.hpp"

/// \file scenario_io.hpp
/// Plain-text scenario files: a dispersed computing network plus an
/// ordered list of application requests, loadable by the CLI and test
/// fixtures.  Line-oriented format, `#` comments:
///
///     resources cpu [memory]
///     ncp  <name> <capacity...> [fail=<p>]
///     link  <name> <ncpA> <ncpB> <bandwidth> [fail=<p>]
///     dlink <name> <from> <to>   <bandwidth> [fail=<p>]   (directed)
///
///     app <name> be <priority> [<availability>]
///     app <name> gr <min_rate> <min_rate_availability>
///       ct  <name> <requirement...>
///       tt  <name> <bits> <src_ct> <dst_ct>
///       pin <ct_name> <ncp_name>
///     end
///
/// NCPs and links must precede applications; every `app` block ends with
/// `end`; names are unique within their kind.  Parse errors carry a
/// `<source>:<line>: ...` prefix (the file path for load_scenario_file)
/// and quote the offending token.

namespace sparcle::workload {

/// A parsed scenario: the network and the application arrival sequence.
struct ScenarioFile {
  Network net;
  std::vector<Application> apps;
};

/// Parses a scenario from a stream.  Throws std::runtime_error with a
/// "<source>:<line>: ..." message (quoting the offending token) on
/// malformed input; `source` is only used for those messages.
ScenarioFile parse_scenario(std::istream& in,
                            const std::string& source = "<scenario>");

/// Parses a scenario from a string (convenience for tests).
ScenarioFile parse_scenario_text(const std::string& text,
                                 const std::string& source = "<scenario>");

/// Loads a scenario from a file path; throws std::runtime_error if the
/// file cannot be opened.  Parse errors are prefixed "<path>:<line>: ".
ScenarioFile load_scenario_file(const std::string& path);

/// Parses one or more `app ... end` blocks against an already-built
/// network: NCP names in `pin` lines resolve into `net`, and network
/// directives (resources/ncp/link/dlink) are rejected.  This is the wire
/// format the placement service's submit verb carries (docs/service.md);
/// the text is exactly the app-block portion of a scenario file.
std::vector<Application> parse_apps_text(
    const std::string& text, const Network& net,
    const std::string& source = "<app>");

/// Serializes a scenario back to the text format (round-trips through
/// parse_scenario up to comment/whitespace differences).
std::string write_scenario(const ScenarioFile& scenario);

/// Serializes one application as an `app ... end` block resolving pins
/// against `net` — the inverse of parse_apps_text, used by service
/// clients to put an Application on the wire.
std::string write_app_text(const Application& app, const Network& net);

}  // namespace sparcle::workload
