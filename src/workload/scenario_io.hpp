#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/application.hpp"
#include "model/network.hpp"

/// \file scenario_io.hpp
/// Plain-text scenario files: a dispersed computing network plus an
/// ordered list of application requests, loadable by the CLI and test
/// fixtures.  Line-oriented format, `#` comments:
///
///     resources cpu [memory]
///     ncp  <name> <capacity...> [fail=<p>]
///     link  <name> <ncpA> <ncpB> <bandwidth> [fail=<p>]
///     dlink <name> <from> <to>   <bandwidth> [fail=<p>]   (directed)
///
///     app <name> be <priority> [<availability>]
///     app <name> gr <min_rate> <min_rate_availability>
///       ct  <name> <requirement...>
///       tt  <name> <bits> <src_ct> <dst_ct>
///       pin <ct_name> <ncp_name>
///     end
///
/// NCPs and links must precede applications; every `app` block ends with
/// `end`; names are unique within their kind.  parse errors carry the
/// offending line number.

namespace sparcle::workload {

/// A parsed scenario: the network and the application arrival sequence.
struct ScenarioFile {
  Network net;
  std::vector<Application> apps;
};

/// Parses a scenario from a stream.  Throws std::runtime_error with a
/// "line N: ..." message on malformed input.
ScenarioFile parse_scenario(std::istream& in);

/// Parses a scenario from a string (convenience for tests).
ScenarioFile parse_scenario_text(const std::string& text);

/// Loads a scenario from a file path; throws std::runtime_error if the
/// file cannot be opened.
ScenarioFile load_scenario_file(const std::string& path);

/// Serializes a scenario back to the text format (round-trips through
/// parse_scenario up to comment/whitespace differences).
std::string write_scenario(const ScenarioFile& scenario);

}  // namespace sparcle::workload
