#pragma once

#include "model/network.hpp"
#include "workload/rng.hpp"

/// \file topologies.hpp
/// Generators for the computing-network topologies of §V-B (star, linear,
/// fully connected — "consistent with typical IoT scenarios") and the
/// experimental testbed of Fig. 4 / Table I.

namespace sparcle::workload {

/// Capacity ranges for randomized topologies (uniform per element).
struct NetRanges {
  double ncp_min{20.0}, ncp_max{60.0};  ///< computation capacity
  double bw_min{10.0}, bw_max{30.0};    ///< link bandwidth
  double mem_min{20.0}, mem_max{60.0};  ///< second resource type, if any
  double ncp_fail_prob{0.0};            ///< per-NCP failure probability
  double link_fail_prob{0.0};           ///< per-link failure probability
};

/// A generated network plus the NCPs where the benchmarks pin data sources
/// and result consumers.
struct GeneratedNetwork {
  Network net;
  NcpId source{0};   ///< suggested data-source NCP
  NcpId source2{0};  ///< second source (multi-source graphs)
  NcpId sink{0};     ///< suggested consumer NCP
};

/// Star: NCP 0 is the hub; NCPs 1..n-1 are leaves, each linked to the hub.
/// Sources/sink suggestions are distinct leaves.
GeneratedNetwork star_network(std::size_t ncps, Rng& rng,
                              const NetRanges& ranges,
                              std::size_t resources = 1);

/// Linear chain 0 - 1 - ... - n-1; source at one end, sink at the other.
GeneratedNetwork linear_network(std::size_t ncps, Rng& rng,
                                const NetRanges& ranges,
                                std::size_t resources = 1);

/// Fully connected graph on n NCPs.
GeneratedNetwork full_network(std::size_t ncps, Rng& rng,
                              const NetRanges& ranges,
                              std::size_t resources = 1);

/// The Fig. 4 experimental testbed, Table I capacities.
///
/// Six field NCPs (3000 MHz each) and one cloud NCP (4 x 3.8 GHz =
/// 15200 MHz).  Seven field links at `field_bw_mbps` wire the field mesh
/// (N5 and N6 form the lower tier holding the camera and the consumer;
/// N1..N4 the upper tier) and the cloud attaches to the N2 gateway at
/// 100 Mbps.  The exact wiring is our documented reconstruction of Fig. 4
/// (see DESIGN.md §3).
struct Testbed {
  Network net;
  NcpId cloud;
  NcpId camera;    ///< data-source host (field)
  NcpId consumer;  ///< result-consumer host (field)
};
Testbed testbed_network(double field_bw_mbps);

}  // namespace sparcle::workload
