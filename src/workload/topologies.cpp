#include "workload/topologies.hpp"

#include <stdexcept>
#include <string>

namespace sparcle::workload {

namespace {

ResourceSchema schema_for(std::size_t resources) {
  if (resources == 1) return ResourceSchema::cpu_only();
  if (resources == 2) return ResourceSchema::cpu_memory();
  throw std::invalid_argument("topology: resources must be 1 or 2");
}

ResourceVector random_capacity(Rng& rng, const NetRanges& r,
                               std::size_t resources) {
  ResourceVector v(resources, 0.0);
  v[0] = rng.uniform(r.ncp_min, r.ncp_max);
  if (resources > 1) v[1] = rng.uniform(r.mem_min, r.mem_max);
  return v;
}

void check_size(std::size_t ncps) {
  if (ncps < 3)
    throw std::invalid_argument("topology: need at least 3 NCPs");
}

}  // namespace

GeneratedNetwork star_network(std::size_t ncps, Rng& rng,
                              const NetRanges& ranges,
                              std::size_t resources) {
  check_size(ncps);
  GeneratedNetwork out{Network(schema_for(resources)), 0, 0, 0};
  for (std::size_t j = 0; j < ncps; ++j)
    out.net.add_ncp(j == 0 ? "hub" : "leaf" + std::to_string(j),
                    random_capacity(rng, ranges, resources),
                    ranges.ncp_fail_prob);
  for (std::size_t j = 1; j < ncps; ++j)
    out.net.add_link("spoke" + std::to_string(j), 0,
                     static_cast<NcpId>(j),
                     rng.uniform(ranges.bw_min, ranges.bw_max),
                     ranges.link_fail_prob);
  out.source = 1;
  out.source2 = ncps > 3 ? 2 : 1;
  out.sink = static_cast<NcpId>(ncps - 1);
  return out;
}

GeneratedNetwork linear_network(std::size_t ncps, Rng& rng,
                                const NetRanges& ranges,
                                std::size_t resources) {
  check_size(ncps);
  GeneratedNetwork out{Network(schema_for(resources)), 0, 0, 0};
  for (std::size_t j = 0; j < ncps; ++j)
    out.net.add_ncp("ncp" + std::to_string(j),
                    random_capacity(rng, ranges, resources),
                    ranges.ncp_fail_prob);
  for (std::size_t j = 0; j + 1 < ncps; ++j)
    out.net.add_link("hop" + std::to_string(j), static_cast<NcpId>(j),
                     static_cast<NcpId>(j + 1),
                     rng.uniform(ranges.bw_min, ranges.bw_max),
                     ranges.link_fail_prob);
  out.source = 0;
  out.source2 = 1;
  out.sink = static_cast<NcpId>(ncps - 1);
  return out;
}

GeneratedNetwork full_network(std::size_t ncps, Rng& rng,
                              const NetRanges& ranges,
                              std::size_t resources) {
  check_size(ncps);
  GeneratedNetwork out{Network(schema_for(resources)), 0, 0, 0};
  for (std::size_t j = 0; j < ncps; ++j)
    out.net.add_ncp("ncp" + std::to_string(j),
                    random_capacity(rng, ranges, resources),
                    ranges.ncp_fail_prob);
  for (std::size_t a = 0; a < ncps; ++a)
    for (std::size_t b = a + 1; b < ncps; ++b)
      out.net.add_link("l" + std::to_string(a) + "_" + std::to_string(b),
                       static_cast<NcpId>(a), static_cast<NcpId>(b),
                       rng.uniform(ranges.bw_min, ranges.bw_max),
                       ranges.link_fail_prob);
  out.source = 0;
  out.source2 = 1;
  out.sink = static_cast<NcpId>(ncps - 1);
  return out;
}

Testbed testbed_network(double field_bw_mbps) {
  if (!(field_bw_mbps > 0))
    throw std::invalid_argument("testbed: field bandwidth must be positive");
  constexpr double kMHz = 1.0;     // capacities in MHz == megacycles/s
  constexpr double kMbps = 1.0e6;  // bandwidths in bits/s

  Network net(ResourceSchema::cpu_only());
  // Table I: Field CPU 3000 MHz, Cloud CPU 4 x 3.8 GHz = 15200 MHz.
  const NcpId n1 = net.add_ncp("NCP1", ResourceVector::scalar(3000 * kMHz));
  const NcpId n2 = net.add_ncp("NCP2", ResourceVector::scalar(3000 * kMHz));
  const NcpId n3 = net.add_ncp("NCP3", ResourceVector::scalar(3000 * kMHz));
  const NcpId n4 = net.add_ncp("NCP4", ResourceVector::scalar(3000 * kMHz));
  const NcpId n5 = net.add_ncp("NCP5", ResourceVector::scalar(3000 * kMHz));
  const NcpId n6 = net.add_ncp("NCP6", ResourceVector::scalar(3000 * kMHz));
  const NcpId cloud =
      net.add_ncp("cloud", ResourceVector::scalar(15200 * kMHz));

  const double fbw = field_bw_mbps * kMbps;
  net.add_link("f_51", n5, n1, fbw);
  net.add_link("f_52", n5, n2, fbw);
  net.add_link("f_56", n5, n6, fbw);
  net.add_link("f_63", n6, n3, fbw);
  net.add_link("f_64", n6, n4, fbw);
  net.add_link("f_12", n1, n2, fbw);
  net.add_link("f_34", n3, n4, fbw);
  // Table I: Cloud BW 100 Mbps, attached at the N2 gateway.
  net.add_link("cloud_bw", n2, cloud, 100.0 * kMbps);

  return Testbed{std::move(net), cloud, n5, n6};
}

}  // namespace sparcle::workload
