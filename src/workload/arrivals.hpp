#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/application.hpp"
#include "model/network.hpp"
#include "workload/rng.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

/// \file arrivals.hpp
/// Adversarial arrival-process generators for the long-horizon soak and
/// policy-tournament harnesses (docs/policies.md).  Each pattern is a
/// named stressor the scheduling-policy plugins are raced against:
///
///   * steady          — homogeneous Poisson baseline;
///   * diurnal         — a sinusoidal day/night wave (peak ≈ 1.85× mean);
///   * flash_crowd     — a quiet base rate with a 120 s, ~45× burst at the
///                       top of every simulated hour;
///   * heavy_tail      — steady arrivals whose application sizes follow a
///                       Pareto (mice and elephants contend for the queue);
///   * regional_outage — steady arrivals; the soak runner pairs this
///                       pattern with correlated burst churn
///                       (sim::generate_burst_churn) so admission races
///                       repair;
///   * tenant_mix      — two tenants: a guaranteed-rate heavy tenant and a
///                       best-effort tenant at opposite priorities.
///
/// Generators are streaming (O(pool) memory regardless of the arrival
/// count — a million-arrival soak reuses a small pool of task graphs) and
/// deterministic in (network shape, spec, seed): the same inputs replay
/// the same timestamps, graphs, pins, and QoE contracts bit for bit.

namespace sparcle::workload {

enum class ArrivalPattern : std::uint8_t {
  kSteady,
  kDiurnal,
  kFlashCrowd,
  kHeavyTail,
  kRegionalOutage,
  kTenantMix,
};

const char* to_string(ArrivalPattern pattern);
/// Every pattern, in tournament-report order (steady first).
std::vector<ArrivalPattern> all_arrival_patterns();
/// Inverse of to_string(); throws std::invalid_argument (the message
/// lists the known names) on an unknown name.
ArrivalPattern parse_arrival_pattern(const std::string& name);

/// Shape of one arrival stream.
struct ArrivalSpec {
  ArrivalPattern pattern{ArrivalPattern::kSteady};
  /// Total applications to emit; the mean rate is arrivals / horizon.
  std::size_t arrivals{10000};
  /// Stream length in simulated seconds.  Patterns with an internal
  /// period (diurnal: one day; flash_crowd: one hour) should span a whole
  /// number of periods so first-half/second-half drift gates compare like
  /// with like — the tournament uses two simulated days for diurnal.
  double horizon{86400.0};
  /// Mean exponential session length (admitted apps depart after it).
  double mean_lifetime{600.0};
  /// Mean queueing patience: an arrival reneges if not admitted within
  /// uniform(0.4, 1.6) × mean_patience seconds.
  double mean_patience{30.0};
  /// Fraction of arrivals requesting a Guaranteed-Rate contract.
  double gr_fraction{0.10};
  /// Distinct task graphs built up front and sampled per arrival.
  std::size_t graph_pool{32};
  /// Source locality: when > 0, each arrival draws one *home region*
  /// (uniform over the network's region labels) and pins each endpoint
  /// inside it with this probability — uniformly over the whole site
  /// otherwise.  The federated-placement benchmarks use ≈0.9 so most
  /// arrivals are shard-local.  0 (the default) reproduces the classic
  /// uniform pinning with an identical RNG draw sequence, so existing
  /// seeds replay bit for bit; it is also the forced behavior on
  /// networks without region labels.
  double locality{0.0};
  /// Base per-CT requirement ranges (heavy_tail scales these per pooled
  /// graph by a Pareto factor).
  TaskRanges tasks{};
};

/// One emitted application arrival.
struct Arrival {
  double time{0.0};      ///< non-decreasing simulated seconds
  Application app;       ///< validated; name unique within the stream
  double lifetime{0.0};  ///< session length once admitted
  double patience{0.0};  ///< renege deadline is time + patience
};

/// Streams one ArrivalSpec against a network (pins are drawn from the
/// network's NCPs).  Non-homogeneous patterns are sampled by Poisson
/// thinning, so every pattern consumes the seed deterministically.
class ArrivalGenerator {
 public:
  ArrivalGenerator(const Network& net, ArrivalSpec spec, std::uint64_t seed);

  /// Emits the next arrival; false once `spec().arrivals` have been
  /// emitted (out is untouched).
  bool next(Arrival& out);

  std::size_t emitted() const { return emitted_; }
  const ArrivalSpec& spec() const { return spec_; }

 private:
  double rate_at(double t) const;  ///< λ(t) of the pattern
  double next_time();              ///< thinning step

  const Network* net_;
  ArrivalSpec spec_;
  Rng rng_;
  std::vector<std::shared_ptr<const TaskGraph>> pool_;
  /// NCP ids grouped by region label, in first-appearance order (empty
  /// when the network is unlabeled); the locality pin-draw pool.
  std::vector<std::vector<NcpId>> regions_;
  double mean_rate_{0.0};
  double peak_rate_{0.0};
  double now_{0.0};
  std::size_t emitted_{0};
};

/// The soak topology: `regions` star clusters (one hub + leaves) joined
/// by a backbone ring of double-bandwidth links between consecutive hubs.
/// Regional-outage churn bursts centered on a hub take a whole cluster's
/// connectivity with them, which is what makes the repair-ordering
/// decision point observable.  Deterministic in (arguments, rng state).
Network soak_site(std::size_t regions, std::size_t ncps_per_region, Rng& rng,
                  const NetRanges& ranges = {});

}  // namespace sparcle::workload
