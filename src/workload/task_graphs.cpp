#include "workload/task_graphs.hpp"

#include <stdexcept>
#include <string>

namespace sparcle::workload {

namespace {

ResourceSchema schema_for(std::size_t resources) {
  if (resources == 1) return ResourceSchema::cpu_only();
  if (resources == 2) return ResourceSchema::cpu_memory();
  throw std::invalid_argument("task graph: resources must be 1 or 2");
}

ResourceVector random_requirement(Rng& rng, const TaskRanges& r,
                                  std::size_t resources) {
  ResourceVector v(resources, 0.0);
  v[0] = rng.uniform(r.ct_min, r.ct_max);
  if (resources > 1) v[1] = rng.uniform(r.mem_min, r.mem_max);
  return v;
}

}  // namespace

std::shared_ptr<const TaskGraph> linear_task_graph(std::size_t middle_cts,
                                                   Rng& rng,
                                                   const TaskRanges& ranges,
                                                   std::size_t resources) {
  if (middle_cts == 0)
    throw std::invalid_argument("linear_task_graph: need >= 1 middle CT");
  auto g = std::make_shared<TaskGraph>(schema_for(resources));
  const CtId src = g->add_ct("source", ResourceVector(resources, 0.0));
  CtId prev = src;
  for (std::size_t i = 0; i < middle_cts; ++i) {
    const CtId ct = g->add_ct("CT" + std::to_string(i + 1),
                              random_requirement(rng, ranges, resources));
    g->add_tt("TT" + std::to_string(i + 1),
              rng.uniform(ranges.tt_min, ranges.tt_max), prev, ct);
    prev = ct;
  }
  const CtId sink = g->add_ct("consumer", ResourceVector(resources, 0.0));
  g->add_tt("TT" + std::to_string(middle_cts + 1),
            rng.uniform(ranges.tt_min, ranges.tt_max), prev, sink);
  g->finalize();
  return g;
}

std::shared_ptr<const TaskGraph> diamond_task_graph(Rng& rng,
                                                    const TaskRanges& ranges,
                                                    std::size_t resources) {
  auto g = std::make_shared<TaskGraph>(schema_for(resources));
  const CtId src = g->add_ct("source", ResourceVector(resources, 0.0));
  // First layer: CT2..CT5.
  CtId layer1[4];
  for (int i = 0; i < 4; ++i)
    layer1[i] = g->add_ct("CT" + std::to_string(i + 2),
                          random_requirement(rng, ranges, resources));
  // Second layer: CT6, CT7.
  CtId layer2[2];
  for (int i = 0; i < 2; ++i)
    layer2[i] = g->add_ct("CT" + std::to_string(i + 6),
                          random_requirement(rng, ranges, resources));
  const CtId sink = g->add_ct("consumer", ResourceVector(resources, 0.0));

  int tt = 1;
  auto next_tt = [&] { return "TT" + std::to_string(tt++); };
  for (int i = 0; i < 4; ++i)
    g->add_tt(next_tt(), rng.uniform(ranges.tt_min, ranges.tt_max), src,
              layer1[i]);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j)
      g->add_tt(next_tt(), rng.uniform(ranges.tt_min, ranges.tt_max),
                layer1[i], layer2[j]);
  for (int j = 0; j < 2; ++j)
    g->add_tt(next_tt(), rng.uniform(ranges.tt_min, ranges.tt_max),
              layer2[j], sink);
  g->finalize();
  return g;
}

std::shared_ptr<const TaskGraph> face_detection_app() {
  // Units: megacycles per image for CTs (capacities in MHz) and bits per
  // image for TTs (bandwidths in bits/s) — Table II verbatim.
  constexpr double kMB = 8.0e6;  // bits per megabyte
  constexpr double kKB = 8.0e3;  // bits per kilobyte
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId camera = g->add_ct("camera", ResourceVector::scalar(0.0));
  const CtId resize = g->add_ct("resize", ResourceVector::scalar(9880.0));
  const CtId denoise = g->add_ct("denoise", ResourceVector::scalar(12800.0));
  const CtId edge =
      g->add_ct("edge_detection", ResourceVector::scalar(4826.0));
  const CtId face =
      g->add_ct("face_detection", ResourceVector::scalar(5658.0));
  const CtId consumer = g->add_ct("consumer", ResourceVector::scalar(0.0));
  g->add_tt("raw_images", 3.1 * kMB, camera, resize);
  g->add_tt("resized_images", 182.0 * kKB, resize, denoise);
  g->add_tt("denoised_images", 145.0 * kKB, denoise, edge);
  g->add_tt("edge_maps", 188.0 * kKB, edge, face);
  g->add_tt("detected_faces", 11.0 * kKB, face, consumer);
  g->finalize();
  return g;
}

std::shared_ptr<const TaskGraph> object_classification_app() {
  // Fig. 1 shape with illustrative requirements: two cameras stream images
  // of the same scene; detection fuses them; classification labels the
  // found objects.
  constexpr double kMB = 8.0e6;
  constexpr double kKB = 8.0e3;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId cam1 = g->add_ct("camera1", ResourceVector::scalar(0.0));
  const CtId cam2 = g->add_ct("camera2", ResourceVector::scalar(0.0));
  const CtId detect =
      g->add_ct("object_detection", ResourceVector::scalar(15000.0));
  const CtId classify =
      g->add_ct("object_classification", ResourceVector::scalar(8000.0));
  const CtId consumer = g->add_ct("consumer", ResourceVector::scalar(0.0));
  g->add_tt("images1", 2.0 * kMB, cam1, detect);
  g->add_tt("images2", 2.0 * kMB, cam2, detect);
  g->add_tt("objects", 300.0 * kKB, detect, classify);
  g->add_tt("classes", 5.0 * kKB, classify, consumer);
  g->finalize();
  return g;
}

std::shared_ptr<const TaskGraph> random_layered_task_graph(
    Rng& rng, const TaskRanges& ranges, std::size_t layers,
    std::size_t max_width, double edge_prob, std::size_t resources) {
  if (layers == 0 || max_width == 0)
    throw std::invalid_argument(
        "random_layered_task_graph: layers and max_width must be >= 1");
  auto g = std::make_shared<TaskGraph>(schema_for(resources));
  int tt_counter = 1;
  auto next_tt_name = [&] { return "TT" + std::to_string(tt_counter++); };
  auto random_bits = [&] { return rng.uniform(ranges.tt_min, ranges.tt_max); };

  std::vector<CtId> prev = {
      g->add_ct("source", ResourceVector(resources, 0.0))};
  int ct_counter = 1;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    const std::size_t width =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(
                                                        max_width)));
    std::vector<CtId> current;
    for (std::size_t w = 0; w < width; ++w)
      current.push_back(
          g->add_ct("CT" + std::to_string(ct_counter++),
                    random_requirement(rng, ranges, resources)));
    // Guarantee connectivity: every new CT gets one inbound edge, and
    // every previous CT gets one outbound edge.
    std::vector<char> prev_has_out(prev.size(), 0);
    for (std::size_t w = 0; w < current.size(); ++w) {
      const std::size_t p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(prev.size()) - 1));
      g->add_tt(next_tt_name(), random_bits(), prev[p], current[w]);
      prev_has_out[p] = 1;
    }
    for (std::size_t p = 0; p < prev.size(); ++p)
      if (!prev_has_out[p]) {
        const std::size_t w = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(current.size()) - 1));
        g->add_tt(next_tt_name(), random_bits(), prev[p], current[w]);
      }
    // Extra random edges.
    for (std::size_t p = 0; p < prev.size(); ++p)
      for (std::size_t w = 0; w < current.size(); ++w)
        if (rng.bernoulli(edge_prob)) {
          // Skip duplicates of the guaranteed edges cheaply: a parallel
          // TT between the same CTs is legal in the model, so allow it.
          g->add_tt(next_tt_name(), random_bits(), prev[p], current[w]);
        }
    prev = std::move(current);
  }
  const CtId sink = g->add_ct("consumer", ResourceVector(resources, 0.0));
  for (CtId p : prev) g->add_tt(next_tt_name(), random_bits(), p, sink);
  g->finalize();
  return g;
}

}  // namespace sparcle::workload
