#pragma once

#include <cstdint>
#include <random>

/// \file rng.hpp
/// Deterministic random source for workload generation.  Every benchmark
/// and test passes an explicit seed so results are reproducible run-to-run.

namespace sparcle {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sparcle
