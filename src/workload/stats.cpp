#include "workload/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sparcle {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0 || p > 100)
    throw std::invalid_argument("percentile: p out of [0, 100]");
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    cdf.emplace_back(xs[i], static_cast<double>(i + 1) /
                                static_cast<double>(xs.size()));
  return cdf;
}

double fraction_at_least(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : xs)
    if (x >= threshold) ++count;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace sparcle
