#pragma once

#include <cstdint>
#include <memory>

#include "core/assignment.hpp"
#include "core/scheduler.hpp"
#include "workload/scenarios.hpp"

/// \file churn.hpp
/// Long-horizon churn experiments: applications arrive as a Poisson
/// process, live for an exponential lifetime, and depart — the dynamic
/// environment of §III-B ("applications arrive over time").  The driver
/// measures admission ratios and the time-averaged carried guaranteed
/// rate, which is how a capacity planner would size a dispersed site.

namespace sparcle::workload {

struct ChurnConfig {
  double arrival_rate{0.5};    ///< application arrivals per time unit
  double mean_lifetime{20.0};  ///< exponential lifetime of admitted apps
  double horizon{400.0};       ///< simulated time units
  double gr_fraction{0.5};     ///< probability an arrival is GR
  /// GR rate request as a fraction of the solo SPARCLE rate of the same
  /// instance (uniform in [lo, hi]).
  double gr_request_lo{0.15};
  double gr_request_hi{0.5};
  /// BE priorities (uniform integers in [lo, hi]).
  int be_priority_lo{1};
  int be_priority_hi{3};
  SchedulerOptions scheduler_options{};
};

struct ChurnStats {
  std::size_t arrivals{0};
  std::size_t admitted{0};
  std::size_t rejected{0};
  double admitted_fraction{0.0};
  /// Time-average of the total reserved GR rate over the horizon.
  double avg_carried_gr_rate{0.0};
  /// Time-average of the number of concurrently placed applications.
  double avg_concurrent_apps{0.0};
  /// Mean BE allocation (over all BE admission instants).
  double mean_be_rate_at_admission{0.0};
};

/// Runs one churn experiment on `net` using `assigner` (nullptr = SPARCLE).
/// `spec` controls the task-graph shapes and requirement ranges of the
/// arriving applications; `calibration_rate` scales GR requests (pass the
/// solo SPARCLE rate of a typical instance).  Deterministic in `seed`.
ChurnStats run_churn(const Network& net, const ScenarioSpec& spec,
                     NcpId source, NcpId sink, double calibration_rate,
                     std::unique_ptr<Assigner> assigner,
                     const ChurnConfig& config, std::uint64_t seed);

}  // namespace sparcle::workload
