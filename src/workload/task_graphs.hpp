#pragma once

#include <memory>

#include "model/task_graph.hpp"
#include "workload/rng.hpp"

/// \file task_graphs.hpp
/// Generators for the task graphs the evaluation uses: the linear and
/// diamond shapes of Fig. 7, randomized-requirement variants, and the real
/// face-detection pipeline of Fig. 5 / Table II.

namespace sparcle::workload {

/// Requirement ranges for randomized graphs (uniform per task).
struct TaskRanges {
  double ct_min{5.0}, ct_max{15.0};    ///< computation units per data unit
  double tt_min{5.0}, tt_max{15.0};    ///< bits per data unit
  double mem_min{5.0}, mem_max{15.0};  ///< second resource type, if any
};

/// Fig. 7(a): source -> n middle CTs in a chain -> sink.  The source and
/// sink have zero requirements (footnote 1).  `resources` is 1 or 2.
std::shared_ptr<const TaskGraph> linear_task_graph(std::size_t middle_cts,
                                                   Rng& rng,
                                                   const TaskRanges& ranges,
                                                   std::size_t resources = 1);

/// Fig. 7(b): source CT1 -> {CT2..CT5} -> {CT6, CT7} -> sink CT8, with the
/// 14 TTs of the figure.
std::shared_ptr<const TaskGraph> diamond_task_graph(Rng& rng,
                                                    const TaskRanges& ranges,
                                                    std::size_t resources = 1);

/// Fig. 5 / Table II: the real face-detection pipeline.  Requirements in
/// megacycles per image (matching NCP capacities in MHz) and bits per
/// image: resize 9880 MC, denoise 12800 MC, edge detection 4826 MC, face
/// detection 5658 MC; raw 3.1 MB, resized 182 kB, denoised 145 kB, edge
/// maps 188 kB, detected faces 11 kB.
std::shared_ptr<const TaskGraph> face_detection_app();

/// Fig. 1: the two-camera multi-viewpoint object classification example
/// (two sources feeding object detection, then classification, then the
/// consumer).  Used by the quickstart example and tests.
std::shared_ptr<const TaskGraph> object_classification_app();

/// Random layered DAG: a single zero-requirement source, `layers` inner
/// layers of 1..max_width CTs, and a single zero-requirement sink.  Every
/// inner CT has at least one inbound and one outbound TT; extra edges
/// between consecutive layers appear with probability `edge_prob`.
/// Exercises fan-out/fan-in shapes beyond the paper's linear/diamond
/// fixtures (fuzzing, property tests).
std::shared_ptr<const TaskGraph> random_layered_task_graph(
    Rng& rng, const TaskRanges& ranges, std::size_t layers,
    std::size_t max_width, double edge_prob = 0.4,
    std::size_t resources = 1);

}  // namespace sparcle::workload
