#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// \file stats.hpp
/// Small statistics helpers for the benchmark harnesses: percentiles,
/// means, and empirical CDFs in the shape the paper's figures report.

namespace sparcle {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// The p-th percentile (p in [0, 100]) by linear interpolation between
/// order statistics.  Throws std::invalid_argument on an empty sample.
double percentile(std::vector<double> xs, double p);

/// Empirical CDF evaluated at each sample point: sorted (value, F(value))
/// pairs, F in (0, 1].
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> xs);

/// The fraction of the sample that is >= threshold.
double fraction_at_least(const std::vector<double>& xs, double threshold);

}  // namespace sparcle
