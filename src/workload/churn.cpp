#include "workload/churn.hpp"

#include <map>
#include <random>
#include <string>

#include "core/sparcle_assigner.hpp"
#include "workload/task_graphs.hpp"

namespace sparcle::workload {

ChurnStats run_churn(const Network& net, const ScenarioSpec& spec,
                     NcpId source, NcpId sink, double calibration_rate,
                     std::unique_ptr<Assigner> assigner,
                     const ChurnConfig& config, std::uint64_t seed) {
  if (!(config.arrival_rate > 0) || !(config.mean_lifetime > 0) ||
      !(config.horizon > 0))
    throw std::invalid_argument("run_churn: rates and horizon must be > 0");
  if (!(calibration_rate > 0))
    throw std::invalid_argument("run_churn: calibration_rate must be > 0");

  Scheduler sched = assigner
                        ? Scheduler(net, std::move(assigner),
                                    config.scheduler_options)
                        : Scheduler(net, config.scheduler_options);
  Rng rng(seed);
  std::exponential_distribution<double> arrival_gap(config.arrival_rate);
  std::exponential_distribution<double> lifetime(1.0 / config.mean_lifetime);

  ChurnStats stats;
  const TaskRanges tr = task_ranges_for(spec.bottleneck);
  std::multimap<double, std::string> departures;  // time -> app name
  std::size_t next_id = 0;
  double now = 0.0;
  double prev_event = 0.0;
  double gr_rate_integral = 0.0;
  double concurrency_integral = 0.0;
  double be_rate_sum = 0.0;
  std::size_t be_admissions = 0;

  auto advance_to = [&](double t) {
    gr_rate_integral += sched.total_gr_rate() * (t - prev_event);
    concurrency_integral +=
        static_cast<double>(sched.placed().size()) * (t - prev_event);
    prev_event = t;
  };

  double next_arrival = arrival_gap(rng.engine());
  while (next_arrival < config.horizon || !departures.empty()) {
    // Process whichever event comes first.
    const bool depart_first =
        !departures.empty() && (departures.begin()->first <= next_arrival ||
                                next_arrival >= config.horizon);
    if (depart_first) {
      const auto it = departures.begin();
      now = it->first;
      if (now > config.horizon) {
        advance_to(config.horizon);
        break;
      }
      advance_to(now);
      sched.remove(it->second);
      departures.erase(it);
      continue;
    }
    if (next_arrival >= config.horizon) {
      advance_to(config.horizon);
      break;
    }
    now = next_arrival;
    advance_to(now);
    next_arrival = now + arrival_gap(rng.engine());

    // Build a random application.
    Application app;
    app.name = "app" + std::to_string(next_id++);
    app.graph = spec.graph == GraphKind::kDiamond
                    ? diamond_task_graph(rng, tr)
                    : linear_task_graph(spec.middle_cts, rng, tr);
    app.pinned = {{app.graph->sources()[0], source},
                  {app.graph->sinks()[0], sink}};
    if (rng.bernoulli(config.gr_fraction)) {
      app.qoe = QoeSpec::guaranteed_rate(
          calibration_rate *
              rng.uniform(config.gr_request_lo, config.gr_request_hi),
          0.0);
    } else {
      app.qoe = QoeSpec::best_effort(static_cast<double>(
          rng.uniform_int(config.be_priority_lo, config.be_priority_hi)));
    }

    ++stats.arrivals;
    const AdmissionResult r = sched.submit(app);
    if (r.admitted) {
      ++stats.admitted;
      departures.emplace(now + lifetime(rng.engine()), app.name);
      if (app.qoe.cls == QoeClass::kBestEffort) {
        be_rate_sum += r.rate;
        ++be_admissions;
      }
    } else {
      ++stats.rejected;
    }
  }
  if (prev_event < config.horizon) advance_to(config.horizon);

  stats.admitted_fraction =
      stats.arrivals > 0
          ? static_cast<double>(stats.admitted) /
                static_cast<double>(stats.arrivals)
          : 0.0;
  stats.avg_carried_gr_rate = gr_rate_integral / config.horizon;
  stats.avg_concurrent_apps = concurrency_integral / config.horizon;
  stats.mean_be_rate_at_admission =
      be_admissions > 0 ? be_rate_sum / static_cast<double>(be_admissions)
                        : 0.0;
  return stats;
}

}  // namespace sparcle::workload
