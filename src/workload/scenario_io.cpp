#include "workload/scenario_io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace sparcle::workload {

namespace {

/// Threads the source name (file path, "<scenario>", "<app>") through the
/// parser so every error reads `<source>:<line>: ...` and can be clicked
/// like a compiler diagnostic.
struct ParseContext {
  std::string source;

  [[noreturn]] void fail(std::size_t line, const std::string& msg) const {
    throw std::runtime_error(source + ":" + std::to_string(line) + ": " +
                             msg);
  }

  double parse_number(const std::string& tok, std::size_t line,
                      const std::string& what) const {
    try {
      std::size_t consumed = 0;
      const double v = std::stod(tok, &consumed);
      if (consumed != tok.size())
        fail(line, "bad " + what + ": '" + tok + "'");
      return v;
    } catch (const std::logic_error&) {
      fail(line, "bad " + what + ": '" + tok + "'");
    }
  }

  /// Extracts a trailing "fail=<p>" token if present; returns the failure
  /// probability (0 when absent) and erases the token.
  double take_fail_prob(std::vector<std::string>& tokens,
                        std::size_t line) const {
    if (tokens.empty() || tokens.back().rfind("fail=", 0) != 0) return 0.0;
    const std::string value = tokens.back().substr(5);
    tokens.pop_back();
    return parse_number(value, line, "failure probability");
  }

  /// Extracts a trailing "region=<label>" token if present; returns the
  /// region label ("" when absent) and erases the token.  Order with
  /// fail= is free: writers emit `region=` last, but readers strip
  /// whichever trailing token matches first.
  std::string take_region(std::vector<std::string>& tokens) const {
    if (tokens.empty() || tokens.back().rfind("region=", 0) != 0) return {};
    std::string value = tokens.back().substr(7);
    tokens.pop_back();
    return value;
  }
};

/// Splits a line into whitespace-separated tokens, dropping `#` comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok.front() == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

/// In-progress `app` block.
struct AppBlock {
  std::string name;
  QoeSpec qoe;
  std::shared_ptr<TaskGraph> graph;
  std::map<std::string, CtId> ct_by_name;
  std::vector<std::pair<std::string, std::string>> pins;  // ct, ncp
  std::size_t start_line{0};
};

/// Shared implementation: a full scenario parse, or — when `base` is given
/// — app blocks only, resolved against the fixed network `*base` (the
/// placement service's wire format; network directives are rejected).
ScenarioFile parse_scenario_impl(std::istream& in, const ParseContext& ctx,
                                 const Network* base) {
  ScenarioFile out;
  std::map<std::string, NcpId> ncp_by_name;
  std::map<std::string, LinkId> link_by_name;
  ResourceSchema schema = ResourceSchema::cpu_only();
  bool schema_set = false;
  bool network_frozen = false;  // set once the first app block starts
  const bool net_fixed = base != nullptr;
  if (net_fixed) {
    out.net = *base;
    schema = base->schema();
    schema_set = true;
    network_frozen = true;
    for (NcpId j = 0; j < static_cast<NcpId>(base->ncp_count()); ++j)
      ncp_by_name[base->ncp(j).name] = j;
  }
  std::unique_ptr<AppBlock> app;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    const std::string& cmd = t[0];

    if (cmd == "resources" || cmd == "ncp" || cmd == "link" ||
        cmd == "dlink") {
      if (net_fixed)
        ctx.fail(lineno, "'" + cmd +
                             "' not allowed here: the network is fixed, "
                             "only app blocks may be submitted");
      if (app) ctx.fail(lineno, "'" + cmd + "' inside an app block");
      if (network_frozen)
        ctx.fail(lineno, "'" + cmd + "' after the first app block");
    }

    if (cmd == "resources") {
      if (schema_set) ctx.fail(lineno, "duplicate 'resources' directive");
      if (out.net.ncp_count() > 0)
        ctx.fail(lineno, "'resources' must precede all NCPs");
      if (t.size() < 2 || t.size() > 3)
        ctx.fail(lineno, "'resources' expects 1 or 2 type names");
      schema = ResourceSchema(std::vector<std::string>(t.begin() + 1,
                                                       t.end()));
      schema_set = true;
      out.net = Network(schema);
      continue;
    }

    if (cmd == "ncp") {
      std::string region = ctx.take_region(t);
      const double fp = ctx.take_fail_prob(t, lineno);
      if (region.empty()) region = ctx.take_region(t);
      if (t.size() != 2 + schema.size())
        ctx.fail(lineno, "'ncp' expects a name and " +
                             std::to_string(schema.size()) + " capacities");
      if (ncp_by_name.contains(t[1]))
        ctx.fail(lineno, "duplicate NCP name '" + t[1] + "'");
      ResourceVector cap(schema.size());
      for (std::size_t r = 0; r < schema.size(); ++r)
        cap[r] = ctx.parse_number(t[2 + r], lineno, "capacity");
      try {
        ncp_by_name[t[1]] = out.net.add_ncp(t[1], cap, fp, std::move(region));
      } catch (const std::invalid_argument& e) {
        ctx.fail(lineno, e.what());
      }
      continue;
    }

    if (cmd == "link" || cmd == "dlink") {
      const double fp = ctx.take_fail_prob(t, lineno);
      if (t.size() != 5)
        ctx.fail(lineno, "'" + cmd + "' expects: name ncpA ncpB bandwidth");
      if (link_by_name.contains(t[1]))
        ctx.fail(lineno, "duplicate link name '" + t[1] + "'");
      const auto a = ncp_by_name.find(t[2]);
      const auto b = ncp_by_name.find(t[3]);
      if (a == ncp_by_name.end())
        ctx.fail(lineno, "unknown NCP '" + t[2] + "'");
      if (b == ncp_by_name.end())
        ctx.fail(lineno, "unknown NCP '" + t[3] + "'");
      try {
        const double bw = ctx.parse_number(t[4], lineno, "bandwidth");
        link_by_name[t[1]] =
            cmd == "dlink"
                ? out.net.add_directed_link(t[1], a->second, b->second, bw,
                                            fp)
                : out.net.add_link(t[1], a->second, b->second, bw, fp);
      } catch (const std::invalid_argument& e) {
        ctx.fail(lineno, e.what());
      }
      continue;
    }

    if (cmd == "app") {
      if (app) ctx.fail(lineno, "nested 'app' block (missing 'end'?)");
      if (t.size() < 4)
        ctx.fail(lineno, "'app' expects: name be|gr params...");
      network_frozen = true;
      app = std::make_unique<AppBlock>();
      app->name = t[1];
      app->graph = std::make_shared<TaskGraph>(schema);
      app->start_line = lineno;
      if (t[2] == "be") {
        if (t.size() > 5)
          ctx.fail(lineno, "'app ... be' takes at most 2 params");
        app->qoe = QoeSpec::best_effort(
            ctx.parse_number(t[3], lineno, "priority"),
            t.size() > 4 ? ctx.parse_number(t[4], lineno, "availability")
                         : 0.0);
      } else if (t[2] == "gr") {
        if (t.size() != 5)
          ctx.fail(lineno, "'app ... gr' expects min_rate and availability");
        app->qoe = QoeSpec::guaranteed_rate(
            ctx.parse_number(t[3], lineno, "min rate"),
            ctx.parse_number(t[4], lineno, "min-rate availability"));
      } else {
        ctx.fail(lineno, "app class must be 'be' or 'gr', got '" + t[2] +
                             "'");
      }
      continue;
    }

    if (cmd == "ct") {
      if (!app) ctx.fail(lineno, "'ct' outside an app block");
      if (t.size() != 2 + schema.size())
        ctx.fail(lineno, "'ct' expects a name and " +
                             std::to_string(schema.size()) +
                             " requirements");
      if (app->ct_by_name.contains(t[1]))
        ctx.fail(lineno, "duplicate CT name '" + t[1] + "'");
      ResourceVector req(schema.size());
      for (std::size_t r = 0; r < schema.size(); ++r)
        req[r] = ctx.parse_number(t[2 + r], lineno, "requirement");
      app->ct_by_name[t[1]] = app->graph->add_ct(t[1], req);
      continue;
    }

    if (cmd == "tt") {
      if (!app) ctx.fail(lineno, "'tt' outside an app block");
      if (t.size() != 5) ctx.fail(lineno, "'tt' expects: name bits src dst");
      const auto s = app->ct_by_name.find(t[3]);
      const auto d = app->ct_by_name.find(t[4]);
      if (s == app->ct_by_name.end())
        ctx.fail(lineno, "unknown CT '" + t[3] + "'");
      if (d == app->ct_by_name.end())
        ctx.fail(lineno, "unknown CT '" + t[4] + "'");
      try {
        app->graph->add_tt(t[1], ctx.parse_number(t[2], lineno, "bits"),
                           s->second, d->second);
      } catch (const std::invalid_argument& e) {
        ctx.fail(lineno, e.what());
      }
      continue;
    }

    if (cmd == "pin") {
      if (!app) ctx.fail(lineno, "'pin' outside an app block");
      if (t.size() != 3) ctx.fail(lineno, "'pin' expects: ct_name ncp_name");
      app->pins.emplace_back(t[1], t[2]);
      continue;
    }

    if (cmd == "end") {
      if (!app) ctx.fail(lineno, "'end' without an open app block");
      Application result;
      result.name = app->name;
      result.qoe = app->qoe;
      try {
        app->graph->finalize();
      } catch (const std::invalid_argument& e) {
        ctx.fail(lineno, std::string("app '") + app->name + "': " + e.what());
      }
      for (const auto& [ct_name, ncp_name] : app->pins) {
        const auto ct = app->ct_by_name.find(ct_name);
        if (ct == app->ct_by_name.end())
          ctx.fail(lineno, "pin references unknown CT '" + ct_name + "'");
        const auto ncp = ncp_by_name.find(ncp_name);
        if (ncp == ncp_by_name.end())
          ctx.fail(lineno, "pin references unknown NCP '" + ncp_name + "'");
        result.pinned[ct->second] = ncp->second;
      }
      result.graph = std::move(app->graph);
      try {
        result.validate();
      } catch (const std::invalid_argument& e) {
        ctx.fail(lineno, e.what());
      }
      out.apps.push_back(std::move(result));
      app.reset();
      continue;
    }

    ctx.fail(lineno, "unknown directive '" + cmd + "'");
  }
  if (app) ctx.fail(lineno, "unterminated app block '" + app->name + "'");
  if (out.net.ncp_count() == 0)
    ctx.fail(lineno, "scenario defines no NCPs");
  return out;
}

}  // namespace

ScenarioFile parse_scenario(std::istream& in, const std::string& source) {
  return parse_scenario_impl(in, ParseContext{source}, nullptr);
}

ScenarioFile parse_scenario_text(const std::string& text,
                                 const std::string& source) {
  std::istringstream is(text);
  return parse_scenario(is, source);
}

ScenarioFile load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  return parse_scenario(in, path);
}

std::vector<Application> parse_apps_text(const std::string& text,
                                         const Network& net,
                                         const std::string& source) {
  std::istringstream is(text);
  ScenarioFile parsed = parse_scenario_impl(is, ParseContext{source}, &net);
  if (parsed.apps.empty())
    throw std::runtime_error(source + ": no app block found");
  return std::move(parsed.apps);
}

namespace {

/// Shortest decimal string that std::stod parses back to exactly the same
/// double, so write_scenario -> parse_scenario is lossless (default
/// ostream printing truncates to 6 significant digits).
std::string fmt(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

/// Writes one `app ... end` block (shared by write_scenario and
/// write_app_text).
void write_app(std::ostream& os, const Application& app, const Network& net) {
  os << "app " << app.name << " ";
  if (app.qoe.cls == QoeClass::kBestEffort) {
    os << "be " << fmt(app.qoe.priority);
    if (app.qoe.availability > 0) os << " " << fmt(app.qoe.availability);
  } else {
    os << "gr " << fmt(app.qoe.min_rate) << " "
       << fmt(app.qoe.min_rate_availability);
  }
  os << "\n";
  const TaskGraph& g = *app.graph;
  for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i) {
    os << "  ct " << g.ct(i).name;
    for (std::size_t r = 0; r < g.ct(i).requirement.size(); ++r)
      os << " " << fmt(g.ct(i).requirement[r]);
    os << "\n";
  }
  for (TtId k = 0; k < static_cast<TtId>(g.tt_count()); ++k)
    os << "  tt " << g.tt(k).name << " " << fmt(g.tt(k).bits_per_unit)
       << " " << g.ct(g.tt(k).src).name << " " << g.ct(g.tt(k).dst).name
       << "\n";
  for (const auto& [ct, ncp] : app.pinned)
    os << "  pin " << g.ct(ct).name << " " << net.ncp(ncp).name << "\n";
  os << "end\n";
}

}  // namespace

std::string write_scenario(const ScenarioFile& scenario) {
  std::ostringstream os;
  const Network& net = scenario.net;
  os << "resources";
  for (const std::string& r : net.schema().names()) os << " " << r;
  os << "\n\n";
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const Ncp& n = net.ncp(j);
    os << "ncp " << n.name;
    for (std::size_t r = 0; r < n.capacity.size(); ++r)
      os << " " << fmt(n.capacity[r]);
    if (n.fail_prob > 0) os << " fail=" << fmt(n.fail_prob);
    if (!n.region.empty()) os << " region=" << n.region;
    os << "\n";
  }
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    const Link& lk = net.link(l);
    os << (lk.directed ? "dlink " : "link ") << lk.name << " "
       << net.ncp(lk.a).name << " " << net.ncp(lk.b).name << " "
       << fmt(lk.bandwidth);
    if (lk.fail_prob > 0) os << " fail=" << fmt(lk.fail_prob);
    os << "\n";
  }
  for (const Application& app : scenario.apps) {
    os << "\n";
    write_app(os, app, net);
  }
  return os.str();
}

std::string write_app_text(const Application& app, const Network& net) {
  std::ostringstream os;
  write_app(os, app, net);
  return os.str();
}

}  // namespace sparcle::workload
