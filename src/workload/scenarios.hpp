#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/assignment.hpp"
#include "model/network.hpp"
#include "model/task_graph.hpp"
#include "workload/rng.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

/// \file scenarios.hpp
/// Matched (network, task graph, pins) instances for the three evaluation
/// regimes of §V-B: the link-bottleneck case (links tight, NCPs with 10x
/// headroom), the NCP-bottleneck case (the reverse), and the balanced case
/// (either can bind).  The Fig. 12 memory-bottleneck case adds a second
/// resource type that is the scarce one.

namespace sparcle::workload {

enum class BottleneckCase { kNcp, kLink, kBalanced, kMemory };
enum class TopologyKind { kStar, kLinear, kFull };
enum class GraphKind { kLinear, kDiamond };

struct ScenarioSpec {
  TopologyKind topology{TopologyKind::kStar};
  GraphKind graph{GraphKind::kDiamond};
  BottleneckCase bottleneck{BottleneckCase::kBalanced};
  std::size_t ncps{8};
  std::size_t middle_cts{4};  ///< linear graphs: CTs between source and sink
  double fail_prob{0.0};      ///< per-link failure probability (§V-B QoE)
};

/// One generated instance.  The task graph is shared; the network is owned.
struct Scenario {
  Network net;
  std::shared_ptr<const TaskGraph> graph;
  std::map<CtId, NcpId> pinned;

  /// Assignment problem over the full network capacities.  The scenario
  /// must outlive the returned problem (it borrows net/graph).
  AssignmentProblem problem() const {
    AssignmentProblem p;
    p.net = &net;
    p.graph = graph.get();
    p.capacities = CapacitySnapshot(net);
    p.pinned = pinned;
    return p;
  }
};

/// Human-readable labels for benchmark table headers.
std::string to_string(BottleneckCase c);
std::string to_string(TopologyKind t);
std::string to_string(GraphKind g);

/// Generates one random instance of the spec.
Scenario make_scenario(const ScenarioSpec& spec, Rng& rng);

/// The capacity/requirement ranges behind each bottleneck case (exposed
/// for tests that need to reason about the regimes).
NetRanges net_ranges_for(BottleneckCase c);
TaskRanges task_ranges_for(BottleneckCase c);

}  // namespace sparcle::workload
