#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sparcle::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;
constexpr double kDay = 86400.0;
constexpr double kHour = 3600.0;
/// Flash-crowd shape: a quiet 0.4× base with a `kBurstLen`-second burst
/// at the top of every hour.  The burst amplitude is chosen so the mean
/// over one hour equals the spec's mean rate:
///   0.4·3600 + kBurstLen·kBurstMult = 3600.
constexpr double kBurstLen = 120.0;
constexpr double kBurstMult = 18.0;
constexpr double kFlashBase = 0.4;

double exponential(Rng& rng, double mean) {
  // Inverse CDF on (0, 1]; 1 - uniform[0,1) avoids log(0).
  return -mean * std::log(1.0 - rng.uniform(0.0, 1.0));
}

/// Pareto factor with α = 1.2 (infinite variance), clipped at 40× so a
/// single elephant stays placeable-in-principle on the soak site.
double pareto_factor(Rng& rng) {
  const double u = 1.0 - rng.uniform(0.0, 1.0);
  return std::min(40.0, std::pow(u, -1.0 / 1.2));
}

}  // namespace

const char* to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kSteady: return "steady";
    case ArrivalPattern::kDiurnal: return "diurnal";
    case ArrivalPattern::kFlashCrowd: return "flash_crowd";
    case ArrivalPattern::kHeavyTail: return "heavy_tail";
    case ArrivalPattern::kRegionalOutage: return "regional_outage";
    case ArrivalPattern::kTenantMix: return "tenant_mix";
  }
  return "?";
}

std::vector<ArrivalPattern> all_arrival_patterns() {
  return {ArrivalPattern::kSteady,        ArrivalPattern::kDiurnal,
          ArrivalPattern::kFlashCrowd,    ArrivalPattern::kHeavyTail,
          ArrivalPattern::kRegionalOutage, ArrivalPattern::kTenantMix};
}

ArrivalPattern parse_arrival_pattern(const std::string& name) {
  for (ArrivalPattern p : all_arrival_patterns())
    if (name == to_string(p)) return p;
  std::string known;
  for (ArrivalPattern p : all_arrival_patterns()) {
    if (!known.empty()) known += ", ";
    known += to_string(p);
  }
  throw std::invalid_argument("unknown arrival pattern '" + name +
                              "' (known: " + known + ")");
}

ArrivalGenerator::ArrivalGenerator(const Network& net, ArrivalSpec spec,
                                   std::uint64_t seed)
    : net_(&net), spec_(std::move(spec)), rng_(seed) {
  if (spec_.arrivals == 0 || spec_.horizon <= 0)
    throw std::invalid_argument("ArrivalSpec: arrivals and horizon must be "
                                "positive");
  mean_rate_ = static_cast<double>(spec_.arrivals) / spec_.horizon;
  switch (spec_.pattern) {
    case ArrivalPattern::kDiurnal:
      peak_rate_ = mean_rate_ * 1.85;
      break;
    case ArrivalPattern::kFlashCrowd:
      peak_rate_ = mean_rate_ * (kFlashBase + kBurstMult);
      break;
    default:
      peak_rate_ = mean_rate_;
      break;
  }

  // The pooled task graphs: a mix of chains and layered DAGs, small
  // enough that a million-arrival soak stays assignment-bound rather
  // than graph-allocation-bound.  Heavy-tail scales whole graphs so the
  // size distribution across arrivals is Pareto over the pool.
  const std::size_t pool = std::max<std::size_t>(1, spec_.graph_pool);
  pool_.reserve(pool);
  for (std::size_t g = 0; g < pool; ++g) {
    TaskRanges ranges = spec_.tasks;
    if (spec_.pattern == ArrivalPattern::kHeavyTail) {
      const double f = pareto_factor(rng_);
      ranges.ct_min *= f;
      ranges.ct_max *= f;
      ranges.tt_min *= f;
      ranges.tt_max *= f;
    }
    if (rng_.bernoulli(0.5)) {
      pool_.push_back(linear_task_graph(
          static_cast<std::size_t>(rng_.uniform_int(1, 4)), rng_, ranges));
    } else {
      pool_.push_back(random_layered_task_graph(
          rng_, ranges, static_cast<std::size_t>(rng_.uniform_int(1, 3)),
          /*max_width=*/2, /*edge_prob=*/0.35));
    }
  }

  // Region pools for locality pinning, by first appearance (no RNG use,
  // so building them never perturbs existing seeded streams).
  std::vector<std::string> seen;
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    const std::string& label = net.ncp(j).region;
    if (label.empty()) continue;
    std::size_t g = 0;
    while (g < seen.size() && seen[g] != label) ++g;
    if (g == seen.size()) {
      seen.push_back(label);
      regions_.emplace_back();
    }
    regions_[g].push_back(j);
  }
}

double ArrivalGenerator::rate_at(double t) const {
  switch (spec_.pattern) {
    case ArrivalPattern::kDiurnal:
      // Day/night wave; strictly positive (trough = 0.15× mean).
      return mean_rate_ * (1.0 + 0.85 * std::sin(kTwoPi * t / kDay));
    case ArrivalPattern::kFlashCrowd:
      return mean_rate_ *
             (kFlashBase +
              (std::fmod(t, kHour) < kBurstLen ? kBurstMult : 0.0));
    default:
      return mean_rate_;
  }
}

double ArrivalGenerator::next_time() {
  // Lewis-Shedler thinning against the pattern's peak rate; exact for
  // the homogeneous patterns (acceptance probability 1).
  double t = now_;
  for (;;) {
    t += exponential(rng_, 1.0 / peak_rate_);
    if (rng_.uniform(0.0, 1.0) * peak_rate_ <= rate_at(t)) return t;
  }
}

bool ArrivalGenerator::next(Arrival& out) {
  if (emitted_ >= spec_.arrivals) return false;
  now_ = next_time();

  Arrival a;
  a.time = now_;
  a.lifetime = exponential(rng_, spec_.mean_lifetime);
  a.patience = spec_.mean_patience * rng_.uniform(0.4, 1.6);
  a.app.name = "a" + std::to_string(emitted_);
  a.app.graph = pool_[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(pool_.size()) - 1))];

  // Tenant mix: tenant A (one third of arrivals) buys guaranteed rate or
  // top-priority best effort; tenant B rides at the bottom weight.
  const bool tenant_a = spec_.pattern == ArrivalPattern::kTenantMix &&
                        rng_.bernoulli(1.0 / 3.0);
  const double gr_fraction =
      spec_.pattern == ArrivalPattern::kTenantMix
          ? (tenant_a ? 0.5 : 0.02)
          : spec_.gr_fraction;
  if (rng_.bernoulli(gr_fraction)) {
    a.app.qoe = QoeSpec::guaranteed_rate(rng_.uniform(0.05, 0.3),
                                         /*min_rate_availability=*/0.0);
  } else if (spec_.pattern == ArrivalPattern::kTenantMix) {
    a.app.qoe = QoeSpec::best_effort(tenant_a ? 4.0 : 0.5);
  } else {
    a.app.qoe = QoeSpec::best_effort(rng_.uniform(0.5, 4.0));
  }

  // Pin every source and sink to a uniformly drawn NCP (per arrival, so
  // a pooled graph still exercises distinct routes).  With locality > 0
  // on a region-labeled network, the arrival first draws a home region
  // and each endpoint lands inside it with that probability.  The
  // locality == 0 branch is draw-for-draw identical to the classic
  // pinning, so existing seeds replay unchanged.
  const auto draw_ncp = [&] {
    return static_cast<NcpId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(net_->ncp_count()) - 1));
  };
  if (spec_.locality > 0.0 && !regions_.empty()) {
    const std::vector<NcpId>& home = regions_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(regions_.size()) - 1))];
    const auto draw_pin = [&]() -> NcpId {
      if (rng_.bernoulli(spec_.locality))
        return home[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(home.size()) - 1))];
      return draw_ncp();
    };
    for (CtId s : a.app.graph->sources()) a.app.pinned[s] = draw_pin();
    for (CtId s : a.app.graph->sinks()) a.app.pinned[s] = draw_pin();
  } else {
    for (CtId s : a.app.graph->sources()) a.app.pinned[s] = draw_ncp();
    for (CtId s : a.app.graph->sinks()) a.app.pinned[s] = draw_ncp();
  }

  ++emitted_;
  out = std::move(a);
  return true;
}

Network soak_site(std::size_t regions, std::size_t ncps_per_region, Rng& rng,
                  const NetRanges& ranges) {
  if (regions == 0 || ncps_per_region == 0)
    throw std::invalid_argument("soak_site: regions and ncps_per_region "
                                "must be positive");
  Network net(ResourceSchema::cpu_only());
  std::vector<NcpId> hubs;
  hubs.reserve(regions);
  for (std::size_t g = 0; g < regions; ++g) {
    const std::string prefix = "r" + std::to_string(g);
    const NcpId hub =
        net.add_ncp(prefix + "n0", {rng.uniform(ranges.ncp_min, ranges.ncp_max)},
                    /*fail_prob=*/0.0, /*region=*/prefix);
    hubs.push_back(hub);
    for (std::size_t i = 1; i < ncps_per_region; ++i) {
      const NcpId leaf =
          net.add_ncp(prefix + "n" + std::to_string(i),
                      {rng.uniform(ranges.ncp_min, ranges.ncp_max)},
                      /*fail_prob=*/0.0, /*region=*/prefix);
      net.add_link(prefix + "l" + std::to_string(i), hub, leaf,
                   rng.uniform(ranges.bw_min, ranges.bw_max));
    }
  }
  // Backbone ring at double bandwidth; a 2-region site needs only the
  // single hub-hub link.
  const std::size_t backbone = regions == 2 ? 1 : regions;
  for (std::size_t g = 0; g < backbone && regions > 1; ++g) {
    net.add_link("bb" + std::to_string(g), hubs[g], hubs[(g + 1) % regions],
                 2.0 * rng.uniform(ranges.bw_min, ranges.bw_max));
  }
  return net;
}

}  // namespace sparcle::workload
