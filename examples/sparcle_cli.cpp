/// \file sparcle_cli.cpp
/// Command-line front end: load a scenario file (network + application
/// arrival sequence), run the SPARCLE admission-control scheduler over it,
/// and report the placements and allocations — optionally exporting
/// Graphviz renderings and validating the allocation in the simulator.
///
/// Usage:
///   sparcle_cli <scenario-file> [--assigner NAME] [--max-paths N]
///               [--dot PREFIX] [--simulate SECONDS]
///   sparcle_cli <scenario-file> --connect HOST:PORT
///
///   --connect    client mode: instead of scheduling locally, submit the
///                scenario's applications to a running sparcle_serve
///                daemon over the NDJSON wire protocol (docs/service.md)
///                and print each response.  The scenario's network section
///                must describe the daemon's network (pins resolve by NCP
///                name).  All other options are local-mode only.
///   --assigner   SPARCLE (default), GS, GRand, Random, T-Storm, VNE, HEFT
///   --max-paths  cap on task-assignment paths per app (default 4)
///   --dot        write PREFIX_<app>.dot for each admitted app, plus
///                PREFIX_network.dot
///   --simulate   replay all allocated paths for that many simulated
///                seconds and report delivered throughput
///   --trace      with --simulate: write the unit-lifecycle event trace
///                as CSV to this file
///   --validate   run the invariant checker (src/check) after every
///                scheduler mutation and once more on the final state;
///                any violation is printed and exits with status 3
///                (docs/testing.md has the invariant catalog)
///
/// Observability (docs/observability.md):
///   --metrics-out FILE   write a metrics snapshot on exit (counters,
///                        gauges, histograms; JSON, or CSV when FILE ends
///                        in .csv)
///   --trace-out FILE     write phase-timer spans as Chrome trace-event
///                        JSON (open in chrome://tracing or Perfetto)
///   --decision-log FILE  write every admission/rejection/path-addition
///                        decision with its reason as CSV
///
/// Network churn (docs/churn.md):
///   --churn-trace FILE   after all arrivals, replay this element
///                        failure/recovery trace against the scheduler
///   --churn-gen M,R,H,S  generate a Poisson churn trace instead
///                        (MTBF, MTTR, horizon, seed) and replay it
///   --churn-out FILE     record the replayed trace to FILE (exact
///                        round-trip; feed back via --churn-trace)
///   --churn-repair MODE  repair policy per event: incremental (default),
///                        rebalance, or none
///
/// A scenario file example ships in examples/scenarios/.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "baselines/registry.hpp"
#include "check/invariants.hpp"
#include "core/scheduler.hpp"
#include "model/dot_export.hpp"
#include "obs/obs.hpp"
#include "service/client.hpp"
#include "sim/churn_injector.hpp"
#include "sim/stream_simulator.hpp"
#include "sim/trace.hpp"
#include "workload/scenario_io.hpp"

using namespace sparcle;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--assigner NAME] [--max-paths N] "
               "[--dot PREFIX] [--simulate SECONDS] [--trace FILE]\n"
               "       [--metrics-out FILE] [--trace-out FILE] "
               "[--decision-log FILE] [--validate]\n"
               "       [--churn-trace FILE | --churn-gen MTBF,MTTR,HORIZON,"
               "SEED] [--churn-out FILE] [--churn-repair MODE]\n"
               "       %s <scenario-file> --connect HOST:PORT\n",
               argv0, argv0);
  return 2;
}

/// Client mode: submit the scenario's applications to a sparcle_serve
/// daemon at `endpoint` ("HOST:PORT") and print each wire response.
int run_connect_mode(const workload::ScenarioFile& scenario,
                     const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--connect: bad port in '%s'\n", endpoint.c_str());
    return 2;
  }
  try {
    service::TcpClient client(host, static_cast<std::uint16_t>(port));
    std::printf("submitting %zu application(s) to %s:\n",
                scenario.apps.size(), endpoint.c_str());
    for (const Application& app : scenario.apps) {
      const auto response = client.submit_app_text(
          workload::write_app_text(app, scenario.net));
      const auto status = response.find("status");
      const auto reason = response.find("reason");
      const auto rate = response.find("rate");
      std::printf("  %-16s %s%s%s%s%s\n", app.name.c_str(),
                  status != response.end() ? status->second.c_str() : "?",
                  rate != response.end() ? "  rate=" : "",
                  rate != response.end() ? rate->second.c_str() : "",
                  reason != response.end() ? "  " : "",
                  reason != response.end() ? reason->second.c_str() : "");
    }
    std::printf("\nserver state after drain:\n ");
    for (const auto& [key, value] : client.drain())
      std::printf(" %s=%s", key.c_str(), value.c_str());
    std::printf("\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Owns the observability sinks for the whole run and writes the requested
/// output files on destruction — every exit path (including errors) still
/// produces the snapshots gathered so far.
struct ObsSession {
  sparcle::obs::MetricsRegistry metrics;
  sparcle::obs::ChromeTraceCollector trace;
  sparcle::obs::DecisionLog decisions;
  std::string metrics_path, trace_path, decisions_path;

  bool active() const {
    return !metrics_path.empty() || !trace_path.empty() ||
           !decisions_path.empty();
  }

  void install() {
    sparcle::obs::Observability o;
    if (!metrics_path.empty()) o.metrics = &metrics;
    if (!trace_path.empty()) o.trace = &trace;
    if (!decisions_path.empty()) o.decisions = &decisions;
    sparcle::obs::install(o);
  }

  ~ObsSession() {
    sparcle::obs::uninstall();
    if (!metrics_path.empty() &&
        write_file(metrics_path, ends_with(metrics_path, ".csv")
                                     ? metrics.to_csv()
                                     : metrics.to_json()))
      std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
    if (!trace_path.empty() && write_file(trace_path, trace.to_json()))
      std::printf("Chrome trace (%zu spans) written to %s\n",
                  trace.event_count(), trace_path.c_str());
    if (!decisions_path.empty() &&
        write_file(decisions_path, decisions.to_csv()))
      std::printf("decision log (%zu rows) written to %s\n",
                  decisions.size(), decisions_path.c_str());
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string scenario_path;
  std::string assigner_name = "SPARCLE";
  std::string dot_prefix;
  std::string trace_path;
  std::size_t max_paths = 4;
  double simulate_seconds = 0;
  bool validate = false;
  std::string churn_trace_path, churn_gen_spec, churn_out_path;
  std::string churn_repair = "incremental";
  std::string connect_endpoint;
  ObsSession obs_session;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--assigner") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      assigner_name = v;
    } else if (arg == "--max-paths") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      max_paths = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      dot_prefix = v;
    } else if (arg == "--simulate") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      simulate_seconds = std::atof(v);
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trace_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      obs_session.metrics_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      obs_session.trace_path = v;
    } else if (arg == "--decision-log") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      obs_session.decisions_path = v;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--churn-trace") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      churn_trace_path = v;
    } else if (arg == "--churn-gen") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      churn_gen_spec = v;
    } else if (arg == "--churn-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      churn_out_path = v;
    } else if (arg == "--churn-repair") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      churn_repair = v;
    } else if (arg == "--connect") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      connect_endpoint = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      scenario_path = arg;
    }
  }
  if (scenario_path.empty()) return usage(argv[0]);
  if (obs_session.active()) obs_session.install();

  workload::ScenarioFile scenario;
  try {
    scenario = workload::load_scenario_file(scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", scenario_path.c_str(), e.what());
    return 1;
  }
  std::printf("scenario: %zu NCPs, %zu links, %zu application(s)\n",
              scenario.net.ncp_count(), scenario.net.link_count(),
              scenario.apps.size());

  if (!connect_endpoint.empty())
    return run_connect_mode(scenario, connect_endpoint);

  SchedulerOptions options;
  options.max_paths = max_paths;
  std::unique_ptr<Assigner> assigner;
  try {
    assigner = make_assigner(assigner_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  Scheduler sched(scenario.net, std::move(assigner), options);

  // With --validate every mutating scheduler call re-checks the full
  // invariant set (the hook throws std::logic_error on the first
  // violation, caught per-submit below); in debug builds the hook is
  // armed even without the flag.
  std::optional<check::ScopedValidation> validation;
  if (validate) validation.emplace(/*force=*/true);

  if (!dot_prefix.empty())
    write_file(dot_prefix + "_network.dot", network_to_dot(sched.network()));

  std::printf("\narrivals (assigner: %s):\n", assigner_name.c_str());
  for (const Application& app : scenario.apps) {
    AdmissionResult r;
    try {
      r = sched.submit(app);
    } catch (const std::logic_error& e) {
      // The validation hook found a broken invariant: the state cannot be
      // trusted past this point, so fail loudly instead of continuing.
      std::fprintf(stderr, "validation FAILED after submitting %s:\n%s",
                   app.name.c_str(), e.what());
      return 3;
    } catch (const std::exception& e) {
      std::printf("  %-16s ERROR: %s\n", app.name.c_str(), e.what());
      continue;
    }
    if (r.admitted)
      std::printf("  %-16s ADMITTED  paths=%zu rate=%.4f avail=%.3f\n",
                  app.name.c_str(), r.path_count, r.rate, r.availability);
    else
      std::printf("  %-16s REJECTED  %s\n", app.name.c_str(),
                  r.reason.c_str());
  }

  std::printf("\nfinal allocations:\n");
  for (const PlacedApp& pa : sched.placed()) {
    std::printf("  %-16s %s rate=%.4f paths=%zu\n", pa.app.name.c_str(),
                pa.app.qoe.cls == QoeClass::kGuaranteedRate ? "GR" : "BE",
                pa.allocated_rate, pa.paths.size());
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      std::printf("    path %zu (%.4f units/s):", k + 1, pa.path_rates[k]);
      const TaskGraph& g = *pa.app.graph;
      for (CtId i = 0; i < static_cast<CtId>(g.ct_count()); ++i)
        std::printf(" %s@%s", g.ct(i).name.c_str(),
                    sched.network()
                        .ncp(pa.paths[k].placement.ct_host(i))
                        .name.c_str());
      std::printf("\n");
    }
    if (!dot_prefix.empty())
      write_file(dot_prefix + "_" + pa.app.name + ".dot",
                 placement_to_dot(sched.network(), *pa.app.graph,
                                  pa.paths[0].placement));
  }
  const double utility = sched.be_utility();
  if (utility != 0.0)
    std::printf("  BE utility: %.4f\n", utility);
  if (sched.total_gr_rate() > 0)
    std::printf("  total GR rate: %.4f\n", sched.total_gr_rate());

  if (validate) {
    const check::CheckReport report = check::check_scheduler_state(sched);
    if (!report.ok()) {
      std::fprintf(stderr, "\nvalidation FAILED on the final state:\n%s",
                   report.to_string().c_str());
      return 3;
    }
    std::printf("\nvalidation: OK (%zu placed app(s), all invariants hold)\n",
                sched.placed().size());
  }

  if (!churn_trace_path.empty() && !churn_gen_spec.empty()) {
    std::fprintf(stderr,
                 "--churn-trace and --churn-gen are mutually exclusive\n");
    return 2;
  }
  if (!churn_trace_path.empty() || !churn_gen_spec.empty()) {
    sim::ChurnInjectorOptions churn_opts;
    if (churn_repair == "incremental")
      churn_opts.repair_mode = sim::RepairMode::kIncremental;
    else if (churn_repair == "rebalance")
      churn_opts.repair_mode = sim::RepairMode::kFullRebalance;
    else if (churn_repair == "none")
      churn_opts.repair_mode = sim::RepairMode::kNone;
    else {
      std::fprintf(stderr, "unknown --churn-repair mode %s\n",
                   churn_repair.c_str());
      return 2;
    }

    sim::ChurnTrace trace;
    try {
      if (!churn_gen_spec.empty()) {
        double mtbf = 0, mttr = 0, horizon = 0, seed = 0;
        if (std::sscanf(churn_gen_spec.c_str(), "%lf,%lf,%lf,%lf", &mtbf,
                        &mttr, &horizon, &seed) != 4) {
          std::fprintf(stderr,
                       "--churn-gen expects MTBF,MTTR,HORIZON,SEED\n");
          return 2;
        }
        sim::ChurnModel model;
        model.default_mtbf = mtbf;
        model.default_mttr = mttr;
        trace = sim::generate_poisson_churn(
            scenario.net, model, horizon,
            static_cast<std::uint64_t>(seed));
      } else {
        trace = sim::load_churn_trace_file(churn_trace_path, scenario.net);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "churn trace: %s\n", e.what());
      return 1;
    }
    if (!churn_out_path.empty() &&
        write_file(churn_out_path,
                   sim::write_churn_trace(trace, scenario.net)))
      std::printf("\nchurn trace (%zu events) written to %s\n",
                  trace.events.size(), churn_out_path.c_str());

    std::printf("\nreplaying %zu churn event(s) (repair: %s):\n",
                trace.events.size(), churn_repair.c_str());
    sim::ChurnInjector injector(sched, std::move(trace), churn_opts);
    try {
      injector.run_all();
    } catch (const std::logic_error& e) {
      std::fprintf(stderr, "validation FAILED during churn replay:\n%s",
                   e.what());
      return 3;
    }
    const sim::ChurnInjectorStats& cs = injector.stats();
    std::printf(
        "  %zu failure(s), %zu recover(y/ies), %zu redundant, %zu repair "
        "pass(es), %zu fallback(s)\n",
        cs.failures, cs.recoveries, cs.redundant, cs.repairs, cs.fallbacks);
    if (churn_opts.repair_mode == sim::RepairMode::kIncremental)
      std::printf(
          "  repair touched %zu app(s); %zu path(s) dropped, %zu added, "
          "%zu retr(y/ies)\n",
          cs.apps_touched, cs.paths_dropped, cs.paths_added, cs.retries);
    std::printf("  post-churn: total GR rate %.4f", sched.total_gr_rate());
    const auto degraded = sched.degraded_gr_apps();
    if (!degraded.empty()) {
      std::printf(", %zu GR app(s) degraded:", degraded.size());
      for (const std::string& name : degraded)
        std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    if (validate) {
      const check::CheckReport report =
          check::check_scheduler_state(sched, check::CheckOptions{});
      if (!report.ok()) {
        std::fprintf(stderr,
                     "\nvalidation FAILED on the post-churn state:\n%s",
                     report.to_string().c_str());
        return 3;
      }
      std::printf("  validation: OK after churn replay\n");
    }
  }

  if (simulate_seconds > 0) {
    std::printf("\nsimulating %.0f s at 95%% of allocated rates:\n",
                simulate_seconds);
    sim::StreamSimulator simulator(sched.network(), 1);
    std::ofstream trace_file;
    std::unique_ptr<sim::CsvTraceSink> trace_sink;
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      if (!trace_file) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      trace_sink = std::make_unique<sim::CsvTraceSink>(trace_file);
      simulator.set_trace_sink(trace_sink.get());
    }
    struct Ref {
      const PlacedApp* app;
      std::size_t path;
      double rate;
    };
    std::vector<Ref> refs;
    for (const PlacedApp& pa : sched.placed())
      for (std::size_t k = 0; k < pa.paths.size(); ++k)
        if (pa.path_rates[k] > 1e-9) {
          const double rate = 0.95 * pa.path_rates[k];
          simulator.add_stream(*pa.app.graph, pa.paths[k].placement, rate);
          refs.push_back({&pa, k, rate});
        }
    if (refs.empty()) {
      std::printf("  nothing to simulate\n");
      return 0;
    }
    const auto report =
        simulator.run(simulate_seconds, simulate_seconds / 5);
    for (std::size_t s = 0; s < refs.size(); ++s)
      std::printf(
          "  %-16s path %zu: offered %.4f delivered %.4f latency %.3fs\n",
          refs[s].app->app.name.c_str(), refs[s].path + 1, refs[s].rate,
          report.streams[s].throughput, report.streams[s].mean_latency);
    if (!trace_path.empty())
      std::printf("  event trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
