/// \file capacity_planning.cpp
/// Deployment sizing with plan_capacity(): how many guaranteed-rate
/// face-detection camera pipelines can the paper's testbed host, as a
/// function of the field bandwidth?  The answer is the first number a
/// dispersed-computing operator needs.

#include <cstdio>

#include "core/capacity_planner.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

using namespace sparcle;

int main() {
  const auto graph = workload::face_detection_app();
  std::printf(
      "camera pipelines the testbed can host (GR 0.05 images/s each):\n\n");
  std::printf("  %-16s %-10s %-22s %s\n", "field BW (Mbps)", "pipelines",
              "total guaranteed rate", "limiting factor");
  for (double bw : {0.5, 2.0, 10.0, 22.0}) {
    const auto tb = workload::testbed_network(bw);
    Application camera;
    camera.name = "camera";
    camera.graph = graph;
    camera.qoe = QoeSpec::guaranteed_rate(0.05, 0.0);
    camera.pinned = {{graph->sources()[0], tb.camera},
                     {graph->sinks()[0], tb.consumer}};
    const PlanningResult plan = plan_capacity(tb.net, {camera});
    std::printf("  %-16.1f %-10zu %-22.3f %s\n", bw, plan.max_copies,
                plan.total_gr_rate, plan.limiting_reason.c_str());
  }
  std::printf(
      "\n(each probe re-runs full admission control from scratch; the "
      "limiting factor is the first rejection at N+1 copies)\n");
  return 0;
}
