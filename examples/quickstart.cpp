/// \file quickstart.cpp
/// Minimal end-to-end tour of the SPARCLE public API:
///  1. build a dispersed computing network,
///  2. describe a stream-processing application as a task graph,
///  3. run SPARCLE's task assignment to get a placement and rate,
///  4. validate the placement in the discrete-event simulator.

#include <cstdio>

#include "check/invariants.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/task_graphs.hpp"

using namespace sparcle;

int main() {
  // Self-validation: in debug builds every scheduler mutation re-checks
  // the full invariant set (no-op in release builds).
  const check::ScopedValidation validation;

  // 1. A small dispersed network: two field devices, an edge server, and a
  //    camera/consumer site, with heterogeneous links (bits/s) and CPU
  //    capacities (megacycles/s).
  Network net(ResourceSchema::cpu_only());
  const NcpId site = net.add_ncp("site", ResourceVector::scalar(2000));
  const NcpId dev1 = net.add_ncp("dev1", ResourceVector::scalar(4000));
  const NcpId dev2 = net.add_ncp("dev2", ResourceVector::scalar(4000));
  const NcpId edge = net.add_ncp("edge", ResourceVector::scalar(12000));
  net.add_link("site-dev1", site, dev1, 40e6);
  net.add_link("site-dev2", site, dev2, 40e6);
  net.add_link("dev1-edge", dev1, edge, 20e6);
  net.add_link("dev2-edge", dev2, edge, 20e6);

  // 2. The Fig. 1 multi-viewpoint object-classification app: two cameras,
  //    detection, classification, one consumer.
  auto graph = workload::object_classification_app();

  // 3. Assign tasks with SPARCLE.  Cameras and the consumer are pinned.
  AssignmentProblem problem;
  problem.net = &net;
  problem.graph = graph.get();
  problem.capacities = CapacitySnapshot(net);
  problem.pinned[graph->sources()[0]] = site;
  problem.pinned[graph->sources()[1]] = site;
  problem.pinned[graph->sinks()[0]] = site;

  const SparcleAssigner assigner;
  const AssignmentResult result = assigner.assign(problem);
  if (!result.feasible) {
    std::printf("assignment failed: %s\n", result.message.c_str());
    return 1;
  }

  std::printf("SPARCLE placement (max stable rate %.3f units/s):\n",
              result.rate);
  for (CtId i = 0; i < static_cast<CtId>(graph->ct_count()); ++i)
    std::printf("  %-22s -> %s\n", graph->ct(i).name.c_str(),
                net.ncp(result.placement.ct_host(i)).name.c_str());
  for (TtId k = 0; k < static_cast<TtId>(graph->tt_count()); ++k) {
    std::printf("  %-22s -> ", graph->tt(k).name.c_str());
    const auto& route = result.placement.tt_route(k);
    if (route.empty()) {
      std::printf("(co-located)\n");
      continue;
    }
    for (LinkId l : route) std::printf("[%s] ", net.link(l).name.c_str());
    std::printf("\n");
  }

  // 4. Replay the placement in the simulator at 95% of the stable rate and
  //    confirm the pipeline keeps up.
  sim::StreamSimulator simulator(net);
  const double rate = 0.95 * result.rate;
  simulator.add_stream(*graph, result.placement, rate);
  const sim::SimReport report = simulator.run(/*duration=*/400.0,
                                              /*warmup=*/100.0);
  std::printf(
      "\nsimulated at %.3f units/s: delivered %.3f units/s, "
      "mean latency %.3f s\n",
      rate, report.streams[0].throughput, report.streams[0].mean_latency);
  return 0;
}
