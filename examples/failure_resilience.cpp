/// \file failure_resilience.cpp
/// Multipath QoE under element failures: provision a Best-Effort app with
/// one vs two task-assignment paths on a network with unreliable relays,
/// compute the exact availability (inclusion–exclusion over the shared
/// elements), cross-check with Monte Carlo, and then *watch it happen* in
/// the discrete-event simulator with live failure injection.

#include <cstdio>

#include "core/availability.hpp"
#include "check/invariants.hpp"
#include "core/scheduler.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/task_graphs.hpp"

using namespace sparcle;

namespace {

/// src - {relay1 | relay2} - dst, relays fail 10% of the time.
Network make_net() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("relay1", ResourceVector::scalar(40.0), 0.10);
  net.add_ncp("relay2", ResourceVector::scalar(30.0), 0.10);
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 500.0, 0.02);
  net.add_link("1d", 1, 3, 500.0, 0.02);
  net.add_link("s2", 0, 2, 500.0, 0.02);
  net.add_link("2d", 2, 3, 500.0, 0.02);
  return net;
}

Application make_app(double availability) {
  Application app;
  app.name = "stream";
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("sensor", ResourceVector::scalar(0));
  const CtId f = g->add_ct("filter", ResourceVector::scalar(10));
  const CtId t = g->add_ct("consumer", ResourceVector::scalar(0));
  g->add_tt("raw", 20.0, s, f);
  g->add_tt("filtered", 2.0, f, t);
  g->finalize();
  app.graph = g;
  app.qoe = QoeSpec::best_effort(1.0, availability);
  app.pinned = {{s, 0}, {t, 3}};
  return app;
}

}  // namespace

int main() {
  // Self-validation: in debug builds every scheduler mutation re-checks
  // the full invariant set (no-op in release builds).
  const check::ScopedValidation validation;

  const Network net = make_net();

  std::printf(
      "network: two relays (10%% failure) between a sensor site and a "
      "consumer; links fail 2%%\n\n");

  for (double target : {0.0, 0.95}) {
    Scheduler sched(net);
    const AdmissionResult r = sched.submit(make_app(target));
    if (!r.admitted) {
      std::printf("target availability %.2f: rejected (%s)\n", target,
                  r.reason.c_str());
      continue;
    }
    const PlacedApp& pa = sched.placed().back();
    std::printf("target availability %.2f -> %zu path(s), rate %.3f:\n",
                target, pa.paths.size(), pa.allocated_rate);

    // Exact availability and a Monte-Carlo cross-check.
    std::vector<std::vector<ElementKey>> sets;
    for (const auto& pi : pa.paths) sets.push_back(pi.elements);
    const double exact = availability_any(net, sets);
    const double mc = availability_any_mc(net, sets, 200000, 7);
    std::printf("  P(>=1 path alive): exact %.4f, Monte-Carlo %.4f\n", exact,
                mc);

    // Live failure injection: elements toggle with the same stationary
    // unavailability (mean down / (mean up + mean down) = P_f).
    sim::StreamSimulator sim(net, 11);
    for (std::size_t k = 0; k < pa.paths.size(); ++k)
      sim.add_stream(*pa.app.graph, pa.paths[k].placement,
                     std::max(0.05, 0.9 * pa.path_rates[k]));
    for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
      if (net.ncp(j).fail_prob > 0)
        sim.add_failure(ElementKey::ncp(j),
                        50.0 * (1 - net.ncp(j).fail_prob),
                        50.0 * net.ncp(j).fail_prob);
    for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
      if (net.link(l).fail_prob > 0)
        sim.add_failure(ElementKey::link(l),
                        50.0 * (1 - net.link(l).fail_prob),
                        50.0 * net.link(l).fail_prob);
    const auto rep = sim.run(4000.0, 400.0);
    double offered = 0, got = 0;
    for (std::size_t k = 0; k < rep.streams.size(); ++k) {
      offered += std::max(0.05, 0.9 * pa.path_rates[k]);
      got += rep.streams[k].throughput;
    }
    std::printf(
        "  simulated with live failures: offered %.3f, delivered %.3f "
        "units/s (%.0f%%)\n\n",
        offered, got, 100.0 * got / offered);
  }

  // Finally, the control-plane reaction: relay1 dies, the scheduler
  // notices the degradation and rebalance() re-provisions onto relay2.
  std::printf("control-plane repair (Scheduler::rebalance):\n");
  Scheduler sched(net);
  Application gr = make_app(0.0);
  gr.qoe = QoeSpec::guaranteed_rate(2.0, 0.0);
  const auto admitted = sched.submit(gr);
  std::printf("  admitted GR 2.0/s on %s\n",
              net.ncp(sched.placed()[0].paths[0].placement.ct_host(1))
                  .name.c_str());
  const NcpId dead = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(dead));
  std::printf("  %s failed: degraded apps = %zu\n",
              net.ncp(dead).name.c_str(), sched.degraded_gr_apps().size());
  const auto report = sched.rebalance();
  std::printf("  rebalance: repaired %zu, still degraded %zu; now on %s at "
              "%.3f units/s\n",
              report.repaired.size(), report.still_degraded.size(),
              net.ncp(sched.placed()[0].paths[0].placement.ct_host(1))
                  .name.c_str(),
              sched.placed()[0].allocated_rate);
  (void)admitted;
  return 0;
}
