/// \file sparcle_serve.cpp
/// The placement daemon: load a scenario file, keep its network as the
/// managed dispersed-computing fabric, pre-admit the scenario's
/// applications, and serve placement requests on TCP until interrupted.
/// One event-loop thread multiplexes every connection, and both wire
/// codecs share the port: newline-delimited JSON (docs/service.md) and
/// length-prefixed binary frames (docs/wire.md) — the first byte a client
/// sends picks the codec.
///
/// Usage:
///   sparcle_serve <scenario-file> [--port P] [--bind ADDR]
///                 [--max-batch N] [--queue-capacity N] [--deadline-ms N]
///                 [--threads N] [--window-seconds N] [--idle-timeout-ms N]
///                 [--shards N] [--validate]
///                 [--oneshot] [--metrics-out FILE] [--decision-log FILE]
///                 [--trace-out FILE] [--trace-capacity N]
///                 [--decision-capacity N]
///
///   --shards          run a federated backend with N regional scheduler
///                     shards (docs/federation.md) instead of one global
///                     scheduler; the wire protocol is unchanged
///   --port            TCP port (default 7411; 0 picks an ephemeral port)
///   --bind            bind address (default 127.0.0.1, loopback only)
///   --max-batch       admission requests coalesced per scheduler batch
///   --queue-capacity  bound on queued requests (backpressure beyond it)
///   --deadline-ms     default per-request deadline (0 = none)
///   --threads         worker threads for candidate evaluation (also
///                     settable via SPARCLE_THREADS; 0 = auto)
///   --window-seconds  live telemetry window width (default 60)
///   --idle-timeout-ms close connections idle for this long (0 = never)
///   --validate        run the invariant checker after every batch
///   --oneshot         start, loop a submit/query/remove round trip back
///                     through a TCP client in *both* codecs, scrape and
///                     validate the stats/metrics ops verbs, print the
///                     transcript, exit (the self-test mode CI exercises)
///   --metrics-out     write a metrics snapshot on exit (JSON / .csv)
///   --decision-log    write the decision log as CSV on exit (includes
///                     queue_reject rows for backpressure bounces, each
///                     tagged with the originating request's trace id)
///   --trace-out       write a Chrome trace (chrome://tracing /
///                     ui.perfetto.dev) on exit; service requests appear
///                     as flow-linked spans keyed by trace id
///   --trace-capacity  cap on buffered trace events (oldest dropped)
///   --decision-capacity  cap on buffered decision rows (oldest dropped)
///
/// The daemon's own metrics registry (SchedulerService::registry()) is
/// installed as the process-global sink, so scheduler.* / assigner.*
/// instruments land in the same registry the `metrics` ops verb exposes.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "federation/federation.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "service/client.hpp"
#include "service/scheduler_service.hpp"
#include "service/event_server.hpp"
#include "workload/scenario_io.hpp"

using namespace sparcle;

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--port P] [--bind ADDR] "
               "[--max-batch N] [--queue-capacity N] [--deadline-ms N]\n"
               "       [--threads N] [--window-seconds N] "
               "[--idle-timeout-ms N] [--shards N] [--validate] "
               "[--oneshot] [--metrics-out FILE] [--decision-log FILE]\n"
               "       [--trace-out FILE] [--trace-capacity N] "
               "[--decision-capacity N]\n",
               argv0);
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_fields(const char* label,
                  const std::map<std::string, std::string>& fields) {
  std::printf("%-10s", label);
  for (const auto& [key, value] : fields)
    std::printf(" %s=%s", key.c_str(), value.c_str());
  std::printf("\n");
}

/// Scrapes the `metrics` verb, validates the exposition structurally, and
/// returns the samples.  Throws std::runtime_error on any violation.
std::vector<obs::ExpositionSample> scrape_metrics(service::TcpClient& client) {
  const auto response = client.request_fields("{\"verb\":\"metrics\"}");
  const auto body_it = response.find("body");
  if (body_it == response.end())
    throw std::runtime_error("metrics response has no 'body' field");
  return obs::validate_exposition(body_it->second);
}

double sample_value(const std::vector<obs::ExpositionSample>& samples,
                    const std::string& name) {
  for (const obs::ExpositionSample& s : samples)
    if (s.name == name && s.labels.empty()) return s.value;
  return -1.0;
}

/// The --oneshot self-test: talk to our own daemon through the real TCP
/// stack, exercising every verb once — including a double scrape of the
/// ops endpoint with exposition validation and counter-monotonicity
/// checks.  Returns an exit status.
int oneshot(service::EventServer& server,
            const workload::ScenarioFile& scenario,
            const Network& net) {
  service::TcpClient client("127.0.0.1", server.port());
  print_fields("query", client.query());

  std::vector<obs::ExpositionSample> first;
  try {
    first = scrape_metrics(client);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oneshot: first metrics scrape failed: %s\n",
                 e.what());
    return 1;
  }

  if (!scenario.apps.empty()) {
    // Resubmit a copy of the first scenario app under a fresh name: the
    // exact text a remote client would put on the wire.
    Application probe = scenario.apps.front();
    probe.name = "oneshot_probe";
    const std::string block = workload::write_app_text(probe, net);
    const auto submitted = client.submit_app_text(block);
    print_fields("submit", submitted);
    if (const auto it = submitted.find("status");
        it == submitted.end() ||
        (it->second != "admitted" && it->second != "rejected")) {
      std::fprintf(stderr, "oneshot: unexpected submit response\n");
      return 1;
    }
    if (submitted.find("trace_id") == submitted.end() ||
        submitted.find("queue_us") == submitted.end() ||
        submitted.find("solve_us") == submitted.end()) {
      std::fprintf(stderr, "oneshot: submit response lacks the stage "
                           "breakdown (trace_id/queue_us/solve_us)\n");
      return 1;
    }
    print_fields("query", client.query("oneshot_probe"));
    print_fields("remove", client.remove("oneshot_probe"));
  }
  print_fields("drain", client.drain());

  const auto health = client.request_fields("{\"verb\":\"stats\"}");
  print_fields("stats", health);
  const auto slo_it = health.find("slo_state");
  if (slo_it == health.end() ||
      (slo_it->second != "ok" && slo_it->second != "degraded" &&
       slo_it->second != "breached")) {
    std::fprintf(stderr, "oneshot: stats response lacks a valid slo_state\n");
    return 1;
  }

  std::vector<obs::ExpositionSample> second;
  try {
    second = scrape_metrics(client);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oneshot: second metrics scrape failed: %s\n",
                 e.what());
    return 1;
  }
  // Counters must be monotone between the two scrapes.
  for (const obs::ExpositionSample& s : first) {
    if (!ends_with(s.name, "_total") || !s.labels.empty()) continue;
    const double later = sample_value(second, s.name);
    if (later >= 0.0 && later + 1e-9 < s.value) {
      std::fprintf(stderr, "oneshot: counter %s went backwards (%g -> %g)\n",
                   s.name.c_str(), s.value, later);
      return 1;
    }
  }
  // The admission-latency histogram family must be present and populated.
  const double lat_count =
      sample_value(second, "sparcle_service_admission_latency_us_count");
  if (lat_count <= 0.0) {
    std::fprintf(stderr,
                 "oneshot: admission latency histogram missing or empty\n");
    return 1;
  }
  std::printf("oneshot: OK (%zu -> %zu exposition samples)\n", first.size(),
              second.size());
  return 0;
}

/// The binary half of --oneshot: open a binary-codec connection next to
/// a JSON one against the same daemon, check the two codecs agree on a
/// query, and push a submit/remove probe through the frame path (trace
/// fields included).  Returns an exit status.
int oneshot_binary(service::EventServer& server,
                   const workload::ScenarioFile& scenario,
                   const Network& net) {
  service::TcpClient json("127.0.0.1", server.port(), service::Codec::kJson);
  service::TcpClient binary("127.0.0.1", server.port(),
                            service::Codec::kBinary);
  const auto json_query = json.query();
  const auto binary_query = binary.query();
  print_fields("bquery", binary_query);
  if (json_query != binary_query) {
    std::fprintf(stderr,
                 "oneshot: binary and JSON query responses differ\n");
    return 1;
  }
  if (!scenario.apps.empty()) {
    Application probe = scenario.apps.front();
    probe.name = "oneshot_probe_bin";
    const std::string block = workload::write_app_text(probe, net);
    const auto submitted = binary.submit_app_text(block);
    print_fields("bsubmit", submitted);
    if (const auto it = submitted.find("status");
        it == submitted.end() ||
        (it->second != "admitted" && it->second != "rejected")) {
      std::fprintf(stderr, "oneshot: unexpected binary submit response\n");
      return 1;
    }
    if (submitted.find("trace_id") == submitted.end() ||
        submitted.find("queue_us") == submitted.end() ||
        submitted.find("solve_us") == submitted.end()) {
      std::fprintf(stderr, "oneshot: binary submit response lacks the "
                           "stage breakdown\n");
      return 1;
    }
    print_fields("bremove", binary.remove("oneshot_probe_bin"));
  }
  const auto health =
      binary.call(std::map<std::string, std::string>{{"verb", "stats"}});
  const auto slo_it = health.find("slo_state");
  if (slo_it == health.end() ||
      (slo_it->second != "ok" && slo_it->second != "degraded" &&
       slo_it->second != "breached")) {
    std::fprintf(stderr,
                 "oneshot: binary stats response lacks a valid slo_state\n");
    return 1;
  }
  std::printf("oneshot: binary codec OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  service::EventServerOptions net_options;
  net_options.port = 7411;
  service::ServiceOptions svc_options;
  SchedulerOptions sched_options;
  std::size_t shards = 1;
  bool run_oneshot = false;
  std::string metrics_path, decisions_path, trace_path;
  std::size_t trace_capacity = 0, decision_capacity = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      net_options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--bind") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      net_options.bind_address = v;
    } else if (arg == "--max-batch") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.max_batch = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.queue_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.default_deadline = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sched_options.assigner_options.eval_threads = std::atoi(v);
    } else if (arg == "--window-seconds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.window_seconds = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      net_options.idle_timeout = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      shards = static_cast<std::size_t>(std::atoi(v));
      if (shards == 0) shards = 1;
    } else if (arg == "--validate") {
      svc_options.validate_batches = true;
    } else if (arg == "--oneshot") {
      run_oneshot = true;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      metrics_path = v;
    } else if (arg == "--decision-log") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      decisions_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trace_path = v;
    } else if (arg == "--trace-capacity") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trace_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--decision-capacity") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      decision_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      scenario_path = arg;
    }
  }
  if (scenario_path.empty()) return usage(argv[0]);

  workload::ScenarioFile scenario;
  try {
    scenario = workload::load_scenario_file(scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  obs::DecisionLog decisions;
  obs::ChromeTraceCollector trace;
  if (trace_capacity > 0) trace.set_capacity(trace_capacity);
  if (decision_capacity > 0) decisions.set_capacity(decision_capacity);

  int status = 0;
  {
    // One global scheduler by default; --shards N swaps in the federated
    // backend behind the same PlacementService surface — the event loop,
    // wire codecs, and local client are untouched.
    std::unique_ptr<service::PlacementService> backend;
    if (shards > 1) {
      federation::FederationOptions fed_options;
      fed_options.shards = shards;
      fed_options.scheduler = sched_options;
      fed_options.service = svc_options;
      try {
        backend = std::make_unique<federation::FederatedService>(scenario.net,
                                                                 fed_options);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sparcle_serve: --shards %zu: %s\n", shards,
                     e.what());
        return 1;
      }
    } else {
      backend = std::make_unique<service::SchedulerService>(
          scenario.net, sched_options, svc_options);
    }
    service::PlacementService& svc = *backend;

    // Unify the sinks: the service's own registry becomes the global one,
    // so scheduler.* / assigner.* / trace.dropped instruments are scraped
    // by the same ops endpoint that serves the service.* families.
    obs::Observability sinks;
    sinks.metrics = &svc.registry();
    sinks.decisions = &decisions;
    if (!trace_path.empty() || run_oneshot) sinks.trace = &trace;
    obs::install(sinks);

    // Pre-admit the scenario's arrival sequence through the same queue a
    // remote client would use.
    service::LocalClient local(svc);
    std::size_t admitted = 0;
    for (const Application& app : scenario.apps)
      if (local.submit(app).status == service::ServiceResult::Status::kAdmitted)
        ++admitted;

    service::EventServer server(svc, net_options);
    try {
      server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      obs::uninstall();
      return 1;
    }
    std::printf(
        "sparcle_serve: %zu NCPs, %zu/%zu scenario app(s) admitted; "
        "listening on %s:%u (max_batch=%zu queue_capacity=%zu window=%zus)\n",
        scenario.net.ncp_count(), admitted, scenario.apps.size(),
        net_options.bind_address.c_str(), server.port(),
        svc_options.max_batch, svc_options.queue_capacity,
        svc_options.window_seconds);
    std::fflush(stdout);

    if (run_oneshot) {
      try {
        status = oneshot(server, scenario, svc.network());
        if (status == 0)
          status = oneshot_binary(server, scenario, svc.network());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "oneshot: %s\n", e.what());
        status = 1;
      }
    } else {
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
      while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::printf("sparcle_serve: shutting down\n");
    }
    server.stop();
    svc.stop();

    // Write sink dumps while the service (and its registry) is alive.
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << (ends_with(metrics_path, ".csv") ? svc.registry().to_csv()
                                              : svc.registry().to_json());
      std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
    }
    obs::uninstall();
  }

  if (!decisions_path.empty()) {
    std::ofstream out(decisions_path);
    out << decisions.to_csv();
    std::printf("decision log (%zu rows, %llu dropped) written to %s\n",
                decisions.size(),
                static_cast<unsigned long long>(decisions.dropped()),
                decisions_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    trace.write_json(out);
    std::printf("chrome trace (%zu events, %llu dropped) written to %s\n",
                trace.event_count(),
                static_cast<unsigned long long>(trace.dropped()),
                trace_path.c_str());
  }
  return status;
}
