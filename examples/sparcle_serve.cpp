/// \file sparcle_serve.cpp
/// The placement daemon: load a scenario file, keep its network as the
/// managed dispersed-computing fabric, pre-admit the scenario's
/// applications, and serve placement requests over newline-delimited JSON
/// on TCP until interrupted (docs/service.md documents the protocol).
///
/// Usage:
///   sparcle_serve <scenario-file> [--port P] [--bind ADDR]
///                 [--max-batch N] [--queue-capacity N] [--deadline-ms N]
///                 [--threads N] [--validate] [--oneshot]
///                 [--metrics-out FILE] [--decision-log FILE]
///
///   --port           TCP port (default 7411; 0 picks an ephemeral port)
///   --bind           bind address (default 127.0.0.1, loopback only)
///   --max-batch      admission requests coalesced per scheduler batch
///   --queue-capacity bound on queued requests (backpressure beyond it)
///   --deadline-ms    default per-request deadline (0 = none)
///   --threads        worker threads for candidate evaluation (also
///                    settable via SPARCLE_THREADS; 0 = auto)
///   --validate       run the invariant checker after every batch
///   --oneshot        start, loop a submit/query/remove round trip back
///                    through a TCP client, print the transcript, exit
///                    (the self-test mode CI exercises)
///   --metrics-out    write a metrics snapshot on exit (JSON / .csv)
///   --decision-log   write the decision log as CSV on exit (includes
///                    queue_reject rows for backpressure bounces)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "service/client.hpp"
#include "service/scheduler_service.hpp"
#include "service/tcp_server.hpp"
#include "workload/scenario_io.hpp"

using namespace sparcle;

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--port P] [--bind ADDR] "
               "[--max-batch N] [--queue-capacity N] [--deadline-ms N]\n"
               "       [--threads N] [--validate] [--oneshot] "
               "[--metrics-out FILE] [--decision-log FILE]\n",
               argv0);
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_fields(const char* label,
                  const std::map<std::string, std::string>& fields) {
  std::printf("%-10s", label);
  for (const auto& [key, value] : fields)
    std::printf(" %s=%s", key.c_str(), value.c_str());
  std::printf("\n");
}

/// The --oneshot self-test: talk to our own daemon through the real TCP
/// stack, exercising every verb once.  Returns an exit status.
int oneshot(service::TcpServer& server, const workload::ScenarioFile& scenario,
            const Network& net) {
  service::TcpClient client("127.0.0.1", server.port());
  print_fields("query", client.query());
  if (!scenario.apps.empty()) {
    // Resubmit a copy of the first scenario app under a fresh name: the
    // exact text a remote client would put on the wire.
    Application probe = scenario.apps.front();
    probe.name = "oneshot_probe";
    const std::string block = workload::write_app_text(probe, net);
    const auto submitted = client.submit_app_text(block);
    print_fields("submit", submitted);
    if (const auto it = submitted.find("status");
        it == submitted.end() ||
        (it->second != "admitted" && it->second != "rejected")) {
      std::fprintf(stderr, "oneshot: unexpected submit response\n");
      return 1;
    }
    print_fields("query", client.query("oneshot_probe"));
    print_fields("remove", client.remove("oneshot_probe"));
  }
  print_fields("drain", client.drain());
  std::printf("oneshot: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  service::TcpServerOptions tcp_options;
  tcp_options.port = 7411;
  service::ServiceOptions svc_options;
  SchedulerOptions sched_options;
  bool run_oneshot = false;
  std::string metrics_path, decisions_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      tcp_options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--bind") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      tcp_options.bind_address = v;
    } else if (arg == "--max-batch") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.max_batch = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.queue_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      svc_options.default_deadline = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sched_options.assigner_options.eval_threads = std::atoi(v);
    } else if (arg == "--validate") {
      svc_options.validate_batches = true;
    } else if (arg == "--oneshot") {
      run_oneshot = true;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      metrics_path = v;
    } else if (arg == "--decision-log") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      decisions_path = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      scenario_path = arg;
    }
  }
  if (scenario_path.empty()) return usage(argv[0]);

  obs::MetricsRegistry metrics;
  obs::DecisionLog decisions;
  obs::Observability sinks;
  if (!metrics_path.empty()) sinks.metrics = &metrics;
  if (!decisions_path.empty()) sinks.decisions = &decisions;
  if (sinks.metrics != nullptr || sinks.decisions != nullptr)
    obs::install(sinks);

  workload::ScenarioFile scenario;
  try {
    scenario = workload::load_scenario_file(scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  int status = 0;
  {
    service::SchedulerService svc(scenario.net, sched_options, svc_options);

    // Pre-admit the scenario's arrival sequence through the same queue a
    // remote client would use.
    service::LocalClient local(svc);
    std::size_t admitted = 0;
    for (const Application& app : scenario.apps)
      if (local.submit(app).status == service::ServiceResult::Status::kAdmitted)
        ++admitted;

    service::TcpServer server(svc, tcp_options);
    try {
      server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      obs::uninstall();
      return 1;
    }
    std::printf(
        "sparcle_serve: %zu NCPs, %zu/%zu scenario app(s) admitted; "
        "listening on %s:%u (max_batch=%zu queue_capacity=%zu)\n",
        scenario.net.ncp_count(), admitted, scenario.apps.size(),
        tcp_options.bind_address.c_str(), server.port(),
        svc_options.max_batch, svc_options.queue_capacity);
    std::fflush(stdout);

    if (run_oneshot) {
      status = oneshot(server, scenario, svc.network());
    } else {
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
      while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::printf("sparcle_serve: shutting down\n");
    }
    server.stop();
    svc.stop();
  }

  obs::uninstall();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << (ends_with(metrics_path, ".csv") ? metrics.to_csv()
                                            : metrics.to_json());
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  if (!decisions_path.empty()) {
    std::ofstream out(decisions_path);
    out << decisions.to_csv();
    std::printf("decision log (%zu rows) written to %s\n", decisions.size(),
                decisions_path.c_str());
  }
  return status;
}
