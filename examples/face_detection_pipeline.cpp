/// \file face_detection_pipeline.cpp
/// The paper's §V-A experiment as a runnable example: place the real
/// face-detection pipeline (Table II) on the Fig. 4 testbed at a chosen
/// field bandwidth, compare the dispersed placement against cloud-only,
/// and validate the winner in the discrete-event simulator.
///
/// Usage: face_detection_pipeline [field_bw_mbps]   (default 0.5)

#include <cstdio>
#include <cstdlib>

#include "baselines/cloud.hpp"
#include "core/sparcle_assigner.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

using namespace sparcle;

int main(int argc, char** argv) {
  const double field_bw = argc > 1 ? std::atof(argv[1]) : 0.5;
  if (!(field_bw > 0)) {
    std::fprintf(stderr, "usage: %s [field_bw_mbps > 0]\n", argv[0]);
    return 1;
  }

  const auto tb = workload::testbed_network(field_bw);
  const auto graph = workload::face_detection_app();

  AssignmentProblem problem;
  problem.net = &tb.net;
  problem.graph = graph.get();
  problem.capacities = CapacitySnapshot(tb.net);
  problem.pinned = {{graph->sources()[0], tb.camera},
                    {graph->sinks()[0], tb.consumer}};

  std::printf("testbed: 6 field NCPs @3000 MHz, cloud @15200 MHz, field "
              "links %.1f Mbps, cloud link 100 Mbps\n\n",
              field_bw);

  const AssignmentResult sparcle = SparcleAssigner().assign(problem);
  const AssignmentResult cloud = CloudAssigner(tb.cloud).assign(problem);
  if (!sparcle.feasible) {
    std::printf("SPARCLE found no feasible placement: %s\n",
                sparcle.message.c_str());
    return 1;
  }

  std::printf("SPARCLE placement (%.3f images/s):\n", sparcle.rate);
  for (CtId i = 0; i < static_cast<CtId>(graph->ct_count()); ++i)
    std::printf("  %-16s -> %s\n", graph->ct(i).name.c_str(),
                tb.net.ncp(sparcle.placement.ct_host(i)).name.c_str());
  std::printf("cloud-only placement: %.3f images/s  (SPARCLE is %.1fx)\n\n",
              cloud.rate, sparcle.rate / cloud.rate);

  // Replay the SPARCLE placement at 95% of its stable rate.
  sim::StreamSimulator simulator(tb.net);
  const double rate = 0.95 * sparcle.rate;
  simulator.add_stream(*graph, sparcle.placement, rate);
  const double horizon = 400.0 / rate;
  const auto report = simulator.run(horizon, horizon / 4);
  std::printf("simulated %.0f s of wall-clock at %.3f images/s:\n", horizon,
              rate);
  std::printf("  delivered  %.3f images/s\n", report.streams[0].throughput);
  std::printf("  latency    mean %.2f s, max %.2f s per image\n",
              report.streams[0].mean_latency, report.streams[0].max_latency);
  for (NcpId j = 0; j < static_cast<NcpId>(tb.net.ncp_count()); ++j)
    if (report.ncp_utilization[j] > 0.01)
      std::printf("  %-6s utilization %.0f%%\n", tb.net.ncp(j).name.c_str(),
                  report.ncp_utilization[j] * 100);
  return 0;
}
