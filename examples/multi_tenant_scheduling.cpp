/// \file multi_tenant_scheduling.cpp
/// The full Fig. 3 pipeline on a shared edge site: a mixed arrival
/// sequence of Guaranteed-Rate and Best-Effort applications hits the
/// admission controller; GR apps reserve capacity, BE apps share what is
/// left by weighted proportional fairness, and late arrivals are rejected
/// when their QoE cannot be met.

#include <cstdio>

#include "check/invariants.hpp"
#include "core/scheduler.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

using namespace sparcle;

namespace {

void report(const char* what, const AdmissionResult& r) {
  if (r.admitted)
    std::printf("  %-28s ADMITTED  paths=%zu  rate=%.3f units/s\n", what,
                r.path_count, r.rate);
  else
    std::printf("  %-28s REJECTED  (%s)\n", what, r.reason.c_str());
}

void print_allocations(const Scheduler& sched) {
  std::printf("\ncurrent allocations:\n");
  for (const auto& pa : sched.placed()) {
    const char* cls =
        pa.app.qoe.cls == QoeClass::kGuaranteedRate ? "GR" : "BE";
    std::printf("  %-10s [%s] rate %.3f units/s over %zu path(s)\n",
                pa.app.name.c_str(), cls, pa.allocated_rate,
                pa.paths.size());
  }
  std::printf("  BE utility sum P_i log x_i = %.3f\n\n", sched.be_utility());
}

}  // namespace

int main() {
  // Self-validation: in debug builds every scheduler mutation re-checks
  // the full invariant set (no-op in release builds).
  const check::ScopedValidation validation;

  // A shared edge site: star of 8 heterogeneous NCPs.
  Rng rng(21);
  workload::NetRanges ranges;
  ranges.ncp_min = 30;
  ranges.ncp_max = 90;
  ranges.bw_min = 40;
  ranges.bw_max = 120;
  auto gen = workload::star_network(8, rng, ranges);

  Scheduler sched(gen.net);
  const workload::TaskRanges tr;

  auto make_app = [&](const char* name, QoeSpec qoe) {
    Application app;
    app.name = name;
    app.graph = workload::linear_task_graph(4, rng, tr);
    app.qoe = qoe;
    app.pinned = {{app.graph->sources()[0], gen.source},
                  {app.graph->sinks()[0], gen.sink}};
    return app;
  };

  std::printf("arrivals:\n");

  // 1. A guaranteed-rate video analytics app reserves its share first.
  report("video-analytics (GR 1.0/s)",
         sched.submit(make_app("video", QoeSpec::guaranteed_rate(1.0, 0.0))));

  // 2. Two best-effort apps with different priorities share the rest.
  report("telemetry (BE P=2)",
         sched.submit(make_app("telemetry", QoeSpec::best_effort(2.0))));
  report("thumbnails (BE P=1)",
         sched.submit(make_app("thumbs", QoeSpec::best_effort(1.0))));
  print_allocations(sched);

  // 3. A greedy GR arrival asking for more than the residual: rejected,
  //    nobody else is disturbed.
  report("bulk-transcode (GR 50/s)",
         sched.submit(make_app("bulk", QoeSpec::guaranteed_rate(50.0, 0.0))));

  // 4. A modest GR arrival still fits; the BE apps give way.
  report("alerts (GR 0.4/s)",
         sched.submit(make_app("alerts", QoeSpec::guaranteed_rate(0.4, 0.0))));
  print_allocations(sched);

  std::printf("total guaranteed rate: %.3f units/s\n", sched.total_gr_rate());
  return 0;
}
