/// \file sparcle_top.cpp
/// Live operator view of a running sparcle_serve daemon: polls the
/// `stats` ops verb and prints one line per interval — queue depth,
/// window rates, admission latency percentiles, and SLO state — the
/// placement-plane equivalent of `top`.
///
/// Usage:
///   sparcle_top [--host H] [--port P] [--interval-ms N] [--count N]
///
///   --host         daemon address (default 127.0.0.1)
///   --port         daemon port (default 7411)
///   --interval-ms  poll period (default 1000)
///   --count        lines to print before exiting (0 = until killed);
///                  CI smokes use --count 1 as a connectivity probe
///
/// Output columns:
///   time   seconds since sparcle_top started
///   slo    worst objective state (ok / degraded / breached)
///   q      current queue depth
///   arr/s  arrivals per second over the daemon's window
///   adm/s  admissions per second
///   rej/s  rejections (queue + scheduler) per second
///   p50/p99  admission latency percentiles over the window, µs
///   burn   highest burn rate across objectives

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "service/client.hpp"

using namespace sparcle;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--interval-ms N] "
               "[--count N]\n",
               argv0);
  return 2;
}

double field_num(const std::map<std::string, std::string>& fields,
                 const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? 0.0 : std::atof(it->second.c_str());
}

std::string field_str(const std::map<std::string, std::string>& fields,
                      const std::string& key, const char* fallback) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7411;
  int interval_ms = 1000;
  long count = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      interval_ms = std::atoi(v);
    } else if (arg == "--count") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      count = std::atol(v);
    } else {
      return usage(argv[0]);
    }
  }

  try {
    service::TcpClient client(host, port);
    const auto start = std::chrono::steady_clock::now();
    std::printf("%6s %-9s %5s %8s %8s %8s %9s %9s %6s\n", "time", "slo", "q",
                "arr/s", "adm/s", "rej/s", "p50us", "p99us", "burn");
    for (long line = 0; count == 0 || line < count; ++line) {
      if (line > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      const auto fields = client.request_fields("{\"verb\":\"stats\"}");
      double worst_burn = 0.0;
      for (const auto& [key, value] : fields) {
        if (key.size() > 5 && key.compare(0, 4, "slo.") == 0 &&
            key.compare(key.size() - 5, 5, ".burn") == 0) {
          const double burn = std::atof(value.c_str());
          if (burn > worst_burn) worst_burn = burn;
        }
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::printf("%6.1f %-9s %5.0f %8.2f %8.2f %8.2f %9.0f %9.0f %6.2f\n",
                  elapsed, field_str(fields, "slo_state", "?").c_str(),
                  field_num(fields, "queue_depth"),
                  field_num(fields, "arrivals_per_second"),
                  field_num(fields, "admitted_per_second"),
                  field_num(fields, "rejected_per_second"),
                  field_num(fields, "admission_p50_us"),
                  field_num(fields, "admission_p99_us"), worst_burn);
      std::fflush(stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sparcle_top: %s\n", e.what());
    return 1;
  }
  return 0;
}
