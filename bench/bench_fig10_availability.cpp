/// \file bench_fig10_availability.cpp
/// Reproduces Fig. 10: how adding task-assignment paths raises (a) a BE
/// application's availability alongside its aggregate processing rate, and
/// (b) a GR application's min-rate availability (the subset-sum analysis of
/// eq. (7)).  Star computing network, linear task graph, 2% link failure
/// probability — the paper's setup.
///
/// Paper narrative to echo: (a) availability 0.85 with one path, ~0.94
/// with two, crossing the requested 0.9; (b) the first path alone cannot
/// carry the requested rate, so min-rate availability climbs with paths
/// (~0.78 with two, above the requested 0.85 with three).

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/availability.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/task_graphs.hpp"

using namespace sparcle;
using bench::fmt;
using bench::Table;

namespace {

/// Star network with 2% link failure probability; NCPs are reliable.
Network make_star(std::size_t ncps, Rng& rng) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("hub", ResourceVector::scalar(rng.uniform(20, 40)));
  for (std::size_t j = 1; j < ncps; ++j)
    net.add_ncp("leaf" + std::to_string(j),
                ResourceVector::scalar(rng.uniform(20, 40)));
  for (std::size_t j = 1; j < ncps; ++j)
    net.add_link("spoke" + std::to_string(j), 0, static_cast<NcpId>(j),
                 rng.uniform(30, 60), 0.02);
  return net;
}

struct FoundPath {
  Placement placement;
  double rate;
  std::vector<ElementKey> elements;
};

/// The §IV-D multipath loop: find paths one at a time, each search seeing
/// the capacities minus what the previous paths consume.
std::vector<FoundPath> find_paths(const Network& net, const TaskGraph& graph,
                                  const std::map<CtId, NcpId>& pins,
                                  std::size_t count, double rate_cap) {
  std::vector<FoundPath> paths;
  CapacitySnapshot caps(net);
  const SparcleAssigner assigner;
  for (std::size_t k = 0; k < count; ++k) {
    AssignmentProblem p;
    p.net = &net;
    p.graph = &graph;
    p.capacities = caps;
    p.pinned = pins;
    const AssignmentResult r = assigner.assign(p);
    if (!r.feasible) break;
    FoundPath fp;
    fp.placement = r.placement;
    fp.rate = std::min(r.rate, rate_cap);
    fp.elements = r.placement.used_elements(graph, net);
    const LoadMap load(net, graph, r.placement);
    caps.subtract_scaled(load, fp.rate);
    paths.push_back(std::move(fp));
  }
  return paths;
}

}  // namespace

int main() {
  Rng rng(12);
  const Network net = make_star(8, rng);
  const auto graph =
      workload::linear_task_graph(4, rng, workload::TaskRanges{});
  const std::map<CtId, NcpId> pins = {{graph->sources()[0], 1},
                                      {graph->sinks()[0], 7}};

  bench::section(
      "Fig. 10(a): BE application availability & aggregate rate vs #paths "
      "(requested availability 0.95, 2% link failures)");
  {
    const auto paths =
        find_paths(net, *graph, pins, 3,
                   std::numeric_limits<double>::infinity());
    Table t({"#paths", "aggregate rate (units/s)", "availability",
             "meets requested 0.95?"});
    std::vector<std::vector<ElementKey>> sets;
    double aggregate = 0;
    for (std::size_t k = 0; k < paths.size(); ++k) {
      sets.push_back(paths[k].elements);
      aggregate += paths[k].rate;
      const double avail = availability_any(net, sets);
      t.add_row({std::to_string(k + 1), fmt(aggregate), fmt(avail),
                 avail >= 0.95 ? "yes" : "no"});
    }
    t.print();
    bench::note(
        "paper: 0.85 with one path -> 0.94 with two, crossing its 0.9 "
        "target at two paths (our single path starts higher, so the "
        "requested availability is scaled to keep the same crossing).");
  }

  bench::section(
      "Fig. 10(b): GR application min-rate availability vs #paths "
      "(requested min-rate availability 0.85, 2% link failures)");
  {
    // Request slightly more than one path can carry so redundancy must
    // come from aggregation — the paper's 2.7 vs first-path 2.67 story.
    const auto probe =
        find_paths(net, *graph, pins, 1,
                   std::numeric_limits<double>::infinity());
    const double min_rate = probe.empty() ? 1.0 : 1.01 * probe[0].rate;
    const auto paths = find_paths(net, *graph, pins, 3, min_rate);

    std::printf("requested min rate: %s units/s; found path rates:",
                fmt(min_rate).c_str());
    for (const auto& fp : paths) std::printf(" %s", fmt(fp.rate).c_str());
    std::printf("\n\n");

    Table t({"#paths", "min-rate availability", "meets requested 0.85?"});
    std::vector<std::vector<ElementKey>> sets;
    std::vector<double> rates;
    for (std::size_t k = 0; k < paths.size(); ++k) {
      sets.push_back(paths[k].elements);
      rates.push_back(paths[k].rate);
      const double avail = min_rate_availability(net, sets, rates, min_rate);
      t.add_row({std::to_string(k + 1), fmt(avail),
                 avail >= 0.85 ? "yes" : "no"});
    }
    t.print();
    bench::note(
        "paper: one path cannot meet the rate (availability ~0); two paths "
        "~0.78; the target 0.85 is reached with three paths.");
  }
  return 0;
}
