/// \file bench_fig12_multiresource.cpp
/// Reproduces Fig. 12: the 25th and 75th percentiles of the processing
/// rate with TWO computation resource types (CPU + memory), in the
/// memory-bottleneck and link-bottleneck cases, diamond task graph on a
/// star network.
///
/// Paper claim to echo: with more than one resource type, the GS and VNE
/// algorithms degrade drastically (their scalar rankings lose track of the
/// scarce type) while SPARCLE's dynamic ranking handles all types.

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 150;
  const auto algorithms = simulation_comparators();

  bench::section(
      "Fig. 12: rate percentiles with two resource types (CPU + memory), "
      "diamond graph, star-8 network");
  std::vector<std::string> header = {"case / percentile"};
  for (const auto& a : algorithms) header.push_back(a);
  Table t(header);

  std::map<std::string, double> mem_mean;
  for (BottleneckCase bn :
       {BottleneckCase::kMemory, BottleneckCase::kLink}) {
    std::map<std::string, std::vector<double>> rates;
    for (int seed = 1; seed <= kTrials; ++seed) {
      Rng rng(seed);
      ScenarioSpec spec;
      spec.topology = TopologyKind::kStar;
      spec.graph = GraphKind::kDiamond;
      spec.bottleneck = bn;
      spec.ncps = 8;
      const Scenario sc = make_scenario(spec, rng);
      const AssignmentProblem p = sc.problem();
      for (const auto& name : algorithms)
        rates[name].push_back(make_assigner(name, seed)->assign(p).rate);
    }
    for (double pct : {25.0, 75.0}) {
      std::vector<std::string> row = {to_string(bn) + " " + fmt(pct, 0) +
                                      "th"};
      for (const auto& a : algorithms)
        row.push_back(fmt(percentile(rates[a], pct)));
      t.add_row(row);
    }
    if (bn == BottleneckCase::kMemory)
      for (const auto& a : algorithms) mem_mean[a] = mean(rates[a]);
  }
  t.print();

  std::printf(
      "\npaper: GS and VNE degrade drastically with multiple resource "
      "types.\nmeasured (memory-bottleneck means): SPARCLE %.3f, GS %.3f "
      "(%+.0f%%), VNE %.3f (%+.0f%%)\n",
      mem_mean["SPARCLE"], mem_mean["GS"],
      (mem_mean["SPARCLE"] / mem_mean["GS"] - 1) * 100, mem_mean["VNE"],
      (mem_mean["SPARCLE"] / mem_mean["VNE"] - 1) * 100);
  return 0;
}
