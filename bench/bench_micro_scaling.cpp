/// \file bench_micro_scaling.cpp
/// Google-benchmark microbenchmarks: the polynomial runtime claims of
/// Theorem 2 (Algorithm 2 in network and task-graph size) plus the cost of
/// the widest-path routine, the exact availability analysis, and the
/// proportional-fairness solve.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/availability.hpp"
#include "core/fairness.hpp"
#include "core/sparcle_assigner.hpp"
#include "core/widest_path.hpp"
#include "workload/scenarios.hpp"

using namespace sparcle;
using namespace sparcle::workload;

namespace {

Scenario scenario_with(std::size_t ncps, std::size_t middle_cts, int seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kFull;
  spec.graph = GraphKind::kLinear;
  spec.bottleneck = BottleneckCase::kBalanced;
  spec.ncps = ncps;
  spec.middle_cts = middle_cts;
  return make_scenario(spec, rng);
}

void BM_SparcleAssignNetworkSize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = scenario_with(n, 6, 1);
  const AssignmentProblem p = sc.problem();
  const SparcleAssigner assigner;
  for (auto _ : state) benchmark::DoNotOptimize(assigner.assign(p));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SparcleAssignNetworkSize)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Complexity();

void BM_SparcleAssignTaskGraphSize(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const Scenario sc = scenario_with(8, c, 1);
  const AssignmentProblem p = sc.problem();
  const SparcleAssigner assigner;
  for (auto _ : state) benchmark::DoNotOptimize(assigner.assign(p));
  state.SetComplexityN(static_cast<std::int64_t>(c));
}
BENCHMARK(BM_SparcleAssignTaskGraphSize)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

void BM_WidestPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = scenario_with(n, 2, 1);
  const auto weight = [&](LinkId l) { return sc.net.link(l).bandwidth; };
  for (auto _ : state)
    benchmark::DoNotOptimize(
        widest_path(sc.net, 0, static_cast<NcpId>(n - 1), weight));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WidestPath)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_AvailabilityExact(benchmark::State& state) {
  const auto paths_count = static_cast<std::size_t>(state.range(0));
  Network net(ResourceSchema::cpu_only());
  for (int j = 0; j < 16; ++j)
    net.add_ncp("n" + std::to_string(j), ResourceVector::scalar(1), 0.05);
  std::vector<std::vector<ElementKey>> paths;
  for (std::size_t p = 0; p < paths_count; ++p)
    paths.push_back({ElementKey::ncp(static_cast<NcpId>(p)),
                     ElementKey::ncp(static_cast<NcpId>((p + 1) % 16)),
                     ElementKey::ncp(static_cast<NcpId>((p + 5) % 16))});
  const std::vector<double> rates(paths_count, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        min_rate_availability(net, paths, rates, 2.0));
}
BENCHMARK(BM_AvailabilityExact)->DenseRange(2, 10, 2);

void BM_FairnessSolve(benchmark::State& state) {
  const auto apps = static_cast<std::size_t>(state.range(0));
  PfProblem p;
  p.capacity.assign(apps + 1, 100.0);
  for (std::size_t a = 0; a < apps; ++a) {
    PfProblem::Column col;
    col.entries = {{0, 1.0}, {a + 1, 2.0}};
    p.columns.push_back(col);
    p.var_app.push_back(a);
    p.app_priority.push_back(1.0 + static_cast<double>(a % 3));
  }
  for (auto _ : state) benchmark::DoNotOptimize(solve_weighted_pf(p));
}
BENCHMARK(BM_FairnessSolve)->RangeMultiplier(2)->Range(2, 16);

}  // namespace

// Custom main so the assignment speedup can be *tracked*: with
// SPARCLE_BENCH_JSON=<path> in the environment the full google-benchmark
// JSON report is written there in addition to the console output (it
// simply injects --benchmark_out flags, so explicit flags still win).
// tools/bench_assign.sh uses this to refresh BENCH_assign.json.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  if (const char* json_path = std::getenv("SPARCLE_BENCH_JSON")) {
    out_flag = std::string("--benchmark_out=") + json_path;
    // Insert before user flags so an explicit --benchmark_out overrides.
    args.insert(args.begin() + 1, out_flag.data());
    args.insert(args.begin() + 2, fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
