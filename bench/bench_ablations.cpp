/// \file bench_ablations.cpp
/// Ablations of SPARCLE's design choices (DESIGN.md §5):
///   1. dynamic re-ranking (Alg. 2 line 16) vs a frozen initial ranking;
///   2. probing reachable CTs with the minimum-bit TT of G(i,i')
///      (Alg. 2 line 12) vs the maximum-bit TT;
///   3. the priority prediction (6) on vs off — measured as the
///      arrival-order sensitivity of the final allocation;
///   4. number of task-assignment paths vs achieved availability.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

namespace {

double mean_rate(const SparcleAssignerOptions& opt, BottleneckCase bn,
                 int trials) {
  std::vector<double> rates;
  for (int seed = 1; seed <= trials; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kDiamond;
    spec.bottleneck = bn;
    spec.ncps = 8;
    const Scenario sc = make_scenario(spec, rng);
    const AssignmentProblem p = sc.problem();
    rates.push_back(SparcleAssigner(opt).assign(p).rate);
  }
  return mean(rates);
}

}  // namespace

int main() {
  constexpr int kTrials = 120;

  bench::section("Ablation 1: dynamic vs static CT ranking (mean rate)");
  {
    Table t({"case", "dynamic (paper)", "static", "gain"});
    for (BottleneckCase bn : {BottleneckCase::kNcp, BottleneckCase::kLink,
                              BottleneckCase::kBalanced}) {
      SparcleAssignerOptions dyn, stat;
      stat.dynamic_ranking = false;
      const double d = mean_rate(dyn, bn, kTrials);
      const double s = mean_rate(stat, bn, kTrials);
      t.add_row({to_string(bn), fmt(d), fmt(s),
                 fmt((d / s - 1) * 100, 1) + "%"});
    }
    t.print();
  }

  bench::section(
      "Ablation 1b: ranking direction — Alg. 2 listing (argmin) vs prose "
      "(argmax) vs best-of-both (our default)");
  {
    // The paper's prose and listing disagree on line 16; this measures the
    // tradeoff (DESIGN.md section 5).
    using Ranking = SparcleAssignerOptions::Ranking;
    Table t({"case", "argmin (listing)", "argmax (prose)",
             "best-of-both (default)"});
    for (BottleneckCase bn : {BottleneckCase::kNcp, BottleneckCase::kLink,
                              BottleneckCase::kBalanced}) {
      SparcleAssignerOptions amin, amax, both;
      amin.ranking = Ranking::kMostConstrainedFirst;
      amax.ranking = Ranking::kLeastConstrainedFirst;
      t.add_row({to_string(bn), fmt(mean_rate(amin, bn, kTrials)),
                 fmt(mean_rate(amax, bn, kTrials)),
                 fmt(mean_rate(both, bn, kTrials))});
    }
    t.print();
    bench::note(
        "argmin wins the NCP-bottleneck regime (it degenerates to GS, as "
        "the paper's section V-B claims); argmax wins some balanced "
        "instances by growing outward from the pinned anchors; the default "
        "runs both and keeps the better placement.");
  }

  bench::section(
      "Ablation 2: min-bit vs max-bit probe TT in gamma (mean rate)");
  {
    Table t({"case", "min-bit (paper)", "max-bit", "gain"});
    for (BottleneckCase bn : {BottleneckCase::kLink,
                              BottleneckCase::kBalanced}) {
      SparcleAssignerOptions minb, maxb;
      maxb.probe_with_min_bits_tt = false;
      const double d = mean_rate(minb, bn, kTrials);
      const double s = mean_rate(maxb, bn, kTrials);
      t.add_row({to_string(bn), fmt(d), fmt(s),
                 fmt((d / s - 1) * 100, 1) + "%"});
    }
    t.print();
  }

  bench::section(
      "Ablation 3: capacity prediction (6) on/off — placement quality when "
      "BE apps with different priorities share the network");
  {
    // Submit {P=3, P=1}; prediction should steer the later arrival's
    // placement around the incumbent's footprint, raising the PF utility
    // and the high-priority rate regardless of order.
    Table t({"prediction", "mean PF utility", "mean rate (P=3 app)",
             "mean rate (P=1 app)"});
    for (bool predict : {true, false}) {
      std::vector<double> utils, hi_rates, lo_rates;
      for (int seed = 1; seed <= 120; ++seed) {
        Rng rng(seed);
        ScenarioSpec spec;
        spec.topology = TopologyKind::kStar;
        spec.graph = GraphKind::kLinear;
        spec.bottleneck = BottleneckCase::kBalanced;
        spec.ncps = 8;
        const Scenario sc = make_scenario(spec, rng);
        const auto graph2 =
            linear_task_graph(4, rng, task_ranges_for(spec.bottleneck));
        SchedulerOptions opt;
        opt.use_prediction = predict;
        Scheduler sched(sc.net, opt);
        Application hi{"hi", sc.graph, QoeSpec::best_effort(3.0), sc.pinned};
        Application lo{"lo", graph2, QoeSpec::best_effort(1.0),
                       {{graph2->sources()[0], sc.pinned.begin()->second},
                        {graph2->sinks()[0], sc.pinned.rbegin()->second}}};
        if (!sched.submit(hi).admitted || !sched.submit(lo).admitted)
          continue;
        utils.push_back(sched.be_utility());
        for (const auto& pa : sched.placed())
          (pa.app.name == "hi" ? hi_rates : lo_rates)
              .push_back(pa.allocated_rate);
      }
      t.add_row({predict ? "on (paper)" : "off", fmt(mean(utils), 4),
                 fmt(mean(hi_rates), 4), fmt(mean(lo_rates), 4)});
    }
    t.print();
    bench::note(
        "prediction lets the arriving app account for the share it will "
        "actually receive next to incumbents (Thm 3 / eq. (6)).");
  }

  bench::section(
      "Ablation 6: local-search refinement (extension) — mean rate with "
      "0/2/8 hill-climbing rounds after the greedy");
  {
    Table t({"case", "greedy (paper)", "+2 rounds", "+8 rounds"});
    for (BottleneckCase bn : {BottleneckCase::kNcp, BottleneckCase::kLink,
                              BottleneckCase::kBalanced}) {
      SparcleAssignerOptions r0, r2, r8;
      r2.local_search_rounds = 2;
      r8.local_search_rounds = 8;
      t.add_row({to_string(bn), fmt(mean_rate(r0, bn, kTrials)),
                 fmt(mean_rate(r2, bn, kTrials)),
                 fmt(mean_rate(r8, bn, kTrials))});
    }
    t.print();
  }

  bench::section(
      "Ablation 5: path diversity — the section IV-D residual loop vs the "
      "overlap-penalizing extension (GR admission under failures)");
  {
    // GR apps requesting ~60% of a single relay's rate with a min-rate
    // availability target, on star sites with 3% link failures.
    Table t({"provisioning", "admitted fraction",
             "mean achieved min-rate availability"});
    for (PathDiversity div :
         {PathDiversity::kResidualOnly, PathDiversity::kPenalizeOverlap}) {
      std::vector<double> admitted, avail;
      for (int seed = 1; seed <= 80; ++seed) {
        Rng rng(seed);
        ScenarioSpec spec;
        spec.topology = TopologyKind::kStar;
        spec.graph = GraphKind::kLinear;
        spec.bottleneck = BottleneckCase::kBalanced;
        spec.ncps = 8;
        spec.fail_prob = 0.03;
        const Scenario sc = make_scenario(spec, rng);
        const AssignmentProblem p0 = sc.problem();
        const double solo = SparcleAssigner().assign(p0).rate;
        SchedulerOptions opt;
        opt.path_diversity = div;
        opt.overlap_penalty = 0.1;
        Scheduler sched(sc.net, opt);
        Application app{"gr", sc.graph,
                        QoeSpec::guaranteed_rate(0.6 * solo, 0.93),
                        sc.pinned};
        const auto r = sched.submit(app);
        admitted.push_back(r.admitted ? 1.0 : 0.0);
        if (r.admitted) avail.push_back(r.availability);
      }
      t.add_row({div == PathDiversity::kResidualOnly
                     ? "residual only (paper)"
                     : "penalize overlap (extension)",
                 fmt(mean(admitted), 2),
                 avail.empty() ? "-" : fmt(mean(avail))});
    }
    t.print();
  }

  bench::section("Ablation 4: max paths vs achieved BE availability");
  {
    Table t({"max paths", "mean availability", "mean admitted fraction"});
    for (std::size_t max_paths : {1u, 2u, 3u, 4u}) {
      std::vector<double> avail, admitted;
      for (int seed = 1; seed <= 60; ++seed) {
        Rng rng(seed);
        ScenarioSpec spec;
        spec.topology = TopologyKind::kStar;
        spec.graph = GraphKind::kLinear;
        spec.bottleneck = BottleneckCase::kBalanced;
        spec.ncps = 8;
        spec.fail_prob = 0.02;
        const Scenario sc = make_scenario(spec, rng);
        SchedulerOptions opt;
        opt.max_paths = max_paths;
        Scheduler sched(sc.net, opt);
        Application app{"a", sc.graph, QoeSpec::best_effort(1.0, 0.93),
                        sc.pinned};
        const auto r = sched.submit(app);
        admitted.push_back(r.admitted ? 1.0 : 0.0);
        if (r.admitted) avail.push_back(r.availability);
      }
      t.add_row({std::to_string(max_paths),
                 avail.empty() ? "-" : fmt(mean(avail)),
                 fmt(mean(admitted), 2)});
    }
    t.print();
  }
  return 0;
}
