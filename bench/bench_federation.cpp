/// \file bench_federation.cpp
/// Federated-placement scaling: aggregate admission throughput on a
/// 2048-NCP multi-region soak site as a function of the regional shard
/// count (1 -> 16).  One shard is the single-global-scheduler baseline —
/// every admission serializes through one proportional-fair re-solve over
/// the whole site; sharding runs the unchanged per-shard pipeline
/// concurrently on 1/N-size sub-networks and pays the two-phase
/// reserve/commit protocol only for the locality-tail arrivals whose pins
/// span shards (docs/federation.md).
///
/// The workload is a deterministic workload::ArrivalGenerator stream
/// (steady pattern, locality 0.9, 10% guaranteed-rate) replayed
/// identically against every shard count.  The run is split into epochs;
/// after each epoch the timer stops and the federation conservation check
/// (per-shard invariant checker + cross-shard reservation accounting)
/// must come back clean — a throughput number from a corrupted scheduler
/// state is worthless.
///
/// With SPARCLE_BENCH_JSON=<path> set, a flat JSON results map is written
/// for tools/bench_federation.sh, which appends a labeled entry to the
/// checked-in BENCH_federation.json trajectory and gates the >= 5x
/// speedup at 8 shards.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "federation/check.hpp"
#include "federation/federation.hpp"
#include "workload/arrivals.hpp"
#include "workload/rng.hpp"

using namespace sparcle;
using bench::fmt;
using bench::Table;

namespace {

constexpr std::size_t kRegions = 32;
constexpr std::size_t kNcpsPerRegion = 64;  // 32 x 64 = 2048 NCPs
constexpr std::size_t kEpochs = 4;

/// Arrival count, overridable for longer runs (SPARCLE_BENCH_ARRIVALS);
/// the checked-in gate uses the default.  64 keeps the whole axis under
/// ~5 minutes — the single-scheduler baseline pays seconds *per
/// admission* at 2048 NCPs, and that deliberately-slow row dominates
/// the bench's wall time (which is the point being measured).
std::size_t arrival_count() {
  if (const char* env = std::getenv("SPARCLE_BENCH_ARRIVALS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 64;
}

/// The replayed arrival stream: materialized once so every shard count
/// admits the identical application sequence.
std::vector<workload::Arrival> make_stream(const Network& net) {
  workload::ArrivalSpec spec;
  spec.pattern = workload::ArrivalPattern::kSteady;
  spec.arrivals = arrival_count();
  spec.horizon = 4096.0;
  spec.gr_fraction = 0.10;
  spec.locality = 0.9;  // most arrivals are shard-local; the tail crosses
  workload::ArrivalGenerator gen(net, spec, 20260808);
  std::vector<workload::Arrival> stream;
  stream.reserve(spec.arrivals);
  workload::Arrival a;
  while (gen.next(a)) stream.push_back(a);
  return stream;
}

struct AxisResult {
  double wall_s{0.0};        ///< timed submit+drain seconds, checks excluded
  std::size_t admitted{0};
  std::size_t rejected{0};
  std::size_t cross_admitted{0};
  std::size_t epochs_checked{0};
  std::size_t epochs_clean{0};
  double admissions_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(admitted) / wall_s : 0.0;
  }
  bool checks_ok() const { return epochs_clean == epochs_checked; }
};

AxisResult run_axis(const Network& net,
                    const std::vector<workload::Arrival>& stream,
                    std::size_t shards) {
  federation::FederationOptions options;
  options.shards = shards;
  options.service.queue_capacity = stream.size() + 16;
  federation::FederatedService fed(net, options);

  AxisResult result;
  const std::size_t per_epoch = (stream.size() + kEpochs - 1) / kEpochs;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const std::size_t lo = e * per_epoch;
    const std::size_t hi = std::min(stream.size(), lo + per_epoch);
    if (lo >= hi) break;

    // Timed section: open-loop burst of the epoch's arrivals, drained.
    std::vector<std::future<service::ServiceResult>> futures;
    futures.reserve(hi - lo);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = lo; i < hi; ++i)
      futures.push_back(fed.submit(stream[i].app));
    for (auto& f : futures)
      ++(f.get().ok() ? result.admitted : result.rejected);
    fed.drain();
    result.wall_s += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // Untimed: the epoch's state must pass the conservation check (which
    // itself runs the per-shard invariant checker on every shard).
    std::fprintf(stderr, "shards=%zu epoch %zu/%zu: %.1fs cumulative\n",
                 shards, e + 1, kEpochs, result.wall_s);
    ++result.epochs_checked;
    const federation::ConservationReport report =
        federation::check_federation(fed);
    if (report.ok()) {
      ++result.epochs_clean;
    } else {
      std::fprintf(stderr, "shards=%zu epoch %zu: %s\n", shards, e,
                   report.to_string().c_str());
    }
  }

  const service::ServiceStats stats = fed.stats();
  const auto it = stats.metrics.find("federation.cross.admitted");
  result.cross_admitted =
      it == stats.metrics.end() ? 0 : static_cast<std::size_t>(it->second);
  fed.stop();
  return result;
}

}  // namespace

int main() {
  Rng rng(42);
  const Network net = workload::soak_site(kRegions, kNcpsPerRegion, rng);
  const std::vector<workload::Arrival> stream = make_stream(net);
  std::map<std::string, double> json;

  bench::section("federated placement: " + std::to_string(net.ncp_count()) +
                 "-NCP site, " + std::to_string(stream.size()) +
                 " arrivals (locality 0.9), shard axis 1 -> 16");
  bench::note(
      "shards=1 is the single global scheduler every admission serializes\n"
      "through; each row replays the identical arrival stream.  Epoch\n"
      "checks run the per-shard invariant checker plus the federation\n"
      "conservation check with the timer stopped.");

  Table table({"shards", "admissions/s", "speedup", "admitted", "rejected",
               "cross", "checks"});
  double base = 0.0;
  bool all_clean = true;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{16}}) {
    const AxisResult r = run_axis(net, stream, shards);
    if (shards == 1) base = r.admissions_per_s();
    const double speedup = base > 0.0 ? r.admissions_per_s() / base : 0.0;
    all_clean = all_clean && r.checks_ok();
    table.add_row({std::to_string(shards), fmt(r.admissions_per_s(), 0),
                   fmt(speedup, 2), std::to_string(r.admitted),
                   std::to_string(r.rejected),
                   std::to_string(r.cross_admitted),
                   r.checks_ok() ? std::to_string(r.epochs_clean) + "/" +
                                       std::to_string(r.epochs_checked)
                                 : "FAIL"});
    const std::string key = "shards" + std::to_string(shards);
    json["admissions_per_s/" + key] = r.admissions_per_s();
    json["speedup/" + key] = speedup;
    json["admitted/" + key] = static_cast<double>(r.admitted);
    json["rejected/" + key] = static_cast<double>(r.rejected);
    json["cross_admitted/" + key] = static_cast<double>(r.cross_admitted);
    json["checks_clean/" + key] = r.checks_ok() ? 1.0 : 0.0;
  }
  table.print();
  json["ncps"] = static_cast<double>(net.ncp_count());
  json["arrivals"] = static_cast<double>(stream.size());
  json["all_checks_clean"] = all_clean ? 1.0 : 0.0;

  if (const char* path = std::getenv("SPARCLE_BENCH_JSON")) {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmarks\": {\n");
    bool first = true;
    for (const auto& [key, value] : json) {
      std::fprintf(out, "%s    \"%s\": %.2f", first ? "" : ",\n", key.c_str(),
                   value);
      first = false;
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("\nresults written to %s\n", path);
  }
  return all_clean ? 0 : 1;
}
