/// \file bench_fig14_gr_admission.cpp
/// Reproduces Fig. 14: the total processing rate of admitted
/// Guaranteed-Rate applications when a sequence of GR requests (diamond
/// and linear task graphs with random requested rates) arrives at a star
/// network, with the task assignment done by each algorithm inside the
/// identical admission pipeline.
///
/// Paper claim to echo: the SPARCLE assignment admits considerably more
/// guaranteed rate than the baselines.

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 60;
  constexpr int kAppsPerTrial = 6;
  const auto algorithms = simulation_comparators();

  std::map<std::string, std::vector<double>> totals;
  std::map<std::string, std::vector<double>> admitted_counts;
  for (int seed = 1; seed <= kTrials; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kDiamond;
    spec.bottleneck = BottleneckCase::kBalanced;
    spec.ncps = 8;
    const Scenario sc = make_scenario(spec, rng);

    // Calibrate request sizes to the network: a fraction of the solo rate.
    const AssignmentProblem p0 = sc.problem();
    const double solo = SparcleAssigner().assign(p0).rate;

    // Pre-generate the arrival sequence (same for every algorithm).
    struct Request {
      std::shared_ptr<const TaskGraph> graph;
      double min_rate;
    };
    std::vector<Request> requests;
    for (int a = 0; a < kAppsPerTrial; ++a) {
      const bool diamond = rng.bernoulli(0.5);
      const TaskRanges tr = task_ranges_for(spec.bottleneck);
      requests.push_back(
          {diamond
               ? diamond_task_graph(rng, tr)
               : linear_task_graph(4, rng, tr),
           rng.uniform(0.15, 0.5) * solo});
    }

    for (const auto& name : algorithms) {
      Scheduler sched(sc.net, make_assigner(name, seed));
      int admitted = 0;
      for (int a = 0; a < kAppsPerTrial; ++a) {
        const auto& req = requests[a];
        Application app{"gr" + std::to_string(a), req.graph,
                        QoeSpec::guaranteed_rate(req.min_rate, 0.0),
                        {{req.graph->sources()[0], sc.pinned.begin()->second},
                         {req.graph->sinks()[0], sc.pinned.rbegin()->second}}};
        if (sched.submit(app).admitted) ++admitted;
      }
      totals[name].push_back(sched.total_gr_rate());
      admitted_counts[name].push_back(admitted);
    }
  }

  bench::section(
      "Fig. 14: total admitted GR processing rate (diamond + linear task "
      "graphs, star-8 network)");
  Table t({"algorithm", "mean total admitted rate", "mean admitted apps",
           "vs SPARCLE"});
  const double s = mean(totals["SPARCLE"]);
  for (const auto& a : algorithms)
    t.add_row({a, fmt(mean(totals[a])), fmt(mean(admitted_counts[a]), 2),
               fmt(mean(totals[a]) / s * 100, 0) + "%"});
  t.print();

  bench::note(
      "\npaper: total admitted rate is considerably higher with SPARCLE "
      "than with any baseline (more applications are admitted).");
  return 0;
}
