/// \file bench_churn.cpp
/// Extension experiment (beyond the paper's static arrival study): a
/// long-horizon churn run — Poisson application arrivals with exponential
/// lifetimes on a star site — comparing the admission ratio and the
/// time-averaged carried guaranteed rate across assignment algorithms.
/// This is the §III-B "applications arrive over time" environment played
/// forward with departures, exercising reservation release and
/// re-allocation.

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/churn.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 10;
  const auto algorithms = simulation_comparators();

  Rng rng(5);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kStar;
  spec.graph = GraphKind::kLinear;
  spec.bottleneck = BottleneckCase::kBalanced;
  spec.ncps = 8;
  const Scenario base = make_scenario(spec, rng);
  const AssignmentProblem p0 = base.problem();
  const double calibration = SparcleAssigner().assign(p0).rate;

  ChurnConfig config;
  config.arrival_rate = 0.6;
  config.mean_lifetime = 15.0;
  config.horizon = 500.0;
  config.gr_fraction = 0.6;

  bench::section(
      "Churn: Poisson arrivals (0.6/t), exp lifetimes (mean 15t), horizon "
      "500t, 60% GR — star-8 balanced site");
  Table t({"algorithm", "admitted fraction", "avg carried GR rate",
           "avg concurrent apps", "mean BE rate at admission"});
  std::map<std::string, double> admitted;
  for (const auto& name : algorithms) {
    std::vector<double> frac, carried, conc, be_rate;
    for (int seed = 1; seed <= kTrials; ++seed) {
      const ChurnStats s =
          run_churn(base.net, spec, base.pinned.begin()->second,
                    base.pinned.rbegin()->second, calibration,
                    make_assigner(name, seed), config, seed);
      frac.push_back(s.admitted_fraction);
      carried.push_back(s.avg_carried_gr_rate);
      conc.push_back(s.avg_concurrent_apps);
      be_rate.push_back(s.mean_be_rate_at_admission);
    }
    admitted[name] = mean(frac);
    t.add_row({name, fmt(mean(frac)), fmt(mean(carried)),
               fmt(mean(conc), 2), fmt(mean(be_rate))});
  }
  t.print();
  std::printf(
      "\nSPARCLE admits %.0f%% of arrivals vs %.0f%% for the best "
      "baseline.\n",
      admitted["SPARCLE"] * 100,
      std::max({admitted["GS"], admitted["GRand"], admitted["Random"],
                admitted["T-Storm"], admitted["VNE"]}) *
          100);
  return 0;
}
