/// \file bench_churn.cpp
/// Extension experiment (beyond the paper's static arrival study), two
/// parts.  Part 1: a long-horizon churn run — Poisson application arrivals
/// with exponential lifetimes on a star site — comparing the admission
/// ratio and the time-averaged carried guaranteed rate across assignment
/// algorithms; this is the §III-B "applications arrive over time"
/// environment played forward with departures.  Part 2: *network* churn —
/// a seeded element failure/recovery trace replayed through
/// sim::ChurnInjector against identically loaded schedulers, comparing the
/// incremental repair() path (reverse usage index, affected apps only)
/// with the stop-the-world rebalance() baseline on per-event latency and
/// final carried rate.  Results are recorded in BENCH_churn.json and
/// EXPERIMENTS.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "sim/churn_injector.hpp"
#include "workload/churn.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

namespace {

/// Dispersed relay site: src/dst anchor NCPs plus a two-tier relay pool —
/// `big` capable relays the widest-path assigner concentrates on, and
/// `small` weak edge nodes that mostly churn without carrying anything.
/// That is the regime the reverse usage index is built for: most element
/// failures touch nothing placed.
Network make_relay_site(int big, int small, double big_cap,
                        double small_cap) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  for (int r = 0; r < big + small; ++r)
    net.add_ncp("relay" + std::to_string(r),
                ResourceVector::scalar(r < big ? big_cap : small_cap));
  for (int r = 0; r < big + small; ++r) {
    net.add_link("s" + std::to_string(r), 0, 2 + r, 1000.0);
    net.add_link("d" + std::to_string(r), 2 + r, 1, 1000.0);
  }
  return net;
}

/// Deterministic GR/BE mix: 3-CT chains (source and sink pinned to the
/// anchors, mid free) so every app competes for the relay pool.
std::vector<Application> make_repair_mix(int n_gr, int n_be) {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(1.0));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  std::vector<Application> apps;
  for (int i = 0; i < n_gr; ++i) {
    Application app{"gr" + std::to_string(i), g,
                    QoeSpec::guaranteed_rate(0.2 + 0.05 * (i % 4), 0.0), {}};
    app.pinned = {{0, 0}, {2, 1}};
    apps.push_back(std::move(app));
  }
  for (int i = 0; i < n_be; ++i) {
    Application app{"be" + std::to_string(i), g, QoeSpec::best_effort(2.0),
                    {}};
    app.pinned = {{0, 0}, {2, 1}};
    apps.push_back(std::move(app));
  }
  return apps;
}

struct RepairRunResult {
  std::size_t events{0};
  double total_ms{0.0};  ///< summed repair-op time, not wall clock
  double mean_us{0.0};
  double p50_us{0.0};
  double p99_us{0.0};
  /// Distribution over *active* repairs only (working set non-empty).
  /// The all-events distribution is bimodal — most failures hit weak
  /// relays carrying nothing and early-out in ~a microsecond — so its
  /// p99/p50 ratio measures the site's load skew, not the repair path.
  /// The active-only ratio is the flat-tail acceptance metric.
  std::size_t active_events{0};
  double active_p50_us{0.0};
  double active_p99_us{0.0};
  double final_rate{0.0};
  double final_gr_rate{0.0};
  double healthy_rate{0.0};  ///< carried rate before any churn
  std::size_t apps_touched{0};
  std::size_t paths_dropped{0};
  std::size_t paths_added{0};
  std::size_t retries{0};
  std::size_t fallbacks{0};
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// Replays the trace with ChurnInjector semantics (redundant events are
/// skipped) but times only the repair operation itself — the
/// mark_failed/mark_recovered bookkeeping is identical in both modes.
RepairRunResult replay_trace(const Network& net,
                             const std::vector<Application>& apps,
                             const sim::ChurnTrace& trace,
                             sim::RepairMode mode) {
  SchedulerOptions sopts;
  sopts.max_paths = 2;  // keep the BE footprint on the capable relays
  // Losing one of the 8 capable relays legitimately drops ~1/8 of the
  // carried rate; a 5% bound would escalate every such failure, so tune
  // the fallback for capacity-loss events (see docs/churn.md).
  sopts.repair.max_rate_degradation = 0.20;
  Scheduler sched(net, sopts);
  for (const Application& app : apps) (void)sched.submit(app);
  RepairRunResult out;
  out.healthy_rate = sched.total_gr_rate() + sched.total_be_rate();
  std::vector<double> latencies_us;
  std::vector<double> active_us;
  latencies_us.reserve(trace.events.size());
  for (const sim::ChurnEvent& ev : trace.events) {
    const bool down = sched.failed_elements().count(ev.element) > 0;
    if (ev.fail == down) continue;  // redundant: already in target state
    if (ev.fail)
      sched.mark_failed(ev.element);
    else
      sched.mark_recovered(ev.element);
    bool active = true;  // a rebalance pass always does the full work
    const auto a = std::chrono::steady_clock::now();
    if (mode == sim::RepairMode::kIncremental) {
      const auto r = sched.repair(ev.element);
      active = r.apps_touched > 0;
      out.apps_touched += r.apps_touched;
      out.paths_dropped += r.paths_dropped;
      out.paths_added += r.paths_added;
      out.retries += r.retries;
      if (r.fell_back) ++out.fallbacks;
    } else {
      (void)sched.rebalance();
    }
    const auto b = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(b - a).count();
    latencies_us.push_back(us);
    if (active) active_us.push_back(us);
  }
  out.events = latencies_us.size();
  for (double v : latencies_us) out.total_ms += v / 1000.0;
  out.mean_us = mean(latencies_us);
  out.p50_us = percentile(latencies_us, 0.50);
  out.p99_us = percentile(latencies_us, 0.99);
  out.active_events = active_us.size();
  out.active_p50_us = percentile(active_us, 0.50);
  out.active_p99_us = percentile(active_us, 0.99);
  // Heal whatever the truncated trace left down (untimed) so the final
  // rate measures repair quality, not which element happened to be dead
  // at the horizon.
  while (!sched.failed_elements().empty()) {
    const ElementKey e = *sched.failed_elements().begin();
    sched.mark_recovered(e);
    if (mode == sim::RepairMode::kIncremental)
      (void)sched.repair(e);
    else
      (void)sched.rebalance();
  }
  out.final_gr_rate = sched.total_gr_rate();
  out.final_rate = sched.total_gr_rate() + sched.total_be_rate();
  return out;
}

void run_repair_comparison() {
  const Network net = make_relay_site(/*big=*/8, /*small=*/160,
                                      /*big_cap=*/100.0, /*small_cap=*/1.0);
  const std::vector<Application> apps = make_repair_mix(/*n_gr=*/24,
                                                        /*n_be=*/48);
  sim::ChurnModel model;
  model.default_mtbf = 120.0;
  model.default_mttr = 5.0;
  // Node churn only: dispersed-computing devices leave and rejoin, the
  // mesh links stay up (link churn is exercised by the fuzzer and the
  // injector tests).  The anchors the apps are pinned to are gateway
  // infrastructure, not churning edge nodes.
  model.include_links = false;
  model.mtbf_override[ElementKey::ncp(0)] = 1e12;
  model.mtbf_override[ElementKey::ncp(1)] = 1e12;
  const sim::ChurnTrace trace =
      sim::generate_poisson_churn(net, model, /*horizon=*/600.0, /*seed=*/42);

  bench::section(
      "Network churn: incremental repair() vs full rebalance() — 168-relay "
      "two-tier site, 72 apps (24 GR + 48 BE), Poisson node churn "
      "(MTBF 120t, MTTR 5t, horizon 600t)");
  const RepairRunResult inc =
      replay_trace(net, apps, trace, sim::RepairMode::kIncremental);
  const RepairRunResult reb =
      replay_trace(net, apps, trace, sim::RepairMode::kFullRebalance);

  Table t({"mode", "events", "repair events/s", "repair mean (us)",
           "p50 (us)", "p99 (us)", "active p50 (us)", "active p99 (us)",
           "final rate", "final GR rate", "final/healthy"});
  auto add = [&](const std::string& name, const RepairRunResult& r) {
    t.add_row({name, std::to_string(r.events),
               fmt(static_cast<double>(r.events) / (r.total_ms / 1000.0), 0),
               fmt(r.mean_us, 1), fmt(r.p50_us, 1), fmt(r.p99_us, 1),
               fmt(r.active_p50_us, 1), fmt(r.active_p99_us, 1),
               fmt(r.final_rate, 3), fmt(r.final_gr_rate, 3),
               fmt(r.final_rate / std::max(r.healthy_rate, 1e-9) * 100, 1) +
                   "%"});
  };
  add("incremental repair", inc);
  add("full rebalance", reb);
  t.print();

  std::printf(
      "\nflat-tail check (active repairs only, %zu of %zu events): "
      "p99 %.1fus = %.1fx p50 %.1fus\n",
      inc.active_events, inc.events, inc.active_p99_us,
      inc.active_p99_us / std::max(inc.active_p50_us, 1e-9),
      inc.active_p50_us);

  const double speedup = reb.mean_us / std::max(inc.mean_us, 1e-9);
  const double final_vs_healthy =
      inc.final_rate / std::max(inc.healthy_rate, 1e-9);
  std::printf(
      "\nincremental: %zu apps touched, %zu paths dropped, %zu added, "
      "%zu retries, %zu fallbacks over %zu repairs\n",
      inc.apps_touched, inc.paths_dropped, inc.paths_added, inc.retries,
      inc.fallbacks, inc.events);
  std::printf(
      "speedup: incremental repair is %.1fx faster per event; final "
      "aggregate rate is %.1f%% of the pre-churn healthy rate\n",
      speedup, final_vs_healthy * 100.0);
  bench::note(
      "\nThe rebalance baseline ratchets down over a long churn run: it can "
      "only top up apps whose dead paths it shed in the same pass, so an "
      "app that ever reaches zero paths (or a GR app stranded while "
      "capacity was out) is never re-provisioned.  repair()'s degraded-app "
      "scan is what recovers them.");

  // Flat results map for the BENCH_churn.json trajectory
  // (tools/bench_churn.sh appends a labeled entry and gates the tail).
  if (const char* path = std::getenv("SPARCLE_BENCH_JSON")) {
    std::map<std::string, double> json;
    auto emit = [&](const std::string& mode, const RepairRunResult& r) {
      json["repair_events_per_s/" + mode] =
          static_cast<double>(r.events) / (r.total_ms / 1000.0);
      json["repair_latency_mean_us/" + mode] = r.mean_us;
      json["repair_latency_p50_us/" + mode] = r.p50_us;
      json["repair_latency_p99_us/" + mode] = r.p99_us;
      json["repair_active_events/" + mode] =
          static_cast<double>(r.active_events);
      json["repair_active_p50_us/" + mode] = r.active_p50_us;
      json["repair_active_p99_us/" + mode] = r.active_p99_us;
      json["final_rate_pct_of_healthy/" + mode] =
          r.final_rate / std::max(r.healthy_rate, 1e-9) * 100.0;
    };
    emit("incremental", inc);
    emit("full_rebalance", reb);
    json["speedup_mean_per_event"] = speedup;
    json["fallbacks/incremental"] = static_cast<double>(inc.fallbacks);
    json["apps_touched/incremental"] = static_cast<double>(inc.apps_touched);
    json["paths_dropped/incremental"] =
        static_cast<double>(inc.paths_dropped);
    json["paths_added/incremental"] = static_cast<double>(inc.paths_added);
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return;
    }
    std::fprintf(out, "{\n  \"benchmarks\": {\n");
    bool first = true;
    for (const auto& [key, value] : json) {
      std::fprintf(out, "%s    \"%s\": %.1f", first ? "" : ",\n", key.c_str(),
                   value);
      first = false;
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("\nresults written to %s\n", path);
  }
}

}  // namespace

int main() {
  constexpr int kTrials = 10;
  const auto algorithms = simulation_comparators();

  Rng rng(5);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kStar;
  spec.graph = GraphKind::kLinear;
  spec.bottleneck = BottleneckCase::kBalanced;
  spec.ncps = 8;
  const Scenario base = make_scenario(spec, rng);
  const AssignmentProblem p0 = base.problem();
  const double calibration = SparcleAssigner().assign(p0).rate;

  ChurnConfig config;
  config.arrival_rate = 0.6;
  config.mean_lifetime = 15.0;
  config.horizon = 500.0;
  config.gr_fraction = 0.6;

  bench::section(
      "Churn: Poisson arrivals (0.6/t), exp lifetimes (mean 15t), horizon "
      "500t, 60% GR — star-8 balanced site");
  Table t({"algorithm", "admitted fraction", "avg carried GR rate",
           "avg concurrent apps", "mean BE rate at admission"});
  std::map<std::string, double> admitted;
  for (const auto& name : algorithms) {
    std::vector<double> frac, carried, conc, be_rate;
    for (int seed = 1; seed <= kTrials; ++seed) {
      const ChurnStats s =
          run_churn(base.net, spec, base.pinned.begin()->second,
                    base.pinned.rbegin()->second, calibration,
                    make_assigner(name, seed), config, seed);
      frac.push_back(s.admitted_fraction);
      carried.push_back(s.avg_carried_gr_rate);
      conc.push_back(s.avg_concurrent_apps);
      be_rate.push_back(s.mean_be_rate_at_admission);
    }
    admitted[name] = mean(frac);
    t.add_row({name, fmt(mean(frac)), fmt(mean(carried)),
               fmt(mean(conc), 2), fmt(mean(be_rate))});
  }
  t.print();
  std::printf(
      "\nSPARCLE admits %.0f%% of arrivals vs %.0f%% for the best "
      "baseline.\n",
      admitted["SPARCLE"] * 100,
      std::max({admitted["GS"], admitted["GRand"], admitted["Random"],
                admitted["T-Storm"], admitted["VNE"]}) *
          100);

  run_repair_comparison();
  return 0;
}
