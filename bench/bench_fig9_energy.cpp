/// \file bench_fig9_energy.cpp
/// Reproduces Fig. 9: average energy efficiency (data units per Joule) of
/// each task-assignment algorithm in the balanced / NCP-bottleneck /
/// link-bottleneck cases, for a linear task graph on a linear network.
///
/// Paper claims to echo: SPARCLE improves average energy efficiency by
/// ~126%/190%/59% over Random/T-Storm/VNE in the balanced case and by
/// >53% over GS/GRand in the link-bottleneck case (concentrating CTs on
/// fewer NCPs saves transmission energy).

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "energy/energy_model.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 100;
  const auto algorithms = simulation_comparators();
  const std::vector<BottleneckCase> cases = {BottleneckCase::kBalanced,
                                             BottleneckCase::kNcp,
                                             BottleneckCase::kLink};

  bench::section(
      "Fig. 9: average energy efficiency (units/J), linear task graph on a "
      "linear network");
  std::vector<std::string> header = {"case"};
  for (const auto& a : algorithms) header.push_back(a);
  Table t(header);

  std::map<std::string, double> balanced_eff, link_eff;
  for (BottleneckCase bn : cases) {
    std::map<std::string, std::vector<double>> eff;
    for (int seed = 1; seed <= kTrials; ++seed) {
      Rng rng(seed);
      ScenarioSpec spec;
      spec.topology = TopologyKind::kLinear;
      spec.graph = GraphKind::kLinear;
      spec.bottleneck = bn;
      spec.ncps = 6;
      spec.middle_cts = 4;
      const Scenario sc = make_scenario(spec, rng);
      const AssignmentProblem p = sc.problem();
      // The scenario capacities are abstract units; treat link bits as
      // 1e5 x scale so the default radio coefficients bite realistically.
      const EnergyModel em(sc.net, DevicePowerProfile{0.5, 2.5, 1e-3, 1e-3});
      for (const auto& name : algorithms) {
        const AssignmentResult r = make_assigner(name, seed)->assign(p);
        eff[name].push_back(
            r.feasible
                ? em.energy_efficiency(*sc.graph, r.placement, r.rate)
                : 0.0);
      }
    }
    std::vector<std::string> row = {to_string(bn)};
    for (const auto& name : algorithms) {
      const double m = mean(eff[name]);
      row.push_back(fmt(m, 4));
      if (bn == BottleneckCase::kBalanced) balanced_eff[name] = m;
      if (bn == BottleneckCase::kLink) link_eff[name] = m;
    }
    t.add_row(row);
  }
  t.print();

  std::printf("\npaper vs measured (balanced case):\n");
  std::printf("  vs Random : paper +126%%  measured %+.0f%%\n",
              (balanced_eff["SPARCLE"] / balanced_eff["Random"] - 1) * 100);
  std::printf("  vs T-Storm: paper +190%%  measured %+.0f%%\n",
              (balanced_eff["SPARCLE"] / balanced_eff["T-Storm"] - 1) * 100);
  std::printf("  vs VNE    : paper  +59%%  measured %+.0f%%\n",
              (balanced_eff["SPARCLE"] / balanced_eff["VNE"] - 1) * 100);
  std::printf("paper vs measured (link-bottleneck case):\n");
  std::printf("  vs GS     : paper  >53%%  measured %+.0f%%\n",
              (link_eff["SPARCLE"] / link_eff["GS"] - 1) * 100);
  std::printf("  vs GRand  : paper  >53%%  measured %+.0f%%\n",
              (link_eff["SPARCLE"] / link_eff["GRand"] - 1) * 100);
  return 0;
}
