/// \file bench_fig6_testbed.cpp
/// Reproduces Table I, Table II and Fig. 6: the face-detection application
/// on the experimental testbed, sweeping the field bandwidth over
/// {0.5, 10, 22} Mbps and comparing SPARCLE against HEFT, T-Storm, VNE,
/// cloud-only, and the exhaustive optimum.  SPARCLE's placement is also
/// replayed in the discrete-event simulator (the paper used Mininet).
///
/// Paper claims the table should echo: ~9x over cloud at 0.5 Mbps; SPARCLE
/// uses only the cloud at 10 Mbps (cloud is optimal there); ~23% over
/// cloud at 22 Mbps; up to 300%/63%/1350% over HEFT/T-Storm/VNE.

#include <cstdio>

#include "baselines/cloud.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "core/sparcle_assigner.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

using namespace sparcle;
using bench::fmt;
using bench::Table;

namespace {

AssignmentProblem make_problem(const workload::Testbed& tb,
                               const TaskGraph& graph) {
  AssignmentProblem p;
  p.net = &tb.net;
  p.graph = &graph;
  p.capacities = CapacitySnapshot(tb.net);
  p.pinned = {{graph.sources()[0], tb.camera},
              {graph.sinks()[0], tb.consumer}};
  return p;
}

double simulate(const workload::Testbed& tb, const TaskGraph& graph,
                const Placement& placement, double rate) {
  sim::StreamSimulator simulator(tb.net, 1);
  simulator.add_stream(graph, placement, rate);
  const double horizon = 250.0 / rate;
  return simulator.run(horizon, horizon / 5).streams[0].throughput;
}

}  // namespace

int main() {
  bench::section("Table I: dispersed computing network parameters");
  Table t1({"Network element", "Capacity"});
  t1.add_row({"Cloud CPU", "4 x 3.8 (GHz) = 15200 MHz"});
  t1.add_row({"Field CPU", "3000 (MHz)"});
  t1.add_row({"Cloud BW", "100 (Mbps)"});
  t1.add_row({"Field BW", "swept: 0.5 / 10 / 22 (Mbps)"});
  t1.print();

  bench::section("Table II: face detection application parameters");
  const auto graph = workload::face_detection_app();
  Table t2({"Task", "Resource requirement"});
  for (CtId i = 0; i < static_cast<CtId>(graph->ct_count()); ++i)
    if (graph->ct(i).requirement[0] > 0)
      t2.add_row({graph->ct(i).name,
                  fmt(graph->ct(i).requirement[0], 0) + " (MC/image)"});
  for (TtId k = 0; k < static_cast<TtId>(graph->tt_count()); ++k)
    t2.add_row({graph->tt(k).name,
                fmt(graph->tt(k).bits_per_unit / 8e3, 0) + " (kB/image)"});
  t2.print();

  bench::section(
      "Fig. 6: face-detection processing rate (images/s) vs field bandwidth");
  Table fig6({"Field BW (Mbps)", "SPARCLE", "SPARCLE (simulated)", "HEFT",
              "T-Storm", "VNE", "Cloud", "Optimal"});

  double s05 = 0, c05 = 0, s22 = 0, c22 = 0, s10 = 0, c10 = 0;
  for (double bw : {0.5, 10.0, 22.0}) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = make_problem(tb, *graph);

    const AssignmentResult sparcle = SparcleAssigner().assign(p);
    const double sim_rate =
        sparcle.feasible
            ? simulate(tb, *graph, sparcle.placement, 0.95 * sparcle.rate)
            : 0.0;
    const double heft = make_assigner("HEFT")->assign(p).rate;
    const double tstorm = make_assigner("T-Storm")->assign(p).rate;
    const double vne = make_assigner("VNE")->assign(p).rate;
    const double cloud = CloudAssigner(tb.cloud).assign(p).rate;
    const double optimal = ExhaustiveAssigner().assign(p).rate;

    fig6.add_row({fmt(bw, 1), fmt(sparcle.rate), fmt(sim_rate), fmt(heft),
                  fmt(tstorm), fmt(vne), fmt(cloud), fmt(optimal)});
    if (bw == 0.5) {
      s05 = sparcle.rate;
      c05 = cloud;
    } else if (bw == 10.0) {
      s10 = sparcle.rate;
      c10 = cloud;
    } else {
      s22 = sparcle.rate;
      c22 = cloud;
    }
  }
  fig6.print();

  std::printf("\npaper vs measured:\n");
  std::printf(
      "  @0.5 Mbps  paper: dispersed ~9x cloud        measured: %.1fx\n",
      s05 / c05);
  std::printf(
      "  @10 Mbps   paper: SPARCLE == cloud (optimal) measured: ratio %.2f\n",
      s10 / c10);
  std::printf(
      "  @22 Mbps   paper: dispersed +23%% over cloud  measured: +%.0f%%\n",
      (s22 / c22 - 1.0) * 100.0);
  return 0;
}
