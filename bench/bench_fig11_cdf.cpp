/// \file bench_fig11_cdf.cpp
/// Reproduces Fig. 11: the CDF of the single-path processing rate achieved
/// by each algorithm on a diamond task graph over a star network with
/// eight NCPs, for the NCP-bottleneck, link-bottleneck and balanced cases.
/// The CDFs are printed as deciles plus the summary statistics the paper
/// quotes.
///
/// Paper claims to echo: (a) SPARCLE == GS in the NCP-bottleneck case;
/// (b) link-bottleneck: SPARCLE exceeds rate 0.15 about 90% of the time
/// while Random/T-Storm/VNE never do, and beats GS by ~30% on average;
/// (c) balanced: SPARCLE beats Random/T-Storm/GS/GRand/VNE by about
/// 82/69/22/17/8%.

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 200;
  const auto algorithms = simulation_comparators();

  std::map<std::string, double> balanced_mean, link_mean, ncp_mean;
  for (BottleneckCase bn : {BottleneckCase::kNcp, BottleneckCase::kLink,
                            BottleneckCase::kBalanced}) {
    std::map<std::string, std::vector<double>> rates;
    for (int seed = 1; seed <= kTrials; ++seed) {
      Rng rng(seed);
      ScenarioSpec spec;
      spec.topology = TopologyKind::kStar;
      spec.graph = GraphKind::kDiamond;
      spec.bottleneck = bn;
      spec.ncps = 8;
      const Scenario sc = make_scenario(spec, rng);
      const AssignmentProblem p = sc.problem();
      for (const auto& name : algorithms)
        rates[name].push_back(make_assigner(name, seed)->assign(p).rate);
    }

    bench::section("Fig. 11 (" + to_string(bn) +
                   "): processing-rate CDF, diamond graph, star-8 network");
    std::vector<std::string> header = {"percentile"};
    for (const auto& a : algorithms) header.push_back(a);
    Table t(header);
    for (double pct : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0,
                       90.0, 100.0}) {
      std::vector<std::string> row = {fmt(pct, 0)};
      for (const auto& a : algorithms)
        row.push_back(fmt(percentile(rates[a], pct)));
      t.add_row(row);
    }
    std::vector<std::string> mrow = {"mean"};
    for (const auto& a : algorithms) {
      const double m = mean(rates[a]);
      mrow.push_back(fmt(m));
      if (bn == BottleneckCase::kBalanced) balanced_mean[a] = m;
      if (bn == BottleneckCase::kLink) link_mean[a] = m;
      if (bn == BottleneckCase::kNcp) ncp_mean[a] = m;
    }
    t.add_row(mrow);
    t.print();

    if (bn == BottleneckCase::kLink) {
      std::printf("\nP(rate >= 0.15):");
      for (const auto& a : algorithms)
        std::printf("  %s %.2f", a.c_str(),
                    fraction_at_least(rates[a], 0.15));
      std::printf("\n");
    }
  }

  std::printf("\npaper vs measured:\n");
  std::printf("  (a) NCP-bottleneck: SPARCLE == GS; measured means %.3f vs %.3f\n",
              ncp_mean["SPARCLE"], ncp_mean["GS"]);
  std::printf("  (b) link-bottleneck: paper +30%% over GS; measured %+.0f%%\n",
              (link_mean["SPARCLE"] / link_mean["GS"] - 1) * 100);
  std::printf(
      "  (c) balanced improvements over Random/T-Storm/GS/GRand/VNE —\n"
      "      paper: +82/+69/+22/+17/+8%%; measured: %+.0f/%+.0f/%+.0f/%+.0f/"
      "%+.0f%%\n",
      (balanced_mean["SPARCLE"] / balanced_mean["Random"] - 1) * 100,
      (balanced_mean["SPARCLE"] / balanced_mean["T-Storm"] - 1) * 100,
      (balanced_mean["SPARCLE"] / balanced_mean["GS"] - 1) * 100,
      (balanced_mean["SPARCLE"] / balanced_mean["GRand"] - 1) * 100,
      (balanced_mean["SPARCLE"] / balanced_mean["VNE"] - 1) * 100);
  return 0;
}
