/// \file bench_fig13_multi_be.cpp
/// Reproduces Fig. 13: the CDF of the proportional-fairness objective (4)
/// achieved when two Best-Effort applications with diamond task graphs and
/// priorities P1 = 2*P2 share a star network (balanced case), with the
/// task assignment done by each algorithm inside the identical
/// admission/allocation pipeline.
///
/// Paper claim to echo: SPARCLE outperforms all baselines in utility.

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/registry.hpp"
#include "bench/common.hpp"
#include "core/scheduler.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 150;
  const auto algorithms = simulation_comparators();

  std::map<std::string, std::vector<double>> utility;
  for (int seed = 1; seed <= kTrials; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kDiamond;
    spec.bottleneck = BottleneckCase::kBalanced;
    spec.ncps = 8;
    const Scenario sc = make_scenario(spec, rng);
    // Second app: a fresh diamond graph on the same network, same pins.
    const auto graph2 =
        diamond_task_graph(rng, task_ranges_for(spec.bottleneck));

    for (const auto& name : algorithms) {
      Scheduler sched(sc.net, make_assigner(name, seed));
      Application a1{"app1", sc.graph, QoeSpec::best_effort(2.0), sc.pinned};
      Application a2{"app2", graph2, QoeSpec::best_effort(1.0),
                     {{graph2->sources()[0], sc.pinned.begin()->second},
                      {graph2->sinks()[0], sc.pinned.rbegin()->second}}};
      const bool ok1 = sched.submit(a1).admitted;
      const bool ok2 = sched.submit(a2).admitted;
      utility[name].push_back(
          ok1 && ok2 ? sched.be_utility() : -1e9);
    }
  }

  bench::section(
      "Fig. 13: CDF of the PF utility (4), two BE apps (P1 = 2 P2), diamond "
      "graphs, star-8, balanced case");
  std::vector<std::string> header = {"percentile"};
  for (const auto& a : algorithms) header.push_back(a);
  Table t(header);
  for (double pct :
       {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0}) {
    std::vector<std::string> row = {fmt(pct, 0)};
    for (const auto& a : algorithms)
      row.push_back(fmt(percentile(utility[a], pct)));
    t.add_row(row);
  }
  std::vector<std::string> mrow = {"mean"};
  for (const auto& a : algorithms) mrow.push_back(fmt(mean(utility[a])));
  t.add_row(mrow);
  t.print();

  std::printf("\npaper: SPARCLE's utility CDF dominates all baselines.\n");
  std::printf("measured mean utility gaps vs SPARCLE:");
  const double s = mean(utility["SPARCLE"]);
  for (const auto& a : algorithms)
    if (a != "SPARCLE") std::printf("  %s %+.2f", a.c_str(), s - mean(utility[a]));
  std::printf("\n");
  return 0;
}
